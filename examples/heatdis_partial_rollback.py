#!/usr/bin/env python3
"""Partial rollback: survivors keep their post-checkpoint progress.

The run-until-convergence Heatdis variant tolerates a partially
inconsistent restart (one rank on older data), so survivors can skip data
restoration entirely after a failure.  The paper reports "a nearly 2x
speedup of recovery" from this; this example reproduces the comparison.

Run:  python examples/heatdis_partial_rollback.py
"""

from repro.experiments import run_partial_rollback_comparison


def main() -> None:
    print("running clean / full-rollback / partial-rollback jobs ...")
    result = run_partial_rollback_comparison(n_ranks=8)
    print(f"clean run:            {result.clean_wall:8.2f} s "
          f"({result.clean_iterations} iterations to converge)")
    print(f"full rollback:        {result.full_rollback_wall:8.2f} s "
          f"({result.full_iterations} iterations)")
    print(f"partial rollback:     {result.partial_rollback_wall:8.2f} s "
          f"({result.partial_iterations} iterations)")
    print(f"recovery cost (full):    {result.full_recovery_cost:6.2f} s")
    print(f"recovery cost (partial): {result.partial_recovery_cost:6.2f} s")
    print(f"speedup: {result.speedup:.2f}x  (paper: 'nearly 2x')")
    print("\nNote the partial run may even need FEWER iterations: the")
    print("survivors' kept data is further along than the rolled-back")
    print("iteration counter suggests.")


if __name__ == "__main__":
    main()
