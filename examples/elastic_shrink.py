#!/usr/bin/env python3
"""Elastic shrink-and-rebalance: the paper's future work, running.

Section VII-A calls for "shrinking ... the total number of ranks
dynamically throughout execution and migrating processes for post-failure
load balancing".  This example runs Heatdis under Fenix with *zero spare
ranks*: when a rank dies, the communicator shrinks, the survivors
repartition the fixed global grid evenly, redistribute the last
checkpoint across the new decomposition, and finish with the bit-exact
answer.

Run:  python examples/elastic_shrink.py
"""

import numpy as np

from repro.apps import HeatdisConfig
from repro.apps.heatdis import heatdis_reference
from repro.apps.heatdis_elastic import gather_elastic, make_elastic_heatdis_main
from repro.fenix import FenixSystem
from repro.mpi import World
from repro.sim import Cluster, ClusterSpec, IterationFailure

TOTAL_ROWS, COLS, N_ITERS, CKPT = 12, 16, 30, 6
N_RANKS = 3


def run(plan=None):
    cluster = Cluster(ClusterSpec(n_nodes=N_RANKS))
    world = World(cluster, N_RANKS)
    system = FenixSystem(world, n_spares=0, spare_policy="shrink")
    cfg = HeatdisConfig(local_rows=TOTAL_ROWS // N_RANKS, cols=COLS,
                        modeled_bytes_per_rank=64e6, n_iters=N_ITERS)
    results = {}
    main = make_elastic_heatdis_main(
        cfg, cluster, TOTAL_ROWS, N_RANKS, CKPT,
        failure_plan=plan, results=results,
    )
    for r in range(N_RANKS):
        world.spawn(
            r,
            system.run(world.context(r), main),
            failure_plan=plan,
        )
    cluster.engine.run()
    world.raise_job_errors()
    return results, world, system


def main() -> None:
    print(f"{N_RANKS} ranks, ZERO spares; rank 1 dies at iteration 17")
    plan = IterationFailure([(1, 17)])
    results, world, system = run(plan)
    for rank, out in sorted(results.items()):
        lo, hi = out["range"]
        print(f"  rank {rank}: owns rows [{lo},{hi}) "
              f"({hi - lo} rows after rebalancing)")
    print(f"communicator shrank to {system.resilient_comm.size} ranks; "
          f"dead: {sorted(world.dead)}")

    grid = gather_elastic(results, TOTAL_ROWS, COLS)
    cfg = HeatdisConfig(local_rows=TOTAL_ROWS, cols=COLS, n_iters=N_ITERS)
    expected = heatdis_reference(cfg, 1, N_ITERS)
    assert np.array_equal(grid, expected)
    print("final grid is bit-identical to the fault-free reference ✓")


if __name__ == "__main__":
    main()
