#!/usr/bin/env python3
"""Compare every resilience strategy on the same workload (Figure 5 style).

Runs Heatdis at one data size under all six strategy columns of the
paper's Figure 5, with and without a failure, and prints the category
breakdown plus the failure cost -- the textual equivalent of one group of
the figure's stacked bars.

Run:  python examples/strategy_comparison.py [data_size] [n_ranks]
  e.g. python examples/strategy_comparison.py 256MB 8
"""

import sys

from repro.experiments.fig5_heatdis import (
    FIG5_STRATEGIES,
    format_fig5,
    run_fig5_cell,
)


def main() -> None:
    data_size = sys.argv[1] if len(sys.argv) > 1 else "256MB"
    n_ranks = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    cells = []
    for strategy in FIG5_STRATEGIES:
        print(f"running {strategy} ...", flush=True)
        cells.append(
            run_fig5_cell(
                strategy, data_size, n_ranks,
                with_failure=(strategy != "none"),
                pfs_servers=1,
            )
        )
    print()
    print(format_fig5(cells, title=f"Heatdis @ {data_size} x {n_ranks} ranks"))
    print("\nReading guide (the paper's Section VI-D):")
    print(" - kr_veloc ~ veloc: Kokkos Resilience manages VeloC for free;")
    print(" - fenix_* rows: same clean cost, far cheaper failures (no relaunch);")
    print(" - fenix_kr_imr: checkpoint_function grows with data, but no")
    print("   PFS congestion in app_mpi.")


if __name__ == "__main__":
    main()
