#!/usr/bin/env python3
"""Quickstart: the full resilience stack surviving a rank failure.

Builds a small simulated cluster, runs the Heatdis stencil under the
paper's integrated stack (Fenix process recovery + Kokkos-Resilience-style
control flow + VeloC asynchronous checkpointing), kills one rank about 95%
of the way between two checkpoints, and shows that the job finishes with
bit-exact results and without a relaunch.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.apps import HeatdisConfig
from repro.harness import run_heatdis_job
from repro.harness.report import HEATDIS_CATEGORIES, format_report_table
from repro.experiments import paper_env
from repro.sim import IterationFailure

N_RANKS = 4
CKPT_INTERVAL = 9  # 6 checkpoints over 60 iterations


def main() -> None:
    cfg = HeatdisConfig(
        local_rows=8,
        cols=16,
        modeled_bytes_per_rank=256e6,  # "256 MB per node"
        n_iters=60,
        work_multiplier=2000.0,
    )

    print("== clean run (no failures) ==")
    clean = run_heatdis_job(
        paper_env(N_RANKS + 1), "fenix_kr_veloc", N_RANKS, cfg, CKPT_INTERVAL
    )
    print(format_report_table([clean], HEATDIS_CATEGORIES))

    print("\n== failing run: rank 1 dies at iteration 44 ==")
    plan = IterationFailure.between_checkpoints(
        rank=1, checkpoint_interval=CKPT_INTERVAL, after_checkpoint=4
    )
    failed = run_heatdis_job(
        paper_env(N_RANKS + 1), "fenix_kr_veloc", N_RANKS, cfg,
        CKPT_INTERVAL, plan=plan,
    )
    print(format_report_table([failed], HEATDIS_CATEGORIES))
    print(f"\nattempts: {failed.attempts} (Fenix repaired in place, no relaunch)")
    print(f"failure cost: {failed.wall_time - clean.wall_time:.2f} s "
          f"(recompute {failed.category('recompute'):.2f} s, "
          f"data recovery {failed.category('data_recovery'):.2f} s)")

    for rank in range(N_RANKS):
        assert np.array_equal(
            clean.results[rank]["grid"], failed.results[rank]["grid"]
        )
    print("final grids are bit-identical to the failure-free run ✓")


if __name__ == "__main__":
    main()
