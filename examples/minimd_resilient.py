#!/usr/bin/env python3
"""MiniMD under the integrated stack: phases, view census, recovery.

Shows the three execution phases the paper measures (Force Compute /
Neighboring / Communicator), the automatic view census that Figure 7
reports (61 view objects -> 39 checkpointed / 3 aliases / 19 skipped),
and bit-exact recovery from a mid-run rank failure.

Run:  python examples/minimd_resilient.py
"""

import numpy as np

from repro.apps import MiniMDConfig
from repro.experiments.fig6_minimd import run_fig6_cell
from repro.experiments.fig7_views import format_fig7, run_fig7_census
from repro.harness.report import MINIMD_CATEGORIES, format_report_table


def main() -> None:
    print("== view census (Figure 7) ==")
    print(format_fig7(run_fig7_census([100, 400])))

    print("\n== resilient run with a failure at step 44 ==")
    cell = run_fig6_cell("fenix_kr_veloc", n_ranks=4, pfs_servers=1)
    print(format_report_table(
        [cell.clean, cell.failed], MINIMD_CATEGORIES,
        title="clean vs failed (same strategy)",
    ))
    print(f"failure cost: {cell.failure_cost:.2f} s")

    for rank in cell.clean.results:
        assert np.array_equal(
            cell.clean.results[rank]["x"], cell.failed.results[rank]["x"]
        ), f"rank {rank} positions diverged"
    print("post-recovery particle positions are bit-identical ✓")


if __name__ == "__main__":
    main()
