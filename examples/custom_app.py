#!/usr/bin/env python3
"""Building your own resilient application on the library's layers.

Everything the harness does for Heatdis/MiniMD can be wired by hand: this
example writes a small resilient Jacobi-like solver directly against the
public API -- cluster, world, Fenix system, VeloC service, and a
Kokkos-Resilience context -- following the paper's Figure 4 pattern, and
injects a failure.

Run:  python examples/custom_app.py
"""

import numpy as np

from repro.core import KRConfig, every_nth, make_context
from repro.fenix import FenixSystem, Role
from repro.kokkos import KokkosRuntime
from repro.mpi import SUM, World
from repro.sim import Cluster, ClusterSpec, IterationFailure
from repro.veloc import VeloCService

N_RANKS = 4
N_SPARES = 1
N_ITERS = 20
plan = IterationFailure([(2, 13)])  # rank 2 dies at iteration 13

cluster = Cluster(ClusterSpec(n_nodes=N_RANKS + N_SPARES))
world = World(cluster, N_RANKS + N_SPARES)
system = FenixSystem(world, n_spares=N_SPARES)
service = VeloCService(cluster)
config = KRConfig(backend="veloc", filter=every_nth(4))


def app_main(role, comm):
    """One rank's main, re-entered by Fenix after failures (Figure 4)."""
    ctx = comm.ctx
    state = ctx.user.get("state")
    if state is None or role is Role.RECOVERED:
        rt = KokkosRuntime()
        state = {"x": rt.view("x", shape=(8,)), "kr": None}
        ctx.user["state"] = state
    x = state["x"]
    if state["kr"] is None:
        state["kr"] = make_context(comm, config, cluster, veloc_service=service)
        state["kr"].set_role(role)
    kr = state["kr"]
    if role is Role.SURVIVOR:
        kr.reset(comm, role)  # the paper's extended reset

    latest = yield from kr.latest_version()
    if latest < 0 and role is not Role.INITIAL:
        x.fill(0.0)
    start = max(0, latest)

    for i in range(start, N_ITERS):
        plan.check(ctx.rank, i)

        def region(i=i):
            neighbor_sum = yield from comm.allreduce(float(x[0]) + 1.0, op=SUM)
            x.data[:] = 0.5 * x.data + 0.5 * (neighbor_sum / comm.size)

        recovered = not (yield from kr.checkpoint("solve", i, region))
        if recovered:
            print(f"  [t={cluster.engine.now:.4f}s] rank {comm.rank} "
                  f"({role.value}) restored iteration {i}")
    return (comm.rank, float(x[0]))


def rank_process(rank):
    result = yield from system.run(world.context(rank), app_main)
    if result is not None:
        print(f"  rank {result[0]} finished with x[0] = {result[1]:.6f}")


def main() -> None:
    print(f"{N_RANKS} ranks + {N_SPARES} spare; rank 2 dies at iteration 13")
    for r in range(world.n_ranks):
        world.spawn(r, rank_process(r), failure_plan=plan)
    cluster.engine.run()
    world.raise_job_errors()
    print(f"dead ranks: {sorted(world.dead)}; "
          f"repairs: {system.generation}; "
          f"simulated time: {cluster.engine.now:.4f}s")


if __name__ == "__main__":
    main()
