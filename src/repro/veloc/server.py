"""Per-node VeloC server: asynchronous scratch-to-PFS flushing.

One daemon process per node drains a FIFO of flush jobs.  Each job moves
the checkpoint's *modelled* bytes through the node NIC and the PFS I/O
servers in chunks (so application messages interleave between chunks
rather than stalling behind a full checkpoint), then records the version
as persisted.  This is the mechanism behind the paper's observation that
VeloC's checkpoint-function cost is tiny while the real cost surfaces as
network congestion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.sim.cluster import Cluster
from repro.sim.engine import Event
from repro.sim.node import Node
from repro.sim.resources import Store


@dataclass
class FlushJob:
    """One checkpoint version to persist for one rank.

    ``nbytes`` is what the flush *moves* (novel bytes under the
    incremental/dedup data path); ``stored_nbytes`` is the full logical
    size of the version, which is what a later recovery has to read back.
    """

    key: Tuple
    payload: Any
    nbytes: float
    done: Event
    stored_nbytes: float = 0.0


class VeloCServer:
    """The co-located checkpoint server for one node.

    With ``use_burst_buffer`` (and a cluster that has one), the flush is
    two-stage: scratch -> burst buffer (fast, clears the node quickly),
    then a background drain moves the object burst buffer -> PFS without
    touching the node again.  The ``done`` event fires at burst-buffer
    residency -- the point where the data survives the node's loss.
    """

    def __init__(
        self, cluster: Cluster, node: Node, use_burst_buffer: bool = False
    ) -> None:
        self.cluster = cluster
        self.node = node
        self.engine = cluster.engine
        self.use_burst_buffer = (
            use_burst_buffer and cluster.burst_buffer is not None
        )
        self.queue: Store = Store(self.engine, name=f"veloc.srv{node.index}.q")
        self.jobs_done = 0
        self.bytes_flushed = 0.0
        # content-addressed chunk index: digests of every chunk this node's
        # server has already accepted for persistence (any rank, any
        # version).  Chunks found here need no re-flush -- the dedup half
        # of the incremental data path.
        self._chunk_index: set = set()
        self.chunks_seen = 0
        self.chunks_deduped = 0
        self._proc = self.engine.process(
            self._run(), name=f"veloc.server{node.index}", daemon=True
        )

    def register_chunks(self, digests) -> int:
        """Register chunk content digests; returns how many were *novel*
        (not yet resident in the content-addressed store).  Idempotent per
        digest: re-offering a known chunk costs nothing."""
        novel = 0
        for digest in digests:
            self.chunks_seen += 1
            if digest in self._chunk_index:
                self.chunks_deduped += 1
            else:
                self._chunk_index.add(digest)
                novel += 1
        return novel

    def submit(
        self,
        key: Tuple,
        payload: Any,
        nbytes: float,
        stored_nbytes: float = None,
    ) -> Event:
        """Queue a flush; returns an event that succeeds when persisted."""
        done = self.engine.event(name=f"flush:{key}")
        self.queue.put(FlushJob(
            key=key, payload=payload, nbytes=nbytes, done=done,
            stored_nbytes=float(nbytes if stored_nbytes is None
                                else stored_nbytes),
        ))
        src = f"veloc.server{self.node.index}"
        # the enqueue side of the backlog: paired with flush_done, live
        # consumers (repro.live) integrate these into an exact
        # bytes-in-flight series without reading server internals
        self.cluster.trace.emit(
            self.engine.now, src, "flush_submit",
            key=key, nbytes=nbytes, backlog=self.backlog,
        )
        tel = self.engine.telemetry
        if tel.enabled:
            tel.instant(src, "veloc.submit", key=str(key), nbytes=nbytes)
            tel.set_gauge(f"{src}.backlog", self.backlog)
            tel.observe("veloc.flush.backlog", self.backlog)
        return done

    @property
    def backlog(self) -> int:
        return len(self.queue)

    def _run(self):
        pfs = self.cluster.pfs
        bb = self.cluster.burst_buffer
        src = f"veloc.server{self.node.index}"
        while True:
            job = yield from self.queue.get()
            tel = self.engine.telemetry
            target = bb if self.use_burst_buffer else pfs
            self.node.active_flushes += 1
            try:
                with tel.span(src, "veloc.flush",
                              key=str(job.key), nbytes=job.nbytes):
                    yield from target.write(
                        job.key, job.payload, job.nbytes, self.node
                    )
                    if job.stored_nbytes != job.nbytes:
                        # dedup moved fewer bytes than the version holds;
                        # a recovery still reads the full logical size
                        target._sizes[job.key] = float(job.stored_nbytes)
            finally:
                self.node.active_flushes -= 1
            if self.use_burst_buffer:
                self._start_drain(job)
            self.jobs_done += 1
            self.bytes_flushed += job.nbytes
            self.cluster.trace.emit(
                self.engine.now,
                src,
                "flush_done",
                key=job.key,
                nbytes=job.nbytes,
                tier="bb" if self.use_burst_buffer else "pfs",
            )
            if tel.enabled:
                tel.inc("veloc.flush.bytes", job.nbytes)
                tel.inc("veloc.flush.jobs")
                tel.set_gauge(f"{src}.backlog", self.backlog)
            if not job.done.triggered:
                job.done.succeed(None)

    def _start_drain(self, job: FlushJob) -> None:
        """Background burst-buffer -> PFS migration (fabric-side: costs
        PFS server time but no node NIC)."""
        cluster = self.cluster

        def drain():
            pfs = cluster.pfs
            tel = cluster.engine.telemetry
            # own track: the drain overlaps the server's next flush, and
            # concurrent spans must not share one source's nesting stack
            with tel.span(f"veloc.drain{self.node.index}", "veloc.drain",
                          key=str(job.key), nbytes=job.nbytes):
                remaining = float(job.nbytes)
                chunk_size = pfs.spec.chunk_bytes
                while remaining > 0:
                    piece = min(remaining, chunk_size)
                    server = pfs._pick_server()
                    yield server.request_lock()
                    try:
                        hold = server.latency + piece / server.bandwidth
                        server.busy_time += hold
                        server.bytes_moved += piece
                        yield cluster.engine.timeout(hold)
                    finally:
                        server.release_lock()
                    remaining -= piece
                pfs._objects[job.key] = job.payload
                pfs._sizes[job.key] = float(job.stored_nbytes or job.nbytes)
                pfs.bytes_written += float(job.nbytes)
            cluster.trace.emit(
                cluster.engine.now,
                f"veloc.server{self.node.index}",
                "drain_done",
                key=job.key,
            )
            if tel.enabled:
                tel.inc("veloc.drain.bytes", job.nbytes)

        cluster.engine.process(
            drain(), name=f"veloc.drain{self.node.index}", daemon=True
        )


class VeloCService:
    """Lazily creates one server per node of a cluster.

    Shared by all ranks co-located on a node, exactly like the real VeloC
    active-backend daemon.
    """

    def __init__(self, cluster: Cluster, use_burst_buffer: bool = False) -> None:
        self.cluster = cluster
        self.use_burst_buffer = use_burst_buffer
        self._servers: Dict[int, VeloCServer] = {}

    def server_for(self, node: Node) -> VeloCServer:
        server = self._servers.get(node.index)
        if server is None:
            server = VeloCServer(
                self.cluster, node, use_burst_buffer=self.use_burst_buffer
            )
            self._servers[node.index] = server
        return server

    @property
    def servers(self) -> Dict[int, VeloCServer]:
        return dict(self._servers)

    def total_backlog(self) -> int:
        return sum(s.backlog for s in self._servers.values())
