"""VeloC client API (per rank).

Mirrors the VeloC memory-registration interface: ``mem_protect`` regions,
``checkpoint`` versions, query restartable versions, ``recover``.  The
synchronous checkpoint path costs one local memory copy; persistence is
delegated to the node's :class:`~repro.veloc.server.VeloCServer`.

Fenix-integration hooks (the paper's Section V modifications):

- ``single`` (non-collective) mode: :meth:`restart_test` consults only
  local tiers and the caller reduces across ranks itself;
- :meth:`set_comm` / :meth:`set_rank`: replace the communicator and cached
  rank id after a communicator repair or shrink.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Set, Tuple

import numpy as np

from repro.kokkos.view import View
from repro.mpi.handle import CommHandle
from repro.sim.cluster import Cluster
from repro.sim.engine import Event
from repro.util.errors import ConfigError, ReproError
from repro.util.timing import CHECKPOINT_FUNCTION, DATA_RECOVERY
from repro.veloc.config import VeloCConfig
from repro.veloc.server import VeloCService
from repro.veloc.snapshot import ChunkedSnapshot, payload_array, snapshot_view


class VeloCError(ReproError):
    """Checkpoint/restart failure (missing version, bad region, ...)."""


class VeloCClient:
    """One rank's connection to the checkpoint system."""

    def __init__(
        self,
        ctx: Any,
        cluster: Cluster,
        service: VeloCService,
        config: VeloCConfig,
        comm: Optional[CommHandle] = None,
    ) -> None:
        if config.collective and comm is None:
            raise ConfigError("collective-mode VeloC requires a communicator")
        self.ctx = ctx
        self.cluster = cluster
        self.service = service
        self.config = config
        self.comm = comm
        #: the rank id used in checkpoint keys.  Under Fenix's in-place
        #: repair a replacement process adopts the failed rank's id and
        #: thereby finds its predecessor's checkpoints.
        self.veloc_rank = comm.rank if comm is not None else ctx.rank
        self._protected: Dict[int, View] = {}
        self._flushes: Dict[int, Event] = {}
        # cached sum of modelled protected bytes; invalidated by the
        # registration calls, not recomputed per checkpoint
        self._protected_nbytes: Optional[float] = None
        # previous version's snapshot per region: the copy-on-write base
        self._snapshots: Dict[int, ChunkedSnapshot] = {}
        #: cumulative modelled data-path volume (harness-level reporting)
        self.stats: Dict[str, float] = {
            "checkpoints": 0.0,
            "checkpoint_bytes": 0.0,
            "dirty_bytes": 0.0,
            "novel_bytes": 0.0,
        }
        ctx.user.setdefault("veloc.clients", []).append(self)

    # -- integration hooks ----------------------------------------------------

    def set_comm(self, comm: CommHandle) -> None:
        """Replace the communicator (after repair); refreshes the rank id."""
        self.comm = comm
        self.veloc_rank = comm.rank

    def set_rank(self, rank: int) -> None:
        """Directly update the cached rank id (shrunk-continuation case)."""
        self.veloc_rank = rank

    # -- region registration -----------------------------------------------------

    def mem_protect(self, region_id: int, view: View) -> None:
        """Register a memory region for checkpointing."""
        if region_id in self._protected and self._protected[region_id] is not view:
            raise ConfigError(f"region id {region_id} already protects another view")
        if region_id not in self._protected:
            self._protected_nbytes = None
        self._protected[region_id] = view

    def mem_unprotect(self, region_id: int) -> None:
        self._protected.pop(region_id, None)
        self._snapshots.pop(region_id, None)
        self._protected_nbytes = None

    def clear_protected(self) -> None:
        self._protected.clear()
        self._snapshots.clear()
        self._protected_nbytes = None

    @property
    def protected_regions(self) -> Dict[int, View]:
        return dict(self._protected)

    def protected_nbytes(self) -> float:
        if self._protected_nbytes is None:
            self._protected_nbytes = sum(
                v.modeled_nbytes for v in self._protected.values()
            )
        return self._protected_nbytes

    # -- keys -----------------------------------------------------------------------

    def _key(self, version: int) -> Tuple:
        return ("veloc", self.config.ckpt_name, int(version), self.veloc_rank)

    # -- checkpoint -------------------------------------------------------------------

    def _build_snapshot(self) -> Tuple[Dict[int, Any], float, float]:
        """Host-side snapshot of every protected region.

        Returns ``(snapshot, dirty_bytes, novel_bytes)`` in modelled
        bytes: ``dirty_bytes`` is what the synchronous memcpy moves (full
        size under the legacy full-copy path), ``novel_bytes`` what the
        background flush must persist after chunk dedup.
        """
        total = self.protected_nbytes()
        if not self.config.incremental:
            snapshot = {
                rid: view.copy_data() for rid, view in self._protected.items()
            }
            return snapshot, total, total
        dedup = self.config.dedup and self.config.flush_to_pfs
        server = (
            self.service.server_for(self.ctx.node) if dedup else None
        )
        snapshot: Dict[int, Any] = {}
        dirty_bytes = 0.0
        novel_bytes = 0.0
        for rid, view in self._protected.items():
            snap, fresh = snapshot_view(
                view, prev=self._snapshots.get(rid), hash_chunks=dedup
            )
            n = max(1, snap.n_chunks)
            dirty_frac = len(fresh) / n
            if server is not None:
                novel = server.register_chunks(
                    snap.digests[i] for i in fresh
                )
                novel_frac = novel / n
            else:
                novel_frac = dirty_frac
            dirty_bytes += view.modeled_nbytes * dirty_frac
            novel_bytes += view.modeled_nbytes * novel_frac
            view.clear_dirty()
            snapshot[rid] = snap
            self._snapshots[rid] = snap
        return snapshot, dirty_bytes, novel_bytes

    def checkpoint(self, version: int) -> Generator[Event, Any, None]:
        """Write version ``version`` of all protected regions.

        Synchronous cost: one memory copy of the modelled *dirty* bytes
        into node-local scratch (all bytes on the first version, after a
        restore, or with ``incremental=False``).  The PFS flush of the
        novel bytes is queued on the node server and proceeds in the
        background.
        """
        if not self._protected:
            raise VeloCError("checkpoint with no protected regions")
        engine = self.ctx.engine
        tel = engine.telemetry
        t0 = engine.now
        total = self.protected_nbytes()
        # the host-side copy happens before the modelled span opens: it is
        # harness wall-clock, not simulated time, and must not sit between
        # the span start and the memcpy timeout where profile attribution
        # would count it against the checkpoint function twice
        snapshot, dirty_bytes, novel_bytes = self._build_snapshot()
        with tel.span(f"veloc.rank{self.veloc_rank}", "veloc.checkpoint",
                      version=int(version), nbytes=total,
                      wrank=self.ctx.rank) as sp:
            if sp is not None:
                sp.fields["dirty_bytes"] = dirty_bytes
                sp.fields["novel_bytes"] = novel_bytes
                sp.fields["dirty_fraction"] = dirty_bytes / total if total else 0.0
                sp.fields["incremental"] = self.config.incremental
            yield engine.timeout(self.ctx.node.memcpy_time(dirty_bytes))
            key = self._key(version)
            self.ctx.node.scratch[key] = (snapshot, total)
            self._gc_scratch(version)
            if self.config.flush_to_pfs:
                server = self.service.server_for(self.ctx.node)
                self._flushes[int(version)] = server.submit(
                    key, (snapshot, total), novel_bytes, stored_nbytes=total
                )
        self.stats["checkpoints"] += 1
        self.stats["checkpoint_bytes"] += total
        self.stats["dirty_bytes"] += dirty_bytes
        self.stats["novel_bytes"] += novel_bytes
        dt = engine.now - t0
        self.cluster.trace.emit(
            engine.now,
            f"veloc.rank{self.veloc_rank}",
            "checkpoint",
            version=int(version),
            nbytes=total,
            dirty_bytes=dirty_bytes,
            seconds=dt,
        )
        self.ctx.account.charge(CHECKPOINT_FUNCTION, dt)
        if tel.enabled:
            rm = tel.rank_metrics(self.veloc_rank)
            rm.inc("veloc.checkpoint.count")
            rm.inc("veloc.checkpoint.bytes", total)
            rm.inc("veloc.checkpoint.dirty_bytes", dirty_bytes)
            rm.inc("veloc.checkpoint.novel_bytes", novel_bytes)
            rm.observe("veloc.checkpoint.latency", dt)
            rm.observe("veloc.checkpoint.nbytes", total)
            rm.observe("veloc.checkpoint.dirty_fraction",
                       dirty_bytes / total if total else 0.0)

    def _gc_scratch(self, latest_version: int) -> None:
        """Retain only the newest ``keep_versions`` scratch copies."""
        cutoff = int(latest_version) - self.config.keep_versions + 1
        stale = [
            key
            for key in self.ctx.node.scratch
            if isinstance(key, tuple)
            and len(key) == 4
            and key[0] == "veloc"
            and key[1] == self.config.ckpt_name
            and key[3] == self.veloc_rank
            and key[2] < cutoff
        ]
        for key in stale:
            del self.ctx.node.scratch[key]

    def flush_pending(self) -> List[int]:
        """Versions whose PFS flush has not completed yet."""
        return sorted(v for v, ev in self._flushes.items() if not ev.processed)

    def wait_flushes(self) -> Generator[Event, Any, None]:
        """Block until every queued flush has persisted."""
        pending = [ev for ev in self._flushes.values() if not ev.processed]
        if pending:
            tel = self.ctx.engine.telemetry
            with tel.span(f"veloc.rank{self.veloc_rank}", "veloc.flush_wait",
                          pending=len(pending), wrank=self.ctx.rank):
                yield self.ctx.engine.all_of(pending)

    # -- version queries --------------------------------------------------------------

    def local_versions(self) -> Set[int]:
        """Versions restorable by this rank without help: scratch + PFS."""
        found: Set[int] = set()
        key_sources = [self.ctx.node.scratch.keys(), self.cluster.pfs.keys()]
        if self.cluster.burst_buffer is not None:
            key_sources.append(self.cluster.burst_buffer.keys())
        for keys in key_sources:
            for key in keys:
                if (
                    isinstance(key, tuple)
                    and len(key) == 4
                    and key[0] == "veloc"
                    and key[1] == self.config.ckpt_name
                    and key[3] == self.veloc_rank
                ):
                    found.add(int(key[2]))
        return found

    def restart_test(self) -> "int | Generator[Event, Any, int]":
        """Latest restorable version, or -1.

        In ``single`` mode this is a plain local call (the caller reduces).
        In ``collective`` mode it is a generator performing the global
        intersection over the communicator -- the stock VeloC behaviour
        that breaks under communicator repair.
        """
        if not self.config.collective:
            local = self.local_versions()
            return max(local) if local else -1
        return self._restart_test_collective()

    def _restart_test_collective(self) -> Generator[Event, Any, int]:
        local = sorted(self.local_versions())
        all_sets = yield from self.comm.allgather(local)
        common = set(all_sets[0])
        for s in all_sets[1:]:
            common &= set(s)
        return max(common) if common else -1

    # -- recovery -----------------------------------------------------------------------

    def can_recover_locally(self, version: int) -> bool:
        return self._key(version) in self.ctx.node.scratch

    def recover(self, version: int) -> Generator[Event, Any, None]:
        """Restore all protected regions from ``version``.

        Survivors restore from node-local scratch (a memory copy);
        replacement ranks pull from the PFS (network + I/O-server cost),
        reproducing the paper's asymmetric recovery costs.
        """
        engine = self.ctx.engine
        tel = engine.telemetry
        t0 = engine.now
        key = self._key(version)
        bb = self.cluster.burst_buffer
        with tel.span(f"veloc.rank{self.veloc_rank}", "veloc.recover",
                      version=int(version), wrank=self.ctx.rank) as sp:
            if key in self.ctx.node.scratch:
                snapshot, total = self.ctx.node.scratch[key]
                yield engine.timeout(self.ctx.node.memcpy_time(total))
                source = "scratch"
            elif bb is not None and bb.exists(key):
                snapshot, total = yield from bb.read(key, self.ctx.node)
                self.ctx.node.scratch[key] = (snapshot, total)
                source = "bb"
            elif self.cluster.pfs.exists(key):
                snapshot, total = yield from self.cluster.pfs.read(
                    key, self.ctx.node
                )
                # refill scratch so subsequent failures restore locally
                self.ctx.node.scratch[key] = (snapshot, total)
                source = "pfs"
            else:
                raise VeloCError(
                    f"rank {self.veloc_rank}: no checkpoint version {version}"
                )
            if sp is not None:
                sp.fields["tier"] = source
            for rid, stored in snapshot.items():
                view = self._protected.get(rid)
                if view is None:
                    raise VeloCError(
                        f"rank {self.veloc_rank}: region {rid} in checkpoint "
                        "but not protected"
                    )
                # either format restores: plain ndarray (full-copy path)
                # or ChunkedSnapshot (incremental path).  load_data marks
                # the view fully dirty, so the next checkpoint after a
                # restore is a full copy by construction.
                view.load_data(payload_array(stored))
        self.cluster.trace.emit(
            engine.now,
            f"veloc.rank{self.veloc_rank}",
            "recover",
            version=int(version),
            tier=source,
        )
        dt = engine.now - t0
        self.ctx.account.charge(DATA_RECOVERY, dt)
        if tel.enabled:
            rm = tel.rank_metrics(self.veloc_rank)
            rm.inc(f"veloc.recover.{source}")
            rm.observe("veloc.recover.latency", dt)
