"""VeloC client API (per rank).

Mirrors the VeloC memory-registration interface: ``mem_protect`` regions,
``checkpoint`` versions, query restartable versions, ``recover``.  The
synchronous checkpoint path costs one local memory copy; persistence is
delegated to the node's :class:`~repro.veloc.server.VeloCServer`.

Fenix-integration hooks (the paper's Section V modifications):

- ``single`` (non-collective) mode: :meth:`restart_test` consults only
  local tiers and the caller reduces across ranks itself;
- :meth:`set_comm` / :meth:`set_rank`: replace the communicator and cached
  rank id after a communicator repair or shrink.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Set, Tuple

import numpy as np

from repro.kokkos.view import View
from repro.mpi.handle import CommHandle
from repro.sim.cluster import Cluster
from repro.sim.engine import Event
from repro.util.errors import ConfigError, ReproError
from repro.util.timing import CHECKPOINT_FUNCTION, DATA_RECOVERY
from repro.veloc.config import VeloCConfig
from repro.veloc.server import VeloCService


class VeloCError(ReproError):
    """Checkpoint/restart failure (missing version, bad region, ...)."""


class VeloCClient:
    """One rank's connection to the checkpoint system."""

    def __init__(
        self,
        ctx: Any,
        cluster: Cluster,
        service: VeloCService,
        config: VeloCConfig,
        comm: Optional[CommHandle] = None,
    ) -> None:
        if config.collective and comm is None:
            raise ConfigError("collective-mode VeloC requires a communicator")
        self.ctx = ctx
        self.cluster = cluster
        self.service = service
        self.config = config
        self.comm = comm
        #: the rank id used in checkpoint keys.  Under Fenix's in-place
        #: repair a replacement process adopts the failed rank's id and
        #: thereby finds its predecessor's checkpoints.
        self.veloc_rank = comm.rank if comm is not None else ctx.rank
        self._protected: Dict[int, View] = {}
        self._flushes: Dict[int, Event] = {}

    # -- integration hooks ----------------------------------------------------

    def set_comm(self, comm: CommHandle) -> None:
        """Replace the communicator (after repair); refreshes the rank id."""
        self.comm = comm
        self.veloc_rank = comm.rank

    def set_rank(self, rank: int) -> None:
        """Directly update the cached rank id (shrunk-continuation case)."""
        self.veloc_rank = rank

    # -- region registration -----------------------------------------------------

    def mem_protect(self, region_id: int, view: View) -> None:
        """Register a memory region for checkpointing."""
        if region_id in self._protected and self._protected[region_id] is not view:
            raise ConfigError(f"region id {region_id} already protects another view")
        self._protected[region_id] = view

    def mem_unprotect(self, region_id: int) -> None:
        self._protected.pop(region_id, None)

    def clear_protected(self) -> None:
        self._protected.clear()

    @property
    def protected_regions(self) -> Dict[int, View]:
        return dict(self._protected)

    def protected_nbytes(self) -> float:
        return sum(v.modeled_nbytes for v in self._protected.values())

    # -- keys -----------------------------------------------------------------------

    def _key(self, version: int) -> Tuple:
        return ("veloc", self.config.ckpt_name, int(version), self.veloc_rank)

    # -- checkpoint -------------------------------------------------------------------

    def checkpoint(self, version: int) -> Generator[Event, Any, None]:
        """Write version ``version`` of all protected regions.

        Synchronous cost: one memory copy of the modelled bytes into
        node-local scratch.  The PFS flush is queued on the node server and
        proceeds in the background.
        """
        if not self._protected:
            raise VeloCError("checkpoint with no protected regions")
        engine = self.ctx.engine
        tel = engine.telemetry
        t0 = engine.now
        total = self.protected_nbytes()
        with tel.span(f"veloc.rank{self.veloc_rank}", "veloc.checkpoint",
                      version=int(version), nbytes=total,
                      wrank=self.ctx.rank):
            snapshot = {
                rid: view.copy_data() for rid, view in self._protected.items()
            }
            yield engine.timeout(self.ctx.node.memcpy_time(total))
            key = self._key(version)
            self.ctx.node.scratch[key] = (snapshot, total)
            self._gc_scratch(version)
            if self.config.flush_to_pfs:
                server = self.service.server_for(self.ctx.node)
                self._flushes[int(version)] = server.submit(
                    key, (snapshot, total), total
                )
        self.cluster.trace.emit(
            engine.now,
            f"veloc.rank{self.veloc_rank}",
            "checkpoint",
            version=int(version),
            nbytes=total,
        )
        dt = engine.now - t0
        self.ctx.account.charge(CHECKPOINT_FUNCTION, dt)
        if tel.enabled:
            rm = tel.rank_metrics(self.veloc_rank)
            rm.inc("veloc.checkpoint.count")
            rm.inc("veloc.checkpoint.bytes", total)
            rm.observe("veloc.checkpoint.latency", dt)
            rm.observe("veloc.checkpoint.nbytes", total)

    def _gc_scratch(self, latest_version: int) -> None:
        """Retain only the newest ``keep_versions`` scratch copies."""
        cutoff = int(latest_version) - self.config.keep_versions + 1
        stale = [
            key
            for key in self.ctx.node.scratch
            if isinstance(key, tuple)
            and len(key) == 4
            and key[0] == "veloc"
            and key[1] == self.config.ckpt_name
            and key[3] == self.veloc_rank
            and key[2] < cutoff
        ]
        for key in stale:
            del self.ctx.node.scratch[key]

    def flush_pending(self) -> List[int]:
        """Versions whose PFS flush has not completed yet."""
        return sorted(v for v, ev in self._flushes.items() if not ev.processed)

    def wait_flushes(self) -> Generator[Event, Any, None]:
        """Block until every queued flush has persisted."""
        pending = [ev for ev in self._flushes.values() if not ev.processed]
        if pending:
            tel = self.ctx.engine.telemetry
            with tel.span(f"veloc.rank{self.veloc_rank}", "veloc.flush_wait",
                          pending=len(pending), wrank=self.ctx.rank):
                yield self.ctx.engine.all_of(pending)

    # -- version queries --------------------------------------------------------------

    def local_versions(self) -> Set[int]:
        """Versions restorable by this rank without help: scratch + PFS."""
        found: Set[int] = set()
        key_sources = [self.ctx.node.scratch.keys(), self.cluster.pfs.keys()]
        if self.cluster.burst_buffer is not None:
            key_sources.append(self.cluster.burst_buffer.keys())
        for keys in key_sources:
            for key in keys:
                if (
                    isinstance(key, tuple)
                    and len(key) == 4
                    and key[0] == "veloc"
                    and key[1] == self.config.ckpt_name
                    and key[3] == self.veloc_rank
                ):
                    found.add(int(key[2]))
        return found

    def restart_test(self) -> "int | Generator[Event, Any, int]":
        """Latest restorable version, or -1.

        In ``single`` mode this is a plain local call (the caller reduces).
        In ``collective`` mode it is a generator performing the global
        intersection over the communicator -- the stock VeloC behaviour
        that breaks under communicator repair.
        """
        if not self.config.collective:
            local = self.local_versions()
            return max(local) if local else -1
        return self._restart_test_collective()

    def _restart_test_collective(self) -> Generator[Event, Any, int]:
        local = sorted(self.local_versions())
        all_sets = yield from self.comm.allgather(local)
        common = set(all_sets[0])
        for s in all_sets[1:]:
            common &= set(s)
        return max(common) if common else -1

    # -- recovery -----------------------------------------------------------------------

    def can_recover_locally(self, version: int) -> bool:
        return self._key(version) in self.ctx.node.scratch

    def recover(self, version: int) -> Generator[Event, Any, None]:
        """Restore all protected regions from ``version``.

        Survivors restore from node-local scratch (a memory copy);
        replacement ranks pull from the PFS (network + I/O-server cost),
        reproducing the paper's asymmetric recovery costs.
        """
        engine = self.ctx.engine
        tel = engine.telemetry
        t0 = engine.now
        key = self._key(version)
        bb = self.cluster.burst_buffer
        with tel.span(f"veloc.rank{self.veloc_rank}", "veloc.recover",
                      version=int(version), wrank=self.ctx.rank) as sp:
            if key in self.ctx.node.scratch:
                snapshot, total = self.ctx.node.scratch[key]
                yield engine.timeout(self.ctx.node.memcpy_time(total))
                source = "scratch"
            elif bb is not None and bb.exists(key):
                snapshot, total = yield from bb.read(key, self.ctx.node)
                self.ctx.node.scratch[key] = (snapshot, total)
                source = "bb"
            elif self.cluster.pfs.exists(key):
                snapshot, total = yield from self.cluster.pfs.read(
                    key, self.ctx.node
                )
                # refill scratch so subsequent failures restore locally
                self.ctx.node.scratch[key] = (snapshot, total)
                source = "pfs"
            else:
                raise VeloCError(
                    f"rank {self.veloc_rank}: no checkpoint version {version}"
                )
            if sp is not None:
                sp.fields["tier"] = source
            for rid, array in snapshot.items():
                view = self._protected.get(rid)
                if view is None:
                    raise VeloCError(
                        f"rank {self.veloc_rank}: region {rid} in checkpoint "
                        "but not protected"
                    )
                view.load_data(array)
        self.cluster.trace.emit(
            engine.now,
            f"veloc.rank{self.veloc_rank}",
            "recover",
            version=int(version),
            tier=source,
        )
        dt = engine.now - t0
        self.ctx.account.charge(DATA_RECOVERY, dt)
        if tel.enabled:
            rm = tel.rank_metrics(self.veloc_rank)
            rm.inc(f"veloc.recover.{source}")
            rm.observe("veloc.recover.latency", dt)
