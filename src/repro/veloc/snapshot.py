"""Copy-on-write chunked snapshots for the incremental VeloC data path.

A :class:`ChunkedSnapshot` is one protected region's checkpoint image,
stored as a list of fixed-size flat chunks.  Building version *v+1* from
version *v* copies only the chunks the view reports dirty; clean chunks
are shared **by reference** with the previous snapshot's chunk objects, so
steady-state host cost scales with the dirty fraction, not the region
size (the ReStore-style incremental store).  Every snapshot is still
self-contained -- :meth:`ChunkedSnapshot.materialize` reassembles the full
array from whatever mix of fresh and shared chunks it holds -- so restore
correctness never depends on which chunks were deduplicated or shared.

Legacy full-copy snapshots remain plain ndarrays; :func:`payload_array`
accepts both forms, which keeps old scratch/PFS payloads restorable.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Tuple

import numpy as np

from repro.kokkos.view import View


class ChunkedSnapshot:
    """An immutable chunked image of one view's contents."""

    __slots__ = ("shape", "dtype", "chunk_elems", "chunks", "digests", "nbytes")

    def __init__(
        self,
        shape,
        dtype,
        chunk_elems: int,
        chunks: List[np.ndarray],
        digests: Optional[List[Optional[bytes]]],
        nbytes: float,
    ) -> None:
        self.shape = tuple(shape)
        self.dtype = dtype
        self.chunk_elems = int(chunk_elems)
        self.chunks = chunks
        self.digests = digests
        #: real bytes of the full region (not just the fresh chunks)
        self.nbytes = float(nbytes)

    @property
    def n_chunks(self) -> int:
        return len(self.chunks)

    def compatible_with(self, view: View) -> bool:
        """Whether this snapshot can serve as the COW base for ``view``."""
        return (
            self.shape == view.shape
            and self.dtype == view.dtype
            and self.chunk_elems == view.chunk_elems
        )

    def materialize(self) -> np.ndarray:
        """Reassemble the full array (always possible: chunk objects are
        shared across versions, never elided)."""
        flat = np.concatenate(self.chunks) if self.chunks else np.empty(
            0, dtype=self.dtype
        )
        return flat.reshape(self.shape)


def snapshot_view(
    view: View,
    prev: Optional[ChunkedSnapshot] = None,
    hash_chunks: bool = False,
) -> Tuple[ChunkedSnapshot, List[int]]:
    """Snapshot ``view``, sharing clean chunks with ``prev`` when possible.

    Chunks listed dirty by the view (or every chunk, when ``prev`` is
    absent/incompatible or the view is conservative) are copied fresh;
    the rest alias ``prev``'s chunk objects.  With ``hash_chunks`` each
    chunk also carries its blake2b-128 content digest (clean chunks reuse
    the previous digest) for the server's content-addressed store.

    Returns ``(snapshot, fresh)`` where ``fresh`` lists the chunk indices
    that were actually copied -- what the incremental memcpy cost model
    charges for.
    """
    if not view.chunkable:
        # non-chunk-addressable buffer: single full chunk, flattened copy
        flat = view.copy_data().reshape(-1)
        digests = None
        if hash_chunks:
            digests = [hashlib.blake2b(flat.tobytes(), digest_size=16).digest()]
        snap = ChunkedSnapshot(
            view.shape, view.dtype, max(1, flat.size), [flat],
            digests, view.nbytes,
        )
        return snap, [0]
    n = view.n_chunks
    cow = prev is not None and prev.compatible_with(view) and prev.n_chunks == n
    fresh = sorted(view.dirty_chunks()) if cow else list(range(n))
    fresh_set = set(fresh)
    chunks: List[np.ndarray] = []
    digests: Optional[List[Optional[bytes]]] = [] if hash_chunks else None
    for i in range(n):
        if i in fresh_set:
            chunks.append(view.chunk_array(i).copy())
            if digests is not None:
                digests.append(view.chunk_hash(i))
        else:
            chunks.append(prev.chunks[i])
            if digests is not None:
                digests.append(
                    prev.digests[i]
                    if prev.digests is not None
                    else view.chunk_hash(i)
                )
    snap = ChunkedSnapshot(
        view.shape, view.dtype, view.chunk_elems, chunks, digests, view.nbytes
    )
    return snap, fresh


def payload_array(obj) -> np.ndarray:
    """The full ndarray behind a stored region payload (either format)."""
    if isinstance(obj, ChunkedSnapshot):
        return obj.materialize()
    return np.asarray(obj)
