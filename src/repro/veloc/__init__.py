"""VeloC analogue: multi-tier asynchronous checkpoint/restart.

Reproduces the architecture the paper measures (Section III, VI-C):

- the **synchronous** phase of a checkpoint is a copy of the protected
  regions into node-local scratch ("a filesystem folder mapped to local
  memory ... just a memory copy of the application's data");
- a **co-located server** per node then flushes scratch to the parallel
  filesystem *asynchronously*, contending with application traffic on the
  node's NIC and with other nodes on the PFS I/O servers -- the source of
  the "App MPI" overhead in Figure 5;
- restart queries resolve the best available version, preferring local
  scratch (survivors restore locally; only failed ranks pull from the
  PFS -- Section VI-D2).

Two initialization modes match the paper's Section V discussion:
``collective`` (VeloC coordinates over its communicator to find the best
*globally complete* version) and ``single`` (non-collective; the caller --
in the paper, the modified Kokkos Resilience -- performs the reduction
itself).  Only ``single`` mode composes with Fenix process recovery, which
is exactly the integration change the paper had to make.
"""

from repro.veloc.config import VeloCConfig
from repro.veloc.client import VeloCClient
from repro.veloc.server import VeloCServer, VeloCService

__all__ = ["VeloCConfig", "VeloCClient", "VeloCServer", "VeloCService"]
