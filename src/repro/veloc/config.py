"""VeloC configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigError

MODE_COLLECTIVE = "collective"
MODE_SINGLE = "single"


@dataclass(frozen=True)
class VeloCConfig:
    """Client/server configuration.

    Attributes:
        mode: ``"collective"`` -- VeloC itself reduces over its
            communicator to find the globally best checkpoint (the default
            VeloC behaviour, incompatible with communicator repair);
            ``"single"`` -- non-collective, the integration layer performs
            the reduction (the mode the paper adds to Kokkos Resilience).
        ckpt_name: logical checkpoint-set name.
        flush_to_pfs: whether the server flushes scratch to persistent
            storage (disabling gives a scratch-only configuration for
            tests).  Which persistent tier the flush targets -- PFS
            directly, or burst buffer with background drain -- is a
            deployment property of the :class:`~repro.veloc.server.VeloCService`.
        keep_versions: how many versions to retain per tier (older ones
            are garbage-collected after a successful flush).
        incremental: copy-on-write incremental snapshots -- only chunks
            the view reports dirty are copied (and charged) per version;
            clean chunks are shared with the previous version.  ``False``
            restores the original full-copy data path, byte- and
            cost-identical to the pre-incremental implementation.
        dedup: content-addressed chunk dedup on the node server -- chunks
            whose blake2b digest is already resident (any rank, any
            version) are not re-flushed to persistent storage.  Only
            meaningful with ``incremental=True``.
    """

    mode: str = MODE_COLLECTIVE
    ckpt_name: str = "ckpt"
    flush_to_pfs: bool = True
    keep_versions: int = 2
    incremental: bool = True
    dedup: bool = True

    def __post_init__(self) -> None:
        if self.mode not in (MODE_COLLECTIVE, MODE_SINGLE):
            raise ConfigError(f"unknown VeloC mode {self.mode!r}")
        if self.keep_versions < 1:
            raise ConfigError("keep_versions must be >= 1")
        if self.dedup and not self.incremental:
            raise ConfigError("dedup requires incremental snapshots")

    @property
    def collective(self) -> bool:
        return self.mode == MODE_COLLECTIVE
