"""Parallel dispatch patterns: parallel_for / parallel_reduce / parallel_scan.

Execution is synchronous on the host (see :mod:`repro.kokkos.space`); the
value of reproducing the dispatch API is that applications are written
against Kokkos idioms -- the same property that lets Kokkos Resilience
wrap whole iteration bodies without understanding them.

Functors receive indices exactly as in Kokkos: ``parallel_for(n, f)``
calls ``f(i)``; an :class:`MDRangePolicy` calls ``f(i, j, ...)``;
``parallel_reduce`` additionally folds a value with an optional joiner.

Performance note (per the repo's numpy guidance): per-index functors are
for small index spaces and tests.  Hot kernels in :mod:`repro.apps` use
vectorized numpy on the views directly, which is the Python analogue of a
fused Kokkos kernel.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Optional, Tuple, Union

from repro.util.errors import ConfigError


class RangePolicy:
    """1-D iteration range [begin, end)."""

    def __init__(self, begin: int, end: Optional[int] = None) -> None:
        if end is None:
            begin, end = 0, begin
        if end < begin:
            raise ConfigError(f"empty-or-negative range [{begin}, {end})")
        self.begin = int(begin)
        self.end = int(end)

    def indices(self) -> Iterable[int]:
        return range(self.begin, self.end)

    def __len__(self) -> int:
        return self.end - self.begin


class MDRangePolicy:
    """Multi-dimensional iteration range (row-major order)."""

    def __init__(self, *ranges: Tuple[int, int]) -> None:
        if not ranges:
            raise ConfigError("MDRangePolicy needs at least one dimension")
        self.ranges = [(int(b), int(e)) for b, e in ranges]
        for b, e in self.ranges:
            if e < b:
                raise ConfigError(f"bad dimension range [{b}, {e})")

    def indices(self) -> Iterable[Tuple[int, ...]]:
        return itertools.product(*(range(b, e) for b, e in self.ranges))

    def __len__(self) -> int:
        n = 1
        for b, e in self.ranges:
            n *= e - b
        return n


Policy = Union[int, RangePolicy, MDRangePolicy]


def _as_policy(policy: Policy) -> Union[RangePolicy, MDRangePolicy]:
    if isinstance(policy, (RangePolicy, MDRangePolicy)):
        return policy
    return RangePolicy(int(policy))


def parallel_for(policy: Policy, functor: Callable, label: str = "") -> None:
    """Execute ``functor`` over every index of ``policy``."""
    pol = _as_policy(policy)
    if isinstance(pol, MDRangePolicy):
        for idx in pol.indices():
            functor(*idx)
    else:
        for i in pol.indices():
            functor(i)


def parallel_reduce(
    policy: Policy,
    functor: Callable,
    init: Any = 0.0,
    joiner: Optional[Callable[[Any, Any], Any]] = None,
    label: str = "",
) -> Any:
    """Fold ``functor(i)`` contributions over the policy's index space.

    ``functor`` returns its contribution for each index (the Pythonic
    rendering of Kokkos's update-reference convention); ``joiner`` defaults
    to addition.
    """
    pol = _as_policy(policy)
    join = joiner if joiner is not None else (lambda a, b: a + b)
    acc = init
    if isinstance(pol, MDRangePolicy):
        for idx in pol.indices():
            acc = join(acc, functor(*idx))
    else:
        for i in pol.indices():
            acc = join(acc, functor(i))
    return acc


def parallel_scan(
    policy: Policy,
    functor: Callable[[int, Any, bool], Any],
    init: Any = 0.0,
    label: str = "",
) -> Any:
    """Inclusive scan following Kokkos's two-phase functor convention:
    ``functor(i, partial, is_final)`` returns the contribution at ``i`` and
    observes the exclusive prefix in ``partial`` when ``is_final``.

    Returns the total.
    """
    pol = _as_policy(policy)
    if isinstance(pol, MDRangePolicy):
        raise ConfigError("parallel_scan supports 1-D policies only")
    acc = init
    for i in pol.indices():
        acc = acc + functor(i, acc, True)
    return acc
