"""Per-runtime view registry with alias and duplicate tracking.

The registry answers the question Kokkos Resilience needs answered at every
checkpoint region: *given the views reachable from this lambda, which must
actually be written?*  Three classes come out of the census, matching
Figure 7 of the paper:

- **checkpointed** -- distinct buffers that must be saved;
- **alias** -- views the user declared to share logical content with
  another view (e.g. the time-step swap buffer in Heatdis/MiniMD), never
  saved;
- **skipped** -- additional view objects over a buffer that is already
  being saved (duplicate captures across nested functions), detected
  automatically by buffer identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.kokkos.view import View
from repro.util.errors import ConfigError

# Global registration-generation counter.  Bumped whenever *any* registry's
# membership or alias set changes; cheap consumers (the KR context's
# memoized view discovery) compare generations instead of re-walking
# closures.  A single process hosts many per-rank registries, so one
# process-wide counter is the conservative, always-correct invalidation
# signal.
_GENERATION = 0


def registry_generation() -> int:
    """Current process-wide registry generation (see module note above)."""
    return _GENERATION


def _bump_generation() -> None:
    global _GENERATION
    _GENERATION += 1


@dataclass
class ViewCensus:
    """Classification of a set of views for one checkpoint region."""

    checkpointed: List[View] = field(default_factory=list)
    aliases: List[View] = field(default_factory=list)
    skipped: List[View] = field(default_factory=list)

    @property
    def total_views(self) -> int:
        return len(self.checkpointed) + len(self.aliases) + len(self.skipped)

    def bytes_by_class(self) -> Dict[str, float]:
        return {
            "checkpointed": sum(v.modeled_nbytes for v in self.checkpointed),
            "alias": sum(v.modeled_nbytes for v in self.aliases),
            "skipped": sum(v.modeled_nbytes for v in self.skipped),
        }

    def fractions_by_class(self) -> Dict[str, float]:
        sizes = self.bytes_by_class()
        total = sum(sizes.values())
        if total <= 0:
            return {k: 0.0 for k in sizes}
        return {k: v / total for k, v in sizes.items()}


class ViewRegistry:
    """All views created under one Kokkos runtime (one rank)."""

    def __init__(self) -> None:
        self._views: List[View] = []
        self._alias_labels: Set[str] = set()

    def register(self, view: View) -> None:
        self._views.append(view)
        _bump_generation()

    def unregister(self, view: View) -> None:
        try:
            self._views.remove(view)
        except ValueError:
            pass
        else:
            _bump_generation()

    def __len__(self) -> int:
        return len(self._views)

    def __iter__(self):
        return iter(self._views)

    def find(self, label: str) -> Optional[View]:
        for view in self._views:
            if view.label == label:
                return view
        return None

    # -- alias management ---------------------------------------------------

    def declare_alias(self, alias_label: str, of_label: str) -> None:
        """Declare that ``alias_label`` holds the same logical content as
        ``of_label`` and must not be checkpointed (the paper: "developers
        can simply list the two view labels as being aliases")."""
        if alias_label == of_label:
            raise ConfigError("a view cannot alias itself")
        self._alias_labels.add(alias_label)
        _bump_generation()

    def is_alias(self, view: View) -> bool:
        return view.label in self._alias_labels

    @property
    def alias_labels(self) -> Set[str]:
        return set(self._alias_labels)

    # -- census ----------------------------------------------------------------

    def census(self, views: Optional[Iterable[View]] = None) -> ViewCensus:
        """Classify ``views`` (default: every registered view) into
        checkpointed / alias / skipped, in discovery order."""
        out = ViewCensus()
        seen_buffers: Set[int] = set()
        for view in views if views is not None else self._views:
            if self.is_alias(view):
                out.aliases.append(view)
                continue
            buf = view.buffer_id()
            if buf in seen_buffers:
                out.skipped.append(view)
                continue
            seen_buffers.add(buf)
            out.checkpointed.append(view)
        return out

    def clear(self) -> None:
        self._views.clear()
        self._alias_labels.clear()
        _bump_generation()
