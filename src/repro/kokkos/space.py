"""Execution and memory spaces.

Real Kokkos dispatches to host or device backends.  The paper leaves
heterogeneous resilience largely unexplored ("The heterogeneous support
from Kokkos Resilience is not explored in this work") but its Figure 3
reserves the "Heterogenous Device Data Management" box and its future work
calls for it, so the space abstraction here is real: views carry a memory
space, and the control-flow layer stages device-resident views through the
host (charging the node's device-link bandwidth) around checkpoints and
restores.

Execution itself remains synchronous on the host -- the *data movement*
is what matters for checkpoint cost.
"""

from __future__ import annotations


#: memory-space identifiers carried by views
HOST = "host"
DEVICE = "device"


class ExecutionSpace:
    """Base execution space: executes functors immediately on the host."""

    name = "Unknown"
    memory_space = HOST

    def fence(self) -> None:
        """Kokkos fence: a no-op for synchronous host execution, kept so
        calling code matches the real API."""


class HostSpace(ExecutionSpace):
    """Serial host execution (the space the paper's evaluation uses)."""

    name = "Host"
    memory_space = HOST


class DeviceSpace(ExecutionSpace):
    """A device (GPU-like) space: views default to device memory and
    checkpoints must stage their data across the device link."""

    name = "Device"
    memory_space = DEVICE


#: the space used when none is specified
DefaultExecutionSpace = HostSpace
