"""Kokkos analogue: labelled views, parallel dispatch, view registry.

The paper's control-flow layer (Kokkos Resilience) leans on three Kokkos
properties, all reproduced here:

1. **Views** -- labelled, reference-counted array handles
   (:class:`View`); labels and buffer identity are what let Kokkos
   Resilience find, deduplicate and alias-exclude checkpoint data
   (Figure 7's Checkpointed / Alias / Skipped census).
2. **Pattern-based parallelism** -- ``parallel_for`` / ``parallel_reduce``
   over range policies; our Heatdis port uses these exactly where the
   paper's Kokkos port does.
3. **A per-process runtime** -- :class:`KokkosRuntime` holds the view
   registry; in the simulator each MPI rank owns one (matching one
   process = one Kokkos runtime on the real system).
"""

from repro.kokkos.space import (
    DefaultExecutionSpace,
    DeviceSpace,
    ExecutionSpace,
    HostSpace,
)
from repro.kokkos.view import View, deep_copy
from repro.kokkos.registry import ViewCensus, ViewRegistry
from repro.kokkos.parallel import (
    MDRangePolicy,
    RangePolicy,
    parallel_for,
    parallel_reduce,
    parallel_scan,
)
from repro.kokkos.runtime import KokkosRuntime

__all__ = [
    "ExecutionSpace",
    "HostSpace",
    "DeviceSpace",
    "DefaultExecutionSpace",
    "View",
    "deep_copy",
    "ViewCensus",
    "ViewRegistry",
    "RangePolicy",
    "MDRangePolicy",
    "parallel_for",
    "parallel_reduce",
    "parallel_scan",
    "KokkosRuntime",
]
