"""Labelled array views.

A :class:`View` wraps a numpy array with a label and registry membership.
Two properties matter to the resilience layers:

- **buffer identity** (:meth:`View.buffer_id`): views created as slices or
  shallow copies of another view share the underlying buffer; Kokkos
  Resilience uses this to skip double-checkpointing (Figure 7's "Skipped"
  class);
- **modelled size** (:attr:`View.modeled_nbytes`): experiments model
  paper-scale data (e.g. 1 GB/node) over laptop-scale real arrays; the
  modelled size drives every checkpoint/transfer cost while the real array
  keeps numerical correctness.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple, Union

import numpy as np

from repro.util.errors import ConfigError


class View:
    """A labelled, registry-tracked ndarray wrapper."""

    def __init__(
        self,
        label: str,
        shape: Optional[Union[int, Tuple[int, ...]]] = None,
        dtype: Any = np.float64,
        data: Optional[np.ndarray] = None,
        registry: Optional["Any"] = None,
        modeled_nbytes: Optional[float] = None,
        space: str = "host",
    ) -> None:
        if not label:
            raise ConfigError("views must be labelled")
        if (shape is None) == (data is None):
            raise ConfigError("View needs exactly one of shape= or data=")
        if space not in ("host", "device"):
            raise ConfigError(f"unknown memory space {space!r}")
        self.label = label
        if data is not None:
            arr = np.asarray(data)
        else:
            arr = np.zeros(shape, dtype=dtype)
        self.data: np.ndarray = arr
        self._modeled_nbytes = modeled_nbytes
        #: memory space ("host" or "device"); device views are staged
        #: through the host by the resilience layer around C/R operations
        self.space = space
        self.registry = registry
        if registry is not None:
            registry.register(self)

    @property
    def on_device(self) -> bool:
        return self.space == "device"

    # -- identity / sizing -------------------------------------------------

    def buffer_id(self) -> int:
        """Identity of the underlying memory buffer.

        Views sharing storage (subviews, shallow copies) report the same
        id, which is how duplicate captures are detected.
        """
        base = self.data
        while base.base is not None:
            base = base.base
        return id(base)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def nbytes(self) -> float:
        """Actual bytes held."""
        return float(self.data.nbytes)

    @property
    def modeled_nbytes(self) -> float:
        """Bytes this view *represents* in the experiment's cost model."""
        if self._modeled_nbytes is not None:
            return float(self._modeled_nbytes)
        return float(self.data.nbytes)

    @modeled_nbytes.setter
    def modeled_nbytes(self, value: Optional[float]) -> None:
        self._modeled_nbytes = value

    # -- subviews ------------------------------------------------------------

    def subview(self, index: Any, label: Optional[str] = None) -> "View":
        """A view on a slice of this view's buffer (shares storage)."""
        sliced = self.data[index]
        if not isinstance(sliced, np.ndarray):
            sliced = np.asarray(sliced)
        return View(
            label or f"{self.label}[sub]",
            data=sliced,
            registry=self.registry,
            space=self.space,
        )

    # -- array protocol -----------------------------------------------------------

    def __array__(self, dtype=None, copy=None):
        if dtype is not None:
            return self.data.astype(dtype, copy=bool(copy))
        if copy:
            return self.data.copy()
        return self.data

    def __getitem__(self, index):
        return self.data[index]

    def __setitem__(self, index, value):
        self.data[index] = value

    def __len__(self) -> int:
        return len(self.data)

    def fill(self, value) -> None:
        self.data.fill(value)

    def copy_data(self) -> np.ndarray:
        """A snapshot of the contents (used by checkpoint serialization)."""
        return self.data.copy()

    def load_data(self, array: np.ndarray) -> None:
        """Restore contents in place (shape/dtype must match)."""
        src = np.asarray(array)
        if src.shape != self.data.shape:
            raise ConfigError(
                f"view {self.label!r}: restore shape {src.shape} != {self.data.shape}"
            )
        np.copyto(self.data, src)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<View {self.label!r} shape={self.shape} dtype={self.dtype}>"


def deep_copy(dst: "View | np.ndarray", src: "View | np.ndarray | float") -> None:
    """Kokkos deep_copy: copy contents between views/arrays or broadcast a
    scalar into a view."""
    dst_arr = dst.data if isinstance(dst, View) else dst
    if isinstance(src, View):
        np.copyto(dst_arr, src.data)
    elif isinstance(src, np.ndarray):
        np.copyto(dst_arr, src)
    else:
        dst_arr.fill(src)
