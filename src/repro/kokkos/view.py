"""Labelled array views.

A :class:`View` wraps a numpy array with a label and registry membership.
Three properties matter to the resilience layers:

- **buffer identity** (:meth:`View.buffer_id`): views created as slices or
  shallow copies of another view share the underlying buffer; Kokkos
  Resilience uses this to skip double-checkpointing (Figure 7's "Skipped"
  class);
- **modelled size** (:attr:`View.modeled_nbytes`): experiments model
  paper-scale data (e.g. 1 GB/node) over laptop-scale real arrays; the
  modelled size drives every checkpoint/transfer cost while the real array
  keeps numerical correctness;
- **dirty tracking** (:meth:`View.dirty_chunks`): the buffer is split into
  fixed-size chunks and writes through the view API mark the chunks they
  touch, so the incremental VeloC data path copies and flushes only what
  changed since the previous checkpoint (ReStore-style incremental
  checkpointing).

Dirty-tracking contract (see docs/PERFORMANCE.md):

- writes through :meth:`__setitem__`, :meth:`fill`, :meth:`load_data`,
  :func:`deep_copy` and :meth:`mark_dirty` are tracked exactly;
- reading :attr:`View.data` hands out the raw ndarray, which the caller
  may mutate at any later time -- the view becomes *raw-exposed* and
  conservatively reports every chunk dirty from then on (the full-copy
  behaviour, never an under-report).  :meth:`reset_dirty_tracking` is the
  explicit opt-back-in for callers that guarantee no outstanding raw
  reference will write;
- creating a :meth:`subview` aliases storage both ways, so parent and
  child both become raw-exposed;
- constructing a view with ``data=`` transfers ownership of the array to
  the view (the Kokkos unmanaged-view convention): the caller must not
  keep writing through its own reference.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.util.errors import ConfigError

#: default dirty-tracking chunk size (bytes).  Small enough that partial
#: updates of megabyte-class arrays resolve to a useful dirty fraction,
#: large enough that per-chunk bookkeeping stays negligible.
DEFAULT_CHUNK_BYTES = 64 * 1024


class View:
    """A labelled, registry-tracked ndarray wrapper."""

    def __init__(
        self,
        label: str,
        shape: Optional[Union[int, Tuple[int, ...]]] = None,
        dtype: Any = np.float64,
        data: Optional[np.ndarray] = None,
        registry: Optional["Any"] = None,
        modeled_nbytes: Optional[float] = None,
        space: str = "host",
        chunk_bytes: Optional[int] = None,
    ) -> None:
        if not label:
            raise ConfigError("views must be labelled")
        if (shape is None) == (data is None):
            raise ConfigError("View needs exactly one of shape= or data=")
        if space not in ("host", "device"):
            raise ConfigError(f"unknown memory space {space!r}")
        if chunk_bytes is not None and chunk_bytes < 1:
            raise ConfigError("chunk_bytes must be positive")
        self.label = label
        if data is not None:
            arr = np.asarray(data)
        else:
            arr = np.zeros(shape, dtype=dtype)
        self._modeled_nbytes = modeled_nbytes
        #: memory space ("host" or "device"); device views are staged
        #: through the host by the resilience layer around C/R operations
        self.space = space
        #: dirty-tracking granularity for this view's buffer
        self.chunk_bytes = int(chunk_bytes or DEFAULT_CHUNK_BYTES)
        # -- dirty-tracking state (initialized before .data is assigned,
        #    because the data setter resets it) --
        self._dirty: set = set()
        self._all_dirty = True
        self._raw_exposed = False
        self._hash_cache: Dict[int, bytes] = {}
        self._data: np.ndarray = arr
        self.registry = registry
        if registry is not None:
            registry.register(self)

    @property
    def on_device(self) -> bool:
        return self.space == "device"

    # -- raw storage ---------------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The underlying ndarray.

        Handing out the raw array makes untracked writes possible, so the
        view conservatively becomes *raw-exposed*: every chunk reports
        dirty until :meth:`reset_dirty_tracking` asserts otherwise.
        """
        self._raw_exposed = True
        self._hash_cache.clear()
        return self._data

    @data.setter
    def data(self, array: np.ndarray) -> None:
        """Rebind the storage (e.g. the Heatdis swap); everything dirty."""
        self._data = array
        self.mark_dirty()

    # -- identity / sizing -------------------------------------------------

    def buffer_id(self) -> int:
        """Identity of the underlying memory buffer.

        Views sharing storage (subviews, shallow copies) report the same
        id, which is how duplicate captures are detected.

        Liveness: the returned id is ``id()`` of the *root* ndarray of the
        ``.base`` chain.  That root is kept alive by the chain itself --
        every numpy slice/reshape holds a strong reference to its base --
        so the id stays valid (and unambiguous) for as long as this view
        exists, even after the caller's own reference to the parent array
        has gone out of scope.  The id is only meaningful while the views
        being compared are alive; it must never be persisted.
        """
        base = self._data
        while base.base is not None:
            base = base.base
        return id(base)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._data.shape

    @property
    def dtype(self):
        return self._data.dtype

    @property
    def size(self) -> int:
        return self._data.size

    @property
    def nbytes(self) -> float:
        """Actual bytes held."""
        return float(self._data.nbytes)

    @property
    def modeled_nbytes(self) -> float:
        """Bytes this view *represents* in the experiment's cost model."""
        if self._modeled_nbytes is not None:
            return float(self._modeled_nbytes)
        return float(self._data.nbytes)

    @modeled_nbytes.setter
    def modeled_nbytes(self, value: Optional[float]) -> None:
        self._modeled_nbytes = value

    # -- chunked dirty tracking ----------------------------------------------

    @property
    def chunk_elems(self) -> int:
        """Elements per dirty-tracking chunk (at least one)."""
        itemsize = max(1, self._data.itemsize)
        return max(1, self.chunk_bytes // itemsize)

    @property
    def n_chunks(self) -> int:
        if self._data.size == 0:
            return 0
        return -(-self._data.size // self.chunk_elems)

    @property
    def chunkable(self) -> bool:
        """Whether the buffer can be chunk-addressed (C-contiguous)."""
        return bool(self._data.flags["C_CONTIGUOUS"]) and self._data.size > 0

    def _chunks_for_rows(self, start: int, stop: int) -> range:
        """Chunk indices covering rows ``[start, stop)`` of axis 0."""
        if self._data.ndim == 0 or self._data.size == 0:
            return range(0)
        row_elems = self._data.size // max(1, self._data.shape[0])
        first = (start * row_elems) // self.chunk_elems
        last_elem = stop * row_elems
        last = -(-last_elem // self.chunk_elems)
        return range(max(0, first), min(self.n_chunks, last))

    def mark_dirty(self, index: Any = None) -> None:
        """Record a write.  ``index`` is ``None`` (everything), an int, or
        a slice over axis 0; anything finer-grained than axis-0 addressing
        conservatively dirties every chunk the covered rows overlap."""
        if index is None or self._data.ndim == 0:
            self._all_dirty = True
            self._hash_cache.clear()
            return
        n_rows = self._data.shape[0]
        if isinstance(index, (int, np.integer)):
            i = int(index)
            if i < 0:
                i += n_rows
            chunks = self._chunks_for_rows(i, i + 1)
        elif isinstance(index, slice):
            start, stop, step = index.indices(n_rows)
            if step != 1:
                start, stop = 0, n_rows
            chunks = self._chunks_for_rows(start, stop)
        else:
            self._all_dirty = True
            self._hash_cache.clear()
            return
        for c in chunks:
            self._dirty.add(c)
            self._hash_cache.pop(c, None)

    def dirty_chunks(self) -> List[int]:
        """Chunk indices that may have changed since :meth:`clear_dirty`.

        Raw-exposed or non-chunkable views report every chunk (the
        conservative full-copy fallback).
        """
        if self._all_dirty or self._raw_exposed or not self.chunkable:
            return list(range(self.n_chunks))
        return sorted(self._dirty)

    @property
    def dirty_fraction(self) -> float:
        """Fraction of chunks currently dirty (1.0 when conservative)."""
        n = self.n_chunks
        if n == 0:
            return 0.0
        return len(self.dirty_chunks()) / n

    def clear_dirty(self) -> None:
        """Mark the current contents checkpointed.  A raw-exposed view
        stays conservative (the raw reference may still write)."""
        self._dirty.clear()
        self._all_dirty = False

    def reset_dirty_tracking(self) -> None:
        """Drop the raw-exposed flag and start tracking exactly again.

        Only call when no previously handed-out ``.data`` reference will
        be written through any more; the next checkpoint still copies
        everything (all chunks are marked dirty)."""
        self._raw_exposed = False
        self._dirty.clear()
        self._all_dirty = True
        self._hash_cache.clear()

    # -- chunk access / hashing ---------------------------------------------

    def chunk_slice(self, index: int) -> slice:
        """Flat-element slice of chunk ``index``."""
        ce = self.chunk_elems
        return slice(index * ce, min(self._data.size, (index + 1) * ce))

    def chunk_array(self, index: int) -> np.ndarray:
        """Chunk ``index`` as a flat array view (no copy)."""
        return self._data.reshape(-1)[self.chunk_slice(index)]

    def chunk_hash(self, index: int) -> bytes:
        """Content hash of chunk ``index`` (blake2b-128 over the bytes).

        Hashes of clean chunks are cached per chunk generation: a chunk's
        cache entry is invalidated when it is marked dirty, so steady-state
        verification/dedup only rehashes what changed.
        """
        cached = self._hash_cache.get(index)
        if cached is not None:
            return cached
        digest = hashlib.blake2b(
            self.chunk_array(index).tobytes(), digest_size=16
        ).digest()
        self._hash_cache[index] = digest
        return digest

    # -- subviews ------------------------------------------------------------

    def subview(self, index: Any, label: Optional[str] = None) -> "View":
        """A view on a slice of this view's buffer (shares storage).

        Storage is aliased both ways, so parent and child both fall back
        to conservative dirty tracking.
        """
        sliced = self._data[index]
        if not isinstance(sliced, np.ndarray):
            sliced = np.asarray(sliced)
        self._raw_exposed = True
        self._hash_cache.clear()
        child = View(
            label or f"{self.label}[sub]",
            data=sliced,
            registry=self.registry,
            space=self.space,
            chunk_bytes=self.chunk_bytes,
        )
        child._raw_exposed = True
        return child

    # -- array protocol -----------------------------------------------------------

    def __array__(self, dtype=None, copy=None):
        if dtype is not None:
            return self._data.astype(dtype, copy=bool(copy))
        if copy:
            return self._data.copy()
        # the raw buffer escapes: conservative tracking from here on
        self._raw_exposed = True
        self._hash_cache.clear()
        return self._data

    def __getitem__(self, index):
        result = self._data[index]
        if isinstance(result, np.ndarray) and result.base is not None:
            # a writable alias of the buffer escaped
            self._raw_exposed = True
            self._hash_cache.clear()
        return result

    def __setitem__(self, index, value):
        self._data[index] = value
        if isinstance(index, tuple) and index:
            self.mark_dirty(index[0])
        else:
            self.mark_dirty(index)

    def __len__(self) -> int:
        return len(self._data)

    def fill(self, value) -> None:
        self._data.fill(value)
        self.mark_dirty()

    def copy_data(self) -> np.ndarray:
        """A snapshot of the contents (used by checkpoint serialization)."""
        return self._data.copy()

    def load_data(self, array: np.ndarray) -> None:
        """Restore contents in place (shape/dtype must match).

        Everything is dirty afterwards: the first checkpoint after a
        restore is a full copy by construction.
        """
        src = np.asarray(array)
        if src.shape != self._data.shape:
            raise ConfigError(
                f"view {self.label!r}: restore shape {src.shape} != {self._data.shape}"
            )
        np.copyto(self._data, src)
        self.mark_dirty()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<View {self.label!r} shape={self.shape} dtype={self.dtype}>"


def deep_copy(dst: "View | np.ndarray", src: "View | np.ndarray | float") -> None:
    """Kokkos deep_copy: copy contents between views/arrays or broadcast a
    scalar into a view."""
    dst_arr = dst._data if isinstance(dst, View) else dst
    if isinstance(src, View):
        np.copyto(dst_arr, src._data)
    elif isinstance(src, np.ndarray):
        np.copyto(dst_arr, src)
    else:
        dst_arr.fill(src)
    if isinstance(dst, View):
        dst.mark_dirty()
