"""Per-rank Kokkos runtime: view factory + registry + execution space.

One real process has one Kokkos runtime; in the simulator one *rank* has
one :class:`KokkosRuntime`, typically stashed on its
:class:`repro.mpi.world.RankContext` by the application bootstrap.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple, Union

import numpy as np

from repro.kokkos.registry import ViewRegistry
from repro.kokkos.space import DefaultExecutionSpace, ExecutionSpace
from repro.kokkos.view import View


class KokkosRuntime:
    """Factory/owner for one rank's views."""

    def __init__(self, space: Optional[ExecutionSpace] = None) -> None:
        self.space = space if space is not None else DefaultExecutionSpace()
        self.registry = ViewRegistry()
        self._finalized = False

    def view(
        self,
        label: str,
        shape: Optional[Union[int, Tuple[int, ...]]] = None,
        dtype: Any = np.float64,
        data: Optional[np.ndarray] = None,
        modeled_nbytes: Optional[float] = None,
        space: Optional[str] = None,
        chunk_bytes: Optional[int] = None,
    ) -> View:
        """Create a registered view (``Kokkos::View`` analogue).

        ``space`` defaults to the runtime's execution space's memory
        space, like Kokkos' default memory space.  ``chunk_bytes``
        overrides the dirty-tracking granularity (see
        :data:`repro.kokkos.view.DEFAULT_CHUNK_BYTES`).
        """
        return View(
            label,
            shape=shape,
            dtype=dtype,
            data=data,
            registry=self.registry,
            modeled_nbytes=modeled_nbytes,
            space=space if space is not None else self.space.memory_space,
            chunk_bytes=chunk_bytes,
        )

    def declare_alias(self, alias_label: str, of_label: str) -> None:
        self.registry.declare_alias(alias_label, of_label)

    def fence(self) -> None:
        self.space.fence()

    def finalize(self) -> None:
        """Kokkos::finalize analogue: drop all views."""
        self.registry.clear()
        self._finalized = True

    @property
    def finalized(self) -> bool:
        return self._finalized
