"""Exemplar instrumented runs for the HTML report.

Campaign cells run in worker processes and hand back only aggregate
reports -- the span stream never crosses the pool boundary.  For the
report's embedded failure timeline and flame stacks we therefore run
*one* representative seeded-kill job per strategy in-process with full
telemetry, and embed its artifacts verbatim.  Deliberately small (a few
hundred simulated seconds) so report generation stays interactive.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

#: timeline rows embedded per exemplar (the HTML is self-contained, so
#: an unbounded timeline would bloat the artifact)
TIMELINE_LIMIT = 80


def collect_exemplars(
    strategies: Sequence[str],
    n_ranks: int = 4,
    n_iters: int = 30,
    ckpt_interval: int = 10,
    kill_rank: int = 2,
    n_spares: int = 1,
    seed: int = 20220906,
    timeline_limit: int = TIMELINE_LIMIT,
) -> Dict[str, Dict[str, str]]:
    """``{strategy: {"timeline": text, "folded": text}}`` for each
    strategy that can recover from a mid-run kill (``none`` is skipped:
    a job with no resilience has no recovery story to show)."""
    from repro.apps.heatdis import HeatdisConfig
    from repro.experiments.common import paper_env
    from repro.harness.runner import run_heatdis_job
    from repro.harness.strategies import STRATEGIES
    from repro.profile.flamegraph import folded_stacks, format_folded
    from repro.sim.failures import IterationFailure
    from repro.telemetry import Telemetry
    from repro.telemetry.timeline import failure_timeline

    out: Dict[str, Dict[str, str]] = {}
    for strategy in strategies:
        spec = STRATEGIES.get(strategy)
        if spec is None or strategy == "none":
            continue
        tel = Telemetry(enabled=True)
        env = paper_env(
            n_ranks + max(n_spares if spec.fenix else 0, 1),
            n_spares=n_spares if spec.fenix else 0,
            seed=seed, pfs_servers=2,
        )
        cfg = HeatdisConfig(n_iters=n_iters, modeled_bytes_per_rank=16e6)
        plan = IterationFailure.between_checkpoints(
            kill_rank, ckpt_interval, 1
        )
        run_heatdis_job(env, strategy, n_ranks, cfg, ckpt_interval,
                        plan=plan, telemetry=tel)
        out[strategy] = {
            "timeline": failure_timeline(tel, trace=tel.trace,
                                         limit=timeline_limit),
            "folded": format_folded(folded_stacks(tel)),
        }
    return out
