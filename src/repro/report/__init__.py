"""Cross-run campaign observability: scorecards, HTML reports, diffs.

The per-run layers (``repro.telemetry`` spans, ``repro.monitor``
invariants, ``repro.profile`` ledgers) stop at a single
:class:`~repro.harness.RunReport`; this package is the *distribution*
lens over a whole campaign:

- :mod:`repro.report.ledger` -- :class:`CampaignLedger` folds the
  per-run stream into per-(strategy, scale, seed) records, builds the
  resilience scorecard (recovery latency, overhead %, recompute
  fraction, checkpoint cost) with bootstrap CIs, and flags anomalies;
- :mod:`repro.report.stats` -- deterministic summary statistics and
  seeded bootstrap confidence intervals;
- :mod:`repro.report.html` -- the self-contained HTML report (inline
  CSS/SVG, embedded timelines and flame stacks, zero external assets);
- :mod:`repro.report.compare` -- the one comparison helper every diff
  CLI (telemetry / profile / report) routes through: shared
  ``--budget``/``--tolerance`` flags and exit codes;
- ``python -m repro.report`` -- run a seeded campaign, render the
  report, print the scorecard, or gate two ledgers in CI.
"""

from repro.report.compare import (
    EXIT_BAD_INPUT,
    EXIT_OK,
    EXIT_REGRESSION,
    Delta,
    add_budget_flag,
    budget_verdict,
    compare_scalars,
    format_deltas,
    over_budget,
    relative_change,
)
from repro.report.html import render_html
from repro.report.ledger import (
    LEDGER_SCHEMA,
    CampaignLedger,
    RunRecord,
    build_scorecard,
    flag_anomalies,
    flatten_scorecard,
    format_scorecard,
    scorecard_regressions,
)
from repro.report.stats import bootstrap_ci, summarize

__all__ = [
    "CampaignLedger",
    "RunRecord",
    "LEDGER_SCHEMA",
    "build_scorecard",
    "flatten_scorecard",
    "format_scorecard",
    "scorecard_regressions",
    "flag_anomalies",
    "render_html",
    "bootstrap_ci",
    "summarize",
    "Delta",
    "relative_change",
    "compare_scalars",
    "over_budget",
    "format_deltas",
    "budget_verdict",
    "add_budget_flag",
    "EXIT_OK",
    "EXIT_REGRESSION",
    "EXIT_BAD_INPUT",
]
