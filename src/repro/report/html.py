"""Self-contained HTML campaign report.

One file, zero network: styles are an inline ``<style>`` block, charts
are inline SVG, the failure timeline and flame stacks are embedded text.
The file renders identically from a CI artifact tab, ``file://``, or an
air-gapped machine -- the whole point of a report you attach to a run.

Chart conventions (kept deliberately boring):

- one measure per chart, horizontal bars, one bar per strategy;
- color carries *strategy identity* and is assigned in first-seen order
  from a fixed categorical palette -- the same strategy wears the same
  hue in every chart, and a re-render with fewer strategies never
  repaints the survivors;
- the bootstrap CI is a whisker over the bar; exact values are also in
  the adjacent tables (the accessible, copy-pasteable view);
- values/labels are text-ink, never series-colored; native ``<title>``
  tooltips carry the full numbers on hover.

Light and dark are both first-class: the palette below is the validated
default pair (each mode's steps chosen for its surface), switched by
``prefers-color-scheme`` with no script.
"""

from __future__ import annotations

import html as _html
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: categorical palette, fixed slot order (light, dark) -- validated as a
#: set for adjacent-pair CVD separation on both surfaces; strategies map
#: to slots in first-seen order and never cycle
PALETTE: List[Tuple[str, str]] = [
    ("#2a78d6", "#3987e5"),  # blue
    ("#eb6834", "#d95926"),  # orange
    ("#1baf7a", "#199e70"),  # aqua
    ("#eda100", "#c98500"),  # yellow
    ("#e87ba4", "#d55181"),  # magenta
    ("#008300", "#008300"),  # green
    ("#4a3aa7", "#9085e9"),  # violet
    ("#e34948", "#e66767"),  # red
]

_CSS = """
:root { color-scheme: light dark; }
body {
  margin: 0; padding: 2rem clamp(1rem, 5vw, 4rem);
  background: var(--surface-1); color: var(--text-primary);
  font: 15px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
body {
  --surface-1: #fcfcfb; --surface-2: #f1f0ee;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --line: #d8d6d2;
}
@media (prefers-color-scheme: dark) {
  body {
    --surface-1: #1a1a19; --surface-2: #252523;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --line: #3c3b38;
  }
}
h1 { font-size: 1.5rem; margin: 0 0 .25rem; }
h2 { font-size: 1.15rem; margin: 2.2rem 0 .6rem; }
h3 { font-size: 1rem; margin: 1.4rem 0 .4rem; }
.sub { color: var(--text-secondary); margin: 0 0 1.2rem; }
.tiles { display: flex; flex-wrap: wrap; gap: .75rem; margin: 1.2rem 0; }
.tile {
  background: var(--surface-2); border-radius: 8px;
  padding: .6rem 1rem; min-width: 7rem;
}
.tile .v { font-size: 1.35rem; font-weight: 600; }
.tile .k { color: var(--text-secondary); font-size: .8rem; }
table { border-collapse: collapse; margin: .5rem 0 1rem; }
th, td {
  text-align: right; padding: .3rem .7rem;
  border-bottom: 1px solid var(--line); font-variant-numeric: tabular-nums;
}
th { color: var(--text-secondary); font-weight: 600; }
th:first-child, td:first-child { text-align: left; }
.swatch {
  display: inline-block; width: .7em; height: .7em;
  border-radius: 2px; margin-right: .45em; vertical-align: baseline;
}
.flag { color: var(--text-secondary); }
.badge-diverged {
  display: inline-block; padding: 0 .45em; border-radius: 999px;
  background: light-dark(#e34948, #e66767); color: #fff;
  font-size: .8rem; font-weight: 600;
}
.flags li { margin: .25rem 0; }
details { margin: .8rem 0; }
details pre {
  background: var(--surface-2); border-radius: 8px; padding: .8rem 1rem;
  overflow-x: auto; font-size: 12px; line-height: 1.45; max-height: 28rem;
}
summary { cursor: pointer; color: var(--text-secondary); }
svg text { font: 12px system-ui, sans-serif; fill: var(--text-primary); }
svg .muted { fill: var(--text-secondary); }
svg .grid { stroke: var(--line); stroke-width: 1; }
footer {
  margin-top: 3rem; color: var(--text-secondary); font-size: .8rem;
}
"""


def esc(text: Any) -> str:
    return _html.escape(str(text), quote=True)


def strategy_colors(strategies: Sequence[str]) -> Dict[str, Tuple[str, str]]:
    """Strategy -> (light, dark) hex, fixed first-seen slot order.

    Past eight strategies the palette does NOT cycle -- extra strategies
    wear a neutral gray and rely on labels (identity is never
    color-alone anyway: every mark sits next to its name).
    """
    out: Dict[str, Tuple[str, str]] = {}
    for i, s in enumerate(strategies):
        out[s] = PALETTE[i] if i < len(PALETTE) else ("#8a8885", "#8a8885")
    return out


# -- charts -------------------------------------------------------------


def hbar_chart(
    title: str,
    unit: str,
    rows: Sequence[Dict[str, Any]],
    value_format: str = "{:.1f}",
) -> str:
    """Horizontal bars with CI whiskers, one per strategy.

    ``rows``: dicts with ``label``, ``mean``, ``ci_lo``, ``ci_hi``,
    ``color`` -- color as a (light, dark) pair rendered via a per-row
    CSS variable so dark mode swaps without scripting.
    """
    if not rows:
        return ""
    left, right, bar_h, gap, pad = 150, 70, 22, 12, 8
    width = 640
    plot_w = width - left - right
    height = pad * 2 + len(rows) * (bar_h + gap) - gap + 22
    vmax = max(max(r["ci_hi"], r["mean"]) for r in rows)
    if vmax <= 0:
        vmax = 1.0
    scale = plot_w / (vmax * 1.08)

    def x(v: float) -> float:
        return left + max(0.0, v) * scale

    parts: List[str] = []
    style_rows = []
    for i, r in enumerate(rows):
        lt, dk = r["color"]
        style_rows.append(
            f".s{i} {{ --series: {lt}; }}"
        )
        style_rows.append(
            f"@media (prefers-color-scheme: dark) "
            f"{{ .s{i} {{ --series: {dk}; }} }}"
        )
    parts.append(
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" aria-label="{esc(title)}">'
    )
    parts.append(f"<style>{' '.join(style_rows)}</style>")
    # baseline + end gridline, recessive
    parts.append(
        f'<line class="grid" x1="{left}" y1="{pad}" x2="{left}" '
        f'y2="{height - 22}"/>'
    )
    y = pad
    for i, r in enumerate(rows):
        mean_v, lo, hi = r["mean"], r["ci_lo"], r["ci_hi"]
        label = esc(r["label"])
        val = value_format.format(mean_v)
        tip = (f"{label}: {val}{unit} "
               f"(95% CI {value_format.format(lo)}"
               f"–{value_format.format(hi)}{unit}, "
               f"n={r.get('n', '?')})")
        cy = y + bar_h / 2
        parts.append(f'<g class="s{i}">')
        parts.append(f"<title>{esc(tip)}</title>")
        parts.append(
            f'<text x="{left - 8}" y="{cy + 4}" text-anchor="end">'
            f"{label}</text>"
        )
        # the bar: thin mark, rounded data end only (baseline stays square)
        bw = max(0.0, x(mean_v) - left)
        parts.append(
            f'<path d="M {left} {y} h {bw - 4 if bw > 4 else bw} '
            f'q 4 0 4 4 v {bar_h - 8} q 0 4 -4 4 h {-(bw - 4) if bw > 4 else -bw} z" '
            f'fill="var(--series)"/>' if bw > 4 else
            f'<rect x="{left}" y="{y}" width="{bw}" height="{bar_h}" '
            f'fill="var(--series)"/>'
        )
        # CI whisker over the bar, text-ink so it reads on the fill
        parts.append(
            f'<line x1="{x(lo)}" y1="{cy}" x2="{x(hi)}" y2="{cy}" '
            f'stroke="var(--text-primary)" stroke-width="1.5"/>'
        )
        for vx in (lo, hi):
            parts.append(
                f'<line x1="{x(vx)}" y1="{cy - 5}" x2="{x(vx)}" '
                f'y2="{cy + 5}" stroke="var(--text-primary)" '
                f'stroke-width="1.5"/>'
            )
        # direct value label past the whisker, text ink
        parts.append(
            f'<text x="{x(max(hi, mean_v)) + 8}" y="{cy + 4}">'
            f"{esc(val)}{esc(unit)}</text>"
        )
        parts.append("</g>")
        y += bar_h + gap
    parts.append(
        f'<text class="muted" x="{left}" y="{height - 6}">'
        f"0{esc(unit)} — whisker = bootstrap 95% CI of the mean"
        f"</text>"
    )
    parts.append("</svg>")
    return "".join(parts)


# -- report body --------------------------------------------------------


def _tiles(ledger: Any, scorecard: Dict[str, Any]) -> str:
    prog = ledger.progress or {}
    total_viol = sum(e.get("total_violations", 0)
                     for e in scorecard["strategies"].values())
    total_alerts = sum(e.get("total_alerts", 0)
                       for e in scorecard["strategies"].values())
    divergent = sum(1 for r in ledger.runs
                    if getattr(r, "divergences", 0) > 0)
    tiles = [
        ("runs", ledger.cells()),
        ("strategies", len(ledger.strategies)),
        ("seeds", len(ledger.seeds)),
        ("scales", " / ".join(str(s) for s in ledger.scales) or "0"),
        ("cache hits", prog.get("cache_hits", 0)),
        ("simulated", prog.get("cache_misses", ledger.cells())),
        ("violations", total_viol),
        ("SLO alerts", total_alerts),
        ("divergent cells", divergent),
        ("anomaly flags", len(scorecard.get("flags", []))),
    ]
    cells = "".join(
        f'<div class="tile"><div class="v">{esc(v)}</div>'
        f'<div class="k">{esc(k)}</div></div>'
        for k, v in tiles
    )
    return f'<div class="tiles">{cells}</div>'


def _ci_cell(metric: Dict[str, float], fmt: str = "{:.2f}",
             scale: float = 1.0) -> str:
    if metric.get("n", 0) == 0:
        return "&ndash;"
    return (f"{fmt.format(metric['mean'] * scale)} "
            f'<span class="flag">[{fmt.format(metric["ci_lo"] * scale)}, '
            f'{fmt.format(metric["ci_hi"] * scale)}]</span>')


def _scorecard_table(scorecard: Dict[str, Any],
                     colors: Dict[str, Tuple[str, str]]) -> str:
    rows = []
    for strategy, entry in scorecard["strategies"].items():
        m = entry["metrics"]
        lt, dk = colors[strategy]
        sw = (f'<span class="swatch" style="background:'
              f'light-dark({lt}, {dk})"></span>')
        rows.append(
            "<tr>"
            f"<td>{sw}{esc(strategy)}</td>"
            f"<td>{entry['n_runs']}</td>"
            f"<td>{entry['total_failures']}</td>"
            f"<td>{_ci_cell(m['efficiency'])}</td>"
            f"<td>{_ci_cell(m['overhead_pct'], '{:.1f}%')}</td>"
            f"<td>{_ci_cell(m['recovery_latency_s'], '{:.2f}s')}</td>"
            f"<td>{_ci_cell(m['recompute_frac'], '{:.1f}%', 100.0)}</td>"
            f"<td>{_ci_cell(m['checkpoint_frac'], '{:.1f}%', 100.0)}</td>"
            f"<td>{_ci_cell(m.get('dirty_fraction', {'n': 0}), '{:.1f}%', 100.0)}</td>"
            f"<td>{_ci_cell(m.get('dedup_ratio', {'n': 0}), '{:.1f}%', 100.0)}</td>"
            f"<td>{m['wall_time_s']['p95']:.2f}s</td>"
            "</tr>"
        )
    return (
        "<table><thead><tr>"
        "<th>strategy</th><th>runs</th><th>failures</th>"
        "<th>efficiency</th><th>overhead</th><th>recovery latency</th>"
        "<th>recompute</th><th>checkpoint</th>"
        "<th>dirty</th><th>dedup</th><th>p95 wall</th>"
        "</tr></thead><tbody>" + "".join(rows) + "</tbody></table>"
        '<p class="flag">mean [bootstrap 95% CI] across runs; recovery '
        "latency = added seconds per failure vs the failure-free "
        "baseline at the same scale; dirty = memcpy'd fraction of the "
        "logical checkpoint bytes, dedup = flush bytes saved by the "
        "content-addressed chunk store.</p>"
    )


def _runs_table(ledger: Any) -> str:
    rows = []
    for r in ledger.runs:
        ideal = ledger.ideal.get(r.n_ranks)
        over = (f"{r.overhead_pct(ideal):.1f}%"
                if ideal and r.strategy != "none" else "&ndash;")
        div = getattr(r, "divergences", 0)
        div_cell = (
            f'<span class="badge-diverged" title="diverged from its '
            f'seeded replay; see repro.align">{div}</span>'
            if div > 0 else "0"
        )
        rows.append(
            "<tr>"
            f"<td>{esc(r.label)}</td><td>{esc(r.strategy)}</td>"
            f"<td>{r.n_ranks}</td><td>{r.seed}</td>"
            f"<td>{r.wall_time:.3f}</td><td>{over}</td>"
            f"<td>{r.attempts}</td><td>{r.failures}</td>"
            f"<td>{r.violations}</td><td>{r.alerts}</td>"
            f"<td>{div_cell}</td>"
            f"<td>{'cache' if r.cached else 'sim'}</td>"
            "</tr>"
        )
    return (
        "<details><summary>All runs "
        f"({ledger.cells()})</summary><table><thead><tr>"
        "<th>cell</th><th>strategy</th><th>ranks</th><th>seed</th>"
        "<th>wall (s)</th><th>overhead</th><th>attempts</th>"
        "<th>failures</th><th>violations</th><th>alerts</th>"
        "<th>divergences</th><th>from</th>"
        "</tr></thead><tbody>" + "".join(rows)
        + "</tbody></table></details>"
    )


def _exemplars(ledger: Any) -> str:
    if not ledger.exemplars:
        return ""
    parts = ["<h2>Exemplar failure runs</h2>",
             '<p class="sub">One instrumented seeded kill per strategy: '
             "the recovery timeline and the folded flame stacks "
             "(speedscope-compatible) embedded verbatim.</p>"]
    for strategy, arts in ledger.exemplars.items():
        parts.append(f"<h3>{esc(strategy)}</h3>")
        timeline = arts.get("timeline")
        if timeline:
            parts.append(
                "<details open><summary>failure timeline</summary>"
                f"<pre>{esc(timeline)}</pre></details>"
            )
        folded = arts.get("folded")
        if folded:
            parts.append(
                "<details><summary>folded flame stacks "
                "(paste into speedscope.app)</summary>"
                f"<pre>{esc(folded)}</pre></details>"
            )
    return "".join(parts)


def _flags(scorecard: Dict[str, Any]) -> str:
    flags = scorecard.get("flags", [])
    if not flags:
        return ("<h2>Anomalies</h2><p class=\"sub\">No outliers, host "
                "anomalies, invariant violations, SLO alerts, or "
                "determinism divergences flagged.</p>")
    items = "".join(f"<li>&#9888;&#65039; {esc(f)}</li>" for f in flags)
    return f'<h2>Anomalies</h2><ul class="flags">{items}</ul>'


def render_html(
    ledger: Any,
    scorecard: Optional[Dict[str, Any]] = None,
    title: str = "Campaign resilience report",
) -> str:
    """The whole document.  ``scorecard`` defaults to a fresh build."""
    from repro.report.ledger import build_scorecard

    if scorecard is None:
        scorecard = build_scorecard(ledger)
    colors = strategy_colors(ledger.strategies)
    meta = ledger.meta or {}

    charts = []
    over_rows, lat_rows = [], []
    for strategy, entry in scorecard["strategies"].items():
        m = entry["metrics"]
        if m["overhead_pct"]["n"]:
            over_rows.append({
                "label": strategy, "color": colors[strategy],
                "mean": m["overhead_pct"]["mean"],
                "ci_lo": m["overhead_pct"]["ci_lo"],
                "ci_hi": m["overhead_pct"]["ci_hi"],
                "n": m["overhead_pct"]["n"],
            })
        if m["recovery_latency_s"]["n"]:
            lat_rows.append({
                "label": strategy, "color": colors[strategy],
                "mean": m["recovery_latency_s"]["mean"],
                "ci_lo": m["recovery_latency_s"]["ci_lo"],
                "ci_hi": m["recovery_latency_s"]["ci_hi"],
                "n": m["recovery_latency_s"]["n"],
            })
    if over_rows:
        charts.append("<h3>Overhead vs failure-free ideal</h3>"
                      + hbar_chart("Overhead vs ideal", "%", over_rows))
    if lat_rows:
        charts.append("<h3>Recovery latency per failure</h3>"
                      + hbar_chart("Recovery latency", "s", lat_rows,
                                   value_format="{:.2f}"))

    sub_bits = []
    if meta.get("app"):
        sub_bits.append(f"app {esc(meta['app'])}")
    if meta.get("n_iters"):
        sub_bits.append(f"{esc(meta['n_iters'])} iterations")
    if meta.get("mtbf_per_rank"):
        sub_bits.append(
            f"MTBF/rank {float(meta['mtbf_per_rank']):.1f}s")
    if meta.get("generated"):
        sub_bits.append(f"generated {esc(meta['generated'])}")
    subtitle = " &middot; ".join(sub_bits) or "seeded failure campaign"

    body = [
        f"<h1>{esc(title)}</h1>",
        f'<p class="sub">{subtitle}</p>',
        _tiles(ledger, scorecard),
        "<h2>Scorecard</h2>",
        _scorecard_table(scorecard, colors),
        "".join(charts),
        "<h2>Per-run results</h2>",
        _runs_table(ledger),
        _exemplars(ledger),
        _flags(scorecard),
        "<footer>Self-contained report (no external assets) &middot; "
        "regenerate with <code>python -m repro.report</code> &middot; "
        "gate with <code>python -m repro.report diff</code></footer>",
    ]
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head>"
        "<meta charset=\"utf-8\">"
        "<meta name=\"viewport\" "
        "content=\"width=device-width, initial-scale=1\">"
        f"<title>{esc(title)}</title>"
        f"<style>{_CSS}</style></head><body>"
        + "".join(body) + "</body></html>\n"
    )
