"""The campaign ledger: every run of a sweep, folded into distributions.

A *campaign* is a grid of independent runs over (strategy, scale, seed).
Each run yields one :class:`~repro.harness.RunReport`; this module folds
the stream into:

- :class:`RunRecord` -- the flat, JSON-stable per-run row (simulated
  wall time, attempts, failures, per-category buckets, violation count,
  cache provenance, host cost);
- :class:`CampaignLedger` -- the ordered collection plus per-scale
  failure-free baselines (``ideal``), exemplar artifacts (timeline /
  flame stacks) and the progress-stream accounting;
- :func:`build_scorecard` -- per-strategy resilience metrics as
  distributions with bootstrap CIs (see :mod:`repro.report.stats`):

  ==================  ====================================================
  ``efficiency``      ideal wall / achieved wall (higher is better)
  ``overhead_pct``    100 * (wall - ideal) / ideal
  ``recovery_latency_s``  (wall - ideal) / failures, failed runs only --
                      the added cost of one failure under the strategy
  ``recompute_frac``  recompute seconds / wall (lost-work fraction)
  ``checkpoint_frac`` checkpoint-function seconds / wall (the price of
                      protection; at equal protection, lower = a more
                      efficient checkpoint path)
  ``wall_time_s``     the raw distribution the rest derive from
  ``dirty_fraction``  memcpy'd / logical checkpoint bytes (1.0 = every
                      checkpoint was a full copy; the incremental data
                      path pushes this down)
  ``dedup_ratio``     1 - flushed / memcpy'd bytes (chunk dedup savings
                      on the way to the PFS)
  ==================  ====================================================

- anomaly flagging: within-group outliers (|z| > 3 on wall time) and,
  given a pytest-benchmark baseline (``BENCH_simulator.json``), cells
  whose *host* cost per simulated rank-iteration is wildly above the
  committed single-job benchmark -- an environment problem, not a
  simulation result, and labelled as such.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.report import stats
from repro.report.compare import Delta
from repro.util.schema import stamp, warn_on_mismatch

#: ledger / scorecard JSON schema version
LEDGER_SCHEMA = 1

#: scorecard metrics tracked by ``repro.report diff``; direction is the
#: *bad* way ("up" regresses when it grows, "down" when it shrinks)
TRACKED_METRICS: Dict[str, str] = {
    "efficiency": "down",
    "overhead_pct": "up",
    "recovery_latency_s": "up",
    "recompute_frac": "up",
    "checkpoint_frac": "up",
    "wall_time_s": "up",
    # checkpoint data path: a growing dirty fraction means the
    # incremental path degrades toward full copies; a shrinking dedup
    # ratio means more bytes reach the PFS per checkpoint
    "dirty_fraction": "up",
    "dedup_ratio": "down",
}

#: summary fields of each metric the diff gate compares
TRACKED_FIELDS = ("mean", "p95")

#: |z| beyond which a run is flagged as an in-group outlier
OUTLIER_Z = 3.0

#: the committed single-job wall-clock benchmark used as the host-cost
#: anchor, and its job shape (4 ranks x 30 iterations; see
#: benchmarks/test_profile_overhead.py)
BENCH_ANCHOR = "test_untelemetered_job_wall_clock"
BENCH_ANCHOR_RANK_ITERS = 4 * 30

#: host cost per rank-iteration beyond this multiple of the benchmark
#: anchor flags the cell (generous: CI machines vary, 25x does not)
HOST_ANOMALY_FACTOR = 25.0


@dataclass
class RunRecord:
    """One run of the campaign, flattened for aggregation and JSON."""

    label: str
    strategy: str
    app: str
    n_ranks: int
    seed: int
    wall_time: float
    attempts: int
    failures: int
    buckets: Dict[str, float] = field(default_factory=dict)
    violations: int = 0
    #: SLO alerts the live rules engine fired during this run (0 when
    #: the run carried no rules file)
    alerts: int = 0
    #: determinism-audit divergences between the run and its seeded
    #: replay (0 when the audit was off or the replay aligned exactly;
    #: see repro.align)
    divergences: int = 0
    cached: bool = False
    host_seconds: float = 0.0
    #: iterations/steps the cell simulated (for host-cost normalization;
    #: 0 when the app config does not expose it)
    n_iters: int = 0
    #: checkpoint data-path volume summary (RunReport.data_path; empty
    #: for strategies that never touch VeloC)
    data_path: Dict[str, float] = field(default_factory=dict)

    # -- derived metrics (ideal = the scale's failure-free baseline) ----

    def efficiency(self, ideal: float) -> float:
        return ideal / self.wall_time if self.wall_time > 0 else 0.0

    def overhead_pct(self, ideal: float) -> float:
        if ideal <= 0:
            return 0.0
        return 100.0 * (self.wall_time - ideal) / ideal

    def recovery_latency(self, ideal: float) -> Optional[float]:
        """Added seconds per failure; None for failure-free runs."""
        if self.failures <= 0:
            return None
        return (self.wall_time - ideal) / self.failures

    def bucket_frac(self, name: str) -> float:
        if self.wall_time <= 0:
            return 0.0
        return self.buckets.get(name, 0.0) / self.wall_time

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "strategy": self.strategy,
            "app": self.app,
            "n_ranks": self.n_ranks,
            "seed": self.seed,
            "wall_time": self.wall_time,
            "attempts": self.attempts,
            "failures": self.failures,
            "buckets": dict(self.buckets),
            "violations": self.violations,
            "alerts": self.alerts,
            "divergences": self.divergences,
            "cached": self.cached,
            "host_seconds": self.host_seconds,
            "n_iters": self.n_iters,
            "data_path": dict(self.data_path),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "RunRecord":
        return cls(
            label=doc["label"],
            strategy=doc["strategy"],
            app=doc["app"],
            n_ranks=doc["n_ranks"],
            seed=doc["seed"],
            wall_time=doc["wall_time"],
            attempts=doc["attempts"],
            failures=doc["failures"],
            buckets=dict(doc.get("buckets", {})),
            violations=doc.get("violations", 0),
            alerts=doc.get("alerts", 0),
            divergences=doc.get("divergences", 0),
            cached=doc.get("cached", False),
            host_seconds=doc.get("host_seconds", 0.0),
            n_iters=doc.get("n_iters", 0),
            data_path=dict(doc.get("data_path", {})),
        )

    @classmethod
    def from_cell_result(cls, result: Any, seed: int) -> "RunRecord":
        """Build a record from a :class:`~repro.parallel.CellResult`."""
        spec, report = result.spec, result.report
        cfg = spec.config
        n_iters = int(getattr(cfg, "n_iters", getattr(cfg, "n_steps", 0)))
        return cls(
            label=spec.label or spec.strategy,
            strategy=spec.strategy,
            app=spec.app,
            n_ranks=spec.n_ranks,
            seed=seed,
            wall_time=report.wall_time,
            attempts=report.attempts,
            failures=result.failures,
            buckets=dict(report.buckets),
            violations=len(report.violations),
            alerts=len(getattr(report, "alerts", []) or []),
            divergences=len(getattr(report, "divergences", []) or []),
            cached=result.cached,
            host_seconds=result.host_seconds,
            n_iters=n_iters,
            data_path=dict(getattr(report, "data_path", {}) or {}),
        )


@dataclass
class CampaignLedger:
    """The whole campaign: records, baselines, artifacts, provenance."""

    meta: Dict[str, Any] = field(default_factory=dict)
    #: failure-free baseline wall time per scale (n_ranks -> seconds)
    ideal: Dict[int, float] = field(default_factory=dict)
    runs: List[RunRecord] = field(default_factory=list)
    #: per-strategy exemplar artifacts for the HTML report
    #: ({strategy: {"timeline": text, "folded": text}})
    exemplars: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: progress-stream accounting ({"cells": N, "cache_hits": h, ...})
    progress: Dict[str, Any] = field(default_factory=dict)

    # -- building -------------------------------------------------------

    def add_ideal(self, n_ranks: int, wall_time: float) -> None:
        self.ideal[int(n_ranks)] = float(wall_time)

    def add_run(self, record: RunRecord) -> None:
        self.runs.append(record)

    def ideal_for(self, n_ranks: int) -> float:
        try:
            return self.ideal[int(n_ranks)]
        except KeyError:
            known = sorted(self.ideal)
            raise KeyError(
                f"no ideal baseline for {n_ranks} ranks; have {known}"
            ) from None

    # -- views ----------------------------------------------------------

    @property
    def strategies(self) -> List[str]:
        """Strategy names in first-seen order (baseline runs excluded)."""
        seen: List[str] = []
        for r in self.runs:
            if r.strategy != "none" and r.strategy not in seen:
                seen.append(r.strategy)
        return seen

    @property
    def scales(self) -> List[int]:
        return sorted({r.n_ranks for r in self.runs})

    @property
    def seeds(self) -> List[int]:
        return sorted({r.seed for r in self.runs if r.strategy != "none"})

    def group(self, strategy: str, n_ranks: Optional[int] = None
              ) -> List[RunRecord]:
        return [r for r in self.runs
                if r.strategy == strategy
                and (n_ranks is None or r.n_ranks == n_ranks)]

    def cells(self) -> int:
        """Total runs (the count the progress JSONL must reconcile to,
        baselines included -- every cell emits exactly one event)."""
        return len(self.runs)

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return stamp({
            "meta": dict(self.meta),
            "ideal": {str(k): v for k, v in sorted(self.ideal.items())},
            "runs": [r.to_dict() for r in self.runs],
            "exemplars": {k: dict(v) for k, v in self.exemplars.items()},
            "progress": dict(self.progress),
        }, LEDGER_SCHEMA)

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "CampaignLedger":
        if doc.get("schema") != LEDGER_SCHEMA:
            raise ValueError(
                f"unsupported ledger schema {doc.get('schema')!r} "
                f"(this build reads {LEDGER_SCHEMA})"
            )
        warn_on_mismatch("campaign ledger", LEDGER_SCHEMA,
                         found_version=doc.get("repro_version"))
        return cls(
            meta=dict(doc.get("meta", {})),
            ideal={int(k): float(v)
                   for k, v in doc.get("ideal", {}).items()},
            runs=[RunRecord.from_dict(r) for r in doc.get("runs", [])],
            exemplars={k: dict(v)
                       for k, v in doc.get("exemplars", {}).items()},
            progress=dict(doc.get("progress", {})),
        )

    def save(self, path: "str | pathlib.Path") -> None:
        pathlib.Path(path).write_text(
            json.dumps(self.to_dict(), indent=1, sort_keys=True),
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: "str | pathlib.Path") -> "CampaignLedger":
        return cls.from_dict(
            json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
        )


# -- scorecard ----------------------------------------------------------


def build_scorecard(ledger: CampaignLedger) -> Dict[str, Any]:
    """Per-strategy metric distributions (with bootstrap CIs) + flags."""
    strategies: Dict[str, Any] = {}
    for strategy in ledger.strategies:
        runs = ledger.group(strategy)
        eff, over, rec_lat, rec_frac, ck_frac, walls = [], [], [], [], [], []
        dirty_fracs, dedup_ratios = [], []
        for r in runs:
            ideal = ledger.ideal_for(r.n_ranks)
            eff.append(r.efficiency(ideal))
            over.append(r.overhead_pct(ideal))
            lat = r.recovery_latency(ideal)
            if lat is not None:
                rec_lat.append(lat)
            rec_frac.append(r.bucket_frac("recompute"))
            ck_frac.append(r.bucket_frac("checkpoint_function"))
            walls.append(r.wall_time)
            if "dirty_fraction" in r.data_path:
                dirty_fracs.append(r.data_path["dirty_fraction"])
            if "dedup_ratio" in r.data_path:
                dedup_ratios.append(r.data_path["dedup_ratio"])
        strategies[strategy] = {
            "n_runs": len(runs),
            "n_failed_runs": sum(1 for r in runs if r.failures > 0),
            "total_failures": sum(r.failures for r in runs),
            "total_violations": sum(r.violations for r in runs),
            "total_alerts": sum(r.alerts for r in runs),
            "divergent_cells": sum(1 for r in runs if r.divergences > 0),
            "scales": sorted({r.n_ranks for r in runs}),
            "metrics": {
                "efficiency": stats.summarize(eff),
                "overhead_pct": stats.summarize(over),
                "recovery_latency_s": stats.summarize(rec_lat),
                "recompute_frac": stats.summarize(rec_frac),
                "checkpoint_frac": stats.summarize(ck_frac),
                "wall_time_s": stats.summarize(walls),
                "dirty_fraction": stats.summarize(dirty_fracs),
                "dedup_ratio": stats.summarize(dedup_ratios),
            },
        }
    return stamp({
        "strategies": strategies,
        "flags": flag_anomalies(ledger),
    }, LEDGER_SCHEMA)


def flatten_scorecard(scorecard: Dict[str, Any]) -> Dict[str, float]:
    """``strategy.metric.field -> value`` rows for the diff gate."""
    out: Dict[str, float] = {}
    for strategy, entry in scorecard.get("strategies", {}).items():
        for metric, summary in entry.get("metrics", {}).items():
            if summary.get("n", 0) == 0:
                continue  # an empty distribution gates nothing
            for fld in TRACKED_FIELDS:
                out[f"{strategy}.{metric}.{fld}"] = summary[fld]
    return out


def metric_direction(flat_name: str) -> str:
    """The bad direction ("up"/"down") for a flattened scorecard row."""
    for metric, direction in TRACKED_METRICS.items():
        if f".{metric}." in flat_name:
            return direction
    return "up"


def scorecard_regressions(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    budget: float,
) -> Tuple[List[Delta], List[Delta]]:
    """(all rows, failing rows) between two scorecards.

    A row regresses when it moves in its metric's bad direction by more
    than ``budget`` (relative).  Rows only in one scorecard are
    structural failures -- a strategy or metric silently vanishing must
    not pass CI.
    """
    fb = flatten_scorecard(baseline)
    fc = flatten_scorecard(current)
    rows: List[Delta] = []
    failing: List[Delta] = []
    for name in sorted(set(fb) | set(fc)):
        d = Delta(name, fb.get(name), fc.get(name))
        rows.append(d)
        if d.structural:
            failing.append(d)
            continue
        base, cur = d.baseline, d.current
        if metric_direction(name) == "down":
            base, cur = -base, -cur  # a drop becomes growth
        if base == 0.0:
            regressed = cur > 0.0
        else:
            regressed = (cur - base) / abs(base) > budget
        if regressed:
            failing.append(d)
    return rows, failing


# -- anomaly flagging ---------------------------------------------------


def flag_anomalies(
    ledger: CampaignLedger,
    bench: Optional[Dict[str, Any]] = None,
    z_threshold: float = OUTLIER_Z,
    host_factor: float = HOST_ANOMALY_FACTOR,
) -> List[str]:
    """Human-readable anomaly flags (empty = nothing suspicious).

    Within-group wall-time outliers are *simulation* anomalies (a seed
    behaving unlike its siblings deserves a look); host-cost flags
    against the committed benchmark anchor are *environment* anomalies
    (the machine, not the model).
    """
    flags: List[str] = []
    for strategy in ledger.strategies:
        for scale in ledger.scales:
            runs = ledger.group(strategy, scale)
            if len(runs) < 3:
                continue  # z-scores over 2 points flag nothing honestly
            walls = [r.wall_time for r in runs]
            for i in stats.outlier_indices(walls, threshold=z_threshold):
                flags.append(
                    f"outlier: {runs[i].label} wall={walls[i]:.3f}s is "
                    f">{z_threshold:g} stdev from its "
                    f"({strategy}, {scale} ranks) group mean "
                    f"{stats.mean(walls):.3f}s"
                )
    if bench is not None:
        flags.extend(flag_host_anomalies(ledger, bench, factor=host_factor))
    violated = [r for r in ledger.runs if r.violations > 0]
    for r in violated:
        flags.append(
            f"invariant violations: {r.label} reported {r.violations} "
            f"protocol violation(s); see repro.monitor"
        )
    for r in ledger.runs:
        if r.alerts > 0:
            flags.append(
                f"slo alerts: {r.label} fired {r.alerts} live alert(s); "
                f"see repro.live"
            )
    for r in ledger.runs:
        if r.divergences > 0:
            flags.append(
                f"determinism: {r.label} diverged from its seeded replay "
                f"({r.divergences} divergence(s)); see repro.align"
            )
    return flags


def flag_host_anomalies(
    ledger: CampaignLedger,
    bench: Dict[str, Any],
    factor: float = HOST_ANOMALY_FACTOR,
) -> List[str]:
    """Flag cells whose host seconds per simulated rank-iteration exceed
    ``factor`` x the committed ``BENCH_ANCHOR`` benchmark's."""
    anchor = None
    for b in bench.get("benchmarks", []):
        if b.get("name") == BENCH_ANCHOR:
            anchor = b["stats"]["mean"] / BENCH_ANCHOR_RANK_ITERS
            break
    if anchor is None or anchor <= 0:
        return [f"host-cost anchor {BENCH_ANCHOR!r} absent from the "
                "benchmark baseline; host anomaly check skipped"]
    flags = []
    for r in ledger.runs:
        if r.cached or r.host_seconds <= 0 or r.n_iters <= 0:
            continue
        per_unit = r.host_seconds / (r.n_ranks * r.n_iters)
        if per_unit > factor * anchor:
            flags.append(
                f"host anomaly: {r.label} cost "
                f"{per_unit * 1e3:.2f} ms/rank-iter on this machine, "
                f">{factor:g}x the committed baseline "
                f"({anchor * 1e3:.2f} ms); environment, not simulation"
            )
    return flags


# -- text rendering -----------------------------------------------------


def format_scorecard(scorecard: Dict[str, Any]) -> str:
    """Aligned text scorecard (the CLI's non-HTML view)."""
    lines = ["Resilience scorecard (mean [95% CI] over runs)"]
    header = (f"  {'strategy':<18} {'runs':>4} {'eff':>6}  "
              f"{'overhead%':>22}  {'recovery(s)':>22}  "
              f"{'recompute%':>10}  {'ckpt%':>6}  "
              f"{'dirty%':>6}  {'dedup%':>6}  {'alerts':>6}  "
              f"{'divrg':>5}")
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for strategy, entry in scorecard.get("strategies", {}).items():
        m = entry["metrics"]

        def ci(metric: Dict[str, float], scale: float = 1.0) -> str:
            if metric["n"] == 0:
                return "--"
            return (f"{metric['mean'] * scale:.2f} "
                    f"[{metric['ci_lo'] * scale:.2f}, "
                    f"{metric['ci_hi'] * scale:.2f}]")

        def pct(metric: Dict[str, float]) -> str:
            if metric.get("n", 0) == 0:
                return "--"
            return f"{metric['mean'] * 100:.1f}%"

        lines.append(
            f"  {strategy:<18} {entry['n_runs']:>4} "
            f"{m['efficiency']['mean']:>6.2f}  "
            f"{ci(m['overhead_pct']):>22}  "
            f"{ci(m['recovery_latency_s']):>22}  "
            f"{m['recompute_frac']['mean'] * 100:>9.2f}%  "
            f"{m['checkpoint_frac']['mean'] * 100:>5.2f}%  "
            f"{pct(m.get('dirty_fraction', {'n': 0})):>6}  "
            f"{pct(m.get('dedup_ratio', {'n': 0})):>6}  "
            f"{entry.get('total_alerts', 0):>6}  "
            f"{entry.get('divergent_cells', 0):>5}"
        )
    flags = scorecard.get("flags", [])
    if flags:
        lines.append("")
        lines.append(f"  {len(flags)} anomaly flag(s):")
        for flag in flags:
            lines.append(f"    ! {flag}")
    return "\n".join(lines)
