"""Campaign report CLI: run, render, score, and gate campaigns.

Usage (repository root, ``PYTHONPATH=src``)::

    # run the default multi-seed, multi-strategy campaign and write
    # report.html + campaign.json + scorecard.json + progress.jsonl
    python -m repro.report [run] --seeds 7,11,13 --ranks 8 --jobs 4 \
        --out report-out

    # re-render / inspect an existing campaign ledger
    python -m repro.report render report-out/campaign.json --out r.html
    python -m repro.report scorecard report-out/campaign.json

    # CI gate: exit 1 when a tracked scorecard metric regresses past
    # the budget (baseline/current are ledger or scorecard JSON)
    python -m repro.report diff results/campaign_baseline.json \
        report-out/scorecard.json --budget 0.10

``run`` with no subcommand is the default.  The HTML report is fully
self-contained (inline CSS/SVG, embedded timelines and flame stacks, no
network), so it works as a CI artifact or over ``file://`` unchanged.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.report.compare import (
    EXIT_BAD_INPUT,
    EXIT_OK,
    add_budget_flag,
    budget_verdict,
    format_deltas,
)
from repro.report.html import render_html
from repro.report.ledger import (
    CampaignLedger,
    build_scorecard,
    flag_anomalies,
    format_scorecard,
    scorecard_regressions,
)

#: default relative budget for the scorecard diff gate: simulated
#: metrics are deterministic, so 10% headroom only forgives intentional
#: small model adjustments, not behavior changes
DEFAULT_DIFF_BUDGET = 0.10


def _int_list(text: str) -> List[int]:
    return [int(x) for x in text.split(",") if x.strip()]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.report",
        description="Cross-run campaign scorecards and HTML reports.",
    )
    sub = parser.add_subparsers(dest="command")

    run = sub.add_parser("run", help="run a seeded campaign and render "
                                     "the report (the default)")
    run.add_argument("--seeds", type=_int_list, default=None,
                     metavar="S1,S2,...",
                     help="failure-plan seeds (default 7,11,13)")
    run.add_argument("--strategies", default=None, metavar="A,B",
                     help="comma-separated strategy names "
                          "(default kr_veloc,fenix_kr_veloc)")
    run.add_argument("--ranks", type=_int_list, default=None,
                     metavar="R1,R2,...",
                     help="scales to sweep (default 8)")
    run.add_argument("--iters", type=int, default=120,
                     help="Heatdis iterations per cell (default 120)")
    run.add_argument("--max-failures", type=int, default=3,
                     help="failure injections per cell (default 3)")
    run.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes (0 = one per CPU)")
    run.add_argument("--no-cache", action="store_true",
                     help="always re-simulate; ignore the run cache")
    run.add_argument("--cache-dir", default="results/cache")
    run.add_argument("--out", default="report-out",
                     help="output directory (default report-out)")
    run.add_argument("--title", default="Campaign resilience report")
    run.add_argument("--no-exemplars", action="store_true",
                     help="skip the per-strategy instrumented exemplar "
                          "runs (faster; report loses the embedded "
                          "timeline/flame sections)")
    run.add_argument("--determinism-audit", action="store_true",
                     help="run every cell twice from identical seeds and "
                          "align the traces (repro.align); divergent "
                          "cells are flagged on the scorecard")
    run.add_argument("--bench", default="BENCH_simulator.json",
                     help="pytest-benchmark baseline for host-cost "
                          "anomaly flags ('' disables)")
    run.add_argument("--progress-jsonl", default=None, metavar="PATH",
                     help="progress event stream path (default "
                          "OUT/progress.jsonl)")

    rend = sub.add_parser("render", help="ledger JSON -> HTML")
    rend.add_argument("ledger")
    rend.add_argument("--out", default="report.html")
    rend.add_argument("--title", default="Campaign resilience report")

    score = sub.add_parser("scorecard",
                           help="print the text scorecard of a ledger")
    score.add_argument("ledger")
    score.add_argument("--json", default=None,
                       help="also write the scorecard JSON here")

    diff = sub.add_parser("diff",
                          help="gate a scorecard against a baseline")
    diff.add_argument("baseline", help="ledger or scorecard JSON")
    diff.add_argument("current", help="ledger or scorecard JSON")
    add_budget_flag(diff, DEFAULT_DIFF_BUDGET,
                    "max relative move in a tracked metric's bad "
                    "direction before failing (default 0.10 = 10%%)")
    return parser


def _load_scorecard(path: str) -> Optional[dict]:
    """Read a scorecard from a scorecard JSON or a ledger JSON."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError, ValueError) as exc:
        print(f"cannot load {path}: {exc}", file=sys.stderr)
        return None
    if "strategies" in doc:
        return doc
    if "runs" in doc:
        try:
            return build_scorecard(CampaignLedger.from_dict(doc))
        except (KeyError, ValueError) as exc:
            print(f"{path}: not a usable ledger: {exc}", file=sys.stderr)
            return None
    print(f"{path}: neither a scorecard nor a campaign ledger",
          file=sys.stderr)
    return None


def _run(args: argparse.Namespace) -> int:
    from repro.experiments.campaign import (
        DEFAULT_SEEDS,
        DEFAULT_STRATEGIES,
        run_campaign_grid,
    )
    from repro.parallel import RunCache, default_progress, resolve_jobs
    from repro.report.exemplars import collect_exemplars

    seeds = args.seeds or list(DEFAULT_SEEDS)
    strategies = (args.strategies.split(",") if args.strategies
                  else list(DEFAULT_STRATEGIES))
    scales = args.ranks or [8]
    os.makedirs(args.out, exist_ok=True)
    jsonl_path = args.progress_jsonl or os.path.join(
        args.out, "progress.jsonl"
    )
    progress = default_progress(resolve_jobs(args.jobs),
                                jsonl_path=jsonl_path)
    cache = None if args.no_cache else RunCache(args.cache_dir)

    ledger = run_campaign_grid(
        scales=scales, seeds=seeds, strategies=strategies,
        n_iters=args.iters, max_failures=args.max_failures,
        jobs=args.jobs, cache=cache, progress=progress,
        determinism_audit=args.determinism_audit,
    )
    if progress is not None:
        progress.finish()
        ledger.progress["jsonl"] = jsonl_path
    if not args.no_exemplars:
        ledger.exemplars = collect_exemplars(strategies,
                                             n_ranks=min(scales))

    bench = None
    if args.bench:
        try:
            with open(args.bench, "r", encoding="utf-8") as fh:
                bench = json.load(fh)
        except (OSError, json.JSONDecodeError):
            print(f"note: benchmark baseline {args.bench!r} unreadable; "
                  "host anomaly flags skipped", file=sys.stderr)
    scorecard = build_scorecard(ledger)
    if bench is not None:
        scorecard["flags"] = flag_anomalies(ledger, bench=bench)

    ledger_path = os.path.join(args.out, "campaign.json")
    score_path = os.path.join(args.out, "scorecard.json")
    html_path = os.path.join(args.out, "report.html")
    ledger.save(ledger_path)
    with open(score_path, "w", encoding="utf-8") as fh:
        json.dump(scorecard, fh, indent=1, sort_keys=True)
    with open(html_path, "w", encoding="utf-8") as fh:
        fh.write(render_html(ledger, scorecard, title=args.title))

    print(format_scorecard(scorecard))
    if cache is not None:
        print(cache.summary())
    print(f"wrote {html_path}, {ledger_path}, {score_path}; "
          f"progress stream at {jsonl_path}")
    return EXIT_OK


def _render(args: argparse.Namespace) -> int:
    try:
        ledger = CampaignLedger.load(args.ledger)
    except (OSError, json.JSONDecodeError, ValueError, KeyError) as exc:
        print(f"cannot load {args.ledger}: {exc}", file=sys.stderr)
        return EXIT_BAD_INPUT
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(render_html(ledger, title=args.title))
    print(f"wrote {args.out}")
    return EXIT_OK


def _scorecard(args: argparse.Namespace) -> int:
    try:
        ledger = CampaignLedger.load(args.ledger)
    except (OSError, json.JSONDecodeError, ValueError, KeyError) as exc:
        print(f"cannot load {args.ledger}: {exc}", file=sys.stderr)
        return EXIT_BAD_INPUT
    scorecard = build_scorecard(ledger)
    print(format_scorecard(scorecard))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(scorecard, fh, indent=1, sort_keys=True)
        print(f"wrote {args.json}")
    return EXIT_OK


def _diff(args: argparse.Namespace) -> int:
    base = _load_scorecard(args.baseline)
    cur = _load_scorecard(args.current)
    if base is None or cur is None:
        return EXIT_BAD_INPUT
    rows, failing = scorecard_regressions(base, cur, args.budget)
    for line in format_deltas(rows, failing, mode="growth",
                              value_format="{:.4g}"):
        print(line)
    code, verdict = budget_verdict(failing, args.budget,
                                   what="scorecard metric")
    print(verdict, file=sys.stderr if failing else sys.stdout)
    return code


def main(argv: Optional[list] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command in (None, "run"):
        if args.command is None:
            # bare `python -m repro.report` = `run` with defaults
            args = parser.parse_args(["run", *(argv or sys.argv[1:])])
        return _run(args)
    if args.command == "render":
        return _render(args)
    if args.command == "scorecard":
        return _scorecard(args)
    return _diff(args)


if __name__ == "__main__":  # pragma: no cover
    try:
        sys.exit(main())
    except BrokenPipeError:
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
