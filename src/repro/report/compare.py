"""One comparison helper for every diff CLI.

``python -m repro.telemetry diff`` (``--tolerance``, symmetric),
``python -m repro.profile diff`` (``--budget``, growth-only) and
``python -m repro.report diff`` (scorecard regressions) historically
each rolled their own relative-delta arithmetic, flag names and exit
codes.  They now share this module:

- **flags**: every diff accepts ``--budget`` and ``--tolerance`` as
  aliases for the same threshold;
- **exit codes**: 0 = within budget, 1 = regression past budget,
  2 = inputs unreadable/malformed;
- **arithmetic**: :func:`relative_change` with an explicit mode --
  ``"symmetric"`` (|a-b| over the larger magnitude: drift in either
  direction counts) or ``"growth"`` ((cur-base)/base: only increases
  count, the overhead-budget semantics).

A metric present on only one side is always a failure (structural
difference, not noise) unless both values fall under ``abs_floor``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: exit codes shared by every diff CLI
EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_BAD_INPUT = 2

#: comparison modes
MODES = ("symmetric", "growth")


@dataclass(frozen=True)
class Delta:
    """One compared metric; ``None`` marks a side where it is absent."""

    name: str
    baseline: Optional[float]
    current: Optional[float]

    @property
    def structural(self) -> bool:
        return self.baseline is None or self.current is None


def relative_change(
    baseline: float, current: float, mode: str = "growth"
) -> float:
    """The relative delta under ``mode`` (see module docstring).

    Both modes return 0.0 for two zeros and +inf when a zero baseline
    grows, so thresholds behave identically at the edges.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    if mode == "symmetric":
        scale = max(abs(baseline), abs(current))
        if scale == 0.0:
            return 0.0
        return abs(current - baseline) / scale
    if baseline == 0.0:
        return float("inf") if current > 0.0 else 0.0
    return (current - baseline) / baseline


def compare_scalars(
    baseline: Mapping[str, float],
    current: Mapping[str, float],
    keys: Optional[Sequence[str]] = None,
) -> List[Delta]:
    """Pair up two flat scalar maps (union of keys, sorted, or ``keys``
    in the given order)."""
    names = list(keys) if keys is not None else sorted(
        set(baseline) | set(current)
    )
    out = []
    for name in names:
        b = baseline.get(name)
        c = current.get(name)
        out.append(Delta(name,
                         None if b is None else float(b),
                         None if c is None else float(c)))
    return out


def over_budget(
    deltas: Sequence[Delta],
    budget: float,
    mode: str = "growth",
    abs_floor: float = 0.0,
) -> List[Delta]:
    """The deltas that fail the budget.

    ``abs_floor`` suppresses metrics tiny on *both* sides (noise in the
    last digits of a near-zero category must not fail CI).
    """
    failing = []
    for d in deltas:
        b = d.baseline if d.baseline is not None else 0.0
        c = d.current if d.current is not None else 0.0
        if abs(b) < abs_floor and abs(c) < abs_floor:
            continue
        if d.structural:
            failing.append(d)
            continue
        if relative_change(b, c, mode=mode) > budget:
            failing.append(d)
    return failing


def format_deltas(
    deltas: Sequence[Delta],
    failing: Sequence[Delta],
    mode: str = "growth",
    value_format: str = "{:g}",
) -> List[str]:
    """Aligned per-metric lines, failures marked ``OVER-BUDGET``."""
    if not deltas:
        return []
    bad = {d.name for d in failing}
    width = max(len(d.name) for d in deltas)

    def fmt(v: Optional[float]) -> str:
        return "absent" if v is None else value_format.format(v)

    lines = []
    for d in deltas:
        if d.structural:
            change = "structural"
        else:
            rel = relative_change(d.baseline, d.current, mode=mode)
            change = f"{rel:+.1%}" if mode == "growth" else f"{rel:.1%}"
        marker = "  OVER-BUDGET" if d.name in bad else ""
        lines.append(f"{d.name:<{width}}  {fmt(d.baseline)} -> "
                     f"{fmt(d.current)}  ({change}){marker}")
    return lines


def budget_verdict(
    failing: Sequence[Delta], budget: float, what: str = "metric"
) -> Tuple[int, str]:
    """(exit code, summary line) with the shared wording."""
    if failing:
        names = ", ".join(d.name for d in failing)
        return (
            EXIT_REGRESSION,
            f"{len(failing)} {what}(s) beyond the {budget:g} budget: {names}",
        )
    return EXIT_OK, f"all {what}s within the {budget:g} budget"


def add_budget_flag(parser, default: float, help_text: str) -> None:
    """Register the unified ``--budget``/``--tolerance`` alias pair on an
    argparse parser (both store to ``args.budget``)."""
    parser.add_argument("--budget", "--tolerance", dest="budget",
                        type=float, default=default, metavar="REL",
                        help=help_text)
