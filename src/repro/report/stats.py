"""Distribution summaries and bootstrap confidence intervals.

The campaign scorecard reports *distributions across runs*, not single
numbers: ReStore (arXiv:2203.01107) and the repair/no-repair study
(arXiv:2410.08647) both evaluate recovery strategies this way, and a
single seeded run says nothing about whether ``fenix_kr_veloc`` beating
``kr_veloc`` was luck.

Everything here is dependency-free and deterministic: the bootstrap
resampler is seeded (default :data:`BOOTSTRAP_SEED`), so the same run
set always yields the same interval -- a requirement for the diff gate,
which compares scorecards byte-for-byte against a committed baseline.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Optional, Sequence

#: default seed for the bootstrap resampler (fixed: scorecards must be
#: reproducible so `repro.report diff` can gate on them)
BOOTSTRAP_SEED = 20220906

#: default resample count; 2000 keeps the 95% CI stable to ~2 digits
BOOTSTRAP_RESAMPLES = 2000


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def median(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    s = sorted(values)
    n = len(s)
    mid = n // 2
    if n % 2:
        return s[mid]
    return 0.5 * (s[mid - 1] + s[mid])


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    s = sorted(values)
    if len(s) == 1:
        return s[0]
    pos = (len(s) - 1) * q / 100.0
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return s[lo]
    frac = pos - lo
    return s[lo] * (1.0 - frac) + s[hi] * frac


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (0 for fewer than two values)."""
    n = len(values)
    if n < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (n - 1))


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[Sequence[float]], float] = mean,
    confidence: float = 0.95,
    resamples: int = BOOTSTRAP_RESAMPLES,
    seed: int = BOOTSTRAP_SEED,
) -> Dict[str, float]:
    """Percentile-bootstrap interval for ``statistic`` over ``values``.

    Returns ``{"lo": ..., "hi": ...}``.  With one observation the
    interval collapses to that value (honest: no spread information),
    and with none it is ``(0, 0)``.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    values = list(values)
    if not values:
        return {"lo": 0.0, "hi": 0.0}
    if len(values) == 1:
        return {"lo": values[0], "hi": values[0]}
    rng = random.Random(seed)
    n = len(values)
    stats: List[float] = []
    for _ in range(resamples):
        sample = [values[rng.randrange(n)] for _ in range(n)]
        stats.append(statistic(sample))
    alpha = (1.0 - confidence) / 2.0
    return {
        "lo": percentile(stats, 100.0 * alpha),
        "hi": percentile(stats, 100.0 * (1.0 - alpha)),
    }


def summarize(
    values: Sequence[float],
    ci: bool = True,
    confidence: float = 0.95,
    resamples: int = BOOTSTRAP_RESAMPLES,
    seed: int = BOOTSTRAP_SEED,
) -> Dict[str, float]:
    """The scorecard's standard distribution summary.

    ``n``, ``mean``, ``median``, ``p95``, ``min``, ``max``, ``stdev``,
    plus a bootstrap CI on the mean (``ci_lo``/``ci_hi``) when ``ci``.
    """
    values = list(values)
    out: Dict[str, float] = {
        "n": len(values),
        "mean": mean(values),
        "median": median(values),
        "p95": percentile(values, 95.0),
        "min": min(values) if values else 0.0,
        "max": max(values) if values else 0.0,
        "stdev": stdev(values),
    }
    if ci:
        interval = bootstrap_ci(values, confidence=confidence,
                                resamples=resamples, seed=seed)
        out["ci_lo"] = interval["lo"]
        out["ci_hi"] = interval["hi"]
    return out


def zscores(values: Sequence[float]) -> List[float]:
    """Per-value z-scores (all zero when the spread is zero)."""
    sd = stdev(values)
    if sd == 0.0:
        return [0.0] * len(values)
    m = mean(values)
    return [(v - m) / sd for v in values]


def outlier_indices(
    values: Sequence[float], threshold: float = 3.0
) -> List[int]:
    """Indices whose |z| exceeds ``threshold`` (anomaly flagging)."""
    return [i for i, z in enumerate(zscores(values))
            if abs(z) > threshold]
