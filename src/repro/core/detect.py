"""Automatic view discovery from checkpoint-region functions.

Kokkos Resilience inspects the checkpoint lambda's captures to find every
View it touches, "deep in nested function calls".  The Python rendering
walks:

- the function's closure cells and default arguments;
- ``functools.partial`` arguments;
- containers (list/tuple/set/dict) to a bounded depth;
- plain objects' attribute dicts (one level -- enough for app state
  structs holding views);
- nested functions found in captures (their closures recursed).

Views are returned in first-discovery order, with *object-level*
de-duplication only; buffer-level de-duplication ("skipped" views) and
alias exclusion are the registry census's job, so the caller can report
Figure-7-style statistics about what discovery actually saw.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, List, Set

from repro.kokkos.view import View

_MAX_DEPTH = 4


def discover_views(fn: Callable, extra: Any = None) -> List[View]:
    """Find every :class:`View` reachable from ``fn``'s captures.

    ``extra`` is an optional additional root (e.g. an app-state object
    explicitly subscribed to the context).
    """
    found: List[View] = []
    seen_objects: Set[int] = set()
    seen_fns: Set[int] = set()

    def visit(obj: Any, depth: int) -> None:
        if obj is None or depth > _MAX_DEPTH:
            return
        oid = id(obj)
        if isinstance(obj, View):
            if oid not in seen_objects:
                seen_objects.add(oid)
                found.append(obj)
            return
        if callable(obj) and (
            hasattr(obj, "__closure__") or isinstance(obj, functools.partial)
        ):
            visit_callable(obj, depth)
            return
        if isinstance(obj, (list, tuple, set, frozenset)):
            if oid in seen_objects:
                return
            seen_objects.add(oid)
            for item in obj:
                visit(item, depth + 1)
            return
        if isinstance(obj, dict):
            if oid in seen_objects:
                return
            seen_objects.add(oid)
            for value in obj.values():
                visit(value, depth + 1)
            return
        # plain object: walk its attribute dict one level deeper
        attrs = getattr(obj, "__dict__", None)
        if attrs and oid not in seen_objects:
            seen_objects.add(oid)
            for value in attrs.values():
                visit(value, depth + 1)

    def visit_callable(fn_obj: Any, depth: int) -> None:
        fid = id(fn_obj)
        if fid in seen_fns or depth > _MAX_DEPTH:
            return
        seen_fns.add(fid)
        if isinstance(fn_obj, functools.partial):
            for arg in fn_obj.args:
                visit(arg, depth + 1)
            for value in fn_obj.keywords.values():
                visit(value, depth + 1)
            visit_callable(fn_obj.func, depth + 1)
            return
        closure = getattr(fn_obj, "__closure__", None)
        if closure:
            for cell in closure:
                try:
                    visit(cell.cell_contents, depth + 1)
                except ValueError:
                    pass  # empty cell
        defaults = getattr(fn_obj, "__defaults__", None)
        if defaults:
            for value in defaults:
                visit(value, depth + 1)
        # bound methods: inspect the receiver
        receiver = getattr(fn_obj, "__self__", None)
        if receiver is not None:
            visit(receiver, depth + 1)

    visit_callable(fn, 0)
    if extra is not None:
        visit(extra, 1)
    return found
