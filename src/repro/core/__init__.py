"""The paper's contribution: the integrated control-flow resilience layer.

This package is the analogue of Kokkos Resilience *with the paper's
modifications applied* (Section V):

- :func:`make_context` / :class:`Context` -- the checkpoint context,
  including the paper's two extensions: a ``reset`` that accepts a new
  communicator after a Fenix repair, and support for launching VeloC in
  non-collective ("single") mode with the global best-version reduction
  performed here instead of inside VeloC;
- :meth:`Context.checkpoint` -- the lambda-wrapping checkpoint region of
  Figure 4: automatically discovers the Kokkos views reachable from the
  function, deduplicates them (Figure 7's "skipped" views), excludes
  declared aliases, and either executes + checkpoints or restores;
- :mod:`repro.core.detect` -- closure-walking view discovery ("data being
  used deep in nested function calls");
- :mod:`repro.core.backends` -- pluggable C/R backends: VeloC
  (asynchronous multi-tier), Fenix IMR (buddy memory), StdFile
  (synchronous PFS write, the reference backend);
- partial-rollback support (Section V-A): recovery scope
  ``"recovered_only"`` restores data only on replacement ranks, letting
  survivors keep their post-checkpoint progress.
"""

from repro.core.config import KRConfig
from repro.core.context import Context, make_context
from repro.core.detect import discover_views
from repro.core.filters import always, every_nth, never
from repro.core.backends import (
    Backend,
    FenixIMRBackend,
    StdFileBackend,
    VeloCBackend,
)

__all__ = [
    "KRConfig",
    "Context",
    "make_context",
    "discover_views",
    "always",
    "every_nth",
    "never",
    "Backend",
    "VeloCBackend",
    "StdFileBackend",
    "FenixIMRBackend",
]
