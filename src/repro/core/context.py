"""The checkpoint context: Figure 4's ``ctx`` object.

Lifecycle (matching the paper's resilient-application pattern):

- ``INITIAL`` / ``RECOVERED`` ranks create a context with
  :func:`make_context`;
- ``SURVIVOR`` ranks call :meth:`Context.reset` with the repaired
  communicator -- which clears the checkpoint-metadata cache ("a
  checkpoint finished locally may not have finished globally") and pushes
  the new communicator/rank identity into the backend (and through it into
  VeloC);
- every rank then asks :meth:`Context.latest_version` where to resume and
  runs the iteration loop through :meth:`Context.checkpoint`.

:meth:`Context.checkpoint` is the single entry point for both directions:
on a recovery iteration it restores the discovered views instead of
executing the region; otherwise it executes the region and checkpoints
when the filter says so.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from repro.core.backends import Backend, FenixIMRBackend, StdFileBackend, VeloCBackend
from repro.core.config import (
    BACKEND_FENIX_IMR,
    BACKEND_STDFILE,
    BACKEND_VELOC,
    KRConfig,
    SCOPE_RECOVERED_ONLY,
)
from repro.core.detect import discover_views
from repro.fenix.imr import IMRStore
from repro.fenix.roles import Role
from repro.kokkos.registry import ViewCensus, registry_generation
from repro.mpi.handle import CommHandle
from repro.sim.cluster import Cluster
from repro.sim.engine import Event
from repro.util.errors import ConfigError
from repro.util.timing import CHECKPOINT_FUNCTION, DATA_RECOVERY, RESILIENCE_INIT
from repro.veloc import VeloCClient, VeloCConfig, VeloCService


class Context:
    """Per-rank control-flow resilience context."""

    def __init__(self, comm: CommHandle, config: KRConfig, backend: Backend) -> None:
        self.comm = comm
        self.config = config
        self.backend = backend
        self.role: Role = Role.INITIAL
        self._latest_cache: Optional[int] = None
        self._recovery_version = -1
        self._recovery_pending = False
        self._post_failure = False
        self._subscriptions: List[Any] = []
        self._bound_label: Optional[str] = None
        # memoized discovery: region code object -> (registry generation,
        # census).  Steady-state checkpoint() calls skip the closure walk
        # whenever no registry changed since the census was taken.
        self._census_cache: dict = {}
        self.discoveries_memoized = 0
        #: census of the most recent checkpoint region (Figure-7 reporting)
        self.last_census: Optional[ViewCensus] = None
        self.checkpoints_taken = 0
        self.recoveries_done = 0

    @property
    def ctx(self):
        return self.comm.ctx

    # -- subscriptions ------------------------------------------------------

    def subscribe(self, obj: Any) -> None:
        """Add an extra discovery root (an app-state object holding views)."""
        self._subscriptions.append(obj)
        self._census_cache.clear()

    # -- role / reset -----------------------------------------------------------

    def set_role(self, role: Role) -> None:
        self.role = role

    def reset(self, comm: CommHandle, role: Role = Role.SURVIVOR) -> None:
        """Adopt a repaired communicator (the paper's extended reset).

        Clears cached checkpoint metadata, updates this context's and the
        backend's (and VeloC's) communicator and rank identity.
        """
        self.comm = comm
        self.role = role
        self._latest_cache = None
        self._recovery_pending = False
        self._post_failure = True
        self._census_cache.clear()
        self.backend.reset(comm)
        tel = self.ctx.engine.telemetry
        if tel.enabled:
            tel.instant(f"rank{self.ctx.rank}", "kr.reset", role=role.name)
            tel.rank_metrics(self.ctx.rank).inc("kr.resets")

    # -- version metadata -----------------------------------------------------------

    def latest_version(self) -> Generator[Event, Any, int]:
        """The newest globally restorable version (cached until reset).

        Arms recovery: if a version exists, the checkpoint region for that
        iteration will restore instead of execute.
        """
        if self._latest_cache is None:
            label = DATA_RECOVERY if self._post_failure else RESILIENCE_INIT
            tel = self.ctx.engine.telemetry
            with tel.span(f"rank{self.ctx.rank}", "kr.latest",
                          post_failure=self._post_failure):
                with self.ctx.account.label(label):
                    version = yield from self.backend.latest_version()
            self._latest_cache = version
        self._recovery_version = self._latest_cache
        self._recovery_pending = self._latest_cache >= 0
        return self._latest_cache

    @property
    def recovery_pending(self) -> bool:
        return self._recovery_pending

    # -- the checkpoint region ------------------------------------------------------

    def checkpoint(
        self,
        label: str,
        iteration: int,
        fn: Callable[[], Any],
    ) -> Generator[Event, Any, bool]:
        """Execute (or recover) one checkpoint region.

        Discovers the views reachable from ``fn``, classifies them
        (checkpointed / alias / skipped), and either:

        - **recovers**: when this iteration is the armed recovery version,
          restores the views instead of executing ``fn`` (full rollback) --
          or skips restoration on survivors under the partial-rollback
          scope -- and returns ``False``;
        - **executes**: runs ``fn`` (a plain callable or a generator
          function performing MPI), then checkpoints if the configured
          filter accepts the iteration, and returns ``True``.

        One context serves one checkpoint region: the first call binds
        ``label`` and later calls must match (a second region needs its
        own context, as in Kokkos Resilience practice -- backend version
        keys do not encode the label).
        """
        if self._bound_label is None:
            self._bound_label = label
        elif label != self._bound_label:
            raise ConfigError(
                f"context already bound to region {self._bound_label!r}; "
                f"create a separate context for {label!r}"
            )
        engine = self.ctx.engine
        tel = engine.telemetry
        trace = self.ctx.world.trace
        rank = self.ctx.rank
        trace.emit(engine.now, f"kr.rank{rank}", "kr_region_begin",
                   label=label, iteration=int(iteration))
        with tel.span(f"rank{rank}", "kr.region",
                      label=label, iteration=int(iteration)):
            census = self._discover(fn)
            self.last_census = census
            to_save = census.checkpointed
            if self._recovery_pending and iteration == self._recovery_version:
                self._recovery_pending = False
                skip_restore = (
                    self.config.recovery_scope == SCOPE_RECOVERED_ONLY
                    and self.role is not Role.RECOVERED
                )
                if not skip_restore:
                    with tel.span(f"rank{rank}", "kr.restore",
                                  version=int(iteration)):
                        with self.ctx.account.label(DATA_RECOVERY):
                            yield from self.backend.restore(iteration, to_save)
                            yield from self._stage_device_views(to_save)
                    self.recoveries_done += 1
                    if tel.enabled:
                        tel.rank_metrics(rank).inc("kr.recoveries")
                return False
            result = fn()
            if hasattr(result, "send"):  # generator region: drive it
                yield from result
            if self.config.filter(iteration):
                self.backend.register_views(to_save)
                with tel.span(f"rank{rank}", "kr.commit",
                              version=int(iteration)):
                    with self.ctx.account.label(CHECKPOINT_FUNCTION):
                        yield from self._stage_device_views(to_save)
                        yield from self.backend.checkpoint(iteration)
                self.checkpoints_taken += 1
                trace.emit(engine.now, f"kr.rank{rank}", "kr_region_commit",
                           label=label, iteration=int(iteration))
                if tel.enabled:
                    tel.rank_metrics(rank).inc("kr.commits")
        return True

    def _stage_device_views(self, views: List[Any]) -> Generator[Event, Any, None]:
        """Move device-resident views across the device link.

        Figure 3's "Heterogenous Device Data Management": checkpoint data
        living in accelerator memory is staged through the host before a
        write (and back after a restore), at the node's device-link
        bandwidth.  Host views cost nothing here.
        """
        device_bytes = sum(v.modeled_nbytes for v in views if v.on_device)
        if device_bytes > 0:
            dt = self.ctx.node.device_copy_time(device_bytes)
            yield self.ctx.engine.timeout(dt)
            # charged under the caller's label (checkpoint fn / recovery)
            self.ctx.account.charge("compute", dt)

    def _discover(self, fn: Callable[[], Any]) -> ViewCensus:
        """Discover and classify the views reachable from ``fn``.

        With ``memoize_discovery`` the census is cached per region code
        object (one heatdis iteration closure compiles once, so every
        iteration shares a key) and reused as long as no view registry
        anywhere in the process has changed -- the common steady state,
        where ``checkpoint()`` then skips the closure walk entirely.
        """
        if not self.config.memoize_discovery:
            views = discover_views(fn, extra=self._subscriptions or None)
            return self._classify(views)
        # partials and bound methods memoize on the underlying function's
        # code object; anything without one is freshly discovered each
        # call (caching on the object itself would grow without bound)
        code = getattr(fn, "__code__", None)
        if code is None:
            code = getattr(getattr(fn, "func", None), "__code__", None)
        if code is None:
            code = getattr(getattr(fn, "__func__", None), "__code__", None)
        if code is None:
            views = discover_views(fn, extra=self._subscriptions or None)
            return self._classify(views)
        key = code
        gen = registry_generation()
        cached = self._census_cache.get(key)
        if cached is not None and cached[0] == gen:
            self.discoveries_memoized += 1
            return cached[1]
        views = discover_views(fn, extra=self._subscriptions or None)
        census = self._classify(views)
        self._census_cache[key] = (gen, census)
        return census

    def _classify(self, views: List[Any]) -> ViewCensus:
        """Census using each view's own registry for alias declarations."""
        census = ViewCensus()
        seen_buffers = set()
        for view in views:
            registry = view.registry
            if registry is not None and registry.is_alias(view):
                census.aliases.append(view)
                continue
            buf = view.buffer_id()
            if buf in seen_buffers:
                census.skipped.append(view)
                continue
            seen_buffers.add(buf)
            census.checkpointed.append(view)
        return census


def make_context(
    comm: CommHandle,
    config: KRConfig,
    cluster: Cluster,
    veloc_service: Optional[VeloCService] = None,
    imr_store: Optional[IMRStore] = None,
    ckpt_name: str = "kr",
) -> Context:
    """Build a context with the configured backend (Figure 4's
    ``KokkosResilience::make_context``)."""
    if config.backend == BACKEND_VELOC:
        if veloc_service is None:
            raise ConfigError("VeloC backend requires a VeloCService")
        vconf = VeloCConfig(
            mode="single" if config.veloc_single_mode else "collective",
            ckpt_name=ckpt_name,
            incremental=config.veloc_incremental,
            dedup=config.veloc_dedup,
        )
        client = VeloCClient(comm.ctx, cluster, veloc_service, vconf, comm=comm)
        backend: Backend = VeloCBackend(client, comm)
    elif config.backend == BACKEND_STDFILE:
        backend = StdFileBackend(cluster, comm, prefix=ckpt_name)
    elif config.backend == BACKEND_FENIX_IMR:
        if imr_store is None:
            raise ConfigError("Fenix-IMR backend requires an IMRStore")
        backend = FenixIMRBackend(imr_store, comm)
    else:  # pragma: no cover - config validates
        raise ConfigError(f"unknown backend {config.backend!r}")
    return Context(comm, config, backend)
