"""Configuration for the control-flow resilience context."""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.core.filters import always, Filter
from repro.util.errors import ConfigError

BACKEND_VELOC = "veloc"
BACKEND_STDFILE = "stdfile"
BACKEND_FENIX_IMR = "fenix_imr"

SCOPE_ALL = "all"
SCOPE_RECOVERED_ONLY = "recovered_only"


@dataclass(frozen=True)
class KRConfig:
    """Context configuration.

    Attributes:
        backend: which C/R backend the context drives.
        veloc_single_mode: launch VeloC non-collectively and perform the
            best-version reduction in this layer (the paper's new
            configuration option enabling Fenix integration).
        filter: per-iteration checkpoint predicate.
        recovery_scope: ``"all"`` restores every rank (full rollback);
            ``"recovered_only"`` restores only replacement ranks (the
            partial-rollback demonstration of Section V-A).
    """

    backend: str = BACKEND_VELOC
    veloc_single_mode: bool = True
    filter: Filter = field(default=always)
    recovery_scope: str = SCOPE_ALL

    def __post_init__(self) -> None:
        if self.backend not in (BACKEND_VELOC, BACKEND_STDFILE, BACKEND_FENIX_IMR):
            raise ConfigError(f"unknown KR backend {self.backend!r}")
        if self.recovery_scope not in (SCOPE_ALL, SCOPE_RECOVERED_ONLY):
            raise ConfigError(f"unknown recovery scope {self.recovery_scope!r}")
