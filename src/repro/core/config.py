"""Configuration for the control-flow resilience context."""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.core.filters import always, Filter
from repro.util.errors import ConfigError

BACKEND_VELOC = "veloc"
BACKEND_STDFILE = "stdfile"
BACKEND_FENIX_IMR = "fenix_imr"

SCOPE_ALL = "all"
SCOPE_RECOVERED_ONLY = "recovered_only"


@dataclass(frozen=True)
class KRConfig:
    """Context configuration.

    Attributes:
        backend: which C/R backend the context drives.
        veloc_single_mode: launch VeloC non-collectively and perform the
            best-version reduction in this layer (the paper's new
            configuration option enabling Fenix integration).
        filter: per-iteration checkpoint predicate.
        recovery_scope: ``"all"`` restores every rank (full rollback);
            ``"recovered_only"`` restores only replacement ranks (the
            partial-rollback demonstration of Section V-A).
        memoize_discovery: cache view discovery/classification per bound
            region (keyed by the region callable's code object, invalidated
            whenever any view registry changes), so steady-state
            ``checkpoint()`` calls skip the closure walk entirely.  The
            cache assumes a region's code object reaches the same
            pre-existing views on every call -- the Kokkos Resilience
            contract; disable for regions that data-dependently capture
            different long-lived views from call to call.
        veloc_incremental: copy-on-write incremental VeloC snapshots
            (see :class:`repro.veloc.config.VeloCConfig.incremental`).
        veloc_dedup: content-addressed chunk dedup on the VeloC node
            server (requires ``veloc_incremental``).
    """

    backend: str = BACKEND_VELOC
    veloc_single_mode: bool = True
    filter: Filter = field(default=always)
    recovery_scope: str = SCOPE_ALL
    memoize_discovery: bool = True
    veloc_incremental: bool = True
    veloc_dedup: bool = True

    def __post_init__(self) -> None:
        if self.backend not in (BACKEND_VELOC, BACKEND_STDFILE, BACKEND_FENIX_IMR):
            raise ConfigError(f"unknown KR backend {self.backend!r}")
        if self.recovery_scope not in (SCOPE_ALL, SCOPE_RECOVERED_ONLY):
            raise ConfigError(f"unknown recovery scope {self.recovery_scope!r}")
        if self.veloc_dedup and not self.veloc_incremental:
            raise ConfigError("veloc_dedup requires veloc_incremental")
