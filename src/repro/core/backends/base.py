"""Backend protocol for the control-flow resilience layer.

A backend persists and restores a set of views for integer versions.  All
potentially blocking operations are generators.  Region/member ids are
derived from view labels with a stable hash so that every rank -- and a
replacement rank rebuilding its state after recovery -- computes identical
ids without any coordination.
"""

from __future__ import annotations

import abc
import zlib
from typing import Any, Generator, List, Set

from repro.kokkos.view import View
from repro.mpi.handle import CommHandle
from repro.sim.engine import Event


def region_id_for(label: str) -> int:
    """Stable 31-bit region/member id for a view label."""
    return zlib.crc32(label.encode("utf-8")) & 0x7FFFFFFF


class Backend(abc.ABC):
    """Persists versions of registered views."""

    #: human-readable backend name (used in reports)
    name: str = "backend"

    @abc.abstractmethod
    def register_views(self, views: List[View]) -> None:
        """Make ``views`` the protected set (idempotent per label)."""

    @abc.abstractmethod
    def checkpoint(self, version: int) -> Generator[Event, Any, None]:
        """Persist the protected set as ``version``."""

    @abc.abstractmethod
    def restore(self, version: int, views: List[View]) -> Generator[Event, Any, None]:
        """Load ``version`` into ``views``."""

    @abc.abstractmethod
    def local_versions(self) -> Set[int]:
        """Versions restorable by this rank without communication."""

    @abc.abstractmethod
    def latest_version(self) -> Generator[Event, Any, int]:
        """The newest version restorable by *every* rank (or -1).

        May communicate (the paper's "manually performing a reduction
        operation to obtain a globally-best checkpoint").
        """

    @abc.abstractmethod
    def reset(self, comm: CommHandle) -> None:
        """Adopt a repaired communicator and refresh cached identity."""

    # -- shared helper -------------------------------------------------------

    @staticmethod
    def _intersect_versions(
        comm: CommHandle, local: Set[int]
    ) -> Generator[Event, Any, int]:
        """Allgather-and-intersect version sets; returns max common or -1."""
        all_sets = yield from comm.allgather(sorted(local))
        common = set(all_sets[0])
        for s in all_sets[1:]:
            common &= set(s)
        return max(common) if common else -1
