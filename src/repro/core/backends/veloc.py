"""VeloC backend for the control-flow layer.

Two initialization modes, mirroring the paper's Section V:

- **collective** (stock Kokkos Resilience behaviour): VeloC's own
  communicator-wide query finds the globally best version.  Incompatible
  with Fenix repair, because VeloC caches the communicator it was
  initialized with.
- **single** (the paper's added configuration): VeloC runs non-collectively
  and *this backend* performs the reduction over the current -- possibly
  repaired -- communicator, then hands the agreed version to VeloC.

:meth:`reset` implements the other paper modification: accepting a new
communicator and pushing the refreshed rank identity down into VeloC.
"""

from __future__ import annotations

from typing import Any, Generator, List, Set

from repro.core.backends.base import Backend, region_id_for
from repro.kokkos.view import View
from repro.mpi.handle import CommHandle
from repro.sim.engine import Event
from repro.veloc.client import VeloCClient


class VeloCBackend(Backend):
    name = "veloc"

    def __init__(self, client: VeloCClient, comm: CommHandle) -> None:
        self.client = client
        self.comm = comm

    def register_views(self, views: List[View]) -> None:
        for view in views:
            self.client.mem_protect(region_id_for(view.label), view)

    def checkpoint(self, version: int) -> Generator[Event, Any, None]:
        yield from self.client.checkpoint(version)

    def restore(self, version: int, views: List[View]) -> Generator[Event, Any, None]:
        self.register_views(views)
        yield from self.client.recover(version)

    def local_versions(self) -> Set[int]:
        return self.client.local_versions()

    def latest_version(self) -> Generator[Event, Any, int]:
        if self.client.config.collective:
            # stock behaviour: the query is collective inside VeloC
            result = yield from self.client.restart_test()
            return result
        # single mode: reduce here, over the *current* communicator
        local = self.client.local_versions()
        result = yield from self._intersect_versions(self.comm, local)
        return result

    def reset(self, comm: CommHandle) -> None:
        self.comm = comm
        self.client.set_comm(comm)
