"""StdFile backend: synchronous writes straight to the parallel filesystem.

The reference backend (Kokkos Resilience ships an equivalent): no scratch
tier, no asynchrony -- the checkpoint function blocks for the whole PFS
write.  Useful as the ablation baseline showing what VeloC's asynchronous
server buys.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Set, Tuple

from repro.core.backends.base import Backend, region_id_for
from repro.kokkos.view import View
from repro.mpi.handle import CommHandle
from repro.sim.cluster import Cluster
from repro.sim.engine import Event
from repro.util.errors import ReproError
from repro.util.timing import CHECKPOINT_FUNCTION, DATA_RECOVERY


class StdFileBackend(Backend):
    name = "stdfile"

    def __init__(self, cluster: Cluster, comm: CommHandle, prefix: str = "stdfile"):
        self.cluster = cluster
        self.comm = comm
        self.prefix = prefix
        self._views: Dict[int, View] = {}

    @property
    def ctx(self):
        return self.comm.ctx

    def _key(self, version: int) -> Tuple:
        return (self.prefix, int(version), self.comm.rank)

    def register_views(self, views: List[View]) -> None:
        for view in views:
            self._views[region_id_for(view.label)] = view

    def checkpoint(self, version: int) -> Generator[Event, Any, None]:
        engine = self.ctx.engine
        t0 = engine.now
        snapshot = {rid: v.copy_data() for rid, v in self._views.items()}
        total = sum(v.modeled_nbytes for v in self._views.values())
        yield from self.cluster.pfs.write(
            self._key(version), (snapshot, total), total, self.ctx.node
        )
        self.ctx.account.charge(CHECKPOINT_FUNCTION, engine.now - t0)

    def restore(self, version: int, views: List[View]) -> Generator[Event, Any, None]:
        self.register_views(views)
        engine = self.ctx.engine
        t0 = engine.now
        key = self._key(version)
        if not self.cluster.pfs.exists(key):
            raise ReproError(f"stdfile: no checkpoint version {version}")
        snapshot, _total = yield from self.cluster.pfs.read(key, self.ctx.node)
        for rid, array in snapshot.items():
            view = self._views.get(rid)
            if view is not None:
                view.load_data(array)
        self.ctx.account.charge(DATA_RECOVERY, engine.now - t0)

    def local_versions(self) -> Set[int]:
        found: Set[int] = set()
        for key in self.cluster.pfs.keys():
            if (
                isinstance(key, tuple)
                and len(key) == 3
                and key[0] == self.prefix
                and key[2] == self.comm.rank
            ):
                found.add(int(key[1]))
        return found

    def latest_version(self) -> Generator[Event, Any, int]:
        result = yield from self._intersect_versions(self.comm, self.local_versions())
        return result

    def reset(self, comm: CommHandle) -> None:
        self.comm = comm
