"""Fenix-IMR backend: buddy-memory checkpointing through the control layer.

This is the paper's future-work direction made concrete ("Further
integration of Fenix and Kokkos Resilience in the form of a data-resiliency
backend") and the implementation behind the "Fenix IMR" series of
Figure 5: the same checkpoint-region API, but versions live in pair-wise
redundant rank memory instead of the filesystem.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Set

from repro.core.backends.base import Backend, region_id_for
from repro.fenix.imr import IMRStore
from repro.kokkos.view import View
from repro.mpi.handle import CommHandle
from repro.sim.engine import Event


class FenixIMRBackend(Backend):
    name = "fenix_imr"

    def __init__(self, imr: IMRStore, comm: CommHandle) -> None:
        self.imr = imr
        self.comm = comm
        self._views: Dict[int, View] = {}

    @property
    def ctx(self):
        return self.comm.ctx

    def register_views(self, views: List[View]) -> None:
        for view in views:
            self._views[region_id_for(view.label)] = view

    def checkpoint(self, version: int) -> Generator[Event, Any, None]:
        for member_id, view in self._views.items():
            yield from self.imr.store(self.ctx, self.comm, member_id, view, version)

    def restore(self, version: int, views: List[View]) -> Generator[Event, Any, None]:
        self.register_views(views)
        for member_id, view in self._views.items():
            yield from self.imr.restore(self.ctx, self.comm, member_id, view, version)

    def local_versions(self) -> Set[int]:
        """Versions every registered member can restore on this rank.

        After a repair (or on a fresh replacement process) no views are
        registered yet; the store's raw metadata answers instead -- the
        analogue of Kokkos Resilience re-fetching checkpoint metadata.
        """
        if not self._views:
            return self.imr.rank_versions(self.ctx, self.comm)
        sets = [
            self.imr.available_versions(self.ctx, self.comm, member_id)
            for member_id in self._views
        ]
        common = sets[0]
        for s in sets[1:]:
            common &= s
        return common

    def latest_version(self) -> Generator[Event, Any, int]:
        result = yield from self._intersect_versions(self.comm, self.local_versions())
        return result

    def reset(self, comm: CommHandle) -> None:
        self.comm = comm
        # a replacement process starts with no view objects; the next
        # checkpoint region re-registers what it discovers
        self._views.clear()
