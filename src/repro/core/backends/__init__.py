"""Pluggable checkpoint/restart backends for the control-flow layer."""

from repro.core.backends.base import Backend, region_id_for
from repro.core.backends.veloc import VeloCBackend
from repro.core.backends.stdfile import StdFileBackend
from repro.core.backends.fenix_imr import FenixIMRBackend

__all__ = [
    "Backend",
    "region_id_for",
    "VeloCBackend",
    "StdFileBackend",
    "FenixIMRBackend",
]
