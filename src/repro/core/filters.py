"""Checkpoint filters (Kokkos Resilience's checkpoint_filter concept).

A filter decides, per iteration, whether the checkpoint region actually
writes a checkpoint.  The paper's benchmarks checkpoint by iteration count
(Heatdis: "6 checkpoints" over the run), i.e. :func:`every_nth`.
"""

from __future__ import annotations

from typing import Callable

from repro.util.errors import ConfigError

Filter = Callable[[int], bool]


def every_nth(n: int, offset: int = 0) -> Filter:
    """True on iterations ``offset + k*n`` for ``k >= 1`` (skips iteration
    ``offset`` itself so a run's very first iteration is not checkpointed,
    matching VeloC benchmark practice)."""
    if n < 1:
        raise ConfigError(f"filter interval must be >= 1, got {n}")

    def filt(iteration: int) -> bool:
        delta = iteration - offset
        return delta > 0 and delta % n == 0

    return filt


def always(iteration: int) -> bool:
    """Checkpoint every iteration."""
    return True


def never(iteration: int) -> bool:
    """Never checkpoint (control runs)."""
    return False
