"""Command-line driver: regenerate the paper's evaluation.

Usage::

    python -m repro.experiments
        [fig5|fig6|fig7|partial|complexity|campaign|all]
        [--ranks N] [--full-scale]
        [--jobs N] [--no-cache] [--cache-dir DIR] [--max-records N]
        [--progress-jsonl PATH]

Prints each figure's table (the same rows the benchmark suite writes to
``results/``).  Sweeps fan out over ``--jobs`` worker processes and are
served from the content-addressed run cache under ``results/cache/``
unless ``--no-cache`` is given; cached and parallel results are
bit-identical to a fresh sequential run.  Every invocation ends with the
run-cache hit/miss/skip tally, and ``--progress-jsonl`` streams per-cell
progress events (state, ETA, cache hits, worker utilization) for
dashboards to tail.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.ablation_checkpoint import (
    STRATEGY,
    format_ablation,
    run_checkpoint_ablation,
    verify_restore_equivalence,
)
from repro.experiments.campaign import format_campaign, run_campaign
from repro.experiments.complexity import analyze_complexity, format_complexity
from repro.experiments.fig5_heatdis import (
    format_fig5,
    run_fig5_data_scaling,
    run_fig5_weak_scaling,
)
from repro.experiments.fig6_minimd import format_fig6, run_fig6_weak_scaling
from repro.experiments.overhead import (
    format_overhead_table,
    run_overhead_attribution,
)
from repro.experiments.fig7_views import format_fig7, run_fig7_census
from repro.experiments.partial_rollback import run_partial_rollback_comparison
from repro.parallel import (
    DEFAULT_TRACE_MAX_RECORDS,
    RunCache,
    default_progress,
    resolve_jobs,
)


def _fig5(args) -> None:
    ranks = args.ranks or (64 if args.full_scale else 8)
    print(format_fig5(
        run_fig5_data_scaling(n_ranks=ranks, jobs=args.jobs,
                              cache=args.cache, progress=args.progress),
        title=f"Figure 5 (left): data scaling at {ranks} ranks",
    ))
    nodes = [4, 16, 64] if args.full_scale else [2, 4, 8]
    print()
    print(format_fig5(
        run_fig5_weak_scaling(nodes=nodes, jobs=args.jobs,
                              cache=args.cache, progress=args.progress),
        title="Figure 5 (right): weak scaling at 1GB/node",
    ))


def _fig6(args) -> None:
    print(format_fig6(run_fig6_weak_scaling(
        ranks=[8, 27, 64] if args.full_scale else [4, 8],
        jobs=args.jobs, cache=args.cache, progress=args.progress,
    )))


def _fig7(args) -> None:
    print(format_fig7(run_fig7_census(jobs=args.jobs,
                                      progress=args.progress)))


def _partial(args) -> None:
    result = run_partial_rollback_comparison(n_ranks=args.ranks or 8)
    print("Partial vs full rollback (Section VI-D2):")
    print(f"  full recovery cost:    {result.full_recovery_cost:.2f} s")
    print(f"  partial recovery cost: {result.partial_recovery_cost:.2f} s")
    print(f"  speedup: {result.speedup:.2f}x (paper: 'nearly 2x')")


def _complexity(_args) -> None:
    print(format_complexity(analyze_complexity()))


def _overhead(args) -> None:
    rows = run_overhead_attribution(n_ranks=args.ranks or 4)
    print(format_overhead_table(rows))


def _campaign(args) -> None:
    study = run_campaign(
        n_ranks=args.ranks or 8,
        jobs=args.jobs,
        cache=args.cache,
        trace_max_records=args.max_records,
        progress=args.progress,
        rules=args.rules,
    )
    print(format_campaign(study))
    if args.rules:
        fired = sum(len(r.report.alerts) for r in study.results)
        print(f"\nSLO rules ({args.rules}): {fired} alert(s) fired")
        for r in study.results:
            for alert in r.report.alerts:
                print(f"  [{r.strategy}] {alert.render()}")


def _ablation(args) -> None:
    ranks = args.ranks or 4
    print(format_ablation(run_checkpoint_ablation(
        n_ranks=ranks, jobs=args.jobs, cache=args.cache,
        progress=args.progress,
    ), title=f"Checkpoint data-path ablation ({ranks} ranks, {STRATEGY})"))
    outcome = verify_restore_equivalence(n_ranks=ranks)
    print(f"restore equivalence: OK "
          f"({outcome['compared']} rank grids bit-identical across "
          f"incremental/full and failed/clean runs)")


COMMANDS = {
    "fig5": _fig5,
    "ablation": _ablation,
    "fig6": _fig6,
    "fig7": _fig7,
    "partial": _partial,
    "complexity": _complexity,
    "overhead": _overhead,
    "campaign": _campaign,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument("what", choices=[*COMMANDS, "all"], nargs="?",
                        default="all")
    parser.add_argument("--ranks", type=int, default=None,
                        help="override the rank count")
    parser.add_argument("--full-scale", action="store_true",
                        help="use the paper's node counts (slower)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for sweep cells "
                             "(0 = one per CPU; default 1 = sequential)")
    parser.add_argument("--no-cache", action="store_true",
                        help="always re-simulate; ignore the run cache")
    parser.add_argument("--cache-dir", default="results/cache",
                        help="run-cache directory (default results/cache)")
    parser.add_argument("--max-records", type=int,
                        default=DEFAULT_TRACE_MAX_RECORDS, metavar="N",
                        help="Trace ring-buffer size for telemetered sweep "
                             "runs (default %(default)s; keeps multi-hour "
                             "campaigns at bounded memory)")
    parser.add_argument("--progress-jsonl", default=None, metavar="PATH",
                        help="stream per-cell progress events (JSON lines) "
                             "to PATH; a TTY status line is shown on "
                             "stderr automatically when it is a terminal")
    parser.add_argument("--rules", default=None, metavar="PATH",
                        help="SLO rules file (repro.live) evaluated live "
                             "inside each campaign cell; fired alerts are "
                             "printed and land in the reports")
    args = parser.parse_args(argv)
    # one cache and one progress stream for the whole invocation, so the
    # final tally covers every figure that ran
    args.cache = None if args.no_cache else RunCache(args.cache_dir)
    args.progress = default_progress(resolve_jobs(args.jobs),
                                     jsonl_path=args.progress_jsonl)
    targets = list(COMMANDS) if args.what == "all" else [args.what]
    for i, name in enumerate(targets):
        if i:
            print("\n" + "=" * 72 + "\n")
        COMMANDS[name](args)
    if args.progress is not None:
        args.progress.finish()
    if args.cache is not None:
        print()
        print(args.cache.summary())
    return 0


if __name__ == "__main__":
    sys.exit(main())
