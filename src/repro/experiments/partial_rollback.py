"""Section VI-D2: partial rollback vs full rollback on convergence Heatdis.

"In our example of the heat distribution application iteratively lowering
the error, we see a nearly 2x speedup of recovery from just keeping the
in-progress data on surviving ranks."

Both configurations run the run-until-convergence Heatdis under
Fenix+KR+VeloC with the same mid-run failure; the only difference is the
recovery scope (``all`` restores every rank; ``recovered_only`` restores
just the replacement).  The comparison metric is the *recovery cost*:
extra wall time of the failing run over the clean run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import HeatdisConfig
from repro.experiments.common import paper_env
from repro.harness import run_heatdis_job
from repro.sim import IterationFailure

N_MAX_ITERS = 2000
CKPT_INTERVAL = 60
CONVERGENCE = 1.0
WORK_MULTIPLIER = 200.0


@dataclass
class PartialRollbackResult:
    clean_wall: float
    full_rollback_wall: float
    partial_rollback_wall: float
    clean_iterations: int
    full_iterations: int
    partial_iterations: int

    @property
    def full_recovery_cost(self) -> float:
        return self.full_rollback_wall - self.clean_wall

    @property
    def partial_recovery_cost(self) -> float:
        return self.partial_rollback_wall - self.clean_wall

    @property
    def speedup(self) -> float:
        """Recovery-cost speedup of partial over full rollback."""
        if self.partial_recovery_cost <= 0:
            return float("inf")
        return self.full_recovery_cost / self.partial_recovery_cost


def run_partial_rollback_comparison(
    n_ranks: int = 8,
    fail_after_ckpt: int = 2,
    victim: int = 1,
) -> PartialRollbackResult:
    # NOTE: Jacobi convergence slows with global grid height (rows^2), so
    # the real grid stays shallow as ranks grow; modelled size is separate.
    cfg = HeatdisConfig(
        local_rows=max(2, 32 // n_ranks),
        cols=16,
        modeled_bytes_per_rank=256e6,
        n_iters=N_MAX_ITERS,
        convergence_threshold=CONVERGENCE,
        work_multiplier=WORK_MULTIPLIER,
    )

    def plan():
        return IterationFailure.between_checkpoints(
            victim, CKPT_INTERVAL, fail_after_ckpt, fraction=0.95
        )

    clean = run_heatdis_job(
        paper_env(n_ranks + 1), "fenix_kr_veloc", n_ranks, cfg, CKPT_INTERVAL
    )
    full = run_heatdis_job(
        paper_env(n_ranks + 1), "fenix_kr_veloc", n_ranks, cfg,
        CKPT_INTERVAL, plan=plan(),
    )
    partial = run_heatdis_job(
        paper_env(n_ranks + 1), "fenix_kr_partial", n_ranks, cfg,
        CKPT_INTERVAL, plan=plan(),
    )
    return PartialRollbackResult(
        clean_wall=clean.wall_time,
        full_rollback_wall=full.wall_time,
        partial_rollback_wall=partial.wall_time,
        clean_iterations=clean.results[0]["iterations"],
        full_iterations=full.results[0]["iterations"],
        partial_iterations=partial.results[0]["iterations"],
    )
