"""Figure 5: Heatdis overhead and failure cost.

Left panel: 64-node runs with per-node data scaled over
{16 MB, 64 MB, 256 MB, 1 GB}.  Right panel: 1 GB per node, weak-scaled
over {4, 16, 64} nodes.  For each strategy the paper stacks the
no-failure run's categories (bottom) and shows the *extra* cost of a
failing run (top): we report both runs per cell.

Paper protocol (Section VI-C): every configuration performs 6 checkpoints,
each half the application data; failures kill one rank ~95% of the way
between checkpoints 4 and 5; reported numbers come from the in-app
category accounting plus the ``time mpirun`` wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.apps import HeatdisConfig
from repro.harness import RunReport
from repro.experiments.common import paper_env
from repro.parallel import (
    CampaignProgress,
    CellSpec,
    PlanSpec,
    RunCache,
    run_cells,
)
from repro.util.units import parse_size

#: the strategy columns of Figure 5
FIG5_STRATEGIES = [
    "none",
    "veloc",
    "kr_veloc",
    "fenix_veloc",
    "fenix_kr_veloc",
    "fenix_kr_imr",
]

#: 6 checkpoints over the run (Section VI-C)
N_ITERS = 60
CKPT_INTERVAL = 9
#: failure 95% of the way between checkpoints 4 and 5
FAIL_AFTER_CKPT = 4
#: compute folded per modelled iteration (see HeatdisConfig.work_multiplier)
WORK_MULTIPLIER = 2000.0

DATA_SIZES = ["16MB", "64MB", "256MB", "1GB"]
WEAK_SCALING_NODES = [4, 16, 64]


@dataclass
class Fig5Cell:
    """One (strategy, size, nodes) cell: clean + failure runs."""

    strategy: str
    data_bytes: float
    n_ranks: int
    clean: RunReport
    failed: Optional[RunReport]

    @property
    def overhead_categories(self) -> Dict[str, float]:
        return self.clean.as_row()

    @property
    def failure_cost(self) -> Optional[float]:
        """Extra wall time the failure added (the figure's top panel)."""
        if self.failed is None:
            return None
        return self.failed.wall_time - self.clean.wall_time


def _heat_cfg(data_bytes: float, jitter: float = 0.05) -> HeatdisConfig:
    return HeatdisConfig(
        local_rows=8,
        cols=16,
        modeled_bytes_per_rank=data_bytes,
        n_iters=N_ITERS,
        compute_jitter=jitter,
        work_multiplier=WORK_MULTIPLIER,
    )


def _cell_specs(
    strategy: str,
    data_bytes: float,
    n_ranks: int,
    with_failure: bool,
    victim: int,
    pfs_servers: int,
) -> List[CellSpec]:
    """The clean (and, when applicable, failing) specs of one figure cell."""
    cfg = _heat_cfg(data_bytes)

    def spec(plan: PlanSpec, tag: str) -> CellSpec:
        return CellSpec(
            app="heatdis",
            strategy=strategy,
            n_ranks=n_ranks,
            config=cfg,
            ckpt_interval=CKPT_INTERVAL,
            env=paper_env(n_nodes=n_ranks + 1, pfs_servers=pfs_servers),
            plan=plan,
            label=tag,
        )

    specs = [spec(PlanSpec.none(), "clean")]
    if with_failure and strategy != "none":
        specs.append(
            spec(
                PlanSpec.between_checkpoints(
                    victim, CKPT_INTERVAL, FAIL_AFTER_CKPT, fraction=0.95
                ),
                "failed",
            )
        )
    return specs


def _assemble_cells(
    keys: List[Tuple[str, float, int]],
    spec_groups: List[List[CellSpec]],
    jobs: int,
    cache: Optional[RunCache],
    progress: Optional[CampaignProgress] = None,
) -> List[Fig5Cell]:
    """Flatten spec groups, execute once, regroup into figure cells."""
    flat = [s for group in spec_groups for s in group]
    executed = iter(run_cells(flat, jobs=jobs, cache=cache,
                              progress=progress))
    cells = []
    for (strategy, data_bytes, n_ranks), group in zip(keys, spec_groups):
        reports = {s.label: next(executed).report for s in group}
        cells.append(
            Fig5Cell(strategy, data_bytes, n_ranks,
                     reports["clean"], reports.get("failed"))
        )
    return cells


def run_fig5_cell(
    strategy: str,
    data_bytes: "float | str",
    n_ranks: int,
    with_failure: bool = True,
    victim: int = 1,
    pfs_servers: int = 4,
) -> Fig5Cell:
    """Run one Figure-5 cell (a clean run and optionally a failing run)."""
    data_bytes = parse_size(data_bytes)
    specs = _cell_specs(strategy, data_bytes, n_ranks, with_failure, victim,
                        pfs_servers)
    return _assemble_cells(
        [(strategy, data_bytes, n_ranks)], [specs], jobs=1, cache=None
    )[0]


def run_fig5_data_scaling(
    n_ranks: int = 64,
    sizes: Optional[List[str]] = None,
    strategies: Optional[List[str]] = None,
    with_failure: bool = True,
    jobs: int = 1,
    cache: Optional[RunCache] = None,
    progress: Optional[CampaignProgress] = None,
) -> List[Fig5Cell]:
    """The left panel: data scaling at fixed node count."""
    keys, groups = [], []
    for size in sizes or DATA_SIZES:
        for strategy in strategies or FIG5_STRATEGIES:
            data_bytes = parse_size(size)
            keys.append((strategy, data_bytes, n_ranks))
            groups.append(
                _cell_specs(strategy, data_bytes, n_ranks, with_failure,
                            victim=1, pfs_servers=4)
            )
    return _assemble_cells(keys, groups, jobs=jobs, cache=cache,
                           progress=progress)


def run_fig5_weak_scaling(
    data_size: str = "1GB",
    nodes: Optional[List[int]] = None,
    strategies: Optional[List[str]] = None,
    with_failure: bool = True,
    jobs: int = 1,
    cache: Optional[RunCache] = None,
    progress: Optional[CampaignProgress] = None,
) -> List[Fig5Cell]:
    """The right panel: node weak scaling at 1 GB per node."""
    keys, groups = [], []
    for n in nodes or WEAK_SCALING_NODES:
        for strategy in strategies or FIG5_STRATEGIES:
            data_bytes = parse_size(data_size)
            keys.append((strategy, data_bytes, n))
            groups.append(
                _cell_specs(strategy, data_bytes, n, with_failure,
                            victim=1, pfs_servers=4)
            )
    return _assemble_cells(keys, groups, jobs=jobs, cache=cache,
                           progress=progress)


def format_fig5(cells: List[Fig5Cell], title: str = "Figure 5") -> str:
    """Render cells as the figure's rows (categories + failure cost)."""
    from repro.harness.report import HEATDIS_CATEGORIES, summarize_categories
    from repro.util.units import format_size

    lines = [title]
    header = (
        ["strategy", "data", "ranks"]
        + HEATDIS_CATEGORIES
        + ["wall", "fail_cost"]
    )
    rows = []
    for cell in cells:
        summary = summarize_categories(cell.clean, HEATDIS_CATEGORIES)
        fail = "-" if cell.failure_cost is None else f"{cell.failure_cost:.2f}"
        rows.append(
            [cell.strategy, format_size(cell.data_bytes), str(cell.n_ranks)]
            + [f"{summary[c]:.2f}" for c in HEATDIS_CATEGORIES]
            + [f"{cell.clean.wall_time:.2f}", fail]
        )
    widths = [max(len(header[i]), *(len(r[i]) for r in rows))
              for i in range(len(header))]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
