"""Figure 7: MiniMD view census vs simulation size.

"Statistics on the relative sizes of the data regions of MiniMD and how
they are checkpointed or ignored" over simulation sizes 100^3 .. 400^3:
the fraction of view memory that is Checkpointed, declared Alias, or
Skipped (duplicate captures), plus the Section VI-E counts (61 views:
39 checkpointed / 3 aliases / 19 skipped; one view dominating).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps.minimd import MiniMDConfig, MiniMDState
from repro.kokkos import KokkosRuntime
from repro.parallel import CampaignProgress, parallel_map

SIM_SIZES = [100, 200, 300, 400]


@dataclass
class Fig7Row:
    sim_size: int
    counts: Dict[str, int]
    fractions: Dict[str, float]
    bytes_by_class: Dict[str, float]
    dominant_view_fraction: float  # of the checkpointed bytes


def _census_row(size: int) -> Fig7Row:
    """One simulation size's census (module-level: pool workers pickle it)."""
    cfg = MiniMDConfig(
        real_atoms_per_rank=24, problem_size=size, n_ranks_for_model=8
    )
    runtime = KokkosRuntime()
    state = MiniMDState(runtime, cfg, comm_rank=0, comm_size=2)
    census = runtime.registry.census(state.all_views())
    sizes_by_class = census.bytes_by_class()
    ckpt_sizes = sorted(
        (v.modeled_nbytes for v in census.checkpointed), reverse=True
    )
    return Fig7Row(
        sim_size=size,
        counts={
            "checkpointed": len(census.checkpointed),
            "alias": len(census.aliases),
            "skipped": len(census.skipped),
        },
        fractions=census.fractions_by_class(),
        bytes_by_class=sizes_by_class,
        dominant_view_fraction=(
            ckpt_sizes[0] / sum(ckpt_sizes) if ckpt_sizes else 0.0
        ),
    )


def run_fig7_census(
    sizes: Optional[List[int]] = None,
    jobs: int = 1,
    progress: Optional[CampaignProgress] = None,
) -> List[Fig7Row]:
    return parallel_map(_census_row, sizes or SIM_SIZES, jobs=jobs,
                        progress=progress)


def format_fig7(rows: List[Fig7Row], title: str = "Figure 7") -> str:
    lines = [title, "size^3  checkpointed  alias  skipped  (counts)  "
                    "%ckpt  %alias  %skip  dominant%"]
    for row in rows:
        lines.append(
            f"{row.sim_size:>5}  "
            f"{row.counts['checkpointed']:>12}  {row.counts['alias']:>5}  "
            f"{row.counts['skipped']:>7}            "
            f"{100 * row.fractions['checkpointed']:5.1f}  "
            f"{100 * row.fractions['alias']:6.1f}  "
            f"{100 * row.fractions['skipped']:5.1f}  "
            f"{100 * row.dominant_view_fraction:8.1f}"
        )
    return "\n".join(lines)
