"""Ablation: full-copy vs incremental checkpoint data path.

Runs the Figure-5 heatdis scenario and the Figure-6 miniMD scenario with
the VeloC data path in both configurations:

- ``full``: every checkpoint deep-copies every protected region and
  flushes the full logical size to the PFS (the pre-incremental
  behavior, ``veloc_incremental=False``);
- ``incremental``: copy-on-write chunk snapshots -- only dirty chunks
  are copied, and the node server's content-addressed chunk index
  flushes only novel chunks (``veloc_incremental=True``,
  ``veloc_dedup=True``).

Each (app, arm) cell runs clean and with the paper's between-checkpoints
failure, so the table shows checkpoint cost, failure cost, and the data
path's ``dirty_fraction`` / ``dedup_ratio`` side by side.

The correctness bar is :func:`verify_restore_equivalence`: the failing
fig5 heatdis run must produce *bit-identical* final grids under both
arms, and the failing run must match the clean run (recovery is exact).
The simulated apps mutate raw arrays, so conservative dirty tracking
keeps them at full copies -- the ablation therefore demonstrates
*equivalence* plus whatever dedup the content-addressed store finds,
while the host-side win for in-place writers is measured by the
``test_checkpoint_path`` benchmark.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.apps import MiniMDConfig
from repro.experiments.common import paper_env
from repro.experiments.fig5_heatdis import (
    CKPT_INTERVAL,
    FAIL_AFTER_CKPT,
    _heat_cfg,
)
from repro.experiments.fig6_minimd import MINIMD_APP_INIT, _md_cfg
from repro.harness import RunReport
from repro.parallel import (
    CampaignProgress,
    CellSpec,
    PlanSpec,
    RunCache,
    execute_cell,
    run_cells,
)
from repro.util.units import parse_size

#: the two data-path arms, by the env flag they set
ARMS = ["full", "incremental"]

#: all three resilience layers active, as in the paper's headline column
STRATEGY = "fenix_kr_veloc"

DEFAULT_RANKS = 4
DEFAULT_DATA_SIZE = "64MB"


@dataclass
class AblationCell:
    """One (app, arm) cell: clean + failing runs of the same scenario."""

    app: str
    arm: str
    n_ranks: int
    clean: RunReport
    failed: RunReport

    @property
    def checkpoint_seconds(self) -> float:
        return self.clean.category("checkpoint_function")

    @property
    def failure_cost(self) -> float:
        return self.failed.wall_time - self.clean.wall_time

    @property
    def data_path(self) -> Dict[str, float]:
        return self.clean.data_path


def _arm_env(app: str, arm: str, n_ranks: int, pfs_servers: int = 2):
    incremental = arm == "incremental"
    env = paper_env(
        n_nodes=n_ranks + 1,
        pfs_servers=pfs_servers,
        veloc_incremental=incremental,
        veloc_dedup=incremental,
    )
    if app == "minimd":
        # mirror fig6's larger application init (the point of miniMD)
        costs = dataclasses.replace(
            env.costs,
            app_noncomm_init=MINIMD_APP_INIT / 2,
            app_comm_init=MINIMD_APP_INIT / 2,
        )
        env = dataclasses.replace(env, costs=costs)
    return env


def _fail_plan(victim: int = 1) -> PlanSpec:
    return PlanSpec.between_checkpoints(
        victim, CKPT_INTERVAL, FAIL_AFTER_CKPT, fraction=0.95
    )


def _arm_specs(app: str, arm: str, n_ranks: int,
               data_bytes: float) -> List[CellSpec]:
    if app == "heatdis":
        cfg = _heat_cfg(data_bytes)
    else:
        cfg: MiniMDConfig = _md_cfg(n_ranks, jitter=0.05)
    env = _arm_env(app, arm, n_ranks)

    def spec(plan: PlanSpec, tag: str) -> CellSpec:
        return CellSpec(
            app=app,
            strategy=STRATEGY,
            n_ranks=n_ranks,
            config=cfg,
            ckpt_interval=CKPT_INTERVAL,
            env=env,
            plan=plan,
            label=tag,
        )

    return [spec(PlanSpec.none(), "clean"), spec(_fail_plan(), "failed")]


def run_checkpoint_ablation(
    n_ranks: int = DEFAULT_RANKS,
    data_size: "float | str" = DEFAULT_DATA_SIZE,
    apps: Optional[List[str]] = None,
    jobs: int = 1,
    cache: Optional[RunCache] = None,
    progress: Optional[CampaignProgress] = None,
) -> List[AblationCell]:
    """Run the full-vs-incremental sweep; cells come back app-major."""
    data_bytes = parse_size(data_size)
    keys, groups = [], []
    for app in apps or ["heatdis", "minimd"]:
        for arm in ARMS:
            keys.append((app, arm))
            groups.append(_arm_specs(app, arm, n_ranks, data_bytes))
    flat = [s for group in groups for s in group]
    executed = iter(run_cells(flat, jobs=jobs, cache=cache,
                              progress=progress))
    cells = []
    for (app, arm), group in zip(keys, groups):
        reports = {s.label: next(executed).report for s in group}
        cells.append(AblationCell(app, arm, n_ranks,
                                  reports["clean"], reports["failed"]))
    return cells


def _final_grids(report: RunReport) -> Dict[int, np.ndarray]:
    return {rank: out["grid"] for rank, out in sorted(report.results.items())}


def verify_restore_equivalence(
    n_ranks: int = DEFAULT_RANKS,
    data_size: "float | str" = DEFAULT_DATA_SIZE,
) -> Dict[str, int]:
    """Assert the incremental data path restores bit-identically.

    Runs the failing fig5 heatdis scenario in-process (``run_cells``
    strips per-rank payloads at the worker boundary, so this check keeps
    the reports local) under both arms plus the incremental clean run,
    and asserts:

    1. failed(incremental) == failed(full) per-rank, bit for bit;
    2. failed(incremental) == clean(incremental): recovery replays the
       lost iterations to the exact same state.

    Returns ``{"ranks": N, "compared": count}`` on success; raises
    ``AssertionError`` naming the first mismatching rank otherwise.
    """
    data_bytes = parse_size(data_size)
    full_clean, full_failed = _arm_specs(
        "heatdis", "full", n_ranks, data_bytes)
    incr_clean, incr_failed = _arm_specs(
        "heatdis", "incremental", n_ranks, data_bytes)
    del full_clean  # the full arm only needs its failing run here
    grids = {
        name: _final_grids(execute_cell(spec).report)
        for name, spec in [("full/failed", full_failed),
                           ("incr/failed", incr_failed),
                           ("incr/clean", incr_clean)]
    }
    compared = 0
    for a, b in [("incr/failed", "full/failed"),
                 ("incr/failed", "incr/clean")]:
        assert grids[a].keys() == grids[b].keys(), (
            f"rank sets differ between {a} and {b}")
        for rank in grids[a]:
            ga, gb = grids[a][rank], grids[b][rank]
            assert ga.shape == gb.shape and np.array_equal(ga, gb), (
                f"restore mismatch: rank {rank} grid differs "
                f"between {a} and {b}")
            compared += 1
    return {"ranks": n_ranks, "compared": compared}


def format_ablation(cells: List[AblationCell],
                    title: str = "Checkpoint data-path ablation") -> str:
    def pct(dp: Dict[str, float], key: str) -> str:
        return f"{100.0 * dp[key]:.1f}" if key in dp else "--"

    lines = [title]
    header = ["app", "arm", "ranks", "ckpt_s", "wall", "fail_cost",
              "dirty%", "dedup%"]
    rows = []
    for cell in cells:
        rows.append([
            cell.app, cell.arm, str(cell.n_ranks),
            f"{cell.checkpoint_seconds:.2f}",
            f"{cell.clean.wall_time:.2f}",
            f"{cell.failure_cost:.2f}",
            pct(cell.data_path, "dirty_fraction"),
            pct(cell.data_path, "dedup_ratio"),
        ])
    widths = [max(len(header[i]), *(len(r[i]) for r in rows))
              for i in range(len(header))]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
