"""Per-layer overhead attribution across the Figure-5 strategies.

Runs one small seeded failure scenario under every strategy with the
profiler on and tabulates the mean per-rank ledger -- the "where do the
resilience seconds go" companion to Figure 5's wall-clock bars.  Unlike
the TimeAccount buckets the figures use, these columns come from the
exact span-stream attribution (:mod:`repro.profile.ledger`), so the
conservation invariant (columns sum to the mean makespan) holds for
every row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.apps.heatdis import HeatdisConfig
from repro.experiments.common import paper_env
from repro.harness.runner import run_heatdis_job
from repro.harness.strategies import STRATEGIES
from repro.profile.categories import CATEGORIES
from repro.sim.failures import IterationFailure, NoFailures
from repro.telemetry import Telemetry

#: strategies rows appear in (the Figure-5 order)
DEFAULT_STRATEGIES = (
    "none",
    "veloc",
    "kr_veloc",
    "fenix_veloc",
    "fenix_kr_veloc",
    "fenix_kr_imr",
)


@dataclass(frozen=True)
class OverheadRow:
    """One strategy's mean per-rank ledger."""

    strategy: str
    wall_time: float
    mean_makespan: float
    mean: Dict[str, float]
    dropped: int


def run_overhead_attribution(
    n_ranks: int = 4,
    n_iters: int = 30,
    ckpt_interval: int = 10,
    modeled_bytes: float = 16e6,
    kill_rank: Optional[int] = 2,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    seed: int = 20220906,
) -> List[OverheadRow]:
    """Profile each strategy on the same seeded single-failure scenario.

    The failure-free ``none`` strategy keeps its NoFailures plan (there
    is no recovery path to attribute), every other strategy gets one
    kill between checkpoints -- the paper's injection protocol.
    """
    rows: List[OverheadRow] = []
    for name in strategies:
        spec = STRATEGIES[name]
        n_spares = 1 if spec.fenix else 0
        env = paper_env(n_ranks + max(n_spares, 1), n_spares=n_spares,
                        seed=seed, pfs_servers=2)
        if kill_rank is not None and spec.checkpointing:
            plan = IterationFailure.between_checkpoints(
                kill_rank, ckpt_interval, 1
            )
        else:
            plan = NoFailures()
        tel = Telemetry(enabled=True)
        report = run_heatdis_job(
            env, name, n_ranks,
            HeatdisConfig(n_iters=n_iters,
                          modeled_bytes_per_rank=modeled_bytes),
            ckpt_interval, plan=plan, telemetry=tel, profile=True,
        )
        prof = report.profile
        rows.append(OverheadRow(
            strategy=name,
            wall_time=report.wall_time,
            mean_makespan=prof["mean_makespan"],
            mean=dict(prof["mean"]),
            dropped=int(prof["dropped"]),
        ))
    return rows


def format_overhead_table(rows: Sequence[OverheadRow],
                          title: str = "Per-layer cost attribution "
                                       "(mean seconds per rank)") -> str:
    """Aligned text table; only categories some row actually spent."""
    cats = [c for c in CATEGORIES
            if any(r.mean.get(c, 0.0) > 1e-12 for r in rows)]
    header = ["strategy"] + cats + ["makespan", "wall"]
    table: List[List[str]] = []
    for r in rows:
        table.append([r.strategy]
                     + [f"{r.mean.get(c, 0.0):.4f}" for c in cats]
                     + [f"{r.mean_makespan:.4f}", f"{r.wall_time:.4f}"])
    widths = [max(len(header[i]), *(len(row[i]) for row in table))
              for i in range(len(header))]
    lines = [title,
             "  ".join(h.ljust(w) for h, w in zip(header, widths)),
             "  ".join("-" * w for w in widths)]
    lines += ["  ".join(c.ljust(w) for c, w in zip(row, widths))
              for row in table]
    dropped = sum(r.dropped for r in rows)
    if dropped:
        lines.append(f"WARNING: {dropped} trace records dropped across "
                     "rows -- attribution may be incomplete")
    return "\n".join(lines)
