"""Section VI-E: complexity-of-use statistics, over this repository.

The paper quantifies integration effort on MiniMD: "over the 20+ source
files 15 of them collectively contain over 148 locations with MPI code.
With a typical ULFM error handling approach, each of these would need to
be adapted ... Using Fenix we can simply swap references to
MPI_COMM_WORLD to the resilient communicator ... and then add in fewer
than 20 lines of simple code to a single file."

The analogue here is computed from our own sources with ``ast``:

- MPI call sites across the application modules (every one of which would
  need ULFM error handling without Fenix);
- resilience-specific lines in the KR-integrated application mains (the
  "fewer than 20 lines" claim) versus the hand-integrated variant.
"""

from __future__ import annotations

import ast
import inspect
from dataclasses import dataclass, field
from typing import Dict, List

import repro.apps.heatdis as heatdis_mod
import repro.apps.heatdis_manual as manual_mod
import repro.apps.minimd as minimd_mod

#: CommHandle methods that are MPI call sites
MPI_METHODS = {
    "send", "recv", "recv_status", "isend", "irecv", "sendrecv", "waitall",
    "bcast", "reduce", "allreduce", "barrier", "gather", "allgather",
    "scatter", "alltoall", "shrink", "agree", "revoke", "get_failed",
    "ack_failed",
}

#: identifiers marking a line as resilience-integration code
RESILIENCE_MARKERS = (
    "kr", "make_kr", "checkpoint", "latest_version", "reset", "recover",
    "mem_protect", "restart_test", "veloc", "client", "Role", "role",
    "tracker", "recompute",
)


@dataclass
class ModuleStats:
    module: str
    mpi_call_sites: int
    total_lines: int
    resilience_lines: int


@dataclass
class ComplexityReport:
    modules: List[ModuleStats] = field(default_factory=list)

    @property
    def total_mpi_call_sites(self) -> int:
        return sum(m.mpi_call_sites for m in self.modules)

    @property
    def files_with_mpi(self) -> int:
        return sum(1 for m in self.modules if m.mpi_call_sites > 0)

    def module(self, name: str) -> ModuleStats:
        for m in self.modules:
            if m.module == name:
                return m
        raise KeyError(name)


class _MPICallCounter(ast.NodeVisitor):
    def __init__(self) -> None:
        self.count = 0

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MPI_METHODS:
            self.count += 1
        self.generic_visit(node)


def _analyze_module(mod) -> ModuleStats:
    source = inspect.getsource(mod)
    tree = ast.parse(source)
    counter = _MPICallCounter()
    counter.visit(tree)
    lines = [
        ln for ln in source.splitlines()
        if ln.strip() and not ln.strip().startswith("#")
    ]
    resilience = [
        ln for ln in lines
        if any(marker in ln for marker in RESILIENCE_MARKERS)
    ]
    return ModuleStats(
        module=mod.__name__.rsplit(".", 1)[-1],
        mpi_call_sites=counter.count,
        total_lines=len(lines),
        resilience_lines=len(resilience),
    )


def analyze_complexity() -> ComplexityReport:
    """Static statistics over the application sources of this repo."""
    report = ComplexityReport()
    for mod in (heatdis_mod, manual_mod, minimd_mod):
        report.modules.append(_analyze_module(mod))
    return report


def integration_line_counts() -> Dict[str, int]:
    """Lines of resilience-integration code in each application main.

    The KR-integrated mains concentrate resilience handling in one small
    function; the manual variant spreads VeloC bookkeeping through the
    loop.  (The Fenix part of the paper's claim -- swap the communicator,
    no per-call-site error handling -- is structural: every MPI call site
    counted by :func:`analyze_complexity` goes unmodified.)
    """
    out = {}
    for name, fn in (
        ("heatdis_kr", heatdis_mod.make_heatdis_main),
        ("heatdis_manual", manual_mod.make_manual_heatdis_main),
        ("minimd_kr", minimd_mod.make_minimd_main),
    ):
        source = inspect.getsource(fn)
        lines = [
            ln for ln in source.splitlines()
            if ln.strip() and not ln.strip().startswith("#")
            and '"""' not in ln
        ]
        resilience = [
            ln for ln in lines
            if any(marker in ln for marker in RESILIENCE_MARKERS)
        ]
        out[name] = len(resilience)
    return out


def format_complexity(report: ComplexityReport) -> str:
    lines = [
        "Section VI-E analogue: integration complexity over this repo",
        f"  MPI call sites across app modules: {report.total_mpi_call_sites} "
        f"(in {report.files_with_mpi} files)",
        "  (with raw ULFM, every one would need error-handling changes;",
        "   with Fenix, zero call sites change -- only the handle swaps)",
    ]
    for m in report.modules:
        lines.append(
            f"  {m.module:<16} mpi_sites={m.mpi_call_sites:<3} "
            f"lines={m.total_lines:<4} resilience_lines={m.resilience_lines}"
        )
    return "\n".join(lines)
