"""Shared experiment environment: the modelled Cray XC40 + Lustre platform.

Section VI-B: "a 100-node Cray XC40 ... 2-socket Intel Haswell CPU nodes
with 32 cores/node ... disk-based checkpointing stores to the Lustre
distributed file system."  The numbers below approximate that platform's
*ratios* (NIC vs PFS bandwidth, node compute throughput), which is what
the figures' shapes depend on.
"""

from __future__ import annotations

from repro.harness import ExperimentEnv, JobCosts
from repro.sim import ClusterSpec, NetworkSpec, NodeSpec, PFSSpec
from repro.util.units import GiB, MiB


def paper_env(
    n_nodes: int,
    n_spares: int = 1,
    seed: int = 20220906,
    pfs_servers: int = 4,
    veloc_incremental: bool = True,
    veloc_dedup: bool = True,
) -> ExperimentEnv:
    """The reproduction's stand-in for the paper's test platform.

    ``pfs_servers`` sets the Lustre I/O-server count (4 for the paper's
    64-node runs).  Reduced-scale tests pass a proportionally smaller
    value so the node : PFS bandwidth ratio -- which the congestion
    effects depend on -- matches the full-scale configuration.
    ``veloc_incremental`` / ``veloc_dedup`` select the checkpoint data
    path (the ablation drivers turn them off for the full-copy arm).
    """
    spec = ClusterSpec(
        n_nodes=n_nodes,
        node=NodeSpec(
            flops=500.0e9,            # 2-socket Haswell, realistic sustained
            nic_bandwidth=10.0 * GiB,  # Cray Aries class
            nic_latency=1.5e-6,
            memory_bandwidth=60.0 * GiB,
            cores=32,
        ),
        network=NetworkSpec(fabric_latency=0.5e-6, chunk_bytes=4 * MiB),
        pfs=PFSSpec(
            # a small Lustre partition: few I/O servers relative to nodes
            n_servers=pfs_servers,
            server_bandwidth=2.0 * GiB,
            server_latency=5.0e-5,
            chunk_bytes=8 * MiB,
        ),
        seed=seed,
    )
    costs = JobCosts(
        mpirun_launch=3.0,
        per_node_launch=0.02,
        mpi_init=0.5,
        mpi_finalize=0.2,
        teardown=2.0,
        app_noncomm_init=0.3,
        app_comm_init=0.5,
    )
    return ExperimentEnv(
        cluster_spec=spec, costs=costs, n_spares=n_spares,
        veloc_incremental=veloc_incremental,
        veloc_dedup=veloc_dedup and veloc_incremental,
    )
