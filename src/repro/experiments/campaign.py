"""Failure-campaign study: strategies under field-like random failures.

The paper motivates the whole line of work with production failure data
("node failures happened every 4.2 hours" on Blue Waters); its evaluation
then uses single controlled failures.  This extension closes the loop:
run the same Heatdis job under memoryless (exponential) per-rank failures
and compare relaunch-based vs Fenix-based recovery over a whole campaign
of failures rather than one.

The headline quantity is *efficiency*: ideal (failure-free, no-resilience)
wall time divided by achieved wall time.

Campaign cells are independent simulations, so the strategy sweep runs
through :mod:`repro.parallel` -- fan out over worker processes with
``jobs``, skip unchanged cells with the run cache -- with results
bit-identical to a sequential in-process run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.apps import HeatdisConfig
from repro.experiments.common import paper_env
from repro.harness import RunReport
from repro.parallel import (
    DEFAULT_TRACE_MAX_RECORDS,
    CampaignProgress,
    CellSpec,
    PlanSpec,
    RunCache,
    run_cells,
)
from repro.telemetry.sampling import SamplingPolicy

CKPT_INTERVAL = 9

DEFAULT_STRATEGIES = ["kr_veloc", "fenix_kr_veloc"]

#: default seed set for cross-run campaigns (repro.report); enough for a
#: meaningful bootstrap without making the smoke campaign slow
DEFAULT_SEEDS = (7, 11, 13)


@dataclass
class CampaignResult:
    strategy: str
    report: RunReport
    failures: int

    @property
    def wall_time(self) -> float:
        return self.report.wall_time


@dataclass
class CampaignStudy:
    ideal_wall: float
    results: List[CampaignResult]

    def _lookup(self, strategy: str) -> CampaignResult:
        for r in self.results:
            if r.strategy == strategy:
                return r
        known = sorted(r.strategy for r in self.results)
        raise KeyError(
            f"unknown strategy {strategy!r}; this study ran {known}"
        )

    def efficiency(self, strategy: str) -> float:
        return self.ideal_wall / self._lookup(strategy).wall_time

    def result(self, strategy: str) -> CampaignResult:
        return self._lookup(strategy)


def run_campaign(
    n_ranks: int = 8,
    mtbf_per_rank: Optional[float] = None,
    n_iters: int = 120,
    seed: int = 7,
    strategies: Optional[List[str]] = None,
    n_spares: int = 4,
    max_failures: int = 3,
    jobs: int = 1,
    cache: Optional[RunCache] = None,
    telemetry: bool = False,
    trace_max_records: Optional[int] = DEFAULT_TRACE_MAX_RECORDS,
    progress: Optional[CampaignProgress] = None,
    rules: Optional[str] = None,
    sampling: Optional["SamplingPolicy"] = None,
    determinism_audit: bool = False,
) -> CampaignStudy:
    """Run the campaign; by default the MTBF is chosen so a handful of
    failures strike during the job.

    ``jobs`` fans the strategy cells out across worker processes;
    ``cache`` (a :class:`~repro.parallel.RunCache`) skips cells whose
    (config, seed, code) content address already has a stored report.
    Telemetered campaign runs default to Trace ring-buffer mode
    (``trace_max_records``) so long sweeps keep bounded memory.
    """
    cfg = HeatdisConfig(
        local_rows=8, cols=16, modeled_bytes_per_rank=256e6,
        n_iters=n_iters, work_multiplier=2000.0,
    )

    def cell(strategy: str, plan: PlanSpec, spares: int) -> CellSpec:
        return CellSpec(
            app="heatdis",
            strategy=strategy,
            n_ranks=n_ranks,
            config=cfg,
            ckpt_interval=CKPT_INTERVAL,
            env=paper_env(n_ranks + n_spares, n_spares=spares, pfs_servers=1),
            plan=plan,
            telemetry=telemetry,
            trace_max_records=trace_max_records,
            sampling=sampling,
            rules=rules,
            determinism_audit=determinism_audit,
            label=strategy,
        )

    # the ideal run calibrates the MTBF, so it must complete first; it is
    # itself one (cacheable) cell
    ideal = run_cells(
        [cell("none", PlanSpec.none(), spares=1)], jobs=1, cache=cache,
        progress=progress,
    )[0].report
    if mtbf_per_rank is None:
        # target ~max_failures failures over the ideal runtime
        mtbf_per_rank = ideal.wall_time * n_ranks / max_failures

    specs = [
        cell(
            strategy,
            PlanSpec.exponential(mtbf_per_rank, seed=seed,
                                 max_failures=max_failures),
            spares=n_spares,
        )
        for strategy in strategies or DEFAULT_STRATEGIES
    ]
    executed = run_cells(specs, jobs=jobs, cache=cache, progress=progress)
    results = [
        CampaignResult(strategy=res.spec.strategy, report=res.report,
                       failures=res.failures)
        for res in executed
    ]
    return CampaignStudy(ideal_wall=ideal.wall_time, results=results)


def run_campaign_grid(
    scales: Sequence[int] = (8,),
    seeds: Sequence[int] = DEFAULT_SEEDS,
    strategies: Optional[Sequence[str]] = None,
    n_iters: int = 120,
    mtbf_per_rank: Optional[float] = None,
    max_failures: int = 3,
    n_spares: int = 4,
    ckpt_interval: int = CKPT_INTERVAL,
    jobs: int = 1,
    cache: Optional[RunCache] = None,
    progress: Optional[CampaignProgress] = None,
    trace_max_records: Optional[int] = DEFAULT_TRACE_MAX_RECORDS,
    rules: Optional[str] = None,
    sampling: Optional["SamplingPolicy"] = None,
    determinism_audit: bool = False,
):
    """The cross-run campaign: (strategy x scale x seed) under random
    failures, folded into a :class:`~repro.report.CampaignLedger`.

    Per scale, the failure-free ``none`` cell runs first -- it is both
    the efficiency baseline and (as in :func:`run_campaign`) the MTBF
    calibrator when ``mtbf_per_rank`` is None.  Every cell, baselines
    included, flows through :func:`~repro.parallel.run_cells` with the
    shared ``cache``/``progress``, so the progress stream's cell count
    reconciles exactly with the ledger.
    """
    from repro.report.ledger import CampaignLedger, RunRecord

    strategies = list(strategies or DEFAULT_STRATEGIES)
    scales = list(scales)
    seeds = list(seeds)

    def cell(strategy: str, n_ranks: int, plan: PlanSpec, spares: int,
             label: str) -> CellSpec:
        cfg = HeatdisConfig(
            local_rows=8, cols=16, modeled_bytes_per_rank=256e6,
            n_iters=n_iters, work_multiplier=2000.0,
        )
        return CellSpec(
            app="heatdis",
            strategy=strategy,
            n_ranks=n_ranks,
            config=cfg,
            ckpt_interval=ckpt_interval,
            env=paper_env(n_ranks + n_spares, n_spares=spares,
                          pfs_servers=1),
            plan=plan,
            trace_max_records=trace_max_records,
            sampling=sampling,
            rules=rules,
            determinism_audit=determinism_audit,
            label=label,
        )

    ledger = CampaignLedger(meta={
        "app": "heatdis",
        "n_iters": n_iters,
        "ckpt_interval": ckpt_interval,
        "strategies": strategies,
        "scales": scales,
        "seeds": seeds,
        "max_failures": max_failures,
    })

    # baselines first (sequential per scale: the MTBF calibration reads
    # them), then the full failure grid in one parallel batch
    ideal_specs = [
        cell("none", n_ranks, PlanSpec.none(), spares=1,
             label=f"none/r{n_ranks}")
        for n_ranks in scales
    ]
    mtbf: dict = {}
    for spec, res in zip(
        ideal_specs,
        run_cells(ideal_specs, jobs=jobs, cache=cache, progress=progress),
    ):
        ledger.add_ideal(spec.n_ranks, res.report.wall_time)
        ledger.add_run(RunRecord.from_cell_result(res, seed=0))
        mtbf[spec.n_ranks] = (
            mtbf_per_rank if mtbf_per_rank is not None
            else res.report.wall_time * spec.n_ranks / max_failures
        )

    grid = []
    grid_seeds = []
    for n_ranks in scales:
        for strategy in strategies:
            for seed in seeds:
                grid.append(cell(
                    strategy, n_ranks,
                    PlanSpec.exponential(mtbf[n_ranks], seed=seed,
                                         max_failures=max_failures),
                    spares=n_spares,
                    label=f"{strategy}/r{n_ranks}/s{seed}",
                ))
                grid_seeds.append(seed)
    executed = run_cells(grid, jobs=jobs, cache=cache, progress=progress)
    for res, seed in zip(executed, grid_seeds):
        ledger.add_run(RunRecord.from_cell_result(res, seed=seed))

    ledger.meta["mtbf_per_rank"] = mtbf[scales[0]]
    ledger.progress = {
        "cells": ledger.cells(),
        "cache_hits": sum(1 for r in ledger.runs if r.cached),
        "cache_misses": sum(1 for r in ledger.runs if not r.cached),
        "jobs": jobs,
    }
    return ledger


def format_campaign(study: CampaignStudy) -> str:
    lines = [
        "Failure campaign: exponential per-rank failures "
        "(Blue-Waters-style MTBF model)",
        f"  ideal (no failures, no resilience): {study.ideal_wall:8.2f} s",
        "  strategy         wall(s)  failures  attempts  efficiency",
    ]
    for r in study.results:
        lines.append(
            f"  {r.strategy:<15} {r.wall_time:8.2f}  {r.failures:8d}  "
            f"{r.report.attempts:8d}  {study.ideal_wall / r.wall_time:9.1%}"
        )
    return "\n".join(lines)
