"""Failure-campaign study: strategies under field-like random failures.

The paper motivates the whole line of work with production failure data
("node failures happened every 4.2 hours" on Blue Waters); its evaluation
then uses single controlled failures.  This extension closes the loop:
run the same Heatdis job under memoryless (exponential) per-rank failures
and compare relaunch-based vs Fenix-based recovery over a whole campaign
of failures rather than one.

The headline quantity is *efficiency*: ideal (failure-free, no-resilience)
wall time divided by achieved wall time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.apps import HeatdisConfig
from repro.experiments.common import paper_env
from repro.harness import RunReport, run_heatdis_job
from repro.sim import ExponentialFailures

CKPT_INTERVAL = 9


@dataclass
class CampaignResult:
    strategy: str
    report: RunReport
    failures: int

    @property
    def wall_time(self) -> float:
        return self.report.wall_time


@dataclass
class CampaignStudy:
    ideal_wall: float
    results: List[CampaignResult]

    def efficiency(self, strategy: str) -> float:
        for r in self.results:
            if r.strategy == strategy:
                return self.ideal_wall / r.wall_time
        raise KeyError(strategy)

    def result(self, strategy: str) -> CampaignResult:
        for r in self.results:
            if r.strategy == strategy:
                return r
        raise KeyError(strategy)


def run_campaign(
    n_ranks: int = 8,
    mtbf_per_rank: Optional[float] = None,
    n_iters: int = 120,
    seed: int = 7,
    strategies: Optional[List[str]] = None,
    n_spares: int = 4,
    max_failures: int = 3,
) -> CampaignStudy:
    """Run the campaign; by default the MTBF is chosen so a handful of
    failures strike during the job."""
    cfg = HeatdisConfig(
        local_rows=8, cols=16, modeled_bytes_per_rank=256e6,
        n_iters=n_iters, work_multiplier=2000.0,
    )
    ideal = run_heatdis_job(
        paper_env(n_ranks + n_spares, pfs_servers=1), "none", n_ranks, cfg,
        CKPT_INTERVAL,
    )
    if mtbf_per_rank is None:
        # target ~max_failures failures over the ideal runtime
        mtbf_per_rank = ideal.wall_time * n_ranks / max_failures
    results = []
    for strategy in strategies or ["kr_veloc", "fenix_kr_veloc"]:
        plan = ExponentialFailures(
            mtbf_per_rank, seed=seed, max_failures=max_failures
        )
        env = paper_env(n_ranks + n_spares, n_spares=n_spares, pfs_servers=1)
        report = run_heatdis_job(env, strategy, n_ranks, cfg, CKPT_INTERVAL,
                                 plan=plan)
        results.append(
            CampaignResult(strategy=strategy, report=report,
                           failures=plan.fired)
        )
    return CampaignStudy(ideal_wall=ideal.wall_time, results=results)


def format_campaign(study: CampaignStudy) -> str:
    lines = [
        "Failure campaign: exponential per-rank failures "
        "(Blue-Waters-style MTBF model)",
        f"  ideal (no failures, no resilience): {study.ideal_wall:8.2f} s",
        "  strategy         wall(s)  failures  attempts  efficiency",
    ]
    for r in study.results:
        lines.append(
            f"  {r.strategy:<15} {r.wall_time:8.2f}  {r.failures:8d}  "
            f"{r.report.attempts:8d}  {study.ideal_wall / r.wall_time:9.1%}"
        )
    return "\n".join(lines)
