"""Figure 6: MiniMD resilience weak scaling.

Weak scaling over rank counts with the per-phase breakdown ("Force
Compute", "Neighboring", "Communicator"), the resilience categories, and
"Other"; plus the failure-run extra cost.  MiniMD's larger initialization
cost is what makes the Fenix savings in "Other" bigger than Heatdis's
(Section VI-D2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.apps import MiniMDConfig
from repro.experiments.common import paper_env
from repro.harness import JobCosts, RunReport
from repro.parallel import (
    CampaignProgress,
    CellSpec,
    PlanSpec,
    RunCache,
    run_cells,
)

FIG6_STRATEGIES = ["none", "kr_veloc", "fenix_kr_veloc"]

N_STEPS = 60
CKPT_INTERVAL = 9
FAIL_AFTER_CKPT = 4
WORK_MULTIPLIER = 600.0
RANK_COUNTS = [8, 27, 64]
#: MiniMD reads inputs and builds large structures at startup: a much
#: bigger init than Heatdis, which is the point of the comparison
MINIMD_APP_INIT = 4.0


@dataclass
class Fig6Cell:
    strategy: str
    n_ranks: int
    clean: RunReport
    failed: Optional[RunReport]

    @property
    def failure_cost(self) -> Optional[float]:
        if self.failed is None:
            return None
        return self.failed.wall_time - self.clean.wall_time


def _md_cfg(n_ranks: int, jitter: float) -> MiniMDConfig:
    # weak scaling: the modelled per-rank atom count is held constant
    # (a 100^3 lattice per pair of ranks -> 2M atoms, ~96 MB of positions
    # per rank) as the rank count grows
    return MiniMDConfig(
        real_atoms_per_rank=24,
        problem_size=100,
        n_ranks_for_model=2,
        n_steps=N_STEPS,
        dt=0.003,
        neigh_every=6,
        compute_jitter=jitter,
        work_multiplier=WORK_MULTIPLIER,
    )


def _md_env(n_ranks: int, pfs_servers: int = 4):
    env = paper_env(n_nodes=n_ranks + 1, pfs_servers=pfs_servers)
    costs = JobCosts(
        mpirun_launch=env.costs.mpirun_launch,
        per_node_launch=env.costs.per_node_launch,
        mpi_init=env.costs.mpi_init,
        mpi_finalize=env.costs.mpi_finalize,
        teardown=env.costs.teardown,
        app_noncomm_init=MINIMD_APP_INIT / 2,
        app_comm_init=MINIMD_APP_INIT / 2,
    )
    return type(env)(cluster_spec=env.cluster_spec, costs=costs,
                     n_spares=env.n_spares)


def _cell_specs(
    strategy: str,
    n_ranks: int,
    with_failure: bool,
    jitter: float,
    victim: int,
    pfs_servers: int,
) -> List[CellSpec]:
    cfg = _md_cfg(n_ranks, jitter)

    def spec(plan: PlanSpec, tag: str) -> CellSpec:
        return CellSpec(
            app="minimd",
            strategy=strategy,
            n_ranks=n_ranks,
            config=cfg,
            ckpt_interval=CKPT_INTERVAL,
            env=_md_env(n_ranks, pfs_servers),
            plan=plan,
            label=tag,
        )

    specs = [spec(PlanSpec.none(), "clean")]
    if with_failure and strategy != "none":
        specs.append(
            spec(
                PlanSpec.between_checkpoints(
                    victim, CKPT_INTERVAL, FAIL_AFTER_CKPT, fraction=0.95
                ),
                "failed",
            )
        )
    return specs


def run_fig6_cell(
    strategy: str,
    n_ranks: int,
    with_failure: bool = True,
    jitter: float = 0.05,
    victim: int = 1,
    pfs_servers: int = 4,
) -> Fig6Cell:
    """One (strategy, rank count) cell of Figure 6.

    ``jitter`` models the performance variability that, at larger node
    counts, hides part of the asynchronous-checkpoint latency inside the
    compute phases (Section VI-D1).
    """
    specs = _cell_specs(strategy, n_ranks, with_failure, jitter, victim,
                        pfs_servers)
    executed = run_cells(specs, jobs=1)
    reports = {res.spec.label: res.report for res in executed}
    return Fig6Cell(strategy, n_ranks, reports["clean"],
                    reports.get("failed"))


def run_fig6_weak_scaling(
    ranks: Optional[List[int]] = None,
    strategies: Optional[List[str]] = None,
    with_failure: bool = True,
    jitter: float = 0.05,
    jobs: int = 1,
    cache: Optional[RunCache] = None,
    progress: Optional[CampaignProgress] = None,
) -> List[Fig6Cell]:
    keys, groups = [], []
    for n in ranks or RANK_COUNTS:
        for strategy in strategies or FIG6_STRATEGIES:
            keys.append((strategy, n))
            groups.append(
                _cell_specs(strategy, n, with_failure, jitter,
                            victim=1, pfs_servers=4)
            )
    flat = [s for group in groups for s in group]
    executed = iter(run_cells(flat, jobs=jobs, cache=cache,
                              progress=progress))
    cells = []
    for (strategy, n), group in zip(keys, groups):
        reports = {s.label: next(executed).report for s in group}
        cells.append(
            Fig6Cell(strategy, n, reports["clean"], reports.get("failed"))
        )
    return cells


def format_fig6(cells: List[Fig6Cell], title: str = "Figure 6") -> str:
    from repro.harness.report import MINIMD_CATEGORIES, summarize_categories

    lines = [title]
    header = ["strategy", "ranks"] + MINIMD_CATEGORIES + ["wall", "fail_cost"]
    rows = []
    for cell in cells:
        summary = summarize_categories(cell.clean, MINIMD_CATEGORIES)
        fail = "-" if cell.failure_cost is None else f"{cell.failure_cost:.2f}"
        rows.append(
            [cell.strategy, str(cell.n_ranks)]
            + [f"{summary[c]:.2f}" for c in MINIMD_CATEGORIES]
            + [f"{cell.clean.wall_time:.2f}", fail]
        )
    widths = [max(len(header[i]), *(len(r[i]) for r in rows))
              for i in range(len(header))]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
