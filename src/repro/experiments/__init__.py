"""Per-figure experiment drivers.

Each module regenerates one element of the paper's evaluation:

- :mod:`repro.experiments.fig5_heatdis` -- Figure 5: Heatdis overhead and
  failure cost, 64-node data scaling and 1 GB weak scaling;
- :mod:`repro.experiments.fig6_minimd` -- Figure 6: MiniMD weak scaling
  with per-phase breakdown;
- :mod:`repro.experiments.fig7_views` -- Figure 7: the MiniMD view census;
- :mod:`repro.experiments.partial_rollback` -- Section VI-D2's ~2x
  recovery speedup from keeping survivor data;
- :mod:`repro.experiments.complexity` -- Section VI-E's code-complexity
  statistics, computed over this repository's own application sources.

Every driver returns plain data structures (and can print the same rows
the paper plots); the ``benchmarks/`` suite wraps them for
pytest-benchmark.
"""

from repro.experiments.common import paper_env
from repro.experiments.fig5_heatdis import (
    FIG5_STRATEGIES,
    run_fig5_cell,
    run_fig5_data_scaling,
    run_fig5_weak_scaling,
)
from repro.experiments.fig6_minimd import FIG6_STRATEGIES, run_fig6_cell, run_fig6_weak_scaling
from repro.experiments.fig7_views import run_fig7_census
from repro.experiments.partial_rollback import run_partial_rollback_comparison
from repro.experiments.complexity import analyze_complexity
from repro.experiments.campaign import format_campaign, run_campaign

__all__ = [
    "paper_env",
    "FIG5_STRATEGIES",
    "run_fig5_cell",
    "run_fig5_data_scaling",
    "run_fig5_weak_scaling",
    "FIG6_STRATEGIES",
    "run_fig6_cell",
    "run_fig6_weak_scaling",
    "run_fig7_census",
    "run_partial_rollback_comparison",
    "analyze_complexity",
    "run_campaign",
    "format_campaign",
]
