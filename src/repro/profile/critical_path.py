"""Recovery critical path: the longest kill -> re-entry dependency chain.

The simulated analogue of the paper's Figure-5 recovery breakdown: after
a kill, every surviving/recovered rank walks detection -> repair-gate
rendezvous -> Fenix repair -> KR reset/restore -> data recovery ->
recompute -> first post-repair checkpoint (re-entry).  The *critical
path* is the chain of the rank whose re-entry completes last; each edge
carries the layer that owns it (ULFM vs Fenix vs KR vs VeloC vs
recompute), so the report answers "which layer bounds recovery time?".

Works on the span/instant stream (:class:`~repro.telemetry.spans.Tracer`);
fail-restart strategies (no Fenix repair) are walked through the job
teardown/relaunch spans instead of the repair gate.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

_RANK = re.compile(r"^rank(\d+)$")

#: span names whose completion proves the rank has resumed protected
#: progress (mirrors repro.monitor.explain.REENTRY_KINDS)
_REENTRY_SPANS = ("kr.commit", "veloc.checkpoint", "imr.store")

#: span names of the data-recovery stage
_RECOVER_SPANS = ("veloc.recover", "imr.restore")


@dataclass
class Edge:
    """One stage of the chain: ``[start, end]`` owned by ``layer``."""

    name: str
    layer: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPath:
    """The longest kill -> re-entry chain of one failure."""

    kill_rank: int
    kill_time: float
    critical_rank: int
    reentry_time: float
    edges: List[Edge] = field(default_factory=list)
    #: every rank's re-entry completion time (the critical rank is argmax)
    chains: Dict[int, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.reentry_time - self.kill_time

    def by_layer(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for e in self.edges:
            out[e.layer] = out.get(e.layer, 0.0) + e.duration
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kill_rank": self.kill_rank,
            "kill_time": self.kill_time,
            "critical_rank": self.critical_rank,
            "reentry_time": self.reentry_time,
            "total": self.total,
            "edges": [
                {"name": e.name, "layer": e.layer, "start": e.start,
                 "end": e.end, "duration": e.duration}
                for e in self.edges
            ],
            "by_layer": self.by_layer(),
            "chains": {str(r): t for r, t in sorted(self.chains.items())},
        }


def _source_rank(source: str) -> Optional[int]:
    m = _RANK.match(source)
    return int(m.group(1)) if m else None


def _span_world_rank(rec: Any) -> Optional[int]:
    wrank = rec.fields.get("wrank")
    if wrank is not None:
        return int(wrank)
    m = re.match(r"^(?:[\w.]+\.)?rank(\d+)$", rec.source)
    return int(m.group(1)) if m else None


def find_kills(telemetry: Any, rank: Optional[int] = None) -> List[Any]:
    """All ``rank_killed`` instants, time-ordered (optionally one rank)."""
    kills = [r for r in telemetry.tracer.instants if r.name == "rank_killed"]
    if rank is not None:
        kills = [r for r in kills if _source_rank(r.source) == rank]
    return sorted(kills, key=lambda r: (r.start, r.sid))


def extract_critical_path(
    telemetry: Any,
    rank: Optional[int] = None,
    occurrence: int = 0,
) -> CriticalPath:
    """Walk one failure's recovery DAG and return its longest chain.

    ``rank`` selects whose death to analyze (default: the first kill);
    ``occurrence`` selects among repeated kills of the same rank.
    Raises ``ValueError`` when the requested failure does not exist.
    """
    tracer = telemetry.tracer
    all_kills = find_kills(telemetry)
    kills = (all_kills if rank is None
             else [k for k in all_kills if _source_rank(k.source) == rank])
    if not kills:
        raise ValueError("no rank_killed record"
                         + (f" for rank {rank}" if rank is not None else ""))
    if occurrence >= len(kills):
        raise ValueError(f"only {len(kills)} kill(s) recorded; "
                         f"occurrence {occurrence} out of range")
    kill = kills[occurrence]
    t0 = kill.start
    dead_rank = _source_rank(kill.source)
    later = [k.start for k in all_kills if k.start > t0]
    window_end = min(later) if later else float("inf")

    def in_window(t: float) -> bool:
        return t0 <= t < window_end

    spans = [s for s in tracer.spans
             if s.end is not None and in_window(s.start)]
    instants = [i for i in tracer.instants if in_window(i.start)]

    repairs = [s for s in spans if s.name == "fenix.repair"]
    if repairs:
        t_repair = max(s.end for s in repairs)
        detect_of = {}
        for i in instants:
            if i.name == "fenix.detect":
                r = _source_rank(i.source)
                if r is not None and r not in detect_of:
                    detect_of[r] = i.start
        revokes = [i.start for i in instants if i.name == "revoke"]
        t_revoke = min(revokes) if revokes else t0
        pre_edges = None
        participants = sorted({_source_rank(s.source) for s in repairs}
                              - {None})
        arrival_of = {r: min(s.start for s in repairs
                             if _source_rank(s.source) == r)
                      for r in participants}
    else:
        # fail-restart: mpirun aborts the job, the harness tears it down
        # and relaunches; recovery happens in the next attempt's world
        relaunch = [s for s in spans if s.name == "job.relaunch"]
        teardown = [s for s in spans if s.name == "job.teardown"]
        t_teardown = max((s.end for s in teardown), default=t0)
        t_repair = max((s.end for s in relaunch), default=t_teardown)
        pre_edges = [
            Edge("abort+teardown", "process", t0, t_teardown),
            Edge("relaunch", "process", t_teardown, t_repair),
        ]
        participants = sorted({
            _source_rank(s.source) for s in spans
            if s.name in _RECOVER_SPANS + _REENTRY_SPANS + ("recompute",)
            and s.start >= t_repair and _source_rank(s.source) is not None
        } | {
            _span_world_rank(s) for s in spans
            if s.name in _RECOVER_SPANS and s.start >= t_repair
            and _span_world_rank(s) is not None
        })
        detect_of, arrival_of, t_revoke = {}, {}, t0

    eps = 1e-12

    def rank_stage_times(r: int) -> Dict[str, float]:
        """Per-rank completion times of each post-repair stage."""
        mine = [s for s in spans if s.start >= t_repair - eps]
        kr_end = max((s.end for s in mine
                      if s.name in ("kr.latest", "kr.restore")
                      and _source_rank(s.source) == r), default=t_repair)
        dr_end = max((s.end for s in mine
                      if s.name in _RECOVER_SPANS
                      and _span_world_rank(s) == r), default=kr_end)
        rc = [s for s in mine
              if s.name == "recompute" and _source_rank(s.source) == r]
        rc_end = max((s.end for s in rc), default=dr_end)
        reentry = min((s.end for s in mine
                       if s.name in _REENTRY_SPANS
                       and _span_world_rank(s) == r
                       and s.end >= rc_end - eps), default=rc_end)
        return {"kr": kr_end, "recover": dr_end,
                "recompute": rc_end, "reentry": max(reentry, rc_end)}

    chains = {r: rank_stage_times(r)["reentry"] for r in participants
              if r is not None}
    if not chains:
        # degenerate window (trace ends at the kill): the dead rank is
        # its own chain and recovery never completed
        chains = {dead_rank: t_repair}
    crit = max(chains, key=lambda r: (chains[r], r))
    stages = rank_stage_times(crit)

    edges: List[Edge] = []
    cursor = t0
    def push(name: str, layer: str, t: float) -> None:
        nonlocal cursor
        t = max(t, cursor)
        edges.append(Edge(name, layer, cursor, t))
        cursor = t

    if pre_edges is None:
        push("detect+revoke", "ulfm",
             max(detect_of.get(crit, t_revoke), t_revoke))
        push("rendezvous", "fenix",
             max(arrival_of.values()) if arrival_of else cursor)
        push("repair", "fenix", t_repair)
    else:
        for e in pre_edges:
            push(e.name, e.layer, e.end)
    push("kr reset/restore", "kr", stages["kr"])
    push("data recovery", "veloc", stages["recover"])
    push("recompute", "recompute", stages["recompute"])
    push("re-entry", "app", stages["reentry"])

    return CriticalPath(
        kill_rank=dead_rank if dead_rank is not None else -1,
        kill_time=t0,
        critical_rank=crit,
        reentry_time=stages["reentry"],
        edges=edges,
        chains=chains,
    )


def format_critical_path(cp: CriticalPath) -> str:
    header = (f"critical path: rank {cp.kill_rank} killed at "
              f"t={cp.kill_time:.6f} -> re-entry at t={cp.reentry_time:.6f} "
              f"({cp.total:.6f} s) via rank {cp.critical_rank}")
    lines = [header, "=" * len(header)]
    name_w = max((len(e.name) for e in cp.edges), default=4)
    for e in cp.edges:
        lines.append(f"  [{e.layer:<9}] {e.name:<{name_w}}  "
                     f"+{e.duration:.6f} s  "
                     f"(t={e.start:.6f} -> {e.end:.6f})")
    lines.append("")
    lines.append("per-layer totals:")
    for layer, dur in sorted(cp.by_layer().items(),
                             key=lambda kv: -kv[1]):
        share = dur / cp.total if cp.total > 0 else 0.0
        lines.append(f"  {layer:<9} {dur:.6f} s  ({share:.1%})")
    lines.append("")
    lines.append("per-rank re-entry (critical rank last):")
    for r, t in sorted(cp.chains.items(), key=lambda kv: (kv[1], kv[0])):
        marker = "  <- critical" if r == cp.critical_rank else ""
        lines.append(f"  rank {r}: t={t:.6f}{marker}")
    return "\n".join(lines)
