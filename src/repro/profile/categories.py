"""The profiler's attribution categories and the span -> category map.

Every simulated second of a rank's makespan lands in exactly one of the
:data:`CATEGORIES` below -- the per-layer split the paper's Figures 5-6
argue from, extended with the categories that only show up *between*
application phases (failure detection, ULFM agreement, Fenix repair,
idle).

Attribution is **priority-based**, not innermost-span-wins: a survivor's
recompute window contains ordinary ``compute`` and ``mpi.*`` spans, and
those seconds must be charged to ``recompute`` (the paper reports
recompute as *extra* time caused by the rollback, wherever it is spent).
Conversely a checkpoint or restore taken inside a recompute window is
still checkpoint/restore time.  :func:`categorize` returns
``(category, priority)`` for one span; higher priority wins where spans
overlap on a rank's timeline.
"""

from __future__ import annotations

from typing import Optional, Tuple

#: ledger categories, display order (mirrors the tentpole list)
COMPUTE = "compute"
APP_MPI = "app_mpi_wait"
CHECKPOINT_COPY = "checkpoint_copy"
FLUSH_CONGESTION = "flush_congestion"
FAILURE_DETECTION = "failure_detection"
ULFM_AGREEMENT = "ulfm_agreement"
FENIX_REPAIR = "fenix_repair"
KR_RESTORE = "kr_reset_restore"
VELOC_RECOVER = "veloc_recover"
RECOMPUTE = "recompute"
RESILIENCE_INIT = "resilience_init"
IDLE = "idle"

CATEGORIES = [
    COMPUTE,
    APP_MPI,
    CHECKPOINT_COPY,
    FLUSH_CONGESTION,
    FAILURE_DETECTION,
    ULFM_AGREEMENT,
    FENIX_REPAIR,
    KR_RESTORE,
    VELOC_RECOVER,
    RECOMPUTE,
    RESILIENCE_INIT,
    IDLE,
]

#: layer label per category (critical-path edge attribution)
LAYER_OF = {
    COMPUTE: "app",
    APP_MPI: "app",
    CHECKPOINT_COPY: "data",
    FLUSH_CONGESTION: "data",
    FAILURE_DETECTION: "ulfm",
    ULFM_AGREEMENT: "ulfm",
    FENIX_REPAIR: "fenix",
    KR_RESTORE: "kr",
    VELOC_RECOVER: "veloc",
    RECOMPUTE: "recompute",
    RESILIENCE_INIT: "fenix",
    IDLE: "other",
}

# span name -> (category, priority); priorities are spaced so new layers
# can slot in without renumbering
_EXACT = {
    "veloc.recover": (VELOC_RECOVER, 80),
    "imr.restore": (VELOC_RECOVER, 80),
    "kr.restore": (KR_RESTORE, 70),
    "veloc.checkpoint": (CHECKPOINT_COPY, 60),
    "veloc.flush_wait": (CHECKPOINT_COPY, 59),
    "imr.store": (CHECKPOINT_COPY, 58),
    "kr.commit": (CHECKPOINT_COPY, 58),
    "fenix.repair": (FENIX_REPAIR, 45),
    "fenix.init": (RESILIENCE_INIT, 42),
    "recompute": (RECOMPUTE, 30),
    "compute": (COMPUTE, 10),
    "sleep": (IDLE, 6),
    # structural spans carry no cost of their own (their contents do)
    "kr.region": None,
}

#: ULFM management operations routed through the MPI layer
_ULFM_OPS = {"mpi.agree", "mpi.shrink"}


def categorize(name: str,
               fields: Optional[dict] = None) -> Optional[Tuple[str, int]]:
    """``(category, priority)`` for a span name, or None for transparent
    spans (structural / job-level spans that own no rank seconds)."""
    if name in _EXACT:
        return _EXACT[name]
    if name in _ULFM_OPS:
        return (ULFM_AGREEMENT, 55)
    if name == "kr.latest":
        # metadata query: resilience init on the happy path, part of the
        # KR reset/restore stage after a failure
        post = bool(fields and fields.get("post_failure"))
        return (KR_RESTORE, 50) if post else (RESILIENCE_INIT, 50)
    if name.startswith("mpi."):
        return (APP_MPI, 20)
    return None
