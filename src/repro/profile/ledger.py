"""The per-rank time ledger: every simulated second attributed once.

Consumes a telemetered run's span stream (:class:`repro.telemetry.spans.Tracer`)
and produces, for each world rank, an exact partition of the rank's
makespan over :data:`repro.profile.categories.CATEGORIES`.  The hard
invariant -- checked on every build, not best-effort -- is

    sum(categories) == makespan          (per rank, to float tolerance)

which holds by construction: the builder sweeps the rank's timeline over
elementary segments between span boundaries, each segment is charged to
exactly one category (the highest-priority covering span, or ``idle``
when nothing covers it), and two post-passes only *move* seconds between
categories (flush congestion out of ``compute``, the post-kill tail of a
failed MPI wait into ``failure_detection``).

Identity notes:

- sources named ``rankN`` belong to world rank N;
- sources named ``<layer>.rankN`` (``veloc.rank2``, ``imr.rank2``) use
  the span's ``wrank`` field when present -- under Fenix's in-place
  repair a replacement process adopts the dead rank's checkpoint id, so
  the track number alone would attribute the replacement's recovery work
  to the corpse;
- ring-buffer drops in the legacy :class:`~repro.sim.trace.Trace` are
  surfaced on the ledger (``dropped``/``dropped_window``) so consumers
  can refuse to trust an attribution built over an evicted window.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.profile.categories import (
    APP_MPI,
    CATEGORIES,
    COMPUTE,
    FAILURE_DETECTION,
    FLUSH_CONGESTION,
    IDLE,
    categorize,
)

_RANK_TRACK = re.compile(r"^rank(\d+)$")
_LAYER_RANK_TRACK = re.compile(r"^[\w.]+\.rank(\d+)$")

#: priority of the synthesized post-kill detection segment: above
#: app-MPI and recompute (a rank hanging on a corpse is detecting, not
#: recomputing), below every recovery-layer span
_DETECT_PRIORITY = 35

#: relative float tolerance for the conservation invariant
_REL_TOL = 1e-9


class ConservationError(AssertionError):
    """The per-rank categories failed to sum to the rank's makespan."""


@dataclass
class _Interval:
    """One attributable interval on a rank's timeline."""

    start: float
    end: float
    category: str
    priority: int
    order: int  # tie-break: later-opened (deeper) span wins
    congestion: float = 0.0  # seconds of flush-induced slowdown inside
    won: float = 0.0  # seconds this interval actually won in the sweep


@dataclass
class RankLedger:
    """One rank's exact time partition."""

    rank: int
    start: float
    end: float
    categories: Dict[str, float] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return self.end - self.start

    @property
    def accounted(self) -> float:
        return sum(self.categories.values())

    @property
    def residual(self) -> float:
        return self.makespan - self.accounted

    def get(self, category: str) -> float:
        return self.categories.get(category, 0.0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "start": self.start,
            "end": self.end,
            "makespan": self.makespan,
            "categories": {c: self.categories.get(c, 0.0) for c in CATEGORIES},
        }


@dataclass
class ProfileLedger:
    """The full job ledger plus attribution-quality metadata."""

    ranks: Dict[int, RankLedger]
    wall_time: Optional[float] = None
    dropped: int = 0
    dropped_window: Optional[Tuple[float, float]] = None
    #: checkpoint data-path volume (modelled bytes from the VeloC
    #: counters): logical vs memcpy'd vs flushed-after-dedup, with the
    #: derived dirty_fraction / dedup_ratio; empty when no VeloC ran
    data_path: Dict[str, float] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """False when ring-buffer evictions may have hidden records."""
        return self.dropped == 0

    def mean(self) -> Dict[str, float]:
        """Mean per-rank seconds by category (the figures' bar heights)."""
        out = {c: 0.0 for c in CATEGORIES}
        if not self.ranks:
            return out
        for rl in self.ranks.values():
            for c in CATEGORIES:
                out[c] += rl.get(c)
        n = len(self.ranks)
        return {c: v / n for c, v in out.items()}

    def total(self) -> Dict[str, float]:
        out = {c: 0.0 for c in CATEGORIES}
        for rl in self.ranks.values():
            for c in CATEGORIES:
                out[c] += rl.get(c)
        return out

    def mean_makespan(self) -> float:
        if not self.ranks:
            return 0.0
        return sum(rl.makespan for rl in self.ranks.values()) / len(self.ranks)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": 1,
            "wall_time": self.wall_time,
            "n_ranks": len(self.ranks),
            "dropped": self.dropped,
            "dropped_window": (
                list(self.dropped_window) if self.dropped_window else None
            ),
            "mean": self.mean(),
            "mean_makespan": self.mean_makespan(),
            "data_path": dict(self.data_path),
            "ranks": {str(r): rl.to_dict()
                      for r, rl in sorted(self.ranks.items())},
        }


def _world_rank_of(source: str, fields: Dict[str, Any]) -> Optional[int]:
    m = _RANK_TRACK.match(source)
    if m:
        return int(m.group(1))
    m = _LAYER_RANK_TRACK.match(source)
    if m:
        wrank = fields.get("wrank")
        return int(wrank) if wrank is not None else int(m.group(1))
    return None


def _collect(telemetry: Any) -> Tuple[
    Dict[int, List[_Interval]], Dict[int, List[float]], List[float]
]:
    """Group tracer records by world rank.

    Returns ``(intervals, marks, deaths)``: attributable intervals and
    bare timestamp marks (instants / span edges that only extend the
    rank's observed makespan) per rank, plus all rank-death times.
    """
    tracer = telemetry.tracer
    end_of_time = 0.0
    for rec in tracer.spans:
        if rec.end is not None:
            end_of_time = max(end_of_time, rec.end)
    for rec in tracer.instants:
        end_of_time = max(end_of_time, rec.start)

    intervals: Dict[int, List[_Interval]] = {}
    marks: Dict[int, List[float]] = {}
    deaths: List[float] = []

    for rec in tracer.instants:
        if rec.name in ("rank_dead", "rank_killed"):
            deaths.append(rec.start)
        if rec.name == "rank_spawn":
            rank = rec.fields.get("rank")
            if rank is not None:
                marks.setdefault(int(rank), []).append(rec.start)
            continue
        rank = _world_rank_of(rec.source, rec.fields)
        if rank is not None:
            marks.setdefault(rank, []).append(rec.start)

    for order, rec in enumerate(tracer.spans):
        rank = _world_rank_of(rec.source, rec.fields)
        if rank is None:
            continue
        end = rec.end if rec.end is not None else end_of_time
        marks.setdefault(rank, []).extend((rec.start, end))
        cat = categorize(rec.name, rec.fields)
        if cat is None or end <= rec.start:
            continue
        category, priority = cat
        congestion = 0.0
        if rec.name == "compute":
            congestion = float(rec.fields.get("congestion") or 0.0)
        iv = _Interval(rec.start, end, category, priority, order,
                       congestion=congestion)
        # a failed MPI wait: everything after the triggering death is
        # time spent hanging on a corpse -- failure detection, not app-MPI
        if category == APP_MPI and rec.error:
            cut = max((t for t in deaths if rec.start < t <= end),
                      default=None)
            if cut is None:
                # deaths list may still be partial (instants scan saw
                # them all already, so this is the no-death case)
                intervals.setdefault(rank, []).append(iv)
                continue
            if cut > rec.start:
                intervals.setdefault(rank, []).append(
                    _Interval(rec.start, cut, APP_MPI, priority, order))
            intervals.setdefault(rank, []).append(
                _Interval(cut, end, FAILURE_DETECTION, _DETECT_PRIORITY,
                          order))
            continue
        intervals.setdefault(rank, []).append(iv)
    return intervals, marks, deaths


def _sweep(rank: int, items: List[_Interval],
           start: float, end: float) -> RankLedger:
    """Partition [start, end] over the covering intervals."""
    categories: Dict[str, float] = {}
    bounds = {start, end}
    for iv in items:
        bounds.add(max(start, iv.start))
        bounds.add(min(end, iv.end))
    cuts = sorted(bounds)
    opens = sorted(items, key=lambda iv: iv.start)
    active: List[_Interval] = []
    next_open = 0
    for lo, hi in zip(cuts, cuts[1:]):
        if hi <= lo:
            continue
        while next_open < len(opens) and opens[next_open].start <= lo:
            active.append(opens[next_open])
            next_open += 1
        active = [iv for iv in active if iv.end > lo]
        seg = hi - lo
        if not active:
            categories[IDLE] = categories.get(IDLE, 0.0) + seg
            continue
        winner = max(active, key=lambda iv: (iv.priority, iv.order))
        categories[winner.category] = (
            categories.get(winner.category, 0.0) + seg
        )
        winner.won += seg
    # flush congestion: move the slowdown seconds out of compute (the
    # extra time is caused by the data layer, not the application);
    # congestion inside a higher-priority window stays where it was won
    moved = 0.0
    for iv in items:
        if iv.category != COMPUTE or iv.congestion <= 0.0 or iv.won <= 0.0:
            continue
        span_len = iv.end - iv.start
        share = iv.congestion * (iv.won / span_len) if span_len > 0 else 0.0
        moved += min(share, iv.won)
    if moved > 0.0:
        categories[COMPUTE] = categories.get(COMPUTE, 0.0) - moved
        categories[FLUSH_CONGESTION] = (
            categories.get(FLUSH_CONGESTION, 0.0) + moved
        )
    return RankLedger(rank=rank, start=start, end=end, categories=categories)


def build_ledger(
    telemetry: Any,
    trace: Any = None,
    wall_time: Optional[float] = None,
) -> ProfileLedger:
    """Build and verify the per-rank ledger for one telemetered run.

    Raises :class:`ConservationError` if any rank's categories fail to
    sum to its makespan (an attribution bug, never a run property).
    """
    if telemetry is None or not getattr(telemetry, "enabled", False):
        raise ValueError("build_ledger needs an enabled Telemetry instance")
    intervals, marks, _deaths = _collect(telemetry)
    ranks: Dict[int, RankLedger] = {}
    for rank in sorted(marks):
        times = marks[rank]
        start, end = min(times), max(times)
        items = intervals.get(rank, [])
        rl = _sweep(rank, items, start, end)
        tol = _REL_TOL * max(1.0, abs(rl.makespan))
        if abs(rl.residual) > tol:
            raise ConservationError(
                f"rank {rank}: categories sum to {rl.accounted!r} but "
                f"makespan is {rl.makespan!r} (residual {rl.residual:g})"
            )
        ranks[rank] = rl
    if trace is None:
        trace = getattr(telemetry, "trace", None)
    dropped = int(getattr(trace, "dropped", 0) or 0) if trace is not None else 0
    window = getattr(trace, "dropped_window", None) if trace is not None else None
    return ProfileLedger(
        ranks=ranks,
        wall_time=wall_time,
        dropped=dropped,
        dropped_window=tuple(window) if window else None,
        data_path=_data_path_counters(telemetry),
    )


def _data_path_counters(telemetry: Any) -> Dict[str, float]:
    """Checkpoint data-path volume from the merged VeloC counters."""
    try:
        counters = telemetry.metrics_summary()["merged"]["counters"]
    except Exception:
        return {}
    total = float(counters.get("veloc.checkpoint.bytes", 0.0))
    dirty = float(counters.get("veloc.checkpoint.dirty_bytes", 0.0))
    novel = float(counters.get("veloc.checkpoint.novel_bytes", 0.0))
    if total <= 0:
        return {}
    out = {
        "checkpoint_bytes": total,
        "dirty_bytes": dirty,
        "novel_bytes": novel,
        "dirty_fraction": dirty / total,
    }
    if dirty > 0:
        out["dedup_ratio"] = 1.0 - novel / dirty
    return out


def format_ledger(ledger: ProfileLedger, per_rank: bool = True) -> str:
    """Aligned text table: one row per rank plus the mean row."""
    cats = [c for c in CATEGORIES
            if any(rl.get(c) > 0.0 for rl in ledger.ranks.values())]
    header = ["rank"] + cats + ["makespan"]
    rows: List[List[str]] = []
    if per_rank:
        for r, rl in sorted(ledger.ranks.items()):
            rows.append([str(r)]
                        + [f"{rl.get(c):.4f}" for c in cats]
                        + [f"{rl.makespan:.4f}"])
    mean = ledger.mean()
    rows.append(["mean"]
                + [f"{mean.get(c, 0.0):.4f}" for c in cats]
                + [f"{ledger.mean_makespan():.4f}"])
    widths = [max(len(header[i]), *(len(r[i]) for r in rows))
              for i in range(len(header))]
    lines = ["  ".join(h.rjust(w) for h, w in zip(header, widths)),
             "  ".join("-" * w for w in widths)]
    lines += ["  ".join(c.rjust(w) for c, w in zip(row, widths))
              for row in rows]
    if ledger.wall_time is not None:
        lines.append(f"wall time: {ledger.wall_time:.4f} s")
    if ledger.dropped:
        lo, hi = ledger.dropped_window or (0.0, 0.0)
        lines.append(
            f"WARNING: {ledger.dropped} trace records dropped in "
            f"[{lo:.4f}, {hi:.4f}] -- attribution may be incomplete"
        )
    return "\n".join(lines)
