"""repro.profile: per-layer cost attribution over the telemetry stream.

Three consumers of one span stream:

- :mod:`repro.profile.ledger` -- the exact per-rank time ledger (every
  simulated second in exactly one category, categories sum to makespan);
- :mod:`repro.profile.critical_path` -- the kill -> re-entry recovery
  chain with per-edge layer attribution;
- :mod:`repro.profile.flamegraph` -- folded-stack export for
  speedscope / flamegraph.pl.

``python -m repro.profile`` wraps all three plus a ledger-diff
regression mode for CI overhead budgets.
"""

from repro.profile.categories import CATEGORIES, LAYER_OF
from repro.profile.critical_path import (
    CriticalPath,
    extract_critical_path,
    format_critical_path,
)
from repro.profile.flamegraph import folded_stacks, write_folded
from repro.profile.ledger import (
    ConservationError,
    ProfileLedger,
    RankLedger,
    build_ledger,
    format_ledger,
)

__all__ = [
    "CATEGORIES",
    "LAYER_OF",
    "ConservationError",
    "CriticalPath",
    "ProfileLedger",
    "RankLedger",
    "build_ledger",
    "extract_critical_path",
    "folded_stacks",
    "format_critical_path",
    "format_ledger",
    "write_folded",
]
