"""Folded-stack flame-graph export of the span stream.

Emits Brendan Gregg's folded format -- one ``frame;frame;frame value``
line per unique stack, value in integer **microseconds of simulated
self-time** -- which both ``flamegraph.pl`` and https://speedscope.app
import directly.  Each rank is a root frame; spans nest below their
tracer parents, so a survivor's flame shows e.g.
``rank2;recompute;compute`` next to ``rank2;veloc.recover``.

Layer tracks (``veloc.rank3``, ``imr.rank3``, ``kr.rank3``) are folded
into the owning *world* rank's root frame using the spans' ``wrank``
field, so a replacement spare's recovery work lands under its own rank
even though it adopts the dead rank's checkpoint identity.
"""

from __future__ import annotations

import io
import re
from typing import Any, Dict, List, Optional, TextIO, Union

_WORLD = re.compile(r"^rank(\d+)$")
_LAYER = re.compile(r"^[\w.]+\.rank(\d+)$")


def _root_frame(source: str, fields: Dict[str, Any]) -> str:
    """Track name for a span: world-rank sources keep their name; layer
    sources fold into ``rank<wrank>`` when the world rank is known."""
    if _WORLD.match(source):
        return source
    m = _LAYER.match(source)
    if m:
        wrank = fields.get("wrank")
        return f"rank{int(wrank)}" if wrank is not None else source
    return source


def folded_stacks(telemetry: Any) -> Dict[str, int]:
    """``{stack: microseconds}`` of self-time for every unique stack.

    Self-time is a span's duration minus its direct children's; values
    are rounded to integer microseconds (the folded format is integral)
    and zero-self-time stacks are dropped.
    """
    tracer = telemetry.tracer
    spans = tracer.spans
    end_of_time = max(
        (r.end for r in tracer.all_records() if r.end is not None),
        default=0.0,
    )

    def clamped_end(rec: Any) -> float:
        return rec.end if rec.end is not None else end_of_time

    by_sid = {s.sid: s for s in spans}
    child_time: Dict[int, float] = {}
    for s in spans:
        if s.parent is not None and s.parent in by_sid:
            child_time[s.parent] = (child_time.get(s.parent, 0.0)
                                    + (clamped_end(s) - s.start))

    def stack_of(rec: Any) -> str:
        frames: List[str] = []
        cur: Optional[Any] = rec
        while cur is not None:
            frames.append(cur.name)
            cur = by_sid.get(cur.parent) if cur.parent is not None else None
        frames.append(_root_frame(rec.source, rec.fields))
        return ";".join(reversed(frames))

    out: Dict[str, int] = {}
    for s in spans:
        self_time = (clamped_end(s) - s.start) - child_time.get(s.sid, 0.0)
        usec = round(max(0.0, self_time) * 1e6)
        if usec <= 0:
            continue
        stack = stack_of(s)
        out[stack] = out.get(stack, 0) + usec
    return out


def format_folded(stacks: Dict[str, int]) -> str:
    """The folded file body, stacks sorted for stable diffs."""
    return "".join(f"{stack} {value}\n"
                   for stack, value in sorted(stacks.items()))


def write_folded(dest: Union[str, TextIO], telemetry: Any) -> int:
    """Write the folded stacks to ``dest`` (path or file object).

    Returns the number of stack lines written.
    """
    stacks = folded_stacks(telemetry)
    body = format_folded(stacks)
    if isinstance(dest, (str, bytes)):
        with io.open(dest, "w", encoding="utf-8") as fh:
            fh.write(body)
    else:
        dest.write(body)
    return len(stacks)
