"""Profiler CLI: cost attribution, critical path, flame graphs, budgets.

Usage (repository root, ``PYTHONPATH=src``)::

    python -m repro.profile report --strategy fenix_kr_veloc \
        --ranks 4 --kill-rank 2 --json ledger.json
    python -m repro.profile critical-path --strategy fenix_kr_veloc \
        --ranks 4 --kill-rank 2
    python -m repro.profile flamegraph --strategy fenix_kr_veloc \
        --ranks 4 --kill-rank 2 --out profile.folded
    python -m repro.profile diff baseline.json current.json --budget 0.05

``report`` runs one instrumented experiment and prints the exact
per-rank time ledger (categories sum to makespan -- enforced, not
claimed).  It exits non-zero when the trace ring buffer dropped records
(the attribution would silently miss work) unless ``--allow-drops`` is
given.  ``diff`` compares two ledger JSON files against a relative
per-category budget -- the CI overhead-regression mode.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional

from repro.profile.categories import CATEGORIES
from repro.profile.critical_path import (
    extract_critical_path,
    format_critical_path,
)
from repro.profile.flamegraph import write_folded
from repro.profile.ledger import ConservationError, build_ledger, format_ledger
from repro.report.compare import (
    EXIT_BAD_INPUT,
    add_budget_flag,
    budget_verdict,
    compare_scalars,
    format_deltas,
    over_budget,
)

APPS = ("heatdis", "heatdis2d", "minimd")


def _add_run_args(parser: argparse.ArgumentParser) -> None:
    """Run-construction flags shared by report/critical-path/flamegraph
    (mirrors ``python -m repro.telemetry run``)."""
    parser.add_argument("--app", choices=APPS, default="heatdis")
    parser.add_argument("--strategy", default="fenix_kr_veloc",
                        help="a strategy name from repro.harness.strategies")
    parser.add_argument("--ranks", type=int, default=4)
    parser.add_argument("--iters", type=int, default=30,
                        help="iterations / MD steps")
    parser.add_argument("--interval", type=int, default=10,
                        help="checkpoint interval (iterations)")
    parser.add_argument("--bytes", type=float, default=16e6,
                        help="modelled checkpoint bytes per rank")
    parser.add_argument("--spares", type=int, default=1)
    parser.add_argument("--kill-rank", type=int, default=None,
                        help="inject one failure on this rank")
    parser.add_argument("--kill-after-checkpoint", type=int, default=1,
                        help="die ~95%% of the way past this checkpoint")
    parser.add_argument("--seed", type=int, default=20220906)
    parser.add_argument("--max-records", type=int, default=None,
                        help="legacy-trace ring-buffer size (drops are "
                             "surfaced in the report)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.profile",
        description="Per-layer cost attribution over the telemetry stream.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rep = sub.add_parser("report", help="per-rank time ledger of one run")
    _add_run_args(rep)
    rep.add_argument("--json", default=None,
                     help="also write the ledger as JSON to this path")
    rep.add_argument("--no-per-rank", action="store_true",
                     help="print only the mean row")
    rep.add_argument("--allow-drops", action="store_true",
                     help="exit 0 even when trace records were dropped")

    cp = sub.add_parser("critical-path",
                        help="kill -> re-entry chain of one failure")
    _add_run_args(cp)
    cp.add_argument("--path-rank", type=int, default=None,
                    help="analyze this rank's death (default: first kill)")
    cp.add_argument("--occurrence", type=int, default=0,
                    help="which kill of that rank (0 = first)")
    cp.add_argument("--json", default=None,
                    help="also write the chain as JSON to this path")

    fg = sub.add_parser("flamegraph",
                        help="folded-stack export (speedscope/flamegraph.pl)")
    _add_run_args(fg)
    fg.add_argument("--out", default="profile.folded",
                    help="output path for the folded stacks")

    diff = sub.add_parser("diff",
                          help="compare two ledger JSON files per category")
    diff.add_argument("baseline")
    diff.add_argument("current")
    add_budget_flag(diff, 0.05,
                    "max relative growth per category before "
                    "failing (default 0.05 = 5%%)")
    diff.add_argument("--abs-floor", type=float, default=1e-3,
                      help="ignore categories smaller than this many "
                           "seconds in both ledgers")
    return parser


def _execute_run(args: argparse.Namespace):
    """Run one instrumented experiment; returns (telemetry, report) or an
    exit code on bad arguments."""
    from repro.experiments.common import paper_env
    from repro.harness.runner import (
        run_heatdis2d_job,
        run_heatdis_job,
        run_minimd_job,
    )
    from repro.harness.strategies import STRATEGIES
    from repro.sim.failures import IterationFailure, NoFailures
    from repro.telemetry.collector import Telemetry

    if args.strategy not in STRATEGIES:
        print(f"unknown strategy {args.strategy!r}; choose from: "
              + ", ".join(sorted(STRATEGIES)), file=sys.stderr)
        return 2
    strategy = STRATEGIES[args.strategy]
    n_spares = args.spares if strategy.fenix else 0
    env = paper_env(args.ranks + max(n_spares, 1), n_spares=n_spares,
                    seed=args.seed, pfs_servers=2)

    plan = NoFailures()
    if args.kill_rank is not None:
        if not 0 <= args.kill_rank < args.ranks:
            print(f"--kill-rank {args.kill_rank} out of range for "
                  f"{args.ranks} ranks", file=sys.stderr)
            return 2
        plan = IterationFailure.between_checkpoints(
            args.kill_rank, args.interval, args.kill_after_checkpoint
        )

    tel = Telemetry(enabled=True)
    common = dict(plan=plan, telemetry=tel, profile=True,
                  trace_max_records=args.max_records)
    if args.app == "heatdis":
        from repro.apps.heatdis import HeatdisConfig
        cfg = HeatdisConfig(n_iters=args.iters,
                            modeled_bytes_per_rank=args.bytes)
        report = run_heatdis_job(env, args.strategy, args.ranks, cfg,
                                 args.interval, **common)
    elif args.app == "heatdis2d":
        from repro.apps.heatdis2d import Heatdis2DConfig
        cfg = Heatdis2DConfig(n_iters=args.iters,
                              modeled_bytes_per_rank=args.bytes)
        report = run_heatdis2d_job(env, args.strategy, args.ranks, cfg,
                                   args.interval, **common)
    else:
        from repro.apps.minimd import MiniMDConfig
        cfg = MiniMDConfig(n_steps=args.iters)
        report = run_minimd_job(env, args.strategy, args.ranks, cfg,
                                args.interval, **common)
    return tel, report


def _report(args: argparse.Namespace) -> int:
    run = _execute_run(args)
    if isinstance(run, int):
        return run
    tel, report = run
    try:
        ledger = build_ledger(tel, wall_time=report.wall_time)
    except ConservationError as exc:
        print(f"CONSERVATION VIOLATED: {exc}", file=sys.stderr)
        return 1
    print(f"{report.app} / {report.strategy}: "
          f"wall={report.wall_time:.3f}s attempts={report.attempts} "
          f"failures={report.failures}")
    print(format_ledger(ledger, per_rank=not args.no_per_rank))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(ledger.to_dict(), fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    if ledger.dropped and not args.allow_drops:
        print(f"ERROR: {ledger.dropped} trace records dropped -- the "
              "attribution above may be missing work (re-run with a "
              "larger --max-records, or pass --allow-drops to accept)",
              file=sys.stderr)
        return 1
    return 0


def _critical_path(args: argparse.Namespace) -> int:
    run = _execute_run(args)
    if isinstance(run, int):
        return run
    tel, _report_obj = run
    try:
        cp = extract_critical_path(tel, rank=args.path_rank,
                                   occurrence=args.occurrence)
    except ValueError as exc:
        print(f"no critical path: {exc} (did you pass --kill-rank?)",
              file=sys.stderr)
        return 1
    print(format_critical_path(cp))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(cp.to_dict(), fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


def _flamegraph(args: argparse.Namespace) -> int:
    run = _execute_run(args)
    if isinstance(run, int):
        return run
    tel, report = run
    n = write_folded(args.out, tel)
    print(f"wrote {args.out}: {n} stacks over {report.wall_time:.3f}s "
          f"simulated ({report.app}/{report.strategy}) -- load it at "
          "https://www.speedscope.app or feed it to flamegraph.pl")
    return 0


def _load_mean(path: str) -> Optional[dict]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot load {path}: {exc}", file=sys.stderr)
        return None
    mean = doc.get("mean")
    if not isinstance(mean, dict):
        print(f"{path}: not a ledger JSON (missing 'mean')", file=sys.stderr)
        return None
    return mean


def _diff(args: argparse.Namespace) -> int:
    base = _load_mean(args.baseline)
    cur = _load_mean(args.current)
    if base is None or cur is None:
        return EXIT_BAD_INPUT
    deltas = compare_scalars(
        {c: float(base.get(c, 0.0)) for c in CATEGORIES},
        {c: float(cur.get(c, 0.0)) for c in CATEGORIES},
        keys=CATEGORIES,
    )
    failing = over_budget(deltas, args.budget, mode="growth",
                          abs_floor=args.abs_floor)
    for line in format_deltas(deltas, failing, mode="growth",
                              value_format="{:.6f}"):
        print(line)
    code, verdict = budget_verdict(failing, args.budget, what="category")
    print(verdict, file=sys.stderr if failing else sys.stdout)
    return code


def main(argv: Optional[list] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "report":
        return _report(args)
    if args.command == "critical-path":
        return _critical_path(args)
    if args.command == "flamegraph":
        return _flamegraph(args)
    return _diff(args)


if __name__ == "__main__":  # pragma: no cover
    try:
        sys.exit(main())
    except BrokenPipeError:
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
