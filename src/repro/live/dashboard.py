"""Live dashboard frames: pure text renderers, no terminal control.

Two frame builders cover the two JSONL streams a running campaign
produces:

- :func:`render_campaign_frame` folds :mod:`repro.parallel.progress`
  events (``campaign_start`` / ``cell_done`` / ``campaign_end``) into a
  progress bar, cache/worker stats, ETA, and a lane of recent cells;
- :func:`render_trace_frame` renders a
  :class:`~repro.live.series.TimeSeriesAggregator` (fed from a
  flight-recorder stream or a live trace) as per-rank lanes, metric
  sparklines, and the currently-firing alerts.

Both return a complete frame as one string; the CLI (``repro.live
tail``) handles clearing/redrawing, and CI captures the final frame as
an artifact with ``--once --out``.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.live.rules import Alert
from repro.live.series import TimeSeriesAggregator

#: eighth-block ramp used for sparklines
SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: rank-lane state glyphs
LANE_GLYPHS = {
    "alive": "●",      # ●
    "dead": "✕",       # ✕
    "spare": "○",      # ○
    "recovered": "◐",  # ◐
}

SEVERITY_MARKS = {"info": "i", "warning": "!", "critical": "!!"}


def sparkline(values: List[float], width: int = 16) -> str:
    """Unicode sparkline of the newest ``width`` values (min-max scaled)."""
    vals = [float(v) for v in values][-width:]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span <= 0 or not math.isfinite(span):
        return SPARK_CHARS[0] * len(vals)
    out = []
    for v in vals:
        i = int((v - lo) / span * (len(SPARK_CHARS) - 1))
        out.append(SPARK_CHARS[max(0, min(i, len(SPARK_CHARS) - 1))])
    return "".join(out)


def progress_bar(frac: float, width: int = 24) -> str:
    frac = max(0.0, min(1.0, frac))
    filled = int(round(frac * width))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "--"
    if value == 0:
        return "0"
    mag = abs(value)
    if mag >= 1e6 or mag < 1e-3:
        return f"{value:.3g}"
    if float(value).is_integer():
        return f"{int(value)}"
    return f"{value:.3f}"


class CampaignView:
    """Folds a progress-event stream into renderable campaign state."""

    def __init__(self, max_recent: int = 8) -> None:
        self.total = 0
        self.completed = 0
        self.jobs = 1
        self.cache_hits = 0
        self.cache_misses = 0
        self.failed = 0
        self.eta_s: Optional[float] = None
        self.utilization: Optional[float] = None
        self.done = False
        self.host_seconds: Optional[float] = None
        self.alerts_total = 0
        self.recent: Deque[Dict[str, Any]] = deque(maxlen=max_recent)
        self.cell_seconds: Deque[float] = deque(maxlen=64)
        self.events_seen = 0

    def feed(self, event: Dict[str, Any]) -> None:
        self.events_seen += 1
        name = event.get("event")
        if name == "campaign_start":
            self.total = int(event.get("total", 0))
            self.jobs = int(event.get("jobs", 1))
        elif name == "cell_done":
            self.total = int(event.get("total", self.total))
            self.completed = int(event.get("completed", self.completed))
            self.cache_hits = int(event.get("cache_hits", self.cache_hits))
            self.cache_misses = int(
                event.get("cache_misses", self.cache_misses))
            self.eta_s = event.get("eta_s")
            self.utilization = event.get("utilization")
            self.alerts_total += int(event.get("alerts", 0) or 0)
            if event.get("state") == "failed":
                self.failed += 1
            self.recent.append(event)
            self.cell_seconds.append(float(event.get("host_seconds", 0.0)))
        elif name == "campaign_end":
            self.done = True
            self.total = int(event.get("total", self.total))
            self.failed = int(event.get("failed", self.failed))
            self.host_seconds = event.get("host_seconds")

    def replay(self, events: Any) -> "CampaignView":
        for event in events:
            self.feed(event)
        return self


def render_campaign_frame(view: CampaignView, width: int = 78) -> str:
    """One frame of the campaign dashboard (progress-JSONL mode)."""
    lines = []
    frac = view.completed / view.total if view.total else 0.0
    status = "done" if view.done else "running"
    eta = f"eta {view.eta_s:.0f}s" if view.eta_s is not None else "eta --"
    if view.done and view.host_seconds is not None:
        eta = f"took {view.host_seconds:.1f}s"
    lines.append(
        f"campaign {status}  {progress_bar(frac)} "
        f"{view.completed}/{view.total}  {eta}")
    util = (f"{view.utilization:.0%}"
            if view.utilization is not None else "--")
    lines.append(
        f"cache {view.cache_hits} hit / {view.cache_misses} miss"
        f"  jobs {view.jobs}  busy {util}"
        + (f"  failed {view.failed}" if view.failed else "")
        + (f"  alerts {view.alerts_total}" if view.alerts_total else ""))
    if view.cell_seconds:
        lines.append("cell host-seconds  "
                     + sparkline(list(view.cell_seconds), width=32)
                     + f"  last {_fmt(view.cell_seconds[-1])}s")
    if view.recent:
        lines.append("recent cells:")
        for ev in view.recent:
            label = str(ev.get("label") or f"cell {ev.get('index')}")
            mark = {"cached": "=", "fresh": "+", "failed": "x"}.get(
                str(ev.get("state")), "?")
            extra = ""
            if ev.get("alerts"):
                extra = f"  !{ev['alerts']} alert(s)"
            lines.append(f"  {mark} {label[: width - 16]}"
                         f"  {_fmt(ev.get('host_seconds'))}s{extra}")
    if not view.events_seen:
        lines.append("(waiting for progress events...)")
    return "\n".join(line[:width] for line in lines)


def render_trace_frame(
    agg: TimeSeriesAggregator,
    alerts: Optional[List[Alert]] = None,
    meta: Optional[Dict[str, Any]] = None,
    width: int = 78,
) -> str:
    """One frame of the run dashboard (flight-recorder / trace mode)."""
    lines = [
        f"t={agg.now:.3f}s  records={agg.records_seen}"
        f"  open recoveries={agg.open_recoveries}"
    ]
    if meta:
        dropped = int(meta.get("dropped") or 0)
        sampled = int(meta.get("sampled_out") or 0)
        if dropped or sampled:
            lines.append(
                f"drops: ring={dropped} sampled={sampled}"
                f" (window {meta.get('dropped_window')}"
                f" / {meta.get('sampled_window')})")
    if agg.lanes:
        glyphs = "".join(
            LANE_GLYPHS.get(agg.lanes[r].state, "?")
            for r in sorted(agg.lanes))
        lines.append(f"ranks [{glyphs}]  "
                     "(● alive ✕ dead ○ spare "
                     "◐ recovered)")
        busiest = sorted(agg.lanes.values(),
                         key=lambda l: -l.kills)[:4]
        for lane in busiest:
            if lane.kills or lane.state != "alive":
                lines.append(
                    f"  rank {lane.rank}: {lane.state}, "
                    f"{lane.checkpoints} ckpt, {lane.kills} kill(s), "
                    f"last {lane.last_kind}@{lane.last_t:.3f}")
    name_w = max(len(n) for n in agg.series)
    for name, series in agg.series.items():
        if not series.total_count:
            continue
        lines.append(
            f"{name.ljust(name_w)}  {sparkline(series.spark_values(24), 24)}"
            f"  last {_fmt(series.latest())}"
            f"  n={series.total_count}")
    if alerts:
        lines.append(f"alerts ({len(alerts)}):")
        for alert in alerts[-6:]:
            mark = SEVERITY_MARKS.get(alert.severity, "!")
            lines.append(f"  {mark} {alert.render()[: width - 5]}")
    else:
        lines.append("alerts: none")
    return "\n".join(line[:width] for line in lines)
