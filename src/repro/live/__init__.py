"""repro.live: streaming observability over the trace layer.

The fifth observability layer (telemetry -> monitor -> profile ->
report -> **live**): where the others explain a run after the fact,
this one watches it happen.  Three pieces, all driven by
:meth:`repro.sim.trace.Trace.subscribe`:

- :mod:`repro.live.series` -- windowed time-series (tumbling windows on
  simulated time, bounded memory) deriving flush backlog, checkpoint
  overhead, recovery latency, liveness and drop counts from the
  protocol record stream;
- :mod:`repro.live.rules` -- declarative SLO/alert rules evaluated over
  those series as the run executes; fired :class:`Alert` objects land
  in ``RunReport.alerts`` and, under ``strict_slo``, fail the run;
- :mod:`repro.live.dashboard` / :mod:`repro.live.openmetrics` -- the
  presentation edges: live TTY frames (``python -m repro.live tail``)
  and OpenMetrics text snapshots (``... export``).

The input side is sampling-proof by construction: every record kind the
aggregator consumes is protected in :mod:`repro.telemetry.sampling`, so
the tightest overhead-bounding policy cannot blind an SLO.
"""

from repro.live.dashboard import (
    CampaignView,
    render_campaign_frame,
    render_trace_frame,
    sparkline,
)
from repro.live.openmetrics import (
    Family,
    from_aggregator,
    from_metrics_snapshot,
    parse_openmetrics,
    render_openmetrics,
)
from repro.live.rules import (
    Alert,
    AlertEngine,
    AlertRule,
    LiveSession,
    RuleSet,
    SLOViolationError,
    load_rules,
    parse_rules,
)
from repro.live.series import (
    AGGREGATIONS,
    STANDARD_SERIES,
    RankLane,
    TimeSeriesAggregator,
    WindowedSeries,
)

__all__ = [
    "AGGREGATIONS",
    "STANDARD_SERIES",
    "Alert",
    "AlertEngine",
    "AlertRule",
    "CampaignView",
    "Family",
    "LiveSession",
    "RankLane",
    "RuleSet",
    "SLOViolationError",
    "TimeSeriesAggregator",
    "WindowedSeries",
    "from_aggregator",
    "from_metrics_snapshot",
    "load_rules",
    "parse_openmetrics",
    "parse_rules",
    "render_campaign_frame",
    "render_openmetrics",
    "render_trace_frame",
    "sparkline",
]
