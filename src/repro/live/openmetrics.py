"""OpenMetrics text exposition of the repro metrics surfaces.

Two producers share one renderer:

- :func:`from_metrics_snapshot` converts a
  :meth:`repro.telemetry.metrics.MetricsRegistry.snapshot` dict
  (counters, gauges, log-bucketed histograms) into metric families;
- :func:`from_aggregator` exposes the live time-series
  (:class:`~repro.live.series.TimeSeriesAggregator`) as gauges plus
  observation counters.

The output follows the OpenMetrics text format: one ``# TYPE`` /
``# HELP`` block per family, counter sample names ending in ``_total``,
histograms as cumulative ``_bucket{le=...}`` + ``_count`` + ``_sum``,
and a terminating ``# EOF`` line.  :func:`parse_openmetrics` is the
matching validator -- CI round-trips every export through it, so a
malformed exposition fails the build rather than a scrape.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Optional, Tuple

from repro.util.errors import ConfigError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)(?: (?P<timestamp>\S+))?$")
_LABEL_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')

TYPES = ("counter", "gauge", "histogram", "unknown")


def sanitize_name(name: str) -> str:
    """Map an internal dotted metric name onto the OpenMetrics charset."""
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not out or not re.match(r"[a-zA-Z_:]", out[0]):
        out = "_" + out
    return out


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _fmt_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Family:
    """One metric family: a type, a help string, and its samples."""

    def __init__(self, name: str, mtype: str, help_text: str = "") -> None:
        if mtype not in TYPES:
            raise ConfigError(f"unknown metric type {mtype!r}")
        self.name = sanitize_name(name)
        self.type = mtype
        self.help = help_text
        #: (sample suffix, labels dict, value)
        self.samples: List[Tuple[str, Dict[str, str], float]] = []

    def add(self, value: float, suffix: str = "",
            labels: Optional[Dict[str, Any]] = None) -> "Family":
        self.samples.append((suffix, dict(labels or {}), float(value)))
        return self

    def render(self) -> List[str]:
        lines = [f"# TYPE {self.name} {self.type}"]
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        for suffix, labels, value in self.samples:
            name = self.name + suffix
            label_text = ""
            if labels:
                inner = ",".join(
                    f'{sanitize_name(k)}="{_escape_label(v)}"'
                    for k, v in labels.items())
                label_text = "{" + inner + "}"
            lines.append(f"{name}{label_text} {_fmt_value(value)}")
        return lines


def render_openmetrics(families: List[Family]) -> str:
    """Full exposition: every family's block, then the ``# EOF`` marker."""
    lines: List[str] = []
    for family in families:
        lines.extend(family.render())
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def from_metrics_snapshot(snapshot: Dict[str, Any],
                          prefix: str = "repro_") -> List[Family]:
    """Families from a ``MetricsRegistry.snapshot()`` document."""
    families: List[Family] = []
    for name, value in sorted((snapshot.get("counters") or {}).items()):
        fam = Family(prefix + name, "counter", f"counter {name}")
        fam.add(float(value), suffix="_total")
        families.append(fam)
    for name, gauge in sorted((snapshot.get("gauges") or {}).items()):
        fam = Family(prefix + name, "gauge", f"gauge {name}")
        fam.add(float(gauge.get("value", 0.0)))
        families.append(fam)
        high = gauge.get("high")
        if high is not None:
            hfam = Family(prefix + name + "_high", "gauge",
                          f"high-water mark of {name}")
            hfam.add(float(high))
            families.append(hfam)
    for name, hist in sorted((snapshot.get("histograms") or {}).items()):
        fam = Family(prefix + name, "histogram", f"histogram {name}")
        base = float(hist.get("base", 2.0))
        buckets: Dict[str, int] = dict(hist.get("buckets") or {})
        # log-bucketed counts -> cumulative le-labelled buckets
        exps = sorted(int(k) for k in buckets if k != "underflow")
        cumulative = int(buckets.get("underflow", 0))
        if "underflow" in buckets and exps:
            fam.add(cumulative, suffix="_bucket",
                    labels={"le": _fmt_value(base ** (exps[0] - 1))})
        for exp in exps:
            cumulative += int(buckets[str(exp)])
            fam.add(cumulative, suffix="_bucket",
                    labels={"le": _fmt_value(base ** exp)})
        fam.add(int(hist.get("count", cumulative)), suffix="_bucket",
                labels={"le": "+Inf"})
        fam.add(int(hist.get("count", 0)), suffix="_count")
        fam.add(float(hist.get("total", 0.0)), suffix="_sum")
        families.append(fam)
    return families


def from_aggregator(agg: Any, prefix: str = "repro_live_") -> List[Family]:
    """Families from a live :class:`TimeSeriesAggregator`."""
    families: List[Family] = [
        Family(prefix + "records_seen", "counter",
               "trace records folded into the live series").add(
                   agg.records_seen, suffix="_total"),
        Family(prefix + "open_recoveries", "gauge",
               "kills whose data recovery has not completed").add(
                   agg.open_recoveries),
        Family(prefix + "now_seconds", "gauge",
               "newest simulated time seen").add(agg.now),
    ]
    for name, series in agg.series.items():
        latest = series.latest()
        fam = Family(prefix + name, "gauge", f"live series {name} (latest)")
        fam.add(latest if latest is not None else float("nan"))
        families.append(fam)
        families.append(
            Family(prefix + name + "_observations", "counter",
                   f"observations folded into {name}").add(
                       series.total_count, suffix="_total"))
    if agg.lanes:
        states: Dict[str, int] = {}
        for lane in agg.lanes.values():
            states[lane.state] = states.get(lane.state, 0) + 1
        fam = Family(prefix + "ranks", "gauge", "ranks by liveness state")
        for state in sorted(states):
            fam.add(states[state], labels={"state": state})
        families.append(fam)
    return families


def _parse_labels(text: str, lineno: int) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    pos = 0
    while pos < len(text):
        m = _LABEL_RE.match(text, pos)
        if m is None:
            raise ConfigError(
                f"line {lineno}: malformed label set {text!r}")
        labels[m.group("name")] = m.group("value")
        pos = m.end()
        if pos < len(text):
            if text[pos] != ",":
                raise ConfigError(
                    f"line {lineno}: expected ',' in label set {text!r}")
            pos += 1
    return labels


def parse_openmetrics(text: str) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Strict-enough validator for our own expositions.

    Checks: names match the OpenMetrics charset, ``# TYPE`` precedes a
    family's samples, counter samples end in ``_total``, sample values
    parse as floats, labels are well formed, and the exposition ends
    with ``# EOF`` and nothing after it.  Returns
    ``{sample_name: [(labels, value), ...]}``; raises
    :class:`~repro.util.errors.ConfigError` on any violation.
    """
    samples: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    types: Dict[str, str] = {}
    saw_eof = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if saw_eof:
            raise ConfigError(f"line {lineno}: content after # EOF")
        if not line.strip():
            raise ConfigError(f"line {lineno}: blank line in exposition")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[1] not in ("TYPE", "HELP"):
                raise ConfigError(
                    f"line {lineno}: malformed comment {line!r}")
            name = parts[2]
            if not _NAME_RE.match(name):
                raise ConfigError(
                    f"line {lineno}: bad metric name {name!r}")
            if parts[1] == "TYPE":
                mtype = parts[3].strip() if len(parts) > 3 else ""
                if mtype not in TYPES:
                    raise ConfigError(
                        f"line {lineno}: unknown type {mtype!r}")
                if name in types:
                    raise ConfigError(
                        f"line {lineno}: duplicate TYPE for {name}")
                types[name] = mtype
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ConfigError(f"line {lineno}: malformed sample {line!r}")
        name = m.group("name")
        labels = _parse_labels(m.group("labels") or "", lineno)
        for lname in labels:
            if not _LABEL_NAME_RE.match(lname):
                raise ConfigError(
                    f"line {lineno}: bad label name {lname!r}")
        raw = m.group("value")
        try:
            value = float({"+Inf": "inf", "-Inf": "-inf",
                           "NaN": "nan"}.get(raw, raw))
        except ValueError as exc:
            raise ConfigError(
                f"line {lineno}: bad sample value {raw!r}") from exc
        family = _family_of(name, types)
        if family is None:
            raise ConfigError(
                f"line {lineno}: sample {name!r} precedes its # TYPE")
        if types[family] == "counter" and not name.endswith("_total"):
            raise ConfigError(
                f"line {lineno}: counter sample {name!r} "
                "must end in _total")
        samples.setdefault(name, []).append((labels, value))
    if not saw_eof:
        raise ConfigError("exposition does not end with # EOF")
    return samples


def _family_of(sample_name: str, types: Dict[str, str]) -> Optional[str]:
    if sample_name in types:
        return sample_name
    for suffix in ("_total", "_bucket", "_count", "_sum"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in types:
                return base
    return None
