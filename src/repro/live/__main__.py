"""Live observability CLI.

Usage (repository root, ``PYTHONPATH=src``)::

    # live dashboard over a campaign progress stream or a streaming
    # flight-recorder trace, as the file is written
    python -m repro.live tail campaign.progress.jsonl
    python -m repro.live tail run.trace.jsonl --rules examples/slo_rules.json

    # single frame (CI artifact): render what is there now and exit
    python -m repro.live tail campaign.progress.jsonl --once --out frame.txt

    # evaluate an SLO rules file against a recorded trace
    python -m repro.live check run.trace.jsonl --rules examples/slo_rules.json

    # OpenMetrics snapshot from a trace file or a metrics.json snapshot
    python -m repro.live export run.trace.jsonl --out metrics.prom

Exit codes follow :mod:`repro.report.compare`: 0 clean, 1 SLO alerts
fired (``check``), 2 usage/load errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, Optional

from repro.live.dashboard import (
    CampaignView,
    render_campaign_frame,
    render_trace_frame,
)
from repro.live.openmetrics import (
    from_aggregator,
    from_metrics_snapshot,
    parse_openmetrics,
    render_openmetrics,
)
from repro.live.rules import LiveSession, RuleSet, load_rules
from repro.report.compare import EXIT_BAD_INPUT, EXIT_OK, EXIT_REGRESSION
from repro.sim.trace import TraceRecord
from repro.util.errors import ReproError
from repro.util.schema import warn_on_mismatch


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.live",
        description="Live dashboards, SLO checks, and OpenMetrics exports "
                    "over trace and progress streams.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    tail = sub.add_parser(
        "tail", help="live dashboard over a progress or trace JSONL file")
    tail.add_argument("path", help="campaign progress JSONL or "
                                   "flight-recorder trace JSONL")
    tail.add_argument("--rules", default=None,
                      help="SLO rules file (trace mode)")
    tail.add_argument("--window", type=float, default=1.0,
                      help="aggregation window, simulated seconds")
    tail.add_argument("--interval", type=float, default=0.5,
                      help="host seconds between polls")
    tail.add_argument("--timeout", type=float, default=60.0,
                      help="exit after this many host seconds without "
                           "new data (0 = wait forever)")
    tail.add_argument("--once", action="store_true",
                      help="render one frame from current content and exit")
    tail.add_argument("--out", default=None,
                      help="also write the final frame to this file")
    tail.add_argument("--width", type=int, default=78)

    check = sub.add_parser(
        "check", help="evaluate SLO rules against a recorded trace")
    check.add_argument("trace", help="flight-recorder trace JSONL")
    check.add_argument("--rules", required=True, help="SLO rules file")
    check.add_argument("--window", type=float, default=1.0)
    check.add_argument("--json", action="store_true",
                       help="machine-readable result on stdout")

    export = sub.add_parser(
        "export", help="OpenMetrics text snapshot from a trace file or a "
                       "metrics snapshot JSON")
    export.add_argument("source", help="trace JSONL, or JSON with "
                                       "counters/gauges/histograms")
    export.add_argument("--out", default=None,
                        help="write here instead of stdout")
    export.add_argument("--window", type=float, default=1.0)
    export.add_argument("--prefix", default="repro_")
    return parser


def _record_from_obj(obj: Dict[str, Any]) -> TraceRecord:
    return TraceRecord(
        time=float(obj["time"]),
        source=str(obj["source"]),
        kind=str(obj["kind"]),
        fields=dict(obj.get("fields", {})),
        seq=int(obj.get("seq", -1)),
    )


def _load_rules_or_none(path: Optional[str]) -> Optional[RuleSet]:
    return load_rules(path) if path else None


# -- tail -----------------------------------------------------------------


class _TailState:
    """Folds one JSONL stream, auto-detecting which stream it is."""

    def __init__(self, rules: Optional[RuleSet], window_s: float) -> None:
        self.mode: Optional[str] = None  # "progress" | "trace"
        self.view = CampaignView()
        self.session = LiveSession(rules=rules, window_s=window_s)
        self.meta: Dict[str, Any] = {}
        self.dirty = False

    def feed(self, obj: Dict[str, Any]) -> None:
        if self.mode is None:
            self.mode = "progress" if "event" in obj else "trace"
        if self.mode == "progress":
            if "event" in obj:
                if obj.get("event") == "campaign_start":
                    from repro.parallel.progress import PROGRESS_SCHEMA

                    warn_on_mismatch(
                        "progress stream", PROGRESS_SCHEMA,
                        found_schema=obj.get("schema"),
                        found_version=obj.get("repro_version"))
                self.view.feed(obj)
                self.dirty = True
            return
        if "meta" in obj:
            meta = obj["meta"] or {}
            from repro.monitor.trace_io import FORMAT_VERSION

            warn_on_mismatch(
                "trace stream", FORMAT_VERSION,
                found_schema=meta.get("schema", meta.get("version")),
                found_version=meta.get("repro_version"))
            self.meta.update(meta)
            self.dirty = True
            return
        try:
            rec = _record_from_obj(obj)
        except (KeyError, TypeError, ValueError):
            return  # foreign line in the stream; a viewer keeps going
        self.session.feed(rec)
        self.dirty = True

    @property
    def finished(self) -> bool:
        return self.mode == "progress" and self.view.done

    def frame(self, width: int) -> str:
        if self.mode == "progress":
            return render_campaign_frame(self.view, width=width)
        return render_trace_frame(
            self.session.aggregator, alerts=self.session.alerts,
            meta=self.meta, width=width)


def _tail(args: argparse.Namespace) -> int:
    try:
        rules = _load_rules_or_none(args.rules)
        fh = open(args.path, "r", encoding="utf-8")
    except (OSError, ReproError) as exc:
        print(f"cannot tail: {exc}", file=sys.stderr)
        return EXIT_BAD_INPUT
    state = _TailState(rules, args.window)
    is_tty = sys.stdout.isatty()
    pending = ""
    last_data = time.monotonic()
    frame = ""
    with fh:
        while True:
            chunk = fh.readline()
            if chunk:
                pending += chunk
                if not pending.endswith("\n"):
                    continue  # writer mid-line; wait for the rest
                raw, pending = pending.strip(), ""
                last_data = time.monotonic()
                if raw:
                    try:
                        state.feed(json.loads(raw))
                    except json.JSONDecodeError:
                        pass  # torn line in a live file; keep tailing
                continue
            # caught up with the writer
            if state.dirty or not frame:
                frame = state.frame(args.width)
                state.dirty = False
                if is_tty and not args.once:
                    sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
                    sys.stdout.flush()
            if args.once or state.finished:
                break
            if (args.timeout
                    and time.monotonic() - last_data > args.timeout):
                break
            time.sleep(max(args.interval, 0.05))
    if state.mode == "trace":
        state.session.finish()  # final rule evaluation
        frame = state.frame(args.width)
    if not is_tty or args.once:
        print(frame)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as out:
            out.write(frame + "\n")
    return EXIT_OK


# -- check ----------------------------------------------------------------


def _check(args: argparse.Namespace) -> int:
    from repro.monitor.trace_io import read_trace

    try:
        rules = load_rules(args.rules)
        records, meta = read_trace(args.trace)
    except (OSError, ReproError) as exc:
        print(f"cannot check: {exc}", file=sys.stderr)
        return EXIT_BAD_INPUT
    session = LiveSession(rules=rules, window_s=args.window)
    # an empty trace has nothing to evaluate: "no complete windows" is a
    # report, not an SLO pass or failure, so it exits clean.  A trace
    # shorter than the smallest rule window still gets the end-of-stream
    # evaluation (an alert over a partial window is real evidence), but
    # a silent pass on one is labelled for what it is.
    min_window = min((r.window_s for r in rules), default=0.0)
    span = records[-1].time - records[0].time if records else 0.0
    complete_windows = bool(records) and span >= min_window
    if records:
        session.replay(records)
        alerts = session.finish()
    else:
        alerts = []
    if args.json:
        print(json.dumps({
            "trace": args.trace,
            "rules": args.rules,
            "records": len(records),
            "meta": meta,
            "complete_windows": complete_windows,
            "alerts": [a.to_dict() for a in alerts],
            "snapshot": session.aggregator.snapshot(),
        }, indent=1, sort_keys=True))
    else:
        print(f"{args.trace}: {len(records)} records, "
              f"{len(rules)} rule(s), {len(alerts)} alert(s)")
        if not records:
            print("  no complete windows: the trace is empty; "
                  "nothing to evaluate")
        elif not complete_windows and not alerts:
            print(f"  no complete windows: trace spans {span:.6g}s, "
                  f"shorter than the smallest rule window "
                  f"({min_window:.6g}s); clean, but on partial "
                  f"evidence")
        for alert in alerts:
            print("  " + alert.render())
            for brief in alert.records:
                print("      " + brief)
    return EXIT_REGRESSION if alerts else EXIT_OK


# -- export ---------------------------------------------------------------


def _load_source(path: str, window_s: float):
    """Returns metric families from whichever source ``path`` is."""
    with open(path, "r", encoding="utf-8") as fh:
        head = fh.read(1 << 20)
    try:
        doc = json.loads(head)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict):
        if "telemetry" in doc and isinstance(doc["telemetry"], dict):
            doc = doc["telemetry"]  # a RunReport dump
        if {"counters", "gauges", "histograms"} & set(doc):
            return from_metrics_snapshot(doc), "metrics snapshot"
    # fall through: treat as a flight-recorder trace
    from repro.monitor.trace_io import read_trace

    from repro.live.series import TimeSeriesAggregator
    records, _meta = read_trace(path)
    agg = TimeSeriesAggregator(window_s=window_s).replay(records)
    return from_aggregator(agg), f"trace ({len(records)} records)"


def _export(args: argparse.Namespace) -> int:
    try:
        families, what = _load_source(args.source, args.window)
    except (OSError, ReproError) as exc:
        print(f"cannot export: {exc}", file=sys.stderr)
        return EXIT_BAD_INPUT
    if args.prefix != "repro_":
        for fam in families:
            fam.name = fam.name.replace("repro_", args.prefix, 1)
    text = render_openmetrics(families)
    # self-check before anything scrapes it
    parse_openmetrics(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {len(families)} families from {what} to {args.out}",
              file=sys.stderr)
    else:
        sys.stdout.write(text)
    return EXIT_OK


def main(argv: Optional[list] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "tail":
        return _tail(args)
    if args.command == "check":
        return _check(args)
    return _export(args)


if __name__ == "__main__":  # pragma: no cover
    try:
        sys.exit(main())
    except BrokenPipeError:
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
