"""Windowed time-series over the live trace stream.

:class:`WindowedSeries` folds observations into *tumbling windows* on
simulated time (window ``i`` covers ``[i*width, (i+1)*width)``), keeping
only the newest ``max_windows`` summaries plus a bounded reservoir of
raw samples for percentile queries -- memory stays O(windows + samples)
no matter how long the run is.

:class:`TimeSeriesAggregator` is a :meth:`~repro.sim.trace.Trace
.subscribe` listener that derives the standard live metrics from the
protocol record stream:

================================  ======================================
``flush_backlog_bytes``           bytes in flight on the VeloC servers
                                  (``flush_submit`` adds, ``flush_done``
                                  subtracts)
``checkpoint_overhead_pct``       100 * checkpoint seconds / seconds
                                  since that rank's previous checkpoint
``recovery_latency_s``            rank kill -> first data recovery
                                  (``recover`` / ``imr_restore``)
``dropped_records``               trace ring evictions + sampled-out
                                  records at observation time
``alive_ranks`` / ``spare_ranks`` process liveness and spare-pool depth
================================  ======================================

All inputs are *protected* trace kinds (see
:mod:`repro.telemetry.sampling`), so the series stay exact under even
the tightest sampling policy.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.sim.trace import Trace, TraceRecord
from repro.util.errors import ConfigError

#: record kinds that open a recovery episode
KILL_KINDS = frozenset({"rank_killed", "rank_crashed"})

#: record kinds whose arrival proves data recovery completed
RECOVERY_DONE_KINDS = frozenset({"recover", "imr_restore"})

#: the aggregator's standard global series
STANDARD_SERIES = (
    "flush_backlog_bytes",
    "checkpoint_overhead_pct",
    "recovery_latency_s",
    "dropped_records",
    "alive_ranks",
    "spare_ranks",
)

#: supported rule/query aggregations
AGGREGATIONS = (
    "last", "min", "max", "mean", "sum", "count",
    "p50", "p95", "p99", "growth",
)


@dataclass
class Window:
    """Summary of one tumbling window (never stores its observations)."""

    index: int
    t0: float
    count: int = 0
    total: float = 0.0
    vmin: float = math.inf
    vmax: float = -math.inf
    first: float = 0.0
    last: float = 0.0

    def observe(self, value: float) -> None:
        if self.count == 0:
            self.first = value
        self.count += 1
        self.total += value
        self.last = value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value


class WindowedSeries:
    """One named metric: bounded window ring + bounded sample reservoir."""

    def __init__(self, name: str, window_s: float = 1.0,
                 max_windows: int = 256, max_samples: int = 512,
                 max_briefs: int = 8) -> None:
        if window_s <= 0:
            raise ConfigError(f"window_s must be > 0, got {window_s}")
        self.name = name
        self.window_s = float(window_s)
        self.windows: Deque[Window] = deque(maxlen=max_windows)
        #: newest raw ``(time, value)`` pairs, for percentile queries
        self.samples: Deque[Tuple[float, float]] = deque(maxlen=max_samples)
        #: briefs of the records behind the newest observations -- the
        #: causal window an Alert carries
        self.briefs: Deque[str] = deque(maxlen=max_briefs)
        self.total_count = 0

    def window_index(self, t: float) -> int:
        return int(t // self.window_s)

    def observe(self, t: float, value: float,
                record: Optional[TraceRecord] = None) -> None:
        value = float(value)
        idx = self.window_index(t)
        if not self.windows or self.windows[-1].index != idx:
            self.windows.append(Window(index=idx, t0=idx * self.window_s))
        self.windows[-1].observe(value)
        self.samples.append((t, value))
        self.total_count += 1
        if record is not None:
            self.briefs.append(record.brief())

    # -- queries ----------------------------------------------------------

    def latest(self) -> Optional[float]:
        return self.windows[-1].last if self.windows else None

    def _windows_since(self, t_lo: float) -> List[Window]:
        # windows overlap the lookback when they end after t_lo
        return [w for w in self.windows if w.t0 + self.window_s > t_lo]

    def aggregate(self, agg: str, t: float,
                  lookback_s: float) -> Optional[float]:
        """``agg`` over observations in ``[t - lookback_s, t]``.

        Percentiles are computed over the raw sample reservoir (exact
        while total observations fit in ``max_samples``; nearest-rank
        over the newest samples after that); everything else folds the
        window summaries.  None when the lookback holds no data.
        """
        if agg not in AGGREGATIONS:
            raise ConfigError(
                f"unknown aggregation {agg!r}; known: {AGGREGATIONS}")
        t_lo = t - lookback_s
        if agg in ("p50", "p95", "p99"):
            vals = sorted(v for (st, v) in self.samples if st >= t_lo)
            if not vals:
                return None
            q = {"p50": 0.50, "p95": 0.95, "p99": 0.99}[agg]
            rank = max(1, math.ceil(q * len(vals)))
            return vals[rank - 1]
        wins = self._windows_since(t_lo)
        if not wins:
            return 0.0 if agg == "count" else None
        if agg == "last":
            return wins[-1].last
        if agg == "min":
            return min(w.vmin for w in wins)
        if agg == "max":
            return max(w.vmax for w in wins)
        if agg == "sum":
            return sum(w.total for w in wins)
        if agg == "count":
            return float(sum(w.count for w in wins))
        if agg == "mean":
            n = sum(w.count for w in wins)
            return sum(w.total for w in wins) / n if n else None
        # growth: newest minus oldest observation inside the lookback
        return wins[-1].last - wins[0].first

    def recent_briefs(self) -> List[str]:
        return list(self.briefs)

    def spark_values(self, n: int = 16) -> List[float]:
        """Per-window ``last`` values of the newest ``n`` windows."""
        return [w.last for w in list(self.windows)[-n:]]


@dataclass
class RankLane:
    """Dashboard state of one simulated rank."""

    rank: int
    state: str = "alive"  # alive | dead | spare | recovered
    checkpoints: int = 0
    kills: int = 0
    last_kind: str = ""
    last_t: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rank": self.rank, "state": self.state,
            "checkpoints": self.checkpoints, "kills": self.kills,
            "last_kind": self.last_kind, "last_t": self.last_t,
        }


def _record_rank(rec: TraceRecord) -> Optional[int]:
    """Best-effort rank attribution of one record."""
    r = rec.fields.get("rank")
    if r is None:
        r = rec.fields.get("wrank")
    if r is not None:
        try:
            return int(r)
        except (TypeError, ValueError):
            return None
    src = rec.source
    tail = src.rsplit("rank", 1)
    if len(tail) == 2 and tail[1].isdigit():
        return int(tail[1])
    return None


class TimeSeriesAggregator:
    """Trace listener maintaining the standard live series + rank lanes.

    Subscribe with ``trace.subscribe(agg.feed)`` (or use
    :meth:`attach`, which also replays already-held records) for live
    runs, or push a recorded stream through :meth:`replay`.
    """

    def __init__(self, window_s: float = 1.0, max_windows: int = 256,
                 trace: Optional[Trace] = None) -> None:
        self.window_s = float(window_s)
        self.series: Dict[str, WindowedSeries] = {
            name: WindowedSeries(name, window_s=window_s,
                                 max_windows=max_windows)
            for name in STANDARD_SERIES
        }
        self.lanes: Dict[int, RankLane] = {}
        self.now = 0.0
        self.records_seen = 0
        self._trace = trace
        self._backlog_bytes = 0.0
        self._world_size = 0
        self._dead: set = set()
        self._spares = 0
        #: open recovery episodes: kill time per (attempt-scoped) kill
        self._open_kills: List[Tuple[float, Optional[int]]] = []
        self._last_ckpt_t: Dict[str, float] = {}

    # -- wiring -----------------------------------------------------------

    def attach(self, trace: Trace) -> None:
        for rec in trace:
            self.feed(rec)
        trace.subscribe(self.feed)
        self._trace = trace

    def detach(self) -> None:
        if self._trace is not None:
            self._trace.unsubscribe(self.feed)

    def replay(self, records: Any) -> "TimeSeriesAggregator":
        for rec in records:
            self.feed(rec)
        return self

    # -- the listener -------------------------------------------------------

    def feed(self, rec: TraceRecord) -> None:
        self.records_seen += 1
        t = rec.time
        if t > self.now:
            self.now = t
        kind = rec.kind
        rank = _record_rank(rec)
        lane = None
        if rank is not None:
            lane = self.lanes.get(rank)
            if lane is None:
                lane = self.lanes[rank] = RankLane(rank)
            lane.last_kind = kind
            lane.last_t = t

        if kind == "flush_submit":
            self._backlog_bytes += float(rec.fields.get("nbytes", 0.0))
            self.series["flush_backlog_bytes"].observe(
                t, self._backlog_bytes, rec)
        elif kind == "flush_done":
            self._backlog_bytes = max(
                0.0, self._backlog_bytes - float(rec.fields.get("nbytes", 0.0)))
            self.series["flush_backlog_bytes"].observe(
                t, self._backlog_bytes, rec)
        elif kind == "checkpoint":
            if lane is not None:
                lane.checkpoints += 1
                if lane.state == "dead":
                    lane.state = "recovered"
            seconds = rec.fields.get("seconds")
            prev = self._last_ckpt_t.get(rec.source)
            self._last_ckpt_t[rec.source] = t
            if seconds is not None and prev is not None and t > prev:
                self.series["checkpoint_overhead_pct"].observe(
                    t, 100.0 * float(seconds) / (t - prev), rec)
        elif kind in KILL_KINDS:
            if lane is not None:
                lane.state = "dead"
                lane.kills += 1
            if rank is not None:
                self._dead.add(rank)
            self._open_kills.append((t, rank))
            self._observe_alive(t, rec)
        elif kind == "rank_dead":
            if rank is not None and rank not in self._dead:
                self._dead.add(rank)
                if lane is not None and lane.state != "dead":
                    lane.state = "dead"
                self._observe_alive(t, rec)
        elif kind in RECOVERY_DONE_KINDS:
            if lane is not None and lane.state == "dead":
                lane.state = "recovered"
            for t_kill, _ in self._open_kills:
                self.series["recovery_latency_s"].observe(t, t - t_kill, rec)
            self._open_kills.clear()
        elif kind == "comm_create":
            members = rec.fields.get("members") or []
            if len(members) > self._world_size:
                self._world_size = len(members)
                self._observe_alive(t, rec)
            if ".attempt" in rec.source and members:
                # a relaunch: every rank of the new attempt is alive again
                self._dead.clear()
                for m in members:
                    lane = self.lanes.setdefault(int(m), RankLane(int(m)))
                    if lane.state == "dead":
                        lane.state = "recovered"
                self._observe_alive(t, rec)
        elif kind == "role":
            role = str(rec.fields.get("role", "")).upper()
            if lane is not None:
                if role == "SPARE":
                    lane.state = "spare"
                elif role == "RECOVERED":
                    lane.state = "recovered"
                elif lane.state in ("spare",):
                    lane.state = "alive"
            if role == "SPARE":
                self._spares += 1
                self.series["spare_ranks"].observe(t, self._spares, rec)
        elif kind == "spare_activated":
            self._spares = max(0, self._spares - 1)
            self.series["spare_ranks"].observe(t, self._spares, rec)
            spare = rec.fields.get("spare")
            if spare is not None:
                lane = self.lanes.setdefault(int(spare), RankLane(int(spare)))
                lane.state = "recovered"
                lane.last_kind, lane.last_t = kind, t

        drops = self._current_drops()
        if drops != (self.series["dropped_records"].latest() or 0.0):
            self.series["dropped_records"].observe(t, drops, rec)

    # -- helpers ------------------------------------------------------------

    def _current_drops(self) -> float:
        if self._trace is None:
            return 0.0
        return float(self._trace.dropped + self._trace.sampled_out)

    def _observe_alive(self, t: float,
                       rec: Optional[TraceRecord] = None) -> None:
        if self._world_size <= 0:
            return
        alive = max(0, self._world_size - len(self._dead))
        self.series["alive_ranks"].observe(t, alive, rec)

    @property
    def open_recoveries(self) -> int:
        """Kills whose data recovery has not completed yet."""
        return len(self._open_kills)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready state (the export/check surface)."""
        out: Dict[str, Any] = {
            "now": self.now,
            "records_seen": self.records_seen,
            "open_recoveries": self.open_recoveries,
            "series": {},
            "lanes": {str(r): lane.to_dict()
                      for r, lane in sorted(self.lanes.items())},
        }
        for name, series in self.series.items():
            out["series"][name] = {
                "latest": series.latest(),
                "count": series.total_count,
                "max": series.aggregate("max", self.now, math.inf)
                if series.total_count else None,
            }
        return out
