"""Declarative SLO/alert rules over the live time-series.

A rule is *data*: it names a metric, an aggregation over a lookback
window, a comparison that must **hold** (the SLO), and how long a
violation must persist (``for_s``) before a structured :class:`Alert`
fires.  Rules live in JSON files::

    {"rules": [
      {"name": "recovery-latency-slo",
       "metric": "recovery_latency_s", "agg": "p99",
       "op": "<=", "threshold": 5.0,
       "window_s": 1e9, "for_s": 0, "severity": "critical",
       "description": "p99 recovery latency within budget"},
      {"name": "no-invariant-violations",
       "metric": "invariant_violations", "agg": "last",
       "op": "==", "threshold": 0, "severity": "critical"},
      {"name": "flush-backlog-drains",
       "metric": "flush_backlog_bytes", "agg": "growth",
       "op": "<=", "threshold": 2e9, "window_s": 50, "for_s": 20,
       "severity": "warning",
       "description": "sustained backlog growth means flushes never drain"}
    ]}

The :class:`AlertEngine` evaluates every rule at each tumbling-window
boundary of the simulated clock (plus once at end of stream).  An alert
fires at most once per violation episode: after firing, the rule
re-arms only when it evaluates true again.  Fired alerts land in
``RunReport.alerts``; in ``strict_slo`` harness mode they raise
:class:`SLOViolationError` -- the CI-fails-the-run shape, mirroring
``strict_monitor``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.live.series import AGGREGATIONS, STANDARD_SERIES, TimeSeriesAggregator
from repro.sim.trace import Trace, TraceRecord
from repro.util.errors import ConfigError, ReproError

#: rules-file schema version
RULES_SCHEMA = 1

SEVERITIES = ("info", "warning", "critical")

OPS: Dict[str, Callable[[float, float], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

#: synthetic metrics served by providers, not the aggregator
PROVIDER_METRICS = ("invariant_violations",)


class SLOViolationError(ReproError):
    """Raised by the harness in strict_slo mode when alerts fired."""

    def __init__(self, alerts: List["Alert"]) -> None:
        self.alerts = alerts
        lines = [f"{len(alerts)} SLO alert(s) fired:"]
        lines += ["  " + a.render() for a in alerts]
        super().__init__("\n".join(lines))


@dataclass(frozen=True)
class AlertRule:
    """One SLO: ``agg(metric over window_s) op threshold`` must hold."""

    name: str
    metric: str
    op: str
    threshold: float
    agg: str = "last"
    #: lookback the aggregation covers (simulated seconds)
    window_s: float = 60.0
    #: how long the violation must persist before the alert fires
    for_s: float = 0.0
    severity: str = "warning"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("alert rule needs a name")
        if self.op not in OPS:
            raise ConfigError(
                f"rule {self.name!r}: unknown op {self.op!r}; "
                f"known: {sorted(OPS)}")
        if self.agg not in AGGREGATIONS:
            raise ConfigError(
                f"rule {self.name!r}: unknown agg {self.agg!r}; "
                f"known: {AGGREGATIONS}")
        if self.severity not in SEVERITIES:
            raise ConfigError(
                f"rule {self.name!r}: unknown severity {self.severity!r}; "
                f"known: {SEVERITIES}")
        if self.window_s <= 0:
            raise ConfigError(f"rule {self.name!r}: window_s must be > 0")
        if self.for_s < 0:
            raise ConfigError(f"rule {self.name!r}: for_s must be >= 0")

    def holds(self, value: Optional[float]) -> bool:
        """None (no data in the lookback) holds vacuously."""
        if value is None:
            return True
        return OPS[self.op](value, self.threshold)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "metric": self.metric, "agg": self.agg,
            "op": self.op, "threshold": self.threshold,
            "window_s": self.window_s, "for_s": self.for_s,
            "severity": self.severity, "description": self.description,
        }


@dataclass
class Alert:
    """One fired rule, with the causal record window it derives from."""

    rule: str
    metric: str
    severity: str
    time: float
    value: Optional[float]
    threshold: float
    op: str
    agg: str
    #: when the SLO first evaluated false in this episode
    since: float = 0.0
    description: str = ""
    #: briefs of the records behind the violating observations
    records: List[str] = field(default_factory=list)

    def render(self) -> str:
        val = "no-data" if self.value is None else f"{self.value:.6g}"
        return (f"[{self.severity}] {self.rule} at t={self.time:.6f}: "
                f"{self.agg}({self.metric}) = {val}, SLO requires "
                f"{self.op} {self.threshold:g}"
                + (f" ({self.description})" if self.description else ""))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule, "metric": self.metric,
            "severity": self.severity, "time": self.time,
            "value": self.value, "threshold": self.threshold,
            "op": self.op, "agg": self.agg, "since": self.since,
            "description": self.description, "records": list(self.records),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Alert":
        return cls(
            rule=doc["rule"], metric=doc["metric"],
            severity=doc.get("severity", "warning"),
            time=float(doc.get("time", 0.0)), value=doc.get("value"),
            threshold=float(doc.get("threshold", 0.0)),
            op=doc.get("op", "<="), agg=doc.get("agg", "last"),
            since=float(doc.get("since", 0.0)),
            description=doc.get("description", ""),
            records=list(doc.get("records", [])),
        )


@dataclass
class RuleSet:
    rules: List[AlertRule] = field(default_factory=list)

    def __iter__(self):
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def to_dict(self) -> Dict[str, Any]:
        return {"schema": RULES_SCHEMA,
                "rules": [r.to_dict() for r in self.rules]}


_RULE_KEYS = {"name", "metric", "agg", "op", "threshold", "window_s",
              "for_s", "severity", "description"}


def parse_rules(doc: Any, origin: str = "<rules>") -> RuleSet:
    """Build a :class:`RuleSet` from a parsed JSON document (an object
    with a ``rules`` list, or a bare list)."""
    if isinstance(doc, dict):
        items = doc.get("rules")
        if items is None:
            raise ConfigError(f"{origin}: no 'rules' key")
    elif isinstance(doc, list):
        items = doc
    else:
        raise ConfigError(f"{origin}: expected an object or list of rules")
    rules: List[AlertRule] = []
    seen = set()
    for i, item in enumerate(items):
        if not isinstance(item, dict):
            raise ConfigError(f"{origin}: rule #{i} is not an object")
        unknown = set(item) - _RULE_KEYS
        if unknown:
            raise ConfigError(
                f"{origin}: rule #{i} has unknown key(s) {sorted(unknown)}")
        missing = {"name", "metric", "op", "threshold"} - set(item)
        if missing:
            raise ConfigError(
                f"{origin}: rule #{i} missing key(s) {sorted(missing)}")
        rule = AlertRule(
            name=str(item["name"]),
            metric=str(item["metric"]),
            op=str(item["op"]),
            threshold=float(item["threshold"]),
            agg=str(item.get("agg", "last")),
            window_s=float(item.get("window_s", 60.0)),
            for_s=float(item.get("for_s", 0.0)),
            severity=str(item.get("severity", "warning")),
            description=str(item.get("description", "")),
        )
        if rule.name in seen:
            raise ConfigError(f"{origin}: duplicate rule name {rule.name!r}")
        seen.add(rule.name)
        rules.append(rule)
    return RuleSet(rules)


def load_rules(path: str) -> RuleSet:
    """Load and validate a rules file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise ConfigError(f"cannot read rules file {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(f"{path}: not valid JSON ({exc.msg})") from exc
    return parse_rules(doc, origin=path)


class AlertEngine:
    """Evaluates a rule set against an aggregator's series.

    ``providers`` serves synthetic metrics (currently
    ``invariant_violations`` from an attached monitor suite) that have
    no time-series of their own.
    """

    def __init__(
        self,
        rules: RuleSet,
        aggregator: TimeSeriesAggregator,
        providers: Optional[Dict[str, Callable[[], float]]] = None,
    ) -> None:
        self.rules = rules
        self.aggregator = aggregator
        self.providers = dict(providers or {})
        for rule in rules:
            if (rule.metric not in aggregator.series
                    and rule.metric not in self.providers
                    and rule.metric not in PROVIDER_METRICS):
                raise ConfigError(
                    f"rule {rule.name!r}: unknown metric {rule.metric!r}; "
                    f"known: {sorted(aggregator.series)} "
                    f"+ {sorted(set(self.providers) | set(PROVIDER_METRICS))}")
        self.alerts: List[Alert] = []
        self._since: Dict[str, Optional[float]] = {r.name: None for r in rules}
        self._fired: Dict[str, bool] = {r.name: False for r in rules}

    def _value(self, rule: AlertRule, t: float) -> Optional[float]:
        provider = self.providers.get(rule.metric)
        if provider is not None:
            return float(provider())
        if rule.metric in PROVIDER_METRICS:
            return None  # declared but not wired (no monitor attached)
        series = self.aggregator.series[rule.metric]
        return series.aggregate(rule.agg, t, rule.window_s)

    def evaluate(self, t: float) -> List[Alert]:
        """Evaluate every rule at simulated time ``t``; returns alerts
        newly fired by this evaluation."""
        fired_now: List[Alert] = []
        for rule in self.rules:
            value = self._value(rule, t)
            if rule.holds(value):
                self._since[rule.name] = None
                self._fired[rule.name] = False
                continue
            since = self._since[rule.name]
            if since is None:
                since = self._since[rule.name] = t
            if self._fired[rule.name] or (t - since) < rule.for_s:
                continue
            self._fired[rule.name] = True
            series = self.aggregator.series.get(rule.metric)
            alert = Alert(
                rule=rule.name, metric=rule.metric, severity=rule.severity,
                time=t, value=value, threshold=rule.threshold, op=rule.op,
                agg=rule.agg, since=since, description=rule.description,
                records=series.recent_briefs() if series is not None else [],
            )
            self.alerts.append(alert)
            fired_now.append(alert)
        return fired_now


class LiveSession:
    """Aggregator + alert engine bundled behind one trace listener.

    The harness creates one per run when rules (or live series) are
    wanted: ``session.attach(trace)`` during the run, then
    ``session.finish()`` after the engine drains returns the fired
    alerts (and raises :class:`SLOViolationError` when ``strict``).
    """

    def __init__(
        self,
        rules: Optional[RuleSet] = None,
        window_s: float = 1.0,
        monitor: Any = None,
        strict: bool = False,
    ) -> None:
        self.aggregator = TimeSeriesAggregator(window_s=window_s)
        providers: Dict[str, Callable[[], float]] = {}
        if monitor is not None:
            providers["invariant_violations"] = (
                lambda: float(len(monitor.violations)))
        self.engine = (
            AlertEngine(rules, self.aggregator, providers)
            if rules is not None and len(rules) else None
        )
        self.strict = strict
        self._trace: Optional[Trace] = None
        self._last_window: Optional[int] = None
        self._finished = False

    @property
    def alerts(self) -> List[Alert]:
        return self.engine.alerts if self.engine is not None else []

    def feed(self, rec: TraceRecord) -> None:
        agg = self.aggregator
        agg.feed(rec)
        if self.engine is None:
            return
        widx = int(rec.time // agg.window_s)
        if self._last_window is not None and widx > self._last_window:
            # evaluate at the boundary the stream just crossed, so the
            # `for_s` persistence clock ticks on simulated time
            self.engine.evaluate(widx * agg.window_s)
        if self._last_window is None or widx > self._last_window:
            self._last_window = widx

    def attach(self, trace: Trace) -> None:
        self._trace = trace
        self.aggregator._trace = trace
        for rec in trace:
            self.feed(rec)
        trace.subscribe(self.feed)

    def detach(self) -> None:
        if self._trace is not None:
            self._trace.unsubscribe(self.feed)

    def replay(self, records: Iterable[TraceRecord]) -> "LiveSession":
        for rec in records:
            self.feed(rec)
        return self

    def finish(self, t: Optional[float] = None) -> List[Alert]:
        """End of stream: final evaluation, detach, strict enforcement."""
        if self._finished:
            return self.alerts
        self._finished = True
        if self.engine is not None:
            self.engine.evaluate(max(self.aggregator.now,
                                     t if t is not None else 0.0))
        self.detach()
        if self.strict and self.alerts:
            raise SLOViolationError(self.alerts)
        return self.alerts
