"""MiniMD: Sandia's molecular-dynamics mini-app, at reproduction scale.

The paper's second application (Section VI-A): Lennard-Jones molecular
dynamics with velocity-Verlet integration, used "to demonstrate the ease
with which developers can use these combined strategies" and to expose
three differently-bound execution phases (Figure 6):

- **Force Compute** -- almost entirely compute-bound (LJ pair forces);
- **Neighboring** -- neighbor-list rebuilds, mostly local compute;
- **Communicator** -- ghost-atom exchange every step, communication-bound.

Real physics: a small all-pairs LJ system per rank with 1-D slab
decomposition, periodic in x/y, ghost exchange in z.  Deterministic given
the seed, so recovery correctness is checked bit-for-bit against a
failure-free run.  Modelled scale: ``modeled_atoms_per_rank`` drives
compute cost, ghost-exchange bytes, and checkpoint bytes.

The view inventory (:meth:`MiniMDState.build_views`) reproduces the
*census structure* of the paper's Figure 7: 61 view objects of which 39
hold distinct checkpointable buffers (one -- positions -- dominating the
memory), 3 are declared aliases (the integrator's swap buffers), and 19
are duplicate captures that Kokkos Resilience detects by buffer identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

import numpy as np

from repro.core.context import Context
from repro.fenix.roles import Role
from repro.kokkos import KokkosRuntime, View
from repro.mpi.handle import CommHandle
from repro.sim.engine import Event
from repro.util.errors import ConfigError

#: flops charged per atom-neighbor interaction (LJ force kernel)
FLOPS_PER_PAIR = 23.0
#: modelled average neighbors per atom at LJ liquid density
AVG_NEIGHBORS = 38.0
#: phase labels (Figure 6 legend)
PHASE_FORCE = "force_compute"
PHASE_NEIGH = "neighboring"
PHASE_COMM = "communicator"


@dataclass(frozen=True)
class MiniMDConfig:
    """MiniMD problem description.

    ``problem_size`` is the paper's lattice edge (100..400); the modelled
    atom count is ``4 * size^3 / n_ranks`` (4 atoms per fcc cell), while
    the *real* simulated system keeps ``real_atoms_per_rank`` atoms.
    """

    real_atoms_per_rank: int = 48
    problem_size: int = 100
    n_ranks_for_model: int = 8
    n_steps: int = 60
    dt: float = 0.005
    cutoff: float = 2.5
    density: float = 0.8442
    neigh_every: int = 20
    temperature: float = 1.44
    compute_jitter: float = 0.0
    seed: int = 12345
    #: extra compute per modelled step (see HeatdisConfig.work_multiplier)
    work_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.real_atoms_per_rank < 8:
            raise ConfigError("need at least 8 atoms per rank")
        if self.n_steps < 1 or self.neigh_every < 1:
            raise ConfigError("bad step configuration")

    @property
    def modeled_atoms_per_rank(self) -> float:
        return 4.0 * self.problem_size**3 / self.n_ranks_for_model

    @property
    def modeled_position_bytes(self) -> float:
        """x/y/z float64 per atom."""
        return self.modeled_atoms_per_rank * 3 * 8.0

    @property
    def modeled_ghost_bytes(self) -> float:
        """Bytes exchanged per border per step: the skin layer of a slab.

        Slab surface fraction ~ (cutoff / slab_depth); approximated as a
        constant 8% boundary layer of the modelled positions.
        """
        return 0.08 * self.modeled_position_bytes

    @property
    def checkpoint_bytes(self) -> float:
        """Positions + velocities."""
        return 2.0 * self.modeled_position_bytes

    def force_work(self) -> float:
        return (
            self.modeled_atoms_per_rank * AVG_NEIGHBORS * FLOPS_PER_PAIR
            * self.work_multiplier
        )

    def neighbor_work(self) -> float:
        # binning + distance checks: ~5x cheaper than one force sweep
        return self.force_work() / 5.0

    def integrate_work(self) -> float:
        return self.modeled_atoms_per_rank * 12.0 * self.work_multiplier


class MiniMDState:
    """Per-rank particle data as a Kokkos view inventory.

    The physically meaningful views are ``x``/``v``/``f`` (positions,
    velocities, forces) plus the integrator swap buffers; the remaining
    small parameter/statistics views exist exactly as in real MiniMD
    (type arrays, bin counts, thermo accumulators, ...) and give the
    Figure-7 census its long tail.
    """

    def __init__(self, runtime: KokkosRuntime, cfg: MiniMDConfig, comm_rank: int,
                 comm_size: int) -> None:
        self.runtime = runtime
        self.cfg = cfg
        self.comm_rank = comm_rank
        self.comm_size = comm_size
        n = cfg.real_atoms_per_rank
        # slab geometry: periodic box, rank owns a z-slab
        volume = n * comm_size / cfg.density
        self.box_xy = float(volume ** (1.0 / 3.0))
        self.box_z = self.box_xy  # global z extent
        self.slab_lo = self.box_z * comm_rank / comm_size
        self.slab_hi = self.box_z * (comm_rank + 1) / comm_size
        self.views: Dict[str, View] = {}
        self.checkpoint_views: List[View] = []
        self.build_views()
        self.initialize_atoms()

    # -- view inventory (Figure 7 structure) --------------------------------

    def build_views(self) -> None:
        cfg = self.cfg
        rt = self.runtime
        n = cfg.real_atoms_per_rank
        pos_bytes = cfg.modeled_position_bytes

        def v(label, shape, modeled):
            view = rt.view(f"minimd.{label}", shape=shape, modeled_nbytes=modeled)
            self.views[label] = view
            return view

        # the dominant view: positions (the paper: "a single view contains
        # the majority of the data")
        self.x = v("x", (n, 3), pos_bytes)
        self.v = v("v", (n, 3), pos_bytes * 0.45)
        self.f = v("f", (n, 3), pos_bytes * 0.45)
        # integrator / exchange swap buffers -> declared aliases (3)
        self.xhold = v("xhold", (n, 3), pos_bytes)
        self.vhold = v("vhold", (n, 3), pos_bytes * 0.45)
        self.fhold = v("fhold", (n, 3), pos_bytes * 0.45)
        rt.declare_alias("minimd.xhold", "minimd.x")
        rt.declare_alias("minimd.vhold", "minimd.v")
        rt.declare_alias("minimd.fhold", "minimd.f")
        # 35 small checkpointed views: types, masses, bins, thermo, config.
        # Together with x/v/f and progress this makes 39 checkpointed views
        # -- the count the paper reports for MiniMD.
        small_labels = (
            ["type", "mass", "q", "image"]
            + [f"bin_count_{i}" for i in range(8)]
            + [f"thermo_{name}" for name in
               ("temp", "press", "pe", "ke", "etot", "virial")]
            + [f"param_{i}" for i in range(9)]
            + [f"stat_{i}" for i in range(8)]
        )
        small_bytes = pos_bytes * 0.002
        for label in small_labels:
            v(label, (max(2, n // 8),), small_bytes)
        self.progress = v("progress", (4,), 32.0)
        # 19 duplicate captures: view objects over buffers already being
        # checkpointed, as the compiler copies views into nested lambdas in
        # real MiniMD ("views which are used across multiple sources").
        dup_sources = [self.x] * 9 + [self.v] * 5 + [self.f] * 5
        self.duplicates = []
        for i, src in enumerate(dup_sources):
            dup = src.subview(slice(None), label=f"minimd.capture_{i}")
            dup.modeled_nbytes = src.modeled_nbytes
            self.duplicates.append(dup)
        # the checkpointed set the app hands to the resilience layer
        self.checkpoint_views = (
            [self.x, self.v, self.f]
            + [self.views[l] for l in small_labels]
            + [self.progress]
        )

    def all_views(self) -> List[View]:
        """Every view object: 42 named (x/v/f, 3 aliases, 35 small,
        progress) + 19 duplicate captures = 61, the paper's census total."""
        return list(self.views.values()) + list(self.duplicates)

    # -- physics -----------------------------------------------------------------

    def initialize_atoms(self) -> None:
        cfg = self.cfg
        n = cfg.real_atoms_per_rank
        rng = np.random.default_rng(cfg.seed + 1009 * self.comm_rank)
        # jittered lattice inside the slab with near-isotropic spacing
        # (nz is scaled to the slab height so atoms never start overlapped)
        slab_h = self.slab_hi - self.slab_lo
        nz = max(1, int(round((n * slab_h**2 / self.box_xy**2) ** (1.0 / 3.0))))
        nxy = int(np.ceil(np.sqrt(n / nz)))
        grid = np.stack(
            np.meshgrid(
                np.arange(nxy), np.arange(nxy), np.arange(nz), indexing="ij"
            ),
            axis=-1,
        ).reshape(-1, 3)[:n]
        spacing_xy = self.box_xy / nxy
        spacing_z = slab_h / nz
        min_spacing = min(spacing_xy, spacing_z)
        pos = np.empty((n, 3))
        pos[:, 0] = (grid[:, 0] + 0.5) * spacing_xy
        pos[:, 1] = (grid[:, 1] + 0.5) * spacing_xy
        pos[:, 2] = self.slab_lo + (grid[:, 2] + 0.5) * spacing_z
        pos += rng.normal(0.0, 0.04 * min_spacing, size=pos.shape)
        self.x.data[:] = pos
        vel = rng.normal(0.0, np.sqrt(cfg.temperature), size=(n, 3))
        vel -= vel.mean(axis=0)  # zero net momentum per rank
        self.v.data[:] = vel
        self.f.data[:] = 0.0
        self.progress.data[:] = 0.0
        self.ghosts = np.empty((0, 3))
        self.neighbor_stamp = -1

    def reinitialize(self) -> None:
        self.initialize_atoms()

    def wrap_positions(self) -> None:
        """Periodic wrap in x/y; clamp z drift softly back into the global
        box (atoms do not migrate between slabs in this reduced model --
        exchange is modelled in cost, not in ownership)."""
        self.x.data[:, 0] %= self.box_xy
        self.x.data[:, 1] %= self.box_xy
        self.x.data[:, 2] %= self.box_z

    def compute_forces(self) -> float:
        """All-pairs LJ forces (vectorized, minimum-image in x/y, direct in
        z with ghosts).  Returns the potential energy."""
        cfg = self.cfg
        x = self.x.data
        others = np.concatenate([x, self.ghosts]) if len(self.ghosts) else x
        delta = x[:, None, :] - others[None, :, :]
        # minimum image in periodic x/y
        for axis, box in ((0, self.box_xy), (1, self.box_xy), (2, self.box_z)):
            d = delta[:, :, axis]
            d -= box * np.round(d / box)
        r2 = np.einsum("ijk,ijk->ij", delta, delta)
        n = x.shape[0]
        np.fill_diagonal(r2[:, :n], np.inf)
        mask = r2 < cfg.cutoff**2
        r2 = np.where(mask, r2, np.inf)
        inv_r2 = 1.0 / r2
        inv_r6 = inv_r2**3
        # LJ: F = 24 eps (2 (s/r)^12 - (s/r)^6) / r^2 * dr
        coef = 24.0 * (2.0 * inv_r6**2 - inv_r6) * inv_r2
        force = np.einsum("ij,ijk->ik", coef, delta)
        self.f.data[:] = force
        pe = float(np.sum(np.where(mask, 4.0 * (inv_r6**2 - inv_r6), 0.0))) / 2.0
        return pe

    def border_atoms(self) -> np.ndarray:
        """Atoms within ``cutoff`` of the slab faces (sent to neighbours)."""
        x = self.x.data
        near_lo = x[:, 2] - self.slab_lo < self.cfg.cutoff
        near_hi = self.slab_hi - x[:, 2] < self.cfg.cutoff
        return x[near_lo | near_hi].copy()

    def kinetic_energy(self) -> float:
        return 0.5 * float(np.sum(self.v.data**2))

    def momentum(self) -> np.ndarray:
        return self.v.data.sum(axis=0)

    def thermo(self, pe: float) -> Dict[str, float]:
        """MiniMD-style thermodynamic observables for the local slab.

        Temperature from equipartition (kB = 1, unit mass), instantaneous
        pressure from the virial theorem with the pair virial approximated
        by ``sum(f . x)`` over owned atoms.
        """
        n = self.x.data.shape[0]
        ke = self.kinetic_energy()
        temperature = 2.0 * ke / (3.0 * n)
        volume = self.box_xy * self.box_xy * (self.slab_hi - self.slab_lo)
        virial = float(np.einsum("ij,ij->", self.f.data, self.x.data))
        pressure = (n * temperature + virial / 3.0) / volume
        observables = {
            "temperature": temperature,
            "pressure": pressure,
            "pe": pe,
            "ke": ke,
            "etot": pe + ke,
        }
        # mirror real MiniMD: thermo results land in the stat views the
        # checkpoint covers
        view_names = {
            "temperature": "thermo_temp",
            "pressure": "thermo_press",
            "pe": "thermo_pe",
            "ke": "thermo_ke",
            "etot": "thermo_etot",
        }
        for name, label in view_names.items():
            view = self.views.get(label)
            if view is not None and view.data.size > 0:
                view.data.flat[0] = observables[name]
        return observables


def exchange_ghosts(
    h: CommHandle, state: MiniMDState, cfg: MiniMDConfig
) -> Generator[Event, Any, None]:
    """Ghost-atom exchange with both z-neighbours (periodic ring), charged
    at the modelled border size (the "Communicator" phase)."""
    if h.size == 1:
        state.ghosts = np.empty((0, 3))
        return
    border = state.border_atoms()
    nbytes = cfg.modeled_ghost_bytes
    up = (h.rank + 1) % h.size
    down = (h.rank - 1) % h.size
    from_down = yield from h.sendrecv(
        border, dest=up, source=down, sendtag=21, nbytes=nbytes
    )
    from_up = yield from h.sendrecv(
        border, dest=down, source=up, sendtag=22, nbytes=nbytes
    )
    parts = [p for p in (from_down, from_up) if len(p)]
    state.ghosts = np.concatenate(parts) if parts else np.empty((0, 3))


def minimd_step(
    h: CommHandle, state: MiniMDState, cfg: MiniMDConfig, step: int
) -> Generator[Event, Any, float]:
    """One velocity-Verlet step with the paper's three phases; returns the
    step's potential energy."""
    ctx = h.ctx
    account = ctx.account
    dt = cfg.dt
    # first half-kick + drift (integrate: folded into the force phase)
    with account.label(PHASE_FORCE):
        state.v.data += 0.5 * dt * state.f.data
        state.x.data += dt * state.v.data
        state.wrap_positions()
        yield from ctx.compute(
            work=cfg.integrate_work(), jitter=cfg.compute_jitter
        )
    # communication phase: ghosts every step
    with account.label(PHASE_COMM):
        yield from exchange_ghosts(h, state, cfg)
    # neighboring phase: rebuild on schedule
    if step % cfg.neigh_every == 0:
        with account.label(PHASE_NEIGH):
            yield from ctx.compute(
                work=cfg.neighbor_work(), jitter=cfg.compute_jitter
            )
            state.neighbor_stamp = step
    # force phase
    with account.label(PHASE_FORCE):
        pe = state.compute_forces()
        yield from ctx.compute(work=cfg.force_work(), jitter=cfg.compute_jitter)
        state.v.data += 0.5 * dt * state.f.data
    return pe


def make_minimd_main(
    cfg: MiniMDConfig,
    make_kr: Any,
    failure_plan: Any = None,
    results: Optional[Dict[int, Any]] = None,
    tracker: Any = None,
):
    """Build the resilient MiniMD main (same Figure-4 pattern as Heatdis).

    The checkpoint region wraps the whole step; the context discovers the
    checkpointable views through the explicitly subscribed checkpoint set
    plus whatever the step closure captures (the duplicates), reproducing
    the Figure-7 census.
    """

    def main(role: Role, h: CommHandle) -> Generator[Event, Any, Any]:
        ctx = h.ctx
        persistent = ctx.user.setdefault("minimd", {})
        state: Optional[MiniMDState] = persistent.get("state")
        kr: Optional[Context] = persistent.get("kr")
        if state is None or role is Role.RECOVERED:
            runtime = KokkosRuntime()
            state = MiniMDState(runtime, cfg, h.rank, h.size)
            persistent["state"] = state
            kr = None
        if kr is None:
            kr = make_kr(h)
            kr.subscribe(state.checkpoint_views)
            persistent["kr"] = kr
            kr.set_role(role)
        elif role is Role.SURVIVOR:
            kr.reset(h, role)
        else:
            kr.set_role(role)

        latest = yield from kr.latest_version()
        if latest < 0 and role is not Role.INITIAL:
            state.reinitialize()
        start = max(0, latest)

        pe = 0.0
        for step in range(start, cfg.n_steps):
            if failure_plan is not None:
                failure_plan.check(ctx.rank, step)
            captured_dups = state.duplicates  # the Figure-7 "skipped" views

            def region(step=step):
                nonlocal pe
                pe = yield from minimd_step(h, state, cfg, step)
                state.progress[0] = float(step)
                state.progress[1] = pe
                _ = captured_dups  # captured, as the compiler does

            # NOTE: MiniMD's phase labels override the recompute label, so
            # re-executed work appears as extra time inside the compute
            # phases -- exactly how Figure 6 presents it.
            is_recompute = tracker is not None and tracker.is_recompute(
                h.rank, step
            )
            if is_recompute:
                with ctx.recompute(step):
                    yield from kr.checkpoint("minimd", step, region)
            else:
                yield from kr.checkpoint("minimd", step, region)
                if tracker is not None:
                    tracker.advance(h.rank, step)
        outcome = {
            "rank": h.rank,
            "steps": cfg.n_steps,
            "x": state.x.data.copy(),
            "v": state.v.data.copy(),
            "pe": pe,
            "ke": state.kinetic_energy(),
            "kr": kr,
            "state": state,
        }
        if results is not None:
            results[h.rank] = outcome
        return outcome

    return main
