"""Benchmark applications: Heatdis and MiniMD.

Both applications follow the guide's split between correctness and cost:
the numerics run for real on laptop-scale numpy arrays (vectorized, in
place), while *modelled* sizes -- bytes per node, atoms per rank -- drive
every simulated cost (compute time, message bytes, checkpoint bytes), so a
"1 GB/node on 64 nodes" experiment finishes in seconds yet exercises every
code path the paper's testbed did.
"""

from repro.apps.heatdis import (
    HeatdisConfig,
    HeatdisState,
    heatdis_reference,
    make_heatdis_main,
)
from repro.apps.heatdis2d import (
    Heatdis2DConfig,
    Heatdis2DState,
    heatdis2d_reference,
    make_heatdis2d_main,
)
from repro.apps.heatdis_elastic import (
    gather_elastic,
    make_elastic_heatdis_main,
    partition_rows,
)
from repro.apps.heatdis_manual import make_manual_heatdis_main
from repro.apps.minimd import (
    MiniMDConfig,
    MiniMDState,
    make_minimd_main,
)

__all__ = [
    "HeatdisConfig",
    "HeatdisState",
    "heatdis_reference",
    "make_heatdis_main",
    "Heatdis2DConfig",
    "Heatdis2DState",
    "heatdis2d_reference",
    "make_heatdis2d_main",
    "make_manual_heatdis_main",
    "make_elastic_heatdis_main",
    "gather_elastic",
    "partition_rows",
    "MiniMDConfig",
    "MiniMDState",
    "make_minimd_main",
]
