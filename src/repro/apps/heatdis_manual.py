"""Heatdis with *manual* resilience (no Kokkos Resilience layer).

The paper's reference configurations (Section V-A): "VeloC alone" and
"Fenix with VeloC but without Kokkos Resilience".  These exist to
demonstrate the headline claim that letting Kokkos Resilience manage VeloC
adds **no or negligible overhead** over hand-written integration -- so the
code here does by hand exactly what :mod:`repro.core` automates:
``mem_protect`` each region, checkpoint on the interval, query/reduce the
best restorable version, recover.

The Fenix+VeloC variant also shows the integration burden the paper
quantifies: using VeloC in non-collective mode and performing the global
best-version reduction manually.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from repro.apps.heatdis import HeatdisConfig, HeatdisState, heatdis_iteration
from repro.core.backends.base import region_id_for
from repro.fenix.roles import Role
from repro.kokkos import KokkosRuntime
from repro.mpi import MIN
from repro.mpi.handle import CommHandle
from repro.sim.engine import Event
from repro.veloc import VeloCClient, VeloCConfig, VeloCService


def make_manual_heatdis_main(
    cfg: HeatdisConfig,
    cluster: Any,
    service: VeloCService,
    ckpt_interval: int,
    use_fenix: bool,
    failure_plan: Any = None,
    results: Optional[Dict[int, Any]] = None,
    tracker: Any = None,
    incremental: bool = True,
    dedup: bool = True,
):
    """Build a hand-integrated resilient Heatdis main.

    ``use_fenix=False`` gives the "VeloC alone" configuration (collective
    VeloC; the job is relaunched by the harness after failures).
    ``use_fenix=True`` gives "Fenix with VeloC but without Kokkos
    Resilience": non-collective VeloC with the manual reduction.
    """
    mode = "single" if use_fenix else "collective"

    def main(role: Role, h: CommHandle) -> Generator[Event, Any, Any]:
        ctx = h.ctx
        persistent = ctx.user.setdefault("heatdis_manual", {})
        state: Optional[HeatdisState] = persistent.get("state")
        client: Optional[VeloCClient] = persistent.get("client")
        if state is None or role is Role.RECOVERED:
            runtime = KokkosRuntime()
            state = HeatdisState(runtime, cfg, h.rank, h.size)
            persistent["state"] = state
            client = None
        if client is None:
            client = VeloCClient(
                ctx, cluster, service,
                VeloCConfig(mode=mode, ckpt_name="manual",
                            incremental=incremental,
                            dedup=dedup and incremental),
                comm=h,
            )
            # manual region registration: the chore KR automates
            client.mem_protect(region_id_for(state.current.label), state.current)
            client.mem_protect(region_id_for(state.progress.label), state.progress)
            persistent["client"] = client
        elif role is Role.SURVIVOR:
            # manual communicator/rank refresh after repair
            client.set_comm(h)

        # manual best-version query
        if use_fenix:
            local = client.local_versions()
            local_best = max(local) if local else -1
            latest = int((yield from h.allreduce(local_best, op=MIN, nbytes=8.0)))
        else:
            latest = yield from client.restart_test()
        if latest >= 0:
            yield from client.recover(latest)
            start = int(state.progress[0]) + 1
        else:
            if role is not Role.INITIAL:
                state.reinitialize(h.rank)
            start = 0

        for i in range(start, cfg.n_iters):
            if failure_plan is not None:
                failure_plan.check(ctx.rank, i)
            is_recompute = tracker is not None and tracker.is_recompute(h.rank, i)
            if is_recompute:
                with ctx.recompute(i):
                    yield from heatdis_iteration(h, state, cfg, reduce_error=False)
            else:
                yield from heatdis_iteration(h, state, cfg, reduce_error=False)
                if tracker is not None:
                    tracker.advance(h.rank, i)
            state.progress[0] = float(i)
            if i > 0 and i % ckpt_interval == 0:
                yield from client.checkpoint(i)
        outcome = {
            "rank": h.rank,
            "iterations": cfg.n_iters,
            "grid": state.current.data[1:-1, :].copy(),
        }
        if results is not None:
            results[h.rank] = outcome
        return outcome

    return main
