"""Heatdis: the VeloC heat-distribution benchmark, ported to Kokkos views.

The paper's first application (Section VI-A): a 2-D five-point stencil
with a fixed hot top edge, row-decomposed across ranks, running either a
static number of iterations (Figure 5) or until convergence (the
partial-rollback demonstration).  "All tests with Heatdis perform 6
checkpoints, which are each half the size of the application's data" --
which falls out naturally here: the application holds two grid copies
(current + next) and checkpoints only the current one.

Real numerics: the stencil is vectorized numpy updating a small local
grid; a pure single-domain reference (:func:`heatdis_reference`) validates
the decomposed solution exactly.  Modelled size: ``modeled_bytes_per_rank``
scales compute cost, halo message bytes, and checkpoint bytes to the
paper's configurations (16 MB .. 1 GB per node).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional

import numpy as np

from repro.core.context import Context
from repro.fenix.roles import Role
from repro.kokkos import KokkosRuntime
from repro.mpi import SUM
from repro.mpi.handle import CommHandle
from repro.sim.engine import Event
from repro.util.errors import ConfigError

#: boundary temperature applied along the global top edge
HOT_EDGE = 100.0
#: stencil flops per cell per iteration (cost model)
FLOPS_PER_CELL = 6.0


@dataclass(frozen=True)
class HeatdisConfig:
    """Heatdis problem description.

    Attributes:
        local_rows/cols: real per-rank grid (kept small; correctness).
        modeled_bytes_per_rank: the data size the experiment *represents*
            (the paper's 16 MB .. 1 GB per node); drives all costs.
        n_iters: static iteration count (iteration-count variant).
        convergence_threshold: stop when the global update delta drops
            below this (convergence variant); ``None`` disables.
        compute_jitter: lognormal sigma for per-iteration performance
            variability.
        work_multiplier: extra compute per modelled iteration.  The paper's
            runs perform far more sweeps between checkpoints than our 60
            modelled iterations; this folds that work into each iteration
            so the compute : checkpoint cost ratio matches the testbed.
    """

    local_rows: int = 24
    cols: int = 32
    modeled_bytes_per_rank: float = 64e6
    n_iters: int = 120
    convergence_threshold: Optional[float] = None
    compute_jitter: float = 0.0
    work_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.local_rows < 1 or self.cols < 3:
            raise ConfigError("grid too small")
        if self.modeled_bytes_per_rank <= 0:
            raise ConfigError("modeled size must be positive")

    @property
    def modeled_cells(self) -> float:
        """Cells represented per rank (two float64 grid copies)."""
        return self.modeled_bytes_per_rank / (8.0 * 2.0)

    @property
    def modeled_halo_bytes(self) -> float:
        """Bytes of one halo row at the modelled resolution (assume a
        square modelled grid)."""
        return float(np.sqrt(self.modeled_cells)) * 8.0

    @property
    def checkpoint_bytes(self) -> float:
        """One grid copy: half the application data, as the paper states."""
        return self.modeled_bytes_per_rank / 2.0

    def iteration_work(self) -> float:
        """Compute work units (flops) for one modelled iteration."""
        return self.modeled_cells * FLOPS_PER_CELL * self.work_multiplier


class HeatdisState:
    """Per-rank grids as Kokkos views (with the swap view aliased)."""

    def __init__(self, runtime: KokkosRuntime, cfg: HeatdisConfig, comm_rank: int,
                 comm_size: int) -> None:
        self.runtime = runtime
        self.cfg = cfg
        shape = (cfg.local_rows + 2, cfg.cols)  # two ghost rows
        half = cfg.checkpoint_bytes
        self.current = runtime.view(
            "heatdis.grid", shape=shape, modeled_nbytes=half
        )
        self.next = runtime.view(
            "heatdis.grid_next", shape=shape, modeled_nbytes=half
        )
        # the swap buffer holds the same logical content: never checkpoint
        runtime.declare_alias("heatdis.grid_next", "heatdis.grid")
        self.progress = runtime.view(
            "heatdis.progress", shape=(2,), modeled_nbytes=16.0
        )
        if comm_rank == 0:
            # global top edge is the hot boundary (lives in rank 0's ghost)
            self.current.data[0, :] = HOT_EDGE
            self.next.data[0, :] = HOT_EDGE

    def reinitialize(self, comm_rank: int) -> None:
        """Reset to initial conditions (the re-init path when no
        checkpoint is restorable)."""
        self.current.data[:] = 0.0
        self.next.data[:] = 0.0
        self.progress.data[:] = 0.0
        if comm_rank == 0:
            self.current.data[0, :] = HOT_EDGE
            self.next.data[0, :] = HOT_EDGE


def stencil_sweep(current: np.ndarray, nxt: np.ndarray) -> float:
    """One vectorized five-point Jacobi sweep over the owned rows.

    Returns the local L1 delta between iterations.  Operates in place on
    ``nxt`` (no temporaries beyond one difference buffer).
    """
    interior = slice(1, -1)
    nxt[interior, 1:-1] = 0.25 * (
        current[:-2, 1:-1]
        + current[2:, 1:-1]
        + current[interior, :-2]
        + current[interior, 2:]
    )
    # insulated side walls (Neumann): copy the adjacent column
    nxt[interior, 0] = nxt[interior, 1]
    nxt[interior, -1] = nxt[interior, -2]
    return float(np.abs(nxt[interior, :] - current[interior, :]).sum())


def halo_exchange(
    h: CommHandle, state: HeatdisState, cfg: HeatdisConfig
) -> Generator[Event, Any, None]:
    """Exchange ghost rows with the up/down neighbours (deadlock-free
    sendrecv pairs), charging the modelled halo size."""
    grid = state.current.data
    rank, size = h.rank, h.size
    up, down = rank - 1, rank + 1
    nbytes = cfg.modeled_halo_bytes
    if size == 1:
        return
    # phase 1: send first owned row up / receive ghost from below
    if up >= 0 and down < size:
        got = yield from h.sendrecv(
            grid[1, :].copy(), dest=up, source=down, sendtag=10, nbytes=nbytes
        )
        grid[-1, :] = got
    elif up >= 0:
        yield from h.send(grid[1, :].copy(), dest=up, tag=10, nbytes=nbytes)
    elif down < size:
        grid[-1, :] = yield from h.recv(source=down, tag=10)
    # phase 2: send last owned row down / receive ghost from above
    if down < size and up >= 0:
        got = yield from h.sendrecv(
            grid[-2, :].copy(), dest=down, source=up, sendtag=11, nbytes=nbytes
        )
        grid[0, :] = got
    elif down < size:
        yield from h.send(grid[-2, :].copy(), dest=down, tag=11, nbytes=nbytes)
    elif up >= 0:
        grid[0, :] = yield from h.recv(source=up, tag=11)


def heatdis_iteration(
    h: CommHandle,
    state: HeatdisState,
    cfg: HeatdisConfig,
    reduce_error: bool,
) -> Generator[Event, Any, Optional[float]]:
    """One full iteration: halo exchange, stencil (+modelled compute
    charge), swap, optional global delta reduction."""
    ctx = h.ctx
    yield from halo_exchange(h, state, cfg)
    local_delta = stencil_sweep(state.current.data, state.next.data)
    yield from ctx.compute(work=cfg.iteration_work(), jitter=cfg.compute_jitter)
    # swap current/next (the aliased pair)
    state.current.data, state.next.data = state.next.data, state.current.data
    if reduce_error:
        total = yield from h.allreduce(local_delta, op=SUM, nbytes=8.0)
        return float(total)
    return None


def heatdis_reference(cfg: HeatdisConfig, n_ranks: int, n_iters: int) -> np.ndarray:
    """Single-domain reference: the same global problem without
    decomposition or resilience.  Returns the final global grid (owned
    rows only, stacked)."""
    total_rows = cfg.local_rows * n_ranks
    grid = np.zeros((total_rows + 2, cfg.cols))
    nxt = np.zeros_like(grid)
    grid[0, :] = HOT_EDGE
    nxt[0, :] = HOT_EDGE
    for _ in range(n_iters):
        stencil_sweep(grid, nxt)
        grid, nxt = nxt, grid
    return grid[1:-1, :]


def make_heatdis_main(
    cfg: HeatdisConfig,
    make_kr: "Any",
    failure_plan: Any = None,
    partial_rollback: bool = False,
    results: Optional[Dict[int, Any]] = None,
    tracker: Any = None,
):
    """Build the Fenix-style resilient Heatdis main (Figure 4 pattern).

    Args:
        cfg: problem configuration.
        make_kr: callable ``(handle) -> Context`` building the resilience
            context for a fresh process (the harness closes over backend
            wiring and the checkpoint-interval filter).
        failure_plan: consulted at each iteration top (may kill this rank).
        partial_rollback: run the convergence variant where survivors skip
            data restoration (requires ``cfg.convergence_threshold``).
        results: optional dict collecting per-comm-rank outcomes.

    Returns a generator function ``main(role, handle)`` for
    :meth:`FenixSystem.run` (also runnable without Fenix via the harness's
    relaunch driver, which passes ``Role.INITIAL``).
    """
    if partial_rollback and cfg.convergence_threshold is None:
        raise ConfigError("partial rollback requires a convergence threshold")

    def main(role: Role, h: CommHandle) -> Generator[Event, Any, Any]:
        ctx = h.ctx
        persistent = ctx.user.setdefault("heatdis", {})
        state: Optional[HeatdisState] = persistent.get("state")
        kr: Optional[Context] = persistent.get("kr")
        if state is None or role is Role.RECOVERED:
            runtime = KokkosRuntime()
            state = HeatdisState(runtime, cfg, h.rank, h.size)
            persistent["state"] = state
            kr = None
        if kr is None:
            kr = make_kr(h)
            persistent["kr"] = kr
            kr.set_role(role)
        elif role is Role.SURVIVOR:
            kr.reset(h, role)
        else:
            kr.set_role(role)

        latest = yield from kr.latest_version()
        if latest < 0 and role is not Role.INITIAL:
            state.reinitialize(h.rank)
        start = max(0, latest)

        check_convergence = cfg.convergence_threshold is not None
        i = start
        delta = np.inf
        while True:
            if check_convergence:
                if delta <= cfg.convergence_threshold:
                    break
                if i >= cfg.n_iters:  # safety bound
                    break
            elif i >= cfg.n_iters:
                break
            if failure_plan is not None:
                failure_plan.check(ctx.rank, i)

            def region(i=i):
                result = yield from heatdis_iteration(
                    h, state, cfg, reduce_error=check_convergence
                )
                if result is not None:
                    state.progress[1] = result
                state.progress[0] = float(i)

            is_recompute = tracker is not None and tracker.is_recompute(h.rank, i)
            if is_recompute:
                with ctx.recompute(i):
                    executed = yield from kr.checkpoint("heatdis", i, region)
            else:
                executed = yield from kr.checkpoint("heatdis", i, region)
                if tracker is not None:
                    tracker.advance(h.rank, i)
            if check_convergence:
                if executed:
                    delta = float(state.progress[1])
                else:
                    # recovery iteration: survivors under partial rollback
                    # keep their (newer) data; resync delta next iteration
                    delta = np.inf
            i += 1
        outcome = {
            "rank": h.rank,
            "iterations": i,
            "grid": state.current.data[1:-1, :].copy(),
            "delta": None if not check_convergence else delta,
            "kr": kr,
        }
        if results is not None:
            results[h.rank] = outcome
        return outcome

    return main
