"""Elastic Heatdis: shrink-and-rebalance continuation after failures.

The paper's future work (Section VII-A) names "techniques like shrinking
and growing the total number of ranks dynamically throughout execution and
migrating processes for post-failure load balancing".  This application
implements the shrinking half end-to-end:

- it runs under Fenix with **zero spares** and the ``shrink`` policy, so a
  failure leaves a *smaller* resilient communicator;
- on re-entry, the survivors repartition the fixed global grid evenly
  over the new rank count (the load balancing) and **redistribute** the
  last checkpoint: each survivor reads, from the persistent tier, the old
  decomposition's blocks overlapping its new row range and reassembles
  its state;
- computation then continues with the same numerics, so the final answer
  is bit-identical to a fault-free run -- only the decomposition changed.

Checkpoints are stored with explicit row-range metadata (via a raw PFS
object per rank) precisely so a *different* decomposition can consume
them -- the capability fixed-shape ``mem_protect`` registration cannot
express, which is why this main integrates VeloC-style storage manually.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.apps.heatdis import HOT_EDGE, HeatdisConfig, stencil_sweep
from repro.fenix.roles import Role
from repro.kokkos import KokkosRuntime
from repro.mpi import MIN
from repro.mpi.handle import CommHandle
from repro.sim.engine import Event
from repro.util.timing import CHECKPOINT_FUNCTION, DATA_RECOVERY


def partition_rows(total_rows: int, size: int, rank: int) -> Tuple[int, int]:
    """Even block partition: returns ``[row_lo, row_hi)`` for ``rank``."""
    base, extra = divmod(total_rows, size)
    lo = rank * base + min(rank, extra)
    hi = lo + base + (1 if rank < extra else 0)
    return lo, hi


class ElasticState:
    """A rank's slab for the *current* decomposition."""

    def __init__(self, cfg: HeatdisConfig, total_rows: int, comm_rank: int,
                 comm_size: int) -> None:
        self.cfg = cfg
        self.total_rows = total_rows
        self.row_lo, self.row_hi = partition_rows(total_rows, comm_size,
                                                  comm_rank)
        self.runtime = KokkosRuntime()
        rows = self.row_hi - self.row_lo
        self.current = self.runtime.view(
            "elastic.grid", shape=(rows + 2, cfg.cols),
            modeled_nbytes=cfg.checkpoint_bytes,
        )
        self.next = self.runtime.view(
            "elastic.grid_next", shape=(rows + 2, cfg.cols),
            modeled_nbytes=cfg.checkpoint_bytes,
        )
        self.runtime.declare_alias("elastic.grid_next", "elastic.grid")
        if self.row_lo == 0:
            self.current.data[0, :] = HOT_EDGE
            self.next.data[0, :] = HOT_EDGE

    @property
    def owned(self) -> np.ndarray:
        return self.current.data[1:-1, :]


def _ckpt_key(version: int, rank: int) -> Tuple:
    return ("elastic", int(version), int(rank))


def _checkpoint(
    h: CommHandle, state: ElasticState, version: int, cluster: Any
) -> Generator[Event, Any, None]:
    """Store this rank's owned rows + row-range metadata on the PFS.

    Synchronous write (elastic restart needs globally visible data, and
    redistribution reads arbitrary ranks' objects)."""
    ctx = h.ctx
    t0 = ctx.engine.now
    payload = {
        "rows": state.owned.copy(),
        "range": (state.row_lo, state.row_hi),
        "size": h.size,
    }
    yield from cluster.pfs.write(
        _ckpt_key(version, h.rank), payload, state.cfg.checkpoint_bytes,
        ctx.node,
    )
    ctx.account.charge(CHECKPOINT_FUNCTION, ctx.engine.now - t0)


def _complete_versions(cluster: Any, total_rows: int) -> List[int]:
    """Versions whose stored blocks cover the whole global grid (a
    checkpoint wave interrupted by the failure is incomplete and unusable,
    whatever decomposition wrote it)."""
    by_version: Dict[int, List[Tuple[int, int]]] = {}
    for key in cluster.pfs.keys():
        if isinstance(key, tuple) and len(key) == 3 and key[0] == "elastic":
            lo, hi = cluster.pfs.peek(key)["range"]
            by_version.setdefault(key[1], []).append((lo, hi))
    complete = []
    for version, ranges in by_version.items():
        covered = 0
        for lo, hi in sorted(ranges):
            if lo > covered:
                break
            covered = max(covered, hi)
        if covered >= total_rows:
            complete.append(version)
    return sorted(complete)


def _redistribute(
    h: CommHandle, state: ElasticState, version: int, cluster: Any
) -> Generator[Event, Any, None]:
    """Rebuild this rank's (new) slab from the old decomposition's
    checkpoint objects overlapping its row range."""
    ctx = h.ctx
    t0 = ctx.engine.now
    needed = range(state.row_lo, state.row_hi)
    # find every stored block of this version (any old rank id)
    keys = [
        key for key in cluster.pfs.keys()
        if isinstance(key, tuple) and len(key) == 3 and key[0] == "elastic"
        and key[1] == int(version)
    ]
    filled = 0
    for key in sorted(keys, key=lambda k: k[2]):
        # metadata peek is free; the timed read only happens on overlap
        meta = cluster.pfs.peek(key)
        lo, hi = meta["range"]
        if hi <= needed.start or lo >= needed.stop:
            continue
        payload = yield from cluster.pfs.read(key, ctx.node)
        src_rows = payload["rows"]
        src_lo = max(lo, needed.start)
        src_hi = min(hi, needed.stop)
        state.owned[src_lo - state.row_lo:src_hi - state.row_lo, :] = (
            src_rows[src_lo - lo:src_hi - lo, :]
        )
        filled += src_hi - src_lo
    if filled != len(needed):
        raise RuntimeError(
            f"elastic restart: recovered {filled}/{len(needed)} rows"
        )
    ctx.account.charge(DATA_RECOVERY, ctx.engine.now - t0)


def _halo(
    h: CommHandle, state: ElasticState, cfg: HeatdisConfig
) -> Generator[Event, Any, None]:
    grid = state.current.data
    rank, size = h.rank, h.size
    nbytes = cfg.modeled_halo_bytes
    if size == 1:
        return
    up, down = rank - 1, rank + 1
    if up >= 0 and down < size:
        got = yield from h.sendrecv(grid[1, :].copy(), dest=up, source=down,
                                    sendtag=40, nbytes=nbytes)
        grid[-1, :] = got
    elif up >= 0:
        yield from h.send(grid[1, :].copy(), dest=up, tag=40, nbytes=nbytes)
    elif down < size:
        grid[-1, :] = yield from h.recv(source=down, tag=40)
    if down < size and up >= 0:
        got = yield from h.sendrecv(grid[-2, :].copy(), dest=down, source=up,
                                    sendtag=41, nbytes=nbytes)
        grid[0, :] = got
    elif down < size:
        yield from h.send(grid[-2, :].copy(), dest=down, tag=41, nbytes=nbytes)
    elif up >= 0:
        grid[0, :] = yield from h.recv(source=up, tag=41)


def make_elastic_heatdis_main(
    cfg: HeatdisConfig,
    cluster: Any,
    total_rows: int,
    initial_ranks: int,
    ckpt_interval: int,
    failure_plan: Any = None,
    results: Optional[Dict[int, Any]] = None,
    tracker: Any = None,
):
    """Build the elastic main: run under ``FenixSystem(n_spares=0,
    spare_policy='shrink')``.  ``total_rows`` fixes the global problem
    regardless of how many ranks remain; ``initial_ranks`` anchors the
    per-row compute cost model.

    ``tracker`` (a :class:`~repro.harness.recompute.RecomputeTracker`)
    marks re-executed iterations after a shrink so profilers charge the
    survivors' replay to ``recompute``; keyed by *world* rank, since the
    shrink renumbers communicator slots but the physical process doing
    the replay stays the same."""
    # at the initial decomposition each rank charges cfg.iteration_work()
    per_row_work = cfg.iteration_work() * initial_ranks / total_rows

    def main(role: Role, h: CommHandle) -> Generator[Event, Any, Any]:
        ctx = h.ctx
        # the decomposition depends on the CURRENT communicator size, so
        # state is rebuilt whenever this rank's partition changed (the
        # post-failure load rebalance)
        persistent = ctx.user.setdefault("elastic", {})
        state: Optional[ElasticState] = persistent.get("state")
        my_partition = partition_rows(total_rows, h.size, h.rank)
        rebuilt = False
        if state is None or (state.row_lo, state.row_hi) != my_partition:
            state = ElasticState(cfg, total_rows, h.rank, h.size)
            persistent["state"] = state
            rebuilt = True

        # agree on the newest complete version (every rank sees the same
        # PFS, but the collective keeps the survivors in lockstep)
        complete = _complete_versions(cluster, total_rows)
        local_best = complete[-1] if complete else -1
        latest = int((yield from h.allreduce(local_best, op=MIN, nbytes=8.0)))
        if latest >= 0 and (rebuilt or role is not Role.INITIAL):
            yield from _redistribute(h, state, latest, cluster)
            start = latest + 1
        else:
            start = 0

        def iteration(i):
            yield from _halo(h, state, cfg)
            stencil_sweep(state.current.data, state.next.data)
            yield from ctx.compute(
                work=per_row_work * state.owned.shape[0],
                jitter=cfg.compute_jitter,
            )
            state.current.data, state.next.data = (
                state.next.data, state.current.data,
            )
            if i > 0 and i % ckpt_interval == 0:
                yield from _checkpoint(h, state, i, cluster)

        for i in range(start, cfg.n_iters):
            if failure_plan is not None:
                failure_plan.check(ctx.rank, i)
            if tracker is not None and tracker.is_recompute(ctx.rank, i):
                with ctx.recompute(i):
                    yield from iteration(i)
            else:
                yield from iteration(i)
                if tracker is not None:
                    tracker.advance(ctx.rank, i)
        outcome = {
            "rank": h.rank,
            "size": h.size,
            "range": (state.row_lo, state.row_hi),
            "rows": state.owned.copy(),
        }
        if results is not None:
            results[h.rank] = outcome
        return outcome

    return main


def gather_elastic(results: Dict[int, Dict], total_rows: int,
                   cols: int) -> np.ndarray:
    """Reassemble the global grid from (possibly shrunk) results."""
    out = np.full((total_rows, cols), np.nan)
    for outcome in results.values():
        lo, hi = outcome["range"]
        out[lo:hi, :] = outcome["rows"]
    assert not np.isnan(out).any(), "gaps in the reassembled grid"
    return out
