"""Heatdis with a 2-D block decomposition.

The paper's Heatdis is row-decomposed; production stencils decompose in
blocks to cut surface-to-volume communication.  This variant partitions
the global grid over a ``px x py`` process grid with four-direction halo
exchange, and must produce *bit-identical* results to the single-domain
reference (and therefore to the 1-D variant) -- which the tests assert.

Resilience integration follows the same Figure-4 pattern as the 1-D app,
demonstrating that the checkpoint-region abstraction is decomposition-
agnostic: the same context code covers both layouts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional, Tuple

import numpy as np

from repro.apps.heatdis import HOT_EDGE, FLOPS_PER_CELL
from repro.core.context import Context
from repro.fenix.roles import Role
from repro.kokkos import KokkosRuntime
from repro.mpi.handle import CommHandle
from repro.sim.engine import Event
from repro.util.errors import ConfigError


def process_grid(size: int) -> Tuple[int, int]:
    """Near-square factorization ``(px, py)`` with ``px * py == size``."""
    best = (1, size)
    for px in range(1, int(np.sqrt(size)) + 1):
        if size % px == 0:
            best = (px, size // px)
    return best


@dataclass(frozen=True)
class Heatdis2DConfig:
    """2-D Heatdis problem description (per-rank block sizes)."""

    local_rows: int = 8
    local_cols: int = 8
    modeled_bytes_per_rank: float = 64e6
    n_iters: int = 60
    compute_jitter: float = 0.0
    work_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.local_rows < 1 or self.local_cols < 2:
            raise ConfigError("block too small")
        if self.modeled_bytes_per_rank <= 0:
            raise ConfigError("modeled size must be positive")

    @property
    def modeled_cells(self) -> float:
        return self.modeled_bytes_per_rank / 16.0

    @property
    def modeled_halo_bytes(self) -> float:
        """One block edge at the modelled resolution."""
        return float(np.sqrt(self.modeled_cells)) * 8.0

    @property
    def checkpoint_bytes(self) -> float:
        return self.modeled_bytes_per_rank / 2.0

    def iteration_work(self) -> float:
        return self.modeled_cells * FLOPS_PER_CELL * self.work_multiplier


class Heatdis2DState:
    """Per-rank block with one ghost layer on every side."""

    def __init__(
        self, runtime: KokkosRuntime, cfg: Heatdis2DConfig, comm_rank: int,
        comm_size: int,
    ) -> None:
        self.cfg = cfg
        self.px, self.py = process_grid(comm_size)
        self.rx = comm_rank % self.px
        self.ry = comm_rank // self.px
        shape = (cfg.local_rows + 2, cfg.local_cols + 2)
        half = cfg.checkpoint_bytes
        self.current = runtime.view("heatdis2d.grid", shape=shape,
                                    modeled_nbytes=half)
        self.next = runtime.view("heatdis2d.grid_next", shape=shape,
                                 modeled_nbytes=half)
        runtime.declare_alias("heatdis2d.grid_next", "heatdis2d.grid")
        self.progress = runtime.view("heatdis2d.progress", shape=(2,),
                                     modeled_nbytes=16.0)
        self.apply_boundaries()

    # -- neighbours ------------------------------------------------------

    def neighbor(self, dx: int, dy: int) -> Optional[int]:
        nx, ny = self.rx + dx, self.ry + dy
        if 0 <= nx < self.px and 0 <= ny < self.py:
            return ny * self.px + nx
        return None

    @property
    def on_top_edge(self) -> bool:
        return self.ry == 0

    @property
    def on_left_edge(self) -> bool:
        return self.rx == 0

    @property
    def on_right_edge(self) -> bool:
        return self.rx == self.px - 1

    # -- boundaries --------------------------------------------------------

    def apply_boundaries(self) -> None:
        """Global Dirichlet hot top edge (in the top blocks' ghost row)."""
        if self.on_top_edge:
            self.current.data[0, :] = HOT_EDGE
            self.next.data[0, :] = HOT_EDGE

    def reinitialize(self) -> None:
        self.current.data[:] = 0.0
        self.next.data[:] = 0.0
        self.progress.data[:] = 0.0
        self.apply_boundaries()


def sweep_2d(state: Heatdis2DState) -> None:
    """Five-point Jacobi sweep over the owned block (vectorized, ghost
    layers already populated).

    Boundary conditions are encoded entirely in the ghost layers: the
    global top ghost row is the hot Dirichlet edge; every other global
    ghost stays at zero (cold Dirichlet), matching the reference solver.
    """
    cur = state.current.data
    nxt = state.next.data
    nxt[1:-1, 1:-1] = 0.25 * (
        cur[:-2, 1:-1] + cur[2:, 1:-1] + cur[1:-1, :-2] + cur[1:-1, 2:]
    )


def halo_exchange_2d(
    h: CommHandle, state: Heatdis2DState, cfg: Heatdis2DConfig
) -> Generator[Event, Any, None]:
    """Four-direction halo exchange with deadlock-free pairwise phases."""
    grid = state.current.data
    nbytes = cfg.modeled_halo_bytes

    def xfer(dest, source, send_slice, recv_slice, tag):
        def gen():
            if dest is None and source is None:
                return
            if dest is not None and source is not None:
                got = yield from h.sendrecv(
                    np.ascontiguousarray(send_slice), dest=dest,
                    source=source, sendtag=tag, nbytes=nbytes,
                )
                recv_slice[...] = got
            elif dest is not None:
                yield from h.send(
                    np.ascontiguousarray(send_slice), dest=dest, tag=tag,
                    nbytes=nbytes,
                )
            else:
                got = yield from h.recv(source=source, tag=tag)
                recv_slice[...] = got

        return gen()

    up, down = state.neighbor(0, -1), state.neighbor(0, 1)
    left, right = state.neighbor(-1, 0), state.neighbor(1, 0)
    # vertical phase 1: send first owned row up, receive from below
    yield from xfer(up, down, grid[1, 1:-1], grid[-1, 1:-1], 30)
    # vertical phase 2: send last owned row down, receive from above
    yield from xfer(down, up, grid[-2, 1:-1], grid[0, 1:-1], 31)
    # horizontal phase 1: send first owned column left, receive from right
    yield from xfer(left, right, grid[1:-1, 1], grid[1:-1, -1], 32)
    # horizontal phase 2: send last owned column right, receive from left
    yield from xfer(right, left, grid[1:-1, -2], grid[1:-1, 0], 33)


def heatdis2d_iteration(
    h: CommHandle, state: Heatdis2DState, cfg: Heatdis2DConfig
) -> Generator[Event, Any, None]:
    yield from halo_exchange_2d(h, state, cfg)
    sweep_2d(state)
    yield from h.ctx.compute(work=cfg.iteration_work(),
                             jitter=cfg.compute_jitter)
    state.current.data, state.next.data = state.next.data, state.current.data


def heatdis2d_reference(
    cfg: Heatdis2DConfig, px: int, py: int, n_iters: int
) -> np.ndarray:
    """Single-domain solution of the same global problem."""
    rows = cfg.local_rows * py
    cols = cfg.local_cols * px
    grid = np.zeros((rows + 2, cols + 2))
    nxt = np.zeros_like(grid)
    grid[0, :] = HOT_EDGE
    nxt[0, :] = HOT_EDGE
    for _ in range(n_iters):
        nxt[1:-1, 1:-1] = 0.25 * (
            grid[:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, :-2] + grid[1:-1, 2:]
        )
        grid, nxt = nxt, grid
    return grid[1:-1, 1:-1]


def make_heatdis2d_main(
    cfg: Heatdis2DConfig,
    make_kr: Any,
    failure_plan: Any = None,
    results: Optional[Dict[int, Any]] = None,
    tracker: Any = None,
):
    """Resilient 2-D Heatdis main (the Figure-4 pattern, unchanged)."""

    def main(role: Role, h: CommHandle) -> Generator[Event, Any, Any]:
        ctx = h.ctx
        persistent = ctx.user.setdefault("heatdis2d", {})
        state: Optional[Heatdis2DState] = persistent.get("state")
        kr: Optional[Context] = persistent.get("kr")
        if state is None or role is Role.RECOVERED:
            runtime = KokkosRuntime()
            state = Heatdis2DState(runtime, cfg, h.rank, h.size)
            persistent["state"] = state
            kr = None
        if kr is None:
            kr = make_kr(h)
            persistent["kr"] = kr
            kr.set_role(role)
        elif role is Role.SURVIVOR:
            kr.reset(h, role)
        else:
            kr.set_role(role)

        latest = yield from kr.latest_version()
        if latest < 0 and role is not Role.INITIAL:
            state.reinitialize()
        start = max(0, latest)

        for i in range(start, cfg.n_iters):
            if failure_plan is not None:
                failure_plan.check(ctx.rank, i)

            def region(i=i):
                yield from heatdis2d_iteration(h, state, cfg)
                state.progress[0] = float(i)

            is_recompute = tracker is not None and tracker.is_recompute(
                h.rank, i
            )
            if is_recompute:
                with ctx.recompute(i):
                    yield from kr.checkpoint("heatdis2d", i, region)
            else:
                yield from kr.checkpoint("heatdis2d", i, region)
                if tracker is not None:
                    tracker.advance(h.rank, i)
        outcome = {
            "rank": h.rank,
            "block": state.current.data[1:-1, 1:-1].copy(),
            "grid_pos": (state.rx, state.ry),
            "proc_grid": (state.px, state.py),
        }
        if results is not None:
            results[h.rank] = outcome
        return outcome

    return main


def gather_blocks(results: Dict[int, Dict], n_ranks: int) -> np.ndarray:
    """Reassemble the global grid from per-rank blocks (test helper)."""
    px, py = results[0]["proc_grid"]
    rows, cols = results[0]["block"].shape
    out = np.zeros((rows * py, cols * px))
    for r in range(n_ranks):
        rx, ry = results[r]["grid_pos"]
        out[ry * rows:(ry + 1) * rows, rx * cols:(rx + 1) * cols] = (
            results[r]["block"]
        )
    return out
