"""Interconnect model.

Inter-node transfers hold both the sender's TX pipe and the receiver's RX
pipe for ``latency + nbytes/bandwidth`` seconds, so concurrent traffic to or
from the same node queues up (NIC contention) while disjoint node pairs
proceed in parallel -- the first-order behaviour that makes asynchronous
checkpoint flushes delay application messages in the paper's measurements.

Transfers larger than ``chunk_bytes`` are moved in chunks so competing
messages can interleave between chunks instead of stalling behind one
multi-hundred-megabyte flush.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Sequence

from repro.sim.engine import Engine, Event
from repro.sim.node import Node
from repro.util.errors import ConfigError, SimulationError
from repro.util.units import MiB


@dataclass(frozen=True)
class NetworkSpec:
    """Interconnect fabric parameters."""

    #: additional fabric latency per message beyond the NIC latency.
    fabric_latency: float = 0.5e-6
    #: default chunk size for preemptable bulk transfers.
    chunk_bytes: float = 4.0 * MiB

    def __post_init__(self) -> None:
        if self.fabric_latency < 0:
            raise ConfigError("fabric latency must be >= 0")
        if self.chunk_bytes <= 0:
            raise ConfigError("chunk size must be positive")


class Network:
    """Moves bytes between nodes, charging NIC + fabric costs."""

    def __init__(self, engine: Engine, nodes: Sequence[Node], spec: NetworkSpec) -> None:
        self.engine = engine
        self.nodes = list(nodes)
        self.spec = spec
        self.messages_sent = 0
        self.bytes_sent = 0.0

    def estimate_time(self, src: Node, dst: Node, nbytes: float) -> float:
        """Uncontended end-to-end estimate (used by cost sanity checks)."""
        if src is dst:
            return src.memcpy_time(nbytes)
        bw = min(src.tx.bandwidth, dst.rx.bandwidth)
        return src.tx.latency + self.spec.fabric_latency + float(nbytes) / bw

    def transfer(
        self,
        src: Node,
        dst: Node,
        nbytes: float,
        chunked: bool = False,
    ) -> Generator[Event, Any, None]:
        """Move ``nbytes`` from ``src`` to ``dst``.

        ``chunked=True`` splits the transfer at ``spec.chunk_bytes``
        boundaries, releasing the NICs between chunks; use it for background
        bulk traffic that must not head-of-line-block application messages.
        """
        if nbytes < 0:
            raise SimulationError(f"negative transfer: {nbytes}")
        self.messages_sent += 1
        self.bytes_sent += float(nbytes)
        if src is dst:
            yield from src.memcpy(nbytes)
            return
        if chunked and nbytes > self.spec.chunk_bytes:
            remaining = float(nbytes)
            while remaining > 0:
                piece = min(remaining, self.spec.chunk_bytes)
                yield from self._move_piece(src, dst, piece)
                remaining -= piece
            return
        yield from self._move_piece(src, dst, nbytes)

    def _move_piece(
        self, src: Node, dst: Node, nbytes: float
    ) -> Generator[Event, Any, None]:
        # Acquire both NIC halves in a global order to avoid lock cycles.
        first, second = (src.tx, dst.rx)
        if dst.index < src.index:
            first, second = (dst.rx, src.tx)
        yield first.request_lock()
        try:
            yield second.request_lock()
            try:
                bw = min(src.tx.bandwidth, dst.rx.bandwidth)
                hold = src.tx.latency + self.spec.fabric_latency + float(nbytes) / bw
                src.tx.busy_time += hold
                dst.rx.busy_time += hold
                src.tx.bytes_moved += float(nbytes)
                dst.rx.bytes_moved += float(nbytes)
                yield self.engine.timeout(hold)
            finally:
                second.release_lock()
        finally:
            first.release_lock()
