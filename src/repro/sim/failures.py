"""Failure-injection plans.

The paper (Section VI-C) simulates failures "through a rank exiting early,
approximately 95% of the way between two checkpoints".
:class:`IterationFailure` reproduces this: the application polls the plan at
each iteration boundary and the plan raises :class:`RankKilledError` on the
victim rank at the configured iteration.  :class:`TimedFailure` instead
kills a rank process at an absolute simulated time (useful for tests that
exercise failures *inside* MPI operations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set, Tuple

import numpy as np

from repro.sim.engine import Engine, Process
from repro.util.errors import ConfigError, ReproError


class RankKilledError(ReproError):
    """Raised inside a rank's coroutine to simulate sudden process death."""

    def __init__(self, rank: int, reason: str = "") -> None:
        super().__init__(f"rank {rank} killed{': ' + reason if reason else ''}")
        self.rank = rank


class FailurePlan:
    """Base class: a schedule of rank deaths for one job execution."""

    def check(self, rank: int, iteration: int) -> None:
        """Called by the application at each iteration top; raises
        :class:`RankKilledError` if this rank dies here."""

    def arm(self, engine: Engine, rank: int, proc: Process) -> None:
        """Hook for time-based plans to attach watchdogs to rank processes."""

    def expected_failures(self) -> int:
        """Total number of rank deaths this plan will inject."""
        return 0

    def reset(self) -> None:
        """Forget which failures already fired (for job relaunch loops where
        the same plan object must not re-kill already-recovered work)."""


class NoFailures(FailurePlan):
    """The failure-free control runs."""

    def __repr__(self) -> str:
        return "NoFailures()"


class IterationFailure(FailurePlan):
    """Kill specific ranks at specific application iterations, once each.

    Args:
        kills: iterable of ``(rank, iteration)`` pairs.
    """

    def __init__(self, kills: Iterable[Tuple[int, int]]) -> None:
        self._kills: Set[Tuple[int, int]] = set(
            (int(r), int(i)) for r, i in kills
        )
        self._fired: Set[Tuple[int, int]] = set()

    @classmethod
    def between_checkpoints(
        cls,
        rank: int,
        checkpoint_interval: int,
        after_checkpoint: int,
        fraction: float = 0.95,
    ) -> "IterationFailure":
        """The paper's rule: die ``fraction`` of the way from checkpoint
        number ``after_checkpoint`` to the next one."""
        offset = min(
            checkpoint_interval - 1, int(fraction * checkpoint_interval)
        )
        iteration = int(checkpoint_interval * after_checkpoint + offset)
        return cls([(rank, iteration)])

    def check(self, rank: int, iteration: int) -> None:
        key = (rank, iteration)
        if key in self._kills and key not in self._fired:
            self._fired.add(key)
            raise RankKilledError(rank, f"scheduled at iteration {iteration}")

    def expected_failures(self) -> int:
        return len(self._kills)

    @property
    def pending(self) -> Set[Tuple[int, int]]:
        return self._kills - self._fired

    def reset(self) -> None:
        self._fired.clear()

    def __repr__(self) -> str:
        return f"IterationFailure({sorted(self._kills)})"


class ExponentialFailures(FailurePlan):
    """Memoryless per-rank failures (the field-data failure model).

    Each armed rank draws an exponential time-to-failure with the given
    per-rank MTBF -- the model behind the paper's motivation ("node
    failures happened every 4.2 hours" on Blue Waters [1]): with N ranks
    the system-level failure rate is N / mtbf.  ``max_failures`` caps the
    total kills of one plan (so experiments with a fixed spare budget
    terminate); draws are deterministic given ``seed``.

    When a job is relaunched the same plan keeps operating: re-armed
    ranks draw fresh failure times, as real hardware would.
    """

    def __init__(
        self,
        mtbf_per_rank: float,
        seed: int = 0,
        max_failures: Optional[int] = None,
        victims: Optional[Iterable[int]] = None,
    ) -> None:
        if mtbf_per_rank <= 0:
            raise ConfigError("MTBF must be positive")
        self.mtbf_per_rank = float(mtbf_per_rank)
        self._rng = np.random.default_rng(seed)
        self.max_failures = max_failures
        self._victims = set(victims) if victims is not None else None
        self.fired = 0

    def arm(self, engine: Engine, rank: int, proc: Process) -> None:
        if self._victims is not None and rank not in self._victims:
            return
        delay = float(self._rng.exponential(self.mtbf_per_rank))

        def watchdog():
            yield engine.timeout(delay)
            if not proc.alive:
                return
            if self.max_failures is not None and self.fired >= self.max_failures:
                return
            self.fired += 1
            proc.kill(RankKilledError(rank, f"MTBF failure after {delay:.3g}s"))

        engine.process(watchdog(), name=f"mtbf:rank{rank}", daemon=True)

    def expected_failures(self) -> int:
        return self.fired

    def reset(self) -> None:
        # intentionally keeps `fired`: the budget spans the whole campaign
        pass

    def __repr__(self) -> str:
        return (
            f"ExponentialFailures(mtbf={self.mtbf_per_rank:g}, "
            f"max={self.max_failures})"
        )


class TimedFailure(FailurePlan):
    """Kill ranks at absolute simulated times via watchdog processes."""

    def __init__(self, kills: Iterable[Tuple[int, float]]) -> None:
        self._kills: Dict[int, float] = {int(r): float(t) for r, t in kills}
        self._fired: Set[int] = set()

    def arm(self, engine: Engine, rank: int, proc: Process) -> None:
        when = self._kills.get(rank)
        if when is None or rank in self._fired:
            return

        def watchdog():
            delay = max(0.0, when - engine.now)
            yield engine.timeout(delay)
            if proc.alive and rank not in self._fired:
                self._fired.add(rank)
                proc.kill(RankKilledError(rank, f"timed kill at t={when:g}"))

        engine.process(watchdog(), name=f"watchdog:rank{rank}", daemon=True)

    def expected_failures(self) -> int:
        return len(self._kills)

    def reset(self) -> None:
        self._fired.clear()

    def __repr__(self) -> str:
        return f"TimedFailure({sorted(self._kills.items())})"
