"""Cluster assembly: engine + nodes + interconnect + parallel filesystem.

A :class:`Cluster` is the simulated stand-in for the paper's platform
(Section VI-B: 100-node Cray XC40, 32-core Haswell nodes, Lustre).  One
cluster can host several consecutive *jobs* (the relaunch-based resilience
strategies tear a job down and start another on the same cluster, with the
PFS contents surviving).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.engine import Engine
from repro.sim.filesystem import ParallelFileSystem, PFSSpec
from repro.sim.network import Network, NetworkSpec
from repro.sim.node import Node, NodeSpec
from repro.sim.trace import Trace
from repro.telemetry.collector import NULL_TELEMETRY, Telemetry
from repro.util.errors import ConfigError
from repro.util.rng import SeedSequenceFactory


@dataclass(frozen=True)
class ClusterSpec:
    """Full platform description.

    ``burst_buffer`` optionally adds an intermediate shared storage tier
    (NVMe burst buffer): many fast I/O servers close to the compute nodes,
    drained to the parallel filesystem in the background -- the storage
    hierarchy VeloC's multi-level checkpointing targets.
    """

    n_nodes: int = 4
    node: NodeSpec = field(default_factory=NodeSpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    pfs: PFSSpec = field(default_factory=PFSSpec)
    burst_buffer: Optional[PFSSpec] = None
    seed: int = 20220906  # paper submission date, for flavour

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigError("cluster needs at least one node")


class Cluster:
    """A live cluster bound to a fresh engine."""

    def __init__(
        self,
        spec: ClusterSpec,
        trace: Optional[Trace] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.spec = spec
        self.engine = Engine()
        self.trace = trace if trace is not None else Trace(enabled=False)
        #: spans + metrics; installed on the engine so every layer reaches
        #: it through its engine reference without new plumbing
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.telemetry.bind(self.engine)
        self.engine.telemetry = self.telemetry
        self.rng_factory = SeedSequenceFactory(spec.seed)
        self.nodes: List[Node] = [
            Node(self.engine, index=i, spec=spec.node) for i in range(spec.n_nodes)
        ]
        self.network = Network(self.engine, self.nodes, spec.network)
        self.pfs = ParallelFileSystem(self.engine, self.network, spec.pfs)
        #: optional intermediate tier (same contention model, its own
        #: servers); ``None`` when the platform has no burst buffer
        self.burst_buffer: Optional[ParallelFileSystem] = (
            ParallelFileSystem(self.engine, self.network, spec.burst_buffer)
            if spec.burst_buffer is not None
            else None
        )

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def node(self, index: int) -> Node:
        return self.nodes[index]

    def wipe_scratch(self) -> None:
        """Clear every node's local scratch (job teardown loses node-local
        state; PFS contents survive)."""
        for node in self.nodes:
            node.wipe()
