"""Lustre-like parallel filesystem model.

The paper's Figure 5 discussion hinges on one structural fact: *many*
compute nodes write checkpoints through a *small* number of filesystem
management/storage nodes, so disk-based checkpointing bottlenecks on the
PFS while IMR spreads traffic over every NIC.  This model captures exactly
that: ``n_servers`` I/O servers, each a serializing
:class:`~repro.sim.resources.BandwidthPipe`; object writes are striped to a
server chosen round-robin and also traverse the writing node's NIC.

The data plane is real: payloads (numpy arrays / bytes) are stored in an
in-memory object dictionary and survive simulated job relaunches, exactly
like files on Lustre survive an ``mpirun`` restart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional

from repro.sim.engine import Engine, Event
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.resources import BandwidthPipe
from repro.util.errors import ConfigError, SimulationError
from repro.util.units import GiB, MiB


@dataclass(frozen=True)
class PFSSpec:
    """Parallel filesystem parameters.

    Defaults give an aggregate ~8 GB/s over 4 I/O servers -- small relative
    to 64 nodes x 10 GB/s of NIC bandwidth, reproducing the paper's
    "much smaller number of filesystem management nodes" bottleneck.
    """

    n_servers: int = 4
    server_bandwidth: float = 2.0 * GiB
    server_latency: float = 50.0e-6
    #: chunk size for striping/interleaving writes.
    chunk_bytes: float = 8.0 * MiB

    def __post_init__(self) -> None:
        if self.n_servers < 1:
            raise ConfigError("PFS needs at least one I/O server")
        if self.server_bandwidth <= 0:
            raise ConfigError("PFS server bandwidth must be positive")
        if self.chunk_bytes <= 0:
            raise ConfigError("PFS chunk size must be positive")

    @property
    def aggregate_bandwidth(self) -> float:
        return self.n_servers * self.server_bandwidth


class ParallelFileSystem:
    """The shared, persistent object store + its contention model."""

    def __init__(self, engine: Engine, network: Network, spec: PFSSpec) -> None:
        self.engine = engine
        self.network = network
        self.spec = spec
        self.servers = [
            BandwidthPipe(
                engine,
                bandwidth=spec.server_bandwidth,
                latency=spec.server_latency,
                name=f"pfs.ost{i}",
            )
            for i in range(spec.n_servers)
        ]
        self._objects: Dict[Any, Any] = {}
        self._sizes: Dict[Any, float] = {}
        self._rr = 0
        self.bytes_written = 0.0
        self.bytes_read = 0.0

    # -- data plane ------------------------------------------------------

    def exists(self, key: Any) -> bool:
        return key in self._objects

    def peek(self, key: Any) -> Any:
        """Zero-cost metadata read of a stored object (tests/diagnostics)."""
        return self._objects[key]

    def keys(self) -> list:
        return list(self._objects.keys())

    def delete(self, key: Any) -> None:
        self._objects.pop(key, None)
        self._sizes.pop(key, None)

    def wipe(self) -> None:
        self._objects.clear()
        self._sizes.clear()

    # -- timed operations --------------------------------------------------

    def _pick_server(self) -> BandwidthPipe:
        server = self.servers[self._rr % len(self.servers)]
        self._rr += 1
        return server

    def write(
        self,
        key: Any,
        payload: Any,
        nbytes: float,
        src_node: Node,
    ) -> Generator[Event, Any, None]:
        """Write ``payload`` under ``key``, charging ``nbytes`` of traffic.

        The write is chunked; each chunk holds the source NIC TX and one
        I/O server pipe, so concurrent writers from many nodes queue on the
        few servers (the Lustre bottleneck) while the writer's own NIC is
        also made busy (congesting that node's application messages).
        """
        if nbytes < 0:
            raise SimulationError(f"negative write size: {nbytes}")
        remaining = float(nbytes)
        while True:
            piece = min(remaining, self.spec.chunk_bytes)
            server = self._pick_server()
            yield src_node.tx.request_lock()
            try:
                yield server.request_lock()
                try:
                    hold = server.latency + piece / min(
                        server.bandwidth, src_node.tx.bandwidth
                    )
                    server.busy_time += hold
                    server.bytes_moved += piece
                    src_node.tx.busy_time += hold
                    src_node.tx.bytes_moved += piece
                    yield self.engine.timeout(hold)
                finally:
                    server.release_lock()
            finally:
                src_node.tx.release_lock()
            remaining -= piece
            if remaining <= 0:
                break
        self.bytes_written += float(nbytes)
        self._objects[key] = payload
        self._sizes[key] = float(nbytes)

    def read(
        self,
        key: Any,
        dst_node: Node,
        nbytes: Optional[float] = None,
    ) -> Generator[Event, Any, Any]:
        """Read the object under ``key`` into ``dst_node``; returns payload."""
        if key not in self._objects:
            raise KeyError(key)
        size = float(nbytes) if nbytes is not None else self._sizes.get(key, 0.0)
        remaining = size
        while remaining > 0:
            piece = min(remaining, self.spec.chunk_bytes)
            server = self._pick_server()
            yield dst_node.rx.request_lock()
            try:
                yield server.request_lock()
                try:
                    hold = server.latency + piece / min(
                        server.bandwidth, dst_node.rx.bandwidth
                    )
                    server.busy_time += hold
                    server.bytes_moved += piece
                    dst_node.rx.busy_time += hold
                    dst_node.rx.bytes_moved += piece
                    yield self.engine.timeout(hold)
                finally:
                    server.release_lock()
            finally:
                dst_node.rx.release_lock()
            remaining -= piece
        self.bytes_read += size
        return self._objects[key]
