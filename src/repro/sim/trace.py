"""Structured event tracing.

Components append :class:`TraceRecord` rows (simulated time, source,
kind, free-form fields); experiments and tests query them to assert
protocol-level facts ("the VeloC server flushed after the checkpoint call
returned", "revoke reached every rank") without coupling to internals.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional

from repro.util.errors import ConfigError


@dataclass(frozen=True)
class TraceRecord:
    time: float
    source: str
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]


class Trace:
    """Append-only trace with simple query helpers.

    ``max_records`` switches on ring-buffer mode: the trace keeps only
    the newest N records and counts evictions in :attr:`dropped`, so
    long failure campaigns cannot grow memory without bound.  The
    default stays unbounded (tests assert on complete histories).
    """

    def __init__(self, enabled: bool = True,
                 max_records: Optional[int] = None) -> None:
        if max_records is not None and max_records < 1:
            raise ConfigError(f"max_records must be >= 1, got {max_records}")
        self.enabled = enabled
        self.max_records = max_records
        self._records: Deque[TraceRecord] = deque(maxlen=max_records)
        #: records evicted by the ring buffer since the last clear()
        self.dropped = 0

    def emit(self, time: float, source: str, kind: str, **fields: Any) -> None:
        if self.enabled:
            if (self.max_records is not None
                    and len(self._records) == self.max_records):
                self.dropped += 1
            self._records.append(TraceRecord(time, source, kind, fields))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def records(
        self,
        kind: Optional[str] = None,
        source: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        out = []
        for rec in self._records:
            if kind is not None and rec.kind != kind:
                continue
            if source is not None and rec.source != source:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def first(self, kind: str) -> Optional[TraceRecord]:
        for rec in self._records:
            if rec.kind == kind:
                return rec
        return None

    def last(self, kind: str) -> Optional[TraceRecord]:
        for rec in reversed(self._records):
            if rec.kind == kind:
                return rec
        return None

    def count(self, kind: str) -> int:
        return sum(1 for rec in self._records if rec.kind == kind)

    def clear(self) -> None:
        self._records.clear()
        self.dropped = 0
