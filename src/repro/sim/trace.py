"""Structured event tracing.

Components append :class:`TraceRecord` rows (simulated time, source,
kind, free-form fields); experiments and tests query them to assert
protocol-level facts ("the VeloC server flushed after the checkpoint call
returned", "revoke reached every rank") without coupling to internals.

Two consumers shaped this module's API:

- **post-mortem queries** (``records``/``first``/``last``/``count``) are
  served from a per-kind index maintained incrementally on emit, so
  replaying a large trace stays O(records of that kind), not O(all);
- **online monitors** (:mod:`repro.monitor`) subscribe with
  :meth:`Trace.subscribe` and see every record the moment it is emitted,
  which lets protocol invariants fail a run *while it executes* instead
  of after the fact.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.util.errors import ConfigError


@dataclass(frozen=True)
class TraceRecord:
    time: float
    source: str
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)
    #: emission sequence number, assigned by the owning Trace (-1 for
    #: records built by hand); names the record in invariant reports
    seq: int = -1

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def brief(self) -> str:
        """Compact one-line rendering, used in violation causal chains."""
        parts = [f"{k}={v}" for k, v in self.fields.items()]
        detail = f" {' '.join(parts)}" if parts else ""
        return f"#{self.seq} t={self.time:.6f} {self.source} {self.kind}{detail}"


class Trace:
    """Append-only trace with query helpers and live subscriptions.

    ``max_records`` switches on ring-buffer mode: the trace keeps only
    the newest N records and counts evictions in :attr:`dropped`, so
    long failure campaigns cannot grow memory without bound.  The
    default stays unbounded (tests assert on complete histories).
    When records have been dropped, :attr:`dropped_window` reports the
    simulated-time bounds of the evicted region so consumers (monitors,
    exporters) can say *what they did not see* instead of silently
    presenting a truncated view.
    """

    def __init__(self, enabled: bool = True,
                 max_records: Optional[int] = None,
                 sampler: Optional[Any] = None) -> None:
        if max_records is not None and max_records < 1:
            raise ConfigError(f"max_records must be >= 1, got {max_records}")
        self.enabled = enabled
        self.max_records = max_records
        self._records: Deque[TraceRecord] = deque(maxlen=max_records)
        #: records evicted by the ring buffer since the last clear()
        self.dropped = 0
        #: simulated-time span [first, last] of evicted records
        self._dropped_first: Optional[float] = None
        self._dropped_last: Optional[float] = None
        self._seq = 0
        #: per-kind index kept in lockstep with the ring (deques so ring
        #: eviction pops the oldest entry of the evicted record's kind)
        self._by_kind: Dict[str, Deque[TraceRecord]] = {}
        self._listeners: List[Callable[[TraceRecord], None]] = []
        #: overhead-bounded sampler (:class:`repro.telemetry.sampling
        #: .SpanSampler`); protocol-critical kinds are exempt inside the
        #: sampler itself, so monitors never miss a record they consume
        self.sampler = sampler
        #: records suppressed by the sampler (never materialized, unlike
        #: ring evictions which existed and were displaced)
        self.sampled_out = 0
        self._sampled_first: Optional[float] = None
        self._sampled_last: Optional[float] = None
        #: listener exceptions swallowed by emit() (satellite of the
        #: observer-must-not-kill-the-run rule); the harness surfaces a
        #: warning in the RunReport when nonzero
        self.listener_errors = 0
        self.last_listener_error: Optional[str] = None

    # -- subscriptions ---------------------------------------------------

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Register a callback invoked synchronously on every emit.

        This is the online-monitoring hook: :class:`repro.monitor`
        state machines attach here to check invariants as the run
        executes.  Listeners must not raise for flow control; they
        collect findings and report at the end.  A listener that does
        raise is isolated -- the exception is swallowed, counted in
        :attr:`listener_errors`, and surfaced as a harness warning --
        so a broken observer can never alter the run it observes."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    # -- recording -------------------------------------------------------

    def emit(self, time: float, source: str, kind: str,
             **fields: Any) -> Optional[TraceRecord]:
        if not self.enabled:
            return None
        if self.sampler is not None and not self.sampler.keep_record(kind):
            self.sampled_out += 1
            if self._sampled_first is None:
                self._sampled_first = time
            self._sampled_last = time
            return None
        if (self.max_records is not None
                and len(self._records) == self.max_records):
            evicted = self._records[0]
            self.dropped += 1
            if self._dropped_first is None:
                self._dropped_first = evicted.time
            self._dropped_last = evicted.time
            kind_q = self._by_kind.get(evicted.kind)
            if kind_q:
                kind_q.popleft()
        self._seq += 1
        rec = TraceRecord(time, source, kind, fields, seq=self._seq)
        self._records.append(rec)
        self._by_kind.setdefault(kind, deque()).append(rec)
        # a listener that raises must not propagate into the simulated
        # process that happened to emit the record -- observers observe,
        # they never alter the run.  Failures are counted and surfaced
        # as a RunReport warning by the harness.
        for listener in tuple(self._listeners):
            try:
                listener(rec)
            except Exception as exc:  # noqa: BLE001 - isolation by design
                self.listener_errors += 1
                self.last_listener_error = (
                    f"{type(exc).__name__}: {exc} "
                    f"(listener {getattr(listener, '__qualname__', listener)!r}"
                    f" on record {rec.brief()})"
                )
        return rec

    @property
    def dropped_window(self) -> Optional[Tuple[float, float]]:
        """``(first, last)`` simulated times of evicted records, or
        ``None`` when nothing has been dropped."""
        if self.dropped == 0 or self._dropped_first is None:
            return None
        return (self._dropped_first, self._dropped_last)

    @property
    def sampled_window(self) -> Optional[Tuple[float, float]]:
        """``(first, last)`` simulated times of sampled-out records --
        the same shape as :attr:`dropped_window`, kept separate because
        sampling drops are *chosen* (and exclude every protocol-critical
        kind) while ring evictions are overflow."""
        if self.sampled_out == 0 or self._sampled_first is None:
            return None
        return (self._sampled_first, self._sampled_last)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def records(
        self,
        kind: Optional[str] = None,
        source: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        # narrow by the per-kind index first: post-mortem replay over a
        # large trace then touches only records of the requested kind
        pool: Any = self._by_kind.get(kind, ()) if kind is not None \
            else self._records
        out = []
        for rec in pool:
            if source is not None and rec.source != source:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def first(self, kind: str) -> Optional[TraceRecord]:
        kind_q = self._by_kind.get(kind)
        return kind_q[0] if kind_q else None

    def last(self, kind: str) -> Optional[TraceRecord]:
        kind_q = self._by_kind.get(kind)
        return kind_q[-1] if kind_q else None

    def count(self, kind: str) -> int:
        return len(self._by_kind.get(kind, ()))

    def kinds(self) -> List[str]:
        """Event kinds currently held (sorted)."""
        return sorted(k for k, q in self._by_kind.items() if q)

    def clear(self) -> None:
        self._records.clear()
        self._by_kind.clear()
        self.dropped = 0
        self._dropped_first = None
        self._dropped_last = None
        self.sampled_out = 0
        self._sampled_first = None
        self._sampled_last = None
        self.listener_errors = 0
        self.last_listener_error = None
