"""Structured event tracing.

Components append :class:`TraceRecord` rows (simulated time, source,
kind, free-form fields); experiments and tests query them to assert
protocol-level facts ("the VeloC server flushed after the checkpoint call
returned", "revoke reached every rank") without coupling to internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    time: float
    source: str
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]


class Trace:
    """Append-only trace with simple query helpers."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: List[TraceRecord] = []

    def emit(self, time: float, source: str, kind: str, **fields: Any) -> None:
        if self.enabled:
            self._records.append(TraceRecord(time, source, kind, fields))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def records(
        self,
        kind: Optional[str] = None,
        source: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        out = []
        for rec in self._records:
            if kind is not None and rec.kind != kind:
                continue
            if source is not None and rec.source != source:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def first(self, kind: str) -> Optional[TraceRecord]:
        for rec in self._records:
            if rec.kind == kind:
                return rec
        return None

    def last(self, kind: str) -> Optional[TraceRecord]:
        for rec in reversed(self._records):
            if rec.kind == kind:
                return rec
        return None

    def count(self, kind: str) -> int:
        return sum(1 for rec in self._records if rec.kind == kind)

    def clear(self) -> None:
        self._records.clear()
