"""Discrete-event cluster simulator.

This package is the substitute for the paper's physical testbed (a 100-node
Cray XC40 with a Lustre filesystem).  It provides:

- :mod:`repro.sim.engine` -- the deterministic event loop, processes
  (generator coroutines), events, timeouts, and combinators.
- :mod:`repro.sim.resources` -- semaphore-style resources, FIFO stores and
  bandwidth pipes used to model contended hardware.
- :mod:`repro.sim.network` -- the interconnect model: per-node NICs, link
  latency/bandwidth, and message-transfer cost accounting.
- :mod:`repro.sim.filesystem` -- a Lustre-like parallel filesystem with a
  configurable (small) number of I/O servers that writes contend on.
- :mod:`repro.sim.node` / :mod:`repro.sim.cluster` -- node and cluster
  descriptions binding the above together.
- :mod:`repro.sim.failures` -- failure-injection plans (the paper kills one
  rank ~95% of the way between two checkpoints).
- :mod:`repro.sim.trace` -- structured event trace for post-run analysis.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Engine,
    Event,
    Interrupt,
    Process,
    ProcessKilled,
    Timeout,
)
from repro.sim.resources import BandwidthPipe, Resource, Store
from repro.sim.node import Node, NodeSpec
from repro.sim.network import Network, NetworkSpec
from repro.sim.filesystem import ParallelFileSystem, PFSSpec
from repro.sim.cluster import Cluster, ClusterSpec
from repro.sim.failures import (
    ExponentialFailures,
    FailurePlan,
    IterationFailure,
    NoFailures,
    RankKilledError,
    TimedFailure,
)
from repro.sim.trace import Trace, TraceRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "Engine",
    "Event",
    "Interrupt",
    "Process",
    "ProcessKilled",
    "Timeout",
    "BandwidthPipe",
    "Resource",
    "Store",
    "Node",
    "NodeSpec",
    "Network",
    "NetworkSpec",
    "ParallelFileSystem",
    "PFSSpec",
    "Cluster",
    "ClusterSpec",
    "ExponentialFailures",
    "FailurePlan",
    "IterationFailure",
    "NoFailures",
    "RankKilledError",
    "TimedFailure",
    "Trace",
    "TraceRecord",
]
