"""Compute-node model.

Each node owns a duplex NIC (two :class:`BandwidthPipe` halves), a compute
throughput figure used by cost models, a memory-bandwidth figure for local
copies (VeloC's synchronous scratch checkpoint is exactly one of these), and
a node-local scratch object store (the "filesystem folder mapped to local
memory" of Section VI-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator

from repro.sim.engine import Engine, Event
from repro.sim.resources import BandwidthPipe
from repro.util.errors import ConfigError
from repro.util.units import GiB


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one node (defaults approximate the paper's
    2-socket Haswell Cray XC40 nodes)."""

    #: sustained compute throughput, in application-units/second; cost
    #: models divide work units by this.
    flops: float = 500.0e9
    #: NIC bandwidth per direction, bytes/second (Cray Aries ~ 10 GB/s).
    nic_bandwidth: float = 10.0 * GiB
    #: per-message NIC/link latency, seconds.
    nic_latency: float = 1.5e-6
    #: local memory copy bandwidth, bytes/second.
    memory_bandwidth: float = 50.0 * GiB
    #: device (accelerator) link bandwidth, bytes/second (PCIe class);
    #: checkpoints of device-resident views stage across this link.
    device_bandwidth: float = 12.0 * GiB
    #: number of cores (informational; ranks-per-node scheduling).
    cores: int = 32
    #: fractional compute slowdown while the co-located checkpoint server
    #: is actively flushing (memory-bandwidth steal); Section VI-D1's
    #: "overhead of asynchronous checkpointing that presents in the force
    #: computing section".
    flush_compute_steal: float = 0.08

    def __post_init__(self) -> None:
        if self.flops <= 0 or self.nic_bandwidth <= 0 or self.memory_bandwidth <= 0:
            raise ConfigError("node rates must be positive")
        if self.cores < 1:
            raise ConfigError("node must have at least one core")


@dataclass
class Node:
    """A live node instance inside an engine."""

    engine: Engine
    index: int
    spec: NodeSpec
    tx: BandwidthPipe = field(init=False)
    rx: BandwidthPipe = field(init=False)
    #: node-local scratch object store: key -> payload (real bytes/arrays).
    scratch: Dict[Any, Any] = field(default_factory=dict)
    #: number of background flushes currently running on this node
    active_flushes: int = 0

    def __post_init__(self) -> None:
        self.tx = BandwidthPipe(
            self.engine,
            bandwidth=self.spec.nic_bandwidth,
            latency=self.spec.nic_latency,
            name=f"node{self.index}.tx",
        )
        self.rx = BandwidthPipe(
            self.engine,
            bandwidth=self.spec.nic_bandwidth,
            latency=self.spec.nic_latency,
            name=f"node{self.index}.rx",
        )

    @property
    def name(self) -> str:
        return f"node{self.index}"

    def memcpy_time(self, nbytes: float) -> float:
        """Time for a local memory copy of ``nbytes``."""
        return float(nbytes) / self.spec.memory_bandwidth

    def memcpy(self, nbytes: float) -> Generator[Event, Any, None]:
        """Charge a local memory copy (used by scratch checkpoints)."""
        yield self.engine.timeout(self.memcpy_time(nbytes))

    def device_copy_time(self, nbytes: float) -> float:
        """Time to move ``nbytes`` across the device link (one direction)."""
        return float(nbytes) / self.spec.device_bandwidth

    def compute_time(self, work_units: float) -> float:
        """Time to execute ``work_units`` of compute on this node."""
        return float(work_units) / self.spec.flops

    def compute(self, work_units: float) -> Generator[Event, Any, None]:
        """Charge ``work_units`` of compute."""
        yield self.engine.timeout(self.compute_time(work_units))

    def wipe(self) -> None:
        """Clear node-local scratch (models node loss / job teardown)."""
        self.scratch.clear()
