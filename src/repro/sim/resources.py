"""Contended-resource primitives for the cluster model.

Three primitives cover every piece of modelled hardware:

- :class:`Resource` -- a counted semaphore with a FIFO wait queue (CPU
  slots, PFS metadata server, ...).
- :class:`Store` -- an unbounded FIFO of items with blocking ``get``
  (message queues, VeloC server work queues).
- :class:`BandwidthPipe` -- a serializing link with latency + bandwidth;
  the building block for NICs and PFS I/O servers.  Large transfers should
  be chunked by the caller so that competing traffic can interleave (this
  is exactly how the VeloC server's asynchronous flushes delay application
  MPI messages in the paper's Figure 5 discussion).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from repro.sim.engine import Engine, Event
from repro.util.errors import SimulationError


class Resource:
    """Counted FIFO semaphore.

    Usage (inside a process generator)::

        yield from res.acquire()
        try:
            ...
        finally:
            res.release()
    """

    def __init__(self, engine: Engine, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name or "resource"
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that succeeds when a slot is granted."""
        ev = self.engine.event(name=f"{self.name}:request")
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(None)
        else:
            self._waiters.append(ev)
        return ev

    def acquire(self) -> Generator[Event, Any, None]:
        """Generator helper: ``yield from res.acquire()``."""
        yield self.request()

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"{self.name}: release without acquire")
        if self._waiters:
            # Hand the slot directly to the next waiter (count unchanged).
            self._waiters.popleft().succeed(None)
        else:
            self._in_use -= 1


class Store:
    """Unbounded FIFO store with blocking ``get``.

    ``put`` never blocks.  Waiting getters are served in FIFO order and
    items are delivered in insertion order.
    """

    def __init__(self, engine: Engine, name: str = "") -> None:
        self.engine = engine
        self.name = name or "store"
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get_event(self) -> Event:
        ev = self.engine.event(name=f"{self.name}:get")
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def get(self) -> Generator[Event, Any, Any]:
        """Generator helper: ``item = yield from store.get()``."""
        item = yield self.get_event()
        return item

    def drain(self) -> list[Any]:
        """Remove and return all queued items without blocking."""
        items = list(self._items)
        self._items.clear()
        return items

    def fail_waiters(self, exc: BaseException) -> None:
        """Fail every blocked getter (used when tearing down a job)."""
        while self._getters:
            self._getters.popleft().fail(exc)


class BandwidthPipe:
    """A serializing link: one transfer at a time, cost = latency + n/bw.

    Models a NIC port or a PFS I/O server.  FIFO service means a message
    queued behind a large transfer waits for it -- callers that should be
    preemptable (e.g. background checkpoint flushes) must chunk their
    transfers.
    """

    def __init__(
        self,
        engine: Engine,
        bandwidth: float,
        latency: float = 0.0,
        name: str = "",
    ) -> None:
        if bandwidth <= 0:
            raise SimulationError(f"bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise SimulationError(f"latency must be >= 0, got {latency}")
        self.engine = engine
        self.bandwidth = float(bandwidth)  # bytes / second
        self.latency = float(latency)  # seconds per transfer
        self.name = name or "pipe"
        self._lock = Resource(engine, capacity=1, name=f"{self.name}:lock")
        self.bytes_moved = 0.0
        self.busy_time = 0.0

    def transfer_time(self, nbytes: float) -> float:
        """Pure service time for ``nbytes`` (excludes queueing)."""
        return self.latency + float(nbytes) / self.bandwidth

    def transfer(self, nbytes: float) -> Generator[Event, Any, float]:
        """Occupy the pipe for ``nbytes``; returns the completion time."""
        if nbytes < 0:
            raise SimulationError(f"negative transfer size: {nbytes}")
        yield self._lock.request()
        try:
            hold = self.transfer_time(nbytes)
            self.busy_time += hold
            self.bytes_moved += float(nbytes)
            yield self.engine.timeout(hold)
        finally:
            self._lock.release()
        return self.engine.now

    def request_lock(self) -> Event:
        """Request exclusive use of the pipe (for multi-pipe transfers
        coordinated by :class:`repro.sim.network.Network`)."""
        return self._lock.request()

    def release_lock(self) -> None:
        self._lock.release()

    @property
    def queue_length(self) -> int:
        return self._lock.queue_length

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of time the pipe has been busy up to ``horizon``
        (defaults to the current simulated time)."""
        t = horizon if horizon is not None else self.engine.now
        if t <= 0:
            return 0.0
        return min(1.0, self.busy_time / t)
