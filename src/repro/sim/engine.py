"""Deterministic discrete-event engine.

The engine runs *processes* -- plain Python generators -- against a
simulated clock.  A process blocks by yielding an :class:`Event` (or an
object convertible to one, such as :class:`Timeout` or another
:class:`Process`); the engine resumes it when the event triggers, sending
the event's value into the generator (or throwing the event's exception).

Determinism guarantees:

- Events scheduled for the same simulated time fire in schedule order
  (a monotonically increasing sequence number breaks ties).
- No wall-clock access anywhere; all randomness flows through seeded
  :class:`numpy.random.Generator` streams owned by components.

This is deliberately SimPy-like in shape but self-contained (the execution
environment provides no simulation library) and adds the hooks the MPI/ULFM
layer needs: process kill with a typed exception, unhandled-failure
tracking, and deadlock detection that names the blocked processes.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from repro.telemetry.collector import NULL_TELEMETRY
from repro.util.errors import DeadlockError, SimulationError

_UNSET = object()


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.kill` or an event failure."""


class ProcessKilled(Interrupt):
    """A process was killed externally (e.g. simulated rank death)."""


class Event:
    """One-shot event: triggers exactly once, with a value or an exception.

    Callbacks registered via :meth:`add_callback` run (in registration
    order) when the engine *processes* the trigger, at the simulated time
    the trigger was scheduled for.
    """

    __slots__ = (
        "engine",
        "_value",
        "_exc",
        "_callbacks",
        "_scheduled",
        "_processed",
        "_pooled",
        "name",
    )

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._value: Any = _UNSET
        self._exc: Optional[BaseException] = None
        self._callbacks: list[Callable[["Event"], None]] = []
        self._scheduled = False
        self._processed = False
        self._pooled = False

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._scheduled

    @property
    def processed(self) -> bool:
        """True once the engine has dispatched the trigger (i.e. the
        event's simulated completion time has been reached)."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only meaningful once triggered."""
        return self._scheduled and self._exc is None

    @property
    def value(self) -> Any:
        if not self._scheduled:
            raise SimulationError(f"event {self.name!r} not yet triggered")
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger successfully after ``delay`` simulated seconds."""
        self._trigger(value, None, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Trigger with an exception after ``delay`` simulated seconds."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() requires an exception, got {exc!r}")
        self._trigger(_UNSET, exc, delay)
        return self

    def _trigger(self, value: Any, exc: Optional[BaseException], delay: float) -> None:
        if self._scheduled:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._scheduled = True
        self._value = value
        self._exc = exc
        self.engine._schedule(delay, self)

    # -- subscription ----------------------------------------------------

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn`` to run when the event is processed.

        Subscribing to an event that was already processed schedules an
        immediate (zero-delay) dispatch of just this callback, so late
        subscribers never hang.
        """
        if self._processed:
            relay = Event(self.engine, name=f"late:{self.name}")
            relay.add_callback(lambda _ev: fn(self))
            relay.succeed(None)
            return
        self._callbacks.append(fn)

    def remove_callback(self, fn: Callable[["Event"], None]) -> None:
        try:
            self._callbacks.remove(fn)
        except ValueError:
            pass

    def _dispatch(self) -> None:
        self._processed = True
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = []
            for fn in callbacks:
                fn(self)
        if self._pooled:
            self.engine._recycle_timeout(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self._scheduled:
            state = "ok" if self._exc is None else f"failed({self._exc!r})"
        return f"<Event {self.name!r} {state}>"


class Timeout(Event):
    """An event that triggers ``delay`` seconds after creation.

    Instances handed out by :meth:`Engine.timeout` are *pooled*: once
    processed, they may be recycled for a later ``engine.timeout()``
    call.  Hold a directly-constructed ``Timeout(engine, delay)`` (or
    any named event) instead if state must be inspected after the
    trigger has been processed.  Combinators (:class:`AllOf` /
    :class:`AnyOf`) pin their children, so grouping pooled timeouts
    stays safe.
    """

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        super().__init__(engine, name="timeout")
        self.delay = delay
        self.succeed(value, delay=delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Timeout {self.delay:g}s {'done' if self._processed else 'pending'}>"


class AllOf(Event):
    """Triggers when every child event has triggered successfully.

    Fails with the first child failure (remaining children are ignored).
    Value is the list of child values in input order.
    """

    __slots__ = ("_children", "_pending")

    def __init__(self, engine: "Engine", events: Iterable[Event]) -> None:
        super().__init__(engine, name="all_of")
        self._children = list(events)
        self._pending = len(self._children)
        if self._pending == 0:
            self.succeed([])
            return
        for ev in self._children:
            # pin: child values are read after their dispatch, so pooled
            # timeouts must not be recycled out from under the combinator
            ev._pooled = False
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([c._value for c in self._children])


class AnyOf(Event):
    """Triggers with (index, value) of the first child to trigger.

    A child failure fails the combinator if it arrives first.
    """

    __slots__ = ("_children",)

    def __init__(self, engine: "Engine", events: Iterable[Event]) -> None:
        super().__init__(engine, name="any_of")
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf requires at least one event")
        for idx, ev in enumerate(self._children):
            ev._pooled = False
            ev.add_callback(self._make_cb(idx))

    def _make_cb(self, idx: int) -> Callable[[Event], None]:
        def cb(ev: Event) -> None:
            if self.triggered:
                return
            if ev.ok:
                self.succeed((idx, ev._value))
            else:
                self.fail(ev.exception)

        return cb


class Process(Event):
    """A running generator coroutine.  Doubles as its own completion event.

    The generator may ``yield`` any :class:`Event`; the process resumes when
    that event triggers.  Returning completes the process successfully with
    the return value; an uncaught exception completes it as failed.
    """

    __slots__ = ("_gen", "_target", "_resume_cb", "daemon")

    def __init__(
        self,
        engine: "Engine",
        gen: Generator[Event, Any, Any],
        name: str = "",
        daemon: bool = False,
    ) -> None:
        super().__init__(engine, name=name or getattr(gen, "__name__", "process"))
        if not hasattr(gen, "send"):
            raise TypeError(f"process body must be a generator, got {type(gen)!r}")
        self._gen = gen
        self._target: Optional[Event] = None
        self._resume_cb = self._resume
        #: daemon processes may be left blocked at the end of a run without
        #: tripping deadlock detection (e.g. VeloC servers idle-waiting).
        self.daemon = daemon
        engine._alive.add(self)
        # Kick off at the current time, after already-queued events.
        start = Event(engine, name=f"start:{self.name}")
        start.add_callback(self._resume_cb)
        start.succeed(None)

    @property
    def alive(self) -> bool:
        return not self.triggered

    def kill(self, exc: Optional[BaseException] = None) -> None:
        """Terminate the process by throwing ``exc`` into its generator.

        If the process is blocked, it is detached from its target event and
        resumed immediately (at the current simulated time).  Killing a
        finished process is a no-op.
        """
        if self.triggered:
            return
        exc = exc if exc is not None else ProcessKilled(f"{self.name} killed")
        tel = self.engine.telemetry
        if tel.enabled:
            tel.instant("engine", "process_kill", process=self.name,
                        error=type(exc).__name__)
        if self._target is not None:
            self._target.remove_callback(self._resume_cb)
            self._target = None
        wake = Event(self.engine, name=f"kill:{self.name}")
        wake.add_callback(self._resume_cb)
        wake.fail(exc)

    # -- internal -------------------------------------------------------

    def _resume(self, ev: Event) -> None:
        if self.triggered:
            return
        self._target = None
        try:
            if ev._exc is not None:
                nxt = self._gen.throw(ev._exc)
            else:
                nxt = self._gen.send(ev._value)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except BaseException as exc:  # noqa: BLE001 - process death is data here
            self._finish(_UNSET, exc)
            return
        if not isinstance(nxt, Event):
            self._gen.close()
            self._finish(
                _UNSET,
                SimulationError(
                    f"process {self.name!r} yielded non-event {nxt!r}"
                ),
            )
            return
        if nxt.engine is not self.engine:
            self._gen.close()
            self._finish(
                _UNSET, SimulationError("yielded event belongs to another engine")
            )
            return
        self._target = nxt
        nxt.add_callback(self._resume_cb)

    def _finish(self, value: Any, exc: Optional[BaseException]) -> None:
        self.engine._alive.discard(self)
        if exc is None:
            self.succeed(value)
        else:
            # A failure is "handled" when someone is observing the process
            # (a joiner or a watcher callback, e.g. the MPI world's rank
            # monitor).  Only orphaned failures abort the run.
            if not self._callbacks:
                self.engine._note_failure(self, exc)
            self.fail(exc)


class Engine:
    """The event loop: owns the simulated clock and the pending-event heap."""

    #: recycled Timeout instances kept per engine (bounds memory pinned
    #: by bursts of simultaneous timers)
    _POOL_MAX = 256

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._alive: set[Process] = set()
        self._failures: dict[Process, BaseException] = {}
        self._timeout_pool: list[Timeout] = []
        #: observability hooks; the shared disabled instance unless the
        #: owning cluster installs a live one (zero-cost when disabled)
        self.telemetry = NULL_TELEMETRY

    # -- construction helpers -------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """A pooled timeout: the hot sleep path of every simulated rank.

        Recycles already-processed instances to avoid the allocation and
        naming cost of :class:`Timeout` construction (see its docstring
        for the pooling contract).
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout: {delay}")
            ev = pool.pop()
            ev._value = value
            ev._exc = None
            ev._scheduled = True
            ev._processed = False
            ev.delay = delay
            self._seq += 1
            heappush(self._heap, (self.now + delay, self._seq, ev))
            return ev
        ev = Timeout(self, delay, value)
        ev._pooled = True
        return ev

    def process(
        self,
        gen: Generator[Event, Any, Any],
        name: str = "",
        daemon: bool = False,
    ) -> Process:
        return Process(self, gen, name=name, daemon=daemon)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------

    def _schedule(self, delay: float, event: Event) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        self._seq += 1
        heappush(self._heap, (self.now + delay, self._seq, event))

    def _recycle_timeout(self, ev: Timeout) -> None:
        if len(self._timeout_pool) < self._POOL_MAX:
            self._timeout_pool.append(ev)

    def _note_failure(self, proc: Process, exc: BaseException) -> None:
        self._failures[proc] = exc

    def consume_failure(self, proc: Process) -> Optional[BaseException]:
        """Mark ``proc``'s failure as handled (e.g. an expected rank death).

        Returns the exception if one was recorded, else None.  O(1):
        failures are keyed by process (insertion-ordered, so the oldest
        unhandled failure is still the one reported by :meth:`run`).
        """
        return self._failures.pop(proc, None)

    @property
    def unhandled_failures(self) -> list[tuple[Process, BaseException]]:
        return list(self._failures.items())

    # -- execution -------------------------------------------------------

    def run(self, until: Optional[float] = None, check_deadlock: bool = True) -> float:
        """Run until the heap drains (or simulated time passes ``until``).

        Returns the final simulated time.  Raises:

        - the first *unhandled* process failure, if any process died with an
          exception nobody consumed;
        - :class:`DeadlockError` when non-daemon processes remain blocked
          with nothing left to wake them.
        """
        # hot loop: localize the heap and heappop; skip the head peek
        # entirely on the common unbounded run
        heap = self._heap
        if until is None:
            while heap:
                when, _, event = heappop(heap)
                self.now = when
                event._dispatch()
        else:
            while heap:
                when = heap[0][0]
                if when > until:
                    self.now = until
                    break
                _, _, event = heappop(heap)
                self.now = when
                event._dispatch()
        if self._failures:
            proc, exc = next(iter(self._failures.items()))
            raise SimulationError(
                f"process {proc.name!r} died with unhandled {type(exc).__name__}: {exc}"
            ) from exc
        if check_deadlock and until is None:
            blocked = [p for p in self._alive if not p.daemon]
            if blocked:
                # message assembly is deferred to DeadlockError.__str__
                raise DeadlockError(
                    blocked=[
                        (p.name,
                         p._target.name if p._target is not None else "?")
                        for p in blocked
                    ]
                )
        return self.now
