"""The protocol invariant monitors.

Each class checks one family of invariants from docs/PROTOCOLS.md against
the record stream; together they cover the three resilience layers:

- :class:`ULFMOrderMonitor` -- revoke precedes shrink/agree on a failed
  communicator; no operation completes on a communicator that a repair
  already retired (PROTOCOLS.md §1 t1, §4).
- :class:`RoleTransitionMonitor` -- Fenix role edges are legal per rank
  (INITIAL/SURVIVOR/RECOVERED/SPARE; §1 t4).
- :class:`RepairGateMonitor` -- repair-gate rendezvous completeness,
  generation sequencing, and no corpses in a repaired communicator
  (§1 t2-t3, including deaths during the gate wait).
- :class:`VersionMonitor` -- VeloC version monotonicity per rank and no
  ghost restores (§1 t5, §3).
- :class:`FlushMonitor` -- flush-before-restore: a persistent-tier
  restore requires the version's async flush to have completed (§3).
- :class:`BuddyMonitor` -- IMR buddy consistency: a buddy-tier restore
  must match a copy the owner actually shipped (§2).

Monitors are deliberately conservative: they only flag orderings that
the simulator can never legally produce, so a violation is always a bug
(or a deliberately corrupted trace), never noise.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.monitor.base import ProtocolMonitor, layer_rank
from repro.sim.trace import TraceRecord


def _as_key(value) -> Tuple:
    """JSONL round-trips turn tuples into lists; normalize for lookups."""
    if isinstance(value, (list, tuple)):
        return tuple(_as_key(v) for v in value)
    return value


class ULFMOrderMonitor(ProtocolMonitor):
    """Revoke-before-shrink/agree ordering on failed communicators."""

    def __init__(self) -> None:
        super().__init__()
        #: comm name -> world-rank membership (from comm_create)
        self._members: Dict[str, List[int]] = {}
        #: comm name -> the revoke record
        self._revoked: Dict[str, TraceRecord] = {}
        #: world rank -> rank_dead record
        self._dead: Dict[int, TraceRecord] = {}
        #: comm name -> the repair record that retired it
        self._retired: Dict[str, TraceRecord] = {}

    def _dead_members(self, comm: str) -> List[TraceRecord]:
        return [self._dead[w] for w in self._members.get(comm, [])
                if w in self._dead]

    def feed(self, rec: TraceRecord) -> None:
        kind = rec.kind
        if kind == "comm_create":
            self._members[rec.source] = list(rec["members"])
        elif kind == "rank_dead":
            self._dead[rec["rank"]] = rec
        elif kind == "revoke":
            retired = self._retired.get(rec.source)
            if retired is not None:
                self.violate(
                    "op-on-retired-comm",
                    f"revoke of {rec.source} after its repair already "
                    "replaced it",
                    [retired, rec],
                )
            if rec.source in self._members and not self._dead_members(rec.source):
                self.violate(
                    "revoke-without-failure",
                    f"{rec.source} revoked but no member had died",
                    [rec],
                )
            self._revoked[rec.source] = rec
        elif kind in ("agree", "shrink") and rec.source != "fenix":
            # MPI-level collective completion on communicator rec.source
            retired = self._retired.get(rec.source)
            if retired is not None:
                self.violate(
                    "op-on-retired-comm",
                    f"{kind} completed on {rec.source} after its repair "
                    "already replaced it",
                    [retired, rec],
                )
            failed = rec.fields.get("failed") or []
            if failed and rec.source not in self._revoked:
                chain = self._dead_members(rec.source) + [rec]
                self.violate(
                    f"revoke-before-{kind}",
                    f"{kind} completed on failed communicator {rec.source} "
                    "before it was revoked",
                    chain,
                )
        elif kind == "shrink" and rec.source == "fenix":
            # Fenix repair path: membership of the old communicator is
            # decided; the old comm must already have been revoked
            old = rec.fields.get("comm")
            if rec.fields.get("dead") and old not in self._revoked:
                chain = self._dead_members(old) + [rec]
                self.violate(
                    "revoke-before-shrink",
                    f"Fenix shrank failed communicator {old} before it "
                    "was revoked",
                    chain,
                )
        elif kind == "repair":
            old = rec.fields.get("old_comm")
            if old is not None:
                if self._dead_members(old) and old not in self._revoked:
                    self.violate(
                        "revoke-before-repair",
                        f"repair replaced failed communicator {old} before "
                        "it was revoked",
                        self._dead_members(old) + [rec],
                    )
                self._retired[old] = rec


#: legal role edges; SPARE -> RECOVERED additionally needs spare_activated
_ROLE_EDGES: Dict[Optional[str], Set[str]] = {
    None: {"INITIAL", "SPARE"},
    "INITIAL": {"SURVIVOR"},
    "SURVIVOR": {"SURVIVOR"},
    "RECOVERED": {"SURVIVOR"},
    "SPARE": {"SPARE", "RECOVERED"},
}


class RoleTransitionMonitor(ProtocolMonitor):
    """Per-rank Fenix role state machine legality."""

    def __init__(self) -> None:
        super().__init__()
        self._role: Dict[int, TraceRecord] = {}
        self._dead: Dict[int, TraceRecord] = {}
        #: world rank -> its latest spare_activated record
        self._activated: Dict[int, TraceRecord] = {}

    def feed(self, rec: TraceRecord) -> None:
        kind = rec.kind
        if kind == "rank_dead":
            self._dead[rec["rank"]] = rec
        elif kind == "spare_activated":
            self._activated[rec["spare"]] = rec
        elif kind == "role" and rec.source == "fenix":
            rank = rec["rank"]
            role = rec["role"]
            prev = self._role.get(rank)
            prev_name = prev["role"] if prev is not None else None
            if rank in self._dead:
                self.violate(
                    "role-on-dead-rank",
                    f"role {role} assigned to dead rank {rank}",
                    [self._dead[rank], rec],
                )
            if role not in _ROLE_EDGES.get(prev_name, set()):
                chain = ([prev] if prev is not None else []) + [rec]
                self.violate(
                    "illegal-role-edge",
                    f"rank {rank}: illegal role transition "
                    f"{prev_name or '(none)'} -> {role}",
                    chain,
                )
            elif prev_name == "SPARE" and role == "RECOVERED":
                act = self._activated.get(rank)
                if act is None or act["generation"] != rec["generation"]:
                    self.violate(
                        "recovered-without-activation",
                        f"rank {rank} became RECOVERED in generation "
                        f"{rec['generation']} without a matching "
                        "spare_activated",
                        ([prev] if prev is not None else []) + [rec],
                    )
            self._role[rank] = rec


class RepairGateMonitor(ProtocolMonitor):
    """Repair-gate rendezvous completeness and generation sequencing."""

    def __init__(self) -> None:
        super().__init__()
        self._generation = 0
        self._seen_ranks: Set[int] = set()
        self._dead: Dict[int, TraceRecord] = {}
        self._exited: Set[int] = set()
        self._deaths_since_repair: List[TraceRecord] = []
        self._last_repair: Optional[TraceRecord] = None

    def feed(self, rec: TraceRecord) -> None:
        kind = rec.kind
        if kind == "rank_dead":
            self._dead[rec["rank"]] = rec
            self._deaths_since_repair.append(rec)
        elif kind == "rank_exit":
            self._exited.add(rec["rank"])
        elif kind == "finalize_arrive" and rec.source == "fenix":
            # a finalized rank is retired from the protocol and must not
            # be expected at later repair gates
            self._exited.add(rec["rank"])
        elif kind == "role" and rec.source == "fenix":
            # any rank with a role record has entered the Fenix protocol
            self._seen_ranks.add(rec["rank"])
        elif kind == "shrink" and rec.source == "fenix":
            corpses = [w for w in rec.fields.get("survivors", [])
                       if w in self._dead]
            if corpses:
                self.violate(
                    "dead-survivor",
                    f"shrink for generation {rec.fields.get('generation')} "
                    f"kept dead rank(s) {corpses} in the survivor set",
                    [self._dead[w] for w in corpses] + [rec],
                )
        elif kind in ("repair", "abort") and rec.source == "fenix":
            generation = rec["generation"]
            if generation != self._generation + 1:
                chain = ([self._last_repair] if self._last_repair else []) + [rec]
                self.violate(
                    "generation-sequence",
                    f"{kind} generation {generation} does not follow "
                    f"{self._generation}",
                    chain,
                )
            self._generation = generation
            if not self._deaths_since_repair:
                self.violate(
                    "repair-without-failure",
                    f"{kind} generation {generation} with no rank death "
                    "since the previous repair",
                    [rec],
                )
            if kind == "repair":
                self._check_repair(rec)
                self._last_repair = rec
            self._deaths_since_repair = []

    def _check_repair(self, rec: TraceRecord) -> None:
        members = list(rec.fields.get("members", []))
        contributors = set(rec.fields.get("contributors", []))
        corpses = [w for w in members if w in self._dead]
        if corpses:
            self.violate(
                "dead-member-in-repair",
                f"repair generation {rec['generation']} admitted dead "
                f"rank(s) {corpses} into the new communicator",
                [self._dead[w] for w in corpses] + [rec],
            )
        # rendezvous completeness: every protocol participant that is
        # neither dead nor exited must have contributed -- a rank that
        # died *during* the gate wait is excluded by its rank_dead record
        expected = self._seen_ranks - set(self._dead) - self._exited
        missing = sorted(expected - contributors)
        if missing:
            self.violate(
                "incomplete-rendezvous",
                f"repair generation {rec['generation']} completed without "
                f"contribution from live rank(s) {missing}",
                [rec],
            )


class VersionMonitor(ProtocolMonitor):
    """VeloC checkpoint-version monotonicity and no ghost restores."""

    def __init__(self) -> None:
        super().__init__()
        #: source -> last checkpoint/recover record (monotonicity anchor)
        self._last: Dict[str, TraceRecord] = {}
        #: source -> {version: checkpoint record}
        self._checkpointed: Dict[str, Dict[int, TraceRecord]] = {}

    def feed(self, rec: TraceRecord) -> None:
        kind = rec.kind
        if kind == "rank_dead":
            # a failure opens a new epoch: a fail-restart job may
            # legitimately replay version numbers after losing state
            self._last.clear()
            return
        lr = layer_rank(rec.source)
        if lr is None or lr[0] != "veloc":
            return
        if kind == "checkpoint":
            version = int(rec["version"])
            prev = self._last.get(rec.source)
            if prev is not None and version <= int(prev["version"]):
                self.violate(
                    "version-monotonicity",
                    f"{rec.source} checkpointed version {version} after "
                    f"version {int(prev['version'])} with no failure "
                    "in between",
                    [prev, rec],
                )
            self._last[rec.source] = rec
            self._checkpointed.setdefault(rec.source, {})[version] = rec
        elif kind == "recover":
            version = int(rec["version"])
            known = self._checkpointed.get(rec.source, {})
            if version not in known:
                self.violate(
                    "ghost-restore",
                    f"{rec.source} restored version {version} that it "
                    "never checkpointed",
                    [rec],
                )
            self._last[rec.source] = rec


class FlushMonitor(ProtocolMonitor):
    """Flush-before-restore across the VeloC persistent tiers."""

    def __init__(self) -> None:
        super().__init__()
        #: (rank, version) -> checkpoint record
        self._ckpt: Dict[Tuple[int, int], TraceRecord] = {}
        #: (rank, version) -> flush_done record
        self._flushed: Dict[Tuple[int, int], TraceRecord] = {}

    @staticmethod
    def _key_pair(key) -> Optional[Tuple[int, int]]:
        k = _as_key(key)
        if isinstance(k, tuple) and len(k) == 4 and k[0] == "veloc":
            return (int(k[3]), int(k[2]))  # (rank, version)
        return None

    def feed(self, rec: TraceRecord) -> None:
        kind = rec.kind
        lr = layer_rank(rec.source)
        if kind == "checkpoint" and lr is not None and lr[0] == "veloc":
            self._ckpt[(lr[1], int(rec["version"]))] = rec
        elif kind == "flush_done":
            pair = self._key_pair(rec.fields.get("key"))
            if pair is None:
                return
            if pair not in self._ckpt:
                self.violate(
                    "flush-unknown-version",
                    f"flush completed for rank {pair[0]} version {pair[1]} "
                    "which was never checkpointed",
                    [rec],
                )
            self._flushed[pair] = rec
        elif (kind == "recover" and lr is not None and lr[0] == "veloc"
                and rec.fields.get("tier") in ("pfs", "bb")):
            pair = (lr[1], int(rec["version"]))
            if pair not in self._flushed:
                chain = ([self._ckpt[pair]] if pair in self._ckpt else []) + [rec]
                self.violate(
                    "restore-unflushed",
                    f"rank {pair[0]} restored version {pair[1]} from the "
                    f"{rec['tier']} tier before its flush completed",
                    chain,
                )


class BuddyMonitor(ProtocolMonitor):
    """IMR buddy consistency: restores must match advertised copies."""

    def __init__(self) -> None:
        super().__init__()
        #: (owner comm-rank, member, version) -> imr_store record
        self._stored: Dict[Tuple[int, int, int], TraceRecord] = {}
        #: (owner comm-rank, member, version) -> imr_buddy_send record
        self._sent: Dict[Tuple[int, int, int], TraceRecord] = {}

    @staticmethod
    def _key(rank: int, rec: TraceRecord) -> Tuple[int, int, int]:
        return (rank, int(rec["member"]), int(rec["version"]))

    def _latest_sent(self, rank: int, member: int) -> Optional[TraceRecord]:
        best = None
        for (r, m, _v), rec in self._sent.items():
            if r == rank and m == member:
                if best is None or rec.seq > best.seq:
                    best = rec
        return best

    def feed(self, rec: TraceRecord) -> None:
        lr = layer_rank(rec.source)
        if lr is None or lr[0] != "imr":
            return
        rank = lr[1]
        kind = rec.kind
        if kind == "imr_store":
            self._stored[self._key(rank, rec)] = rec
        elif kind == "imr_buddy_send":
            self._sent[self._key(rank, rec)] = rec
        elif kind == "imr_buddy_recv":
            if self._key(rank, rec) not in self._sent:
                chain = [r for r in [self._latest_sent(rank, rec["member"])]
                         if r is not None] + [rec]
                self.violate(
                    "stale-buddy",
                    f"rank {rank} fetched member {rec['member']} version "
                    f"{int(rec['version'])} from its buddy, which never "
                    "received that version",
                    chain,
                )
        elif kind == "imr_restore":
            key = self._key(rank, rec)
            tier = rec.fields.get("tier")
            if tier == "local" and key not in self._stored:
                self.violate(
                    "restore-unstored",
                    f"rank {rank} restored member {rec['member']} version "
                    f"{int(rec['version'])} locally but never stored it",
                    [rec],
                )
            elif tier == "buddy" and key not in self._sent:
                chain = [r for r in [self._latest_sent(rank, rec["member"])]
                         if r is not None] + [rec]
                self.violate(
                    "stale-buddy",
                    f"rank {rank} restored member {rec['member']} version "
                    f"{int(rec['version'])} from its buddy, which never "
                    "received that version",
                    chain,
                )


def standard_monitors() -> List[ProtocolMonitor]:
    """The full suite, one instance of each monitor class."""
    return [
        ULFMOrderMonitor(),
        RoleTransitionMonitor(),
        RepairGateMonitor(),
        VersionMonitor(),
        FlushMonitor(),
        BuddyMonitor(),
    ]
