"""Protocol-state reconstruction: every rank's state at a simulated time.

Drives the same record stream as the monitors, but instead of checking
invariants it *keeps* the state: liveness, Fenix role and generation,
repair-gate occupancy, last VeloC checkpoint/restore, last IMR store.
``python -m repro.monitor state --at <t>`` renders the result, answering
"what was everyone doing at time t" without reading the raw trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.monitor.base import layer_rank
from repro.sim.trace import TraceRecord


@dataclass
class RankState:
    """One world rank's reconstructed protocol state."""

    world_rank: int
    alive: bool = True
    exited: bool = False
    role: Optional[str] = None
    generation: int = 0
    #: waiting at the repair gate (arrived, repair not yet finalized)
    at_gate: bool = False
    last_checkpoint: Optional[int] = None
    last_recover: Optional[str] = None  # "v3 (scratch)"
    last_imr_store: Optional[int] = None

    def describe(self) -> str:
        if not self.alive:
            status = "DEAD"
        elif self.exited:
            status = "EXITED"
        elif self.at_gate:
            status = "AT-GATE"
        else:
            status = "RUNNING"
        return status


class ProtocolStateTracker:
    """Replays records up to a cutoff time into per-rank states."""

    def __init__(self) -> None:
        self.ranks: Dict[int, RankState] = {}
        self.generation = 0
        #: comm-local -> world rank map of the current resilient comm
        self._members: List[int] = []
        self._comm_name: Optional[str] = None

    def _rank(self, world_rank: int) -> RankState:
        return self.ranks.setdefault(world_rank, RankState(world_rank))

    def _world_of(self, comm_rank: int) -> int:
        if comm_rank < len(self._members):
            return self._members[comm_rank]
        return comm_rank

    def feed(self, rec: TraceRecord) -> None:
        kind = rec.kind
        if kind == "comm_create" and rec.source.startswith("fenix.resilient."):
            self._members = list(rec["members"])
            self._comm_name = rec.source
        elif kind == "rank_dead":
            self._rank(rec["rank"]).alive = False
        elif kind == "rank_exit":
            self._rank(rec["rank"]).exited = True
        elif kind == "gate_arrive" and rec.source == "fenix":
            self._rank(rec["rank"]).at_gate = True
        elif kind == "role" and rec.source == "fenix":
            st = self._rank(rec["rank"])
            st.role = rec["role"]
            st.generation = rec["generation"]
            st.at_gate = False
        elif kind == "repair" and rec.source == "fenix":
            self.generation = rec["generation"]
            for st in self.ranks.values():
                st.at_gate = False
        elif kind == "abort" and rec.source == "fenix":
            self.generation = rec["generation"]
            for st in self.ranks.values():
                st.at_gate = False
        else:
            lr = layer_rank(rec.source)
            if lr is None:
                return
            layer, comm_rank = lr
            st = self._rank(self._world_of(comm_rank))
            if layer == "veloc" and kind == "checkpoint":
                st.last_checkpoint = int(rec["version"])
            elif layer == "veloc" and kind == "recover":
                st.last_recover = (
                    f"v{int(rec['version'])} ({rec.fields.get('tier', '?')})"
                )
            elif layer == "imr" and kind == "imr_store":
                st.last_imr_store = int(rec["version"])

    def replay(self, records: Iterable[TraceRecord],
               at: Optional[float] = None) -> "ProtocolStateTracker":
        for rec in records:
            if at is not None and rec.time > at:
                break
            self.feed(rec)
        return self


def render_state(tracker: ProtocolStateTracker,
                 at: Optional[float] = None) -> str:
    """Aligned table of every rank's reconstructed state."""
    header = (f"protocol state at t={at:.6f}" if at is not None
              else "protocol state at end of trace")
    lines = [header,
             f"repair generation: {tracker.generation}",
             f"{'rank':>4}  {'status':<8}{'role':<11}{'gen':>3}  "
             f"{'last ckpt':<10}{'last restore':<14}{'imr':<6}"]
    for world_rank in sorted(tracker.ranks):
        st = tracker.ranks[world_rank]
        ckpt = f"v{st.last_checkpoint}" if st.last_checkpoint is not None else "-"
        imr = f"v{st.last_imr_store}" if st.last_imr_store is not None else "-"
        lines.append(
            f"{world_rank:>4}  {st.describe():<8}{st.role or '-':<11}"
            f"{st.generation:>3}  {ckpt:<10}{st.last_recover or '-':<14}"
            f"{imr:<6}".rstrip()
        )
    if not tracker.ranks:
        lines.append("(no rank activity before this time)")
    return "\n".join(lines)
