"""Post-mortem recovery explainer: one failure, kill to re-entry.

Walks the trace from a ``rank_killed``/``rank_crashed`` record through
the protocol stages documented in docs/PROTOCOLS.md §1 --

- **t0 failure** -- the kill and the world marking the rank dead;
- **t1 detection & revoke** -- survivors hit the dead rank, revoke the
  resilient communicator, long-jump;
- **t2 rendezvous** -- every alive participant (survivors and spares)
  arrives at the repair gate, including further deaths during the wait;
- **t3 repair** -- spares substituted in place, membership decided;
- **t4 roles & agreement** -- role assignment and the repair agreement;
- **t5 restore & re-entry** -- data brought back per layer, computation
  resumes at the first post-repair checkpoint region --

and renders each stage's records through the shared timeline row
formatter (:func:`repro.telemetry.timeline.format_rows`).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.sim.trace import TraceRecord
from repro.telemetry.timeline import format_rows

#: record kinds that mark a failed process (stage t0 anchors)
KILL_KINDS = ("rank_killed", "rank_crashed")

#: record kinds proving the first resumed protected step *completed*
#: (restores happen inside that step, so the boundary must be its end)
REENTRY_KINDS = ("kr_region_commit", "checkpoint", "imr_store")


def find_failures(records: Sequence[TraceRecord],
                  rank: Optional[int] = None) -> List[TraceRecord]:
    """All kill records (optionally restricted to one world rank)."""
    return [r for r in records
            if r.kind in KILL_KINDS
            and (rank is None or r.fields.get("rank") == rank)]


def _row(rec: TraceRecord, i: int) -> Tuple[float, int, str, str, str]:
    from repro.telemetry.timeline import _fields_text
    detail = _fields_text(rec.fields)
    return (rec.time, i, rec.source, ".",
            rec.kind + (f" {detail}" if detail else ""))


def _section(title: str, note: str,
             records: Sequence[TraceRecord]) -> List[str]:
    lines = [f"-- {title}", f"   {note}"]
    if records:
        body = format_rows([_row(r, i) for i, r in enumerate(records)])
        lines.extend("   " + ln for ln in body.splitlines())
    else:
        lines.append("   (no records)")
    lines.append("")
    return lines


def explain_failure(records: Sequence[TraceRecord],
                    rank: Optional[int] = None,
                    occurrence: int = 0) -> str:
    """Render the recovery path of one failure as annotated text.

    ``rank`` picks which rank's death to explain (default: the first kill
    in the trace); ``occurrence`` selects among multiple kills of the
    same rank.
    """
    kills = find_failures(records, rank=rank)
    if not kills:
        target = f"rank {rank}" if rank is not None else "any rank"
        return f"no failure found for {target} in {len(records)} records"
    if occurrence >= len(kills):
        return (f"only {len(kills)} failure(s) found; "
                f"occurrence {occurrence} out of range")
    kill = kills[occurrence]
    dead_rank = kill.fields.get("rank")
    idx = records.index(kill)
    after = records[idx + 1:]

    # the repair that resolves this failure: first repair/abort after it
    repair = next((r for r in after
                   if r.source == "fenix" and r.kind in ("repair", "abort")),
                  None)
    upto_repair = (after[:after.index(repair)] if repair is not None
                   else list(after))

    t0 = [kill] + [r for r in upto_repair
                   if r.kind == "rank_dead" and r.fields.get("rank") == dead_rank]
    t1 = [r for r in upto_repair if r.kind in ("detect", "revoke")]
    t2 = [r for r in upto_repair if r.kind == "gate_arrive"]
    late_deaths = [r for r in upto_repair
                   if r.kind in KILL_KINDS + ("rank_dead",)
                   and r.fields.get("rank") != dead_rank]
    t3 = [r for r in upto_repair
          if r.kind in ("spare_activated",)
          or (r.kind == "shrink" and r.source == "fenix")]
    if repair is not None:
        t3.append(repair)

    lines: List[str] = []
    header = (f"recovery of rank {dead_rank} failure at "
              f"t={kill.time:.6f} (record #{kill.seq})")
    lines.append(header)
    lines.append("=" * len(header))
    lines.append("")
    lines.extend(_section(
        "t0 failure",
        f"rank {dead_rank} was killed; the world marks it dead.",
        t0,
    ))
    lines.extend(_section(
        "t1 detection & revoke",
        "survivors hit the dead rank, revoke the resilient communicator, "
        "and long-jump back into Fenix.",
        t1,
    ))
    lines.extend(_section(
        "t2 repair-gate rendezvous",
        "every alive participant (survivors and spares) arrives at the "
        "repair gate" + ("; further deaths during the wait shrink the "
                         "expected set:" if late_deaths else "."),
        t2 + late_deaths,
    ))
    if repair is None:
        lines.append("-- no repair found after this failure")
        lines.append("   (fail-restart strategy, aborted job, or a trace "
                     "truncated before the repair)")
        return "\n".join(lines)

    gen = repair.fields.get("generation")
    if repair.kind == "abort":
        lines.extend(_section(
            "t3 abort",
            f"spares exhausted under the abort policy; generation {gen} "
            "terminates the job.",
            t3,
        ))
        return "\n".join(lines)

    post = after[after.index(repair) + 1:]
    next_kill = next((r for r in post if r.kind in KILL_KINDS), None)
    window = post[:post.index(next_kill)] if next_kill is not None else post
    t4 = [r for r in window
          if r.source == "fenix" and r.kind in ("role", "agree")]
    reentry = next((r for r in window if r.kind in REENTRY_KINDS), None)
    restores = [r for r in window
                if r.kind in ("recover", "imr_restore", "imr_buddy_recv")
                and (reentry is None or r.seq <= reentry.seq)]

    lines.extend(_section(
        "t3 repair",
        f"generation {gen}: spares substituted in place of the dead, "
        "rank ids stable for checkpoint keys.",
        t3,
    ))
    lines.extend(_section(
        "t4 roles & agreement",
        "each member learns its role; every alive rank observes the same "
        "repair result.",
        t4,
    ))
    lines.extend(_section(
        "t5 restore",
        "survivors restore from local tiers; recovered ranks pull from "
        "the buddy / persistent tiers.",
        restores,
    ))
    if reentry is not None:
        lines.extend(_section(
            "re-entry",
            "computation has resumed (first post-repair protected step).",
            [reentry],
        ))
    else:
        lines.append("-- re-entry: no post-repair protected step recorded")
    return "\n".join(lines)
