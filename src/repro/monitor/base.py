"""Monitor framework: streaming per-rank protocol state machines.

A :class:`ProtocolMonitor` consumes :class:`~repro.sim.trace.TraceRecord`
rows one at a time (online, via :meth:`~repro.sim.trace.Trace.subscribe`,
or offline by replaying a recorded trace) and accumulates
:class:`~repro.monitor.violations.InvariantViolation` findings.  Monitors
never raise from the feed path -- a broken protocol must not change the
run it is observing; the harness consults :meth:`MonitorSuite.violations`
after the engine drains and fails the run there when strict.
"""

from __future__ import annotations

import re
from typing import Any, Iterable, List, Optional, Tuple

from repro.monitor.violations import InvariantViolation
from repro.sim.trace import Trace, TraceRecord

#: per-layer rank sources: ``veloc.rank3``, ``imr.rank3``, ``kr.rank3``
_LAYER_RANK = re.compile(r"^(veloc|imr|kr)\.rank(\d+)$")

#: world-level liveness events (source is the world name, which varies)
LIFECYCLE_KINDS = frozenset({
    "rank_killed", "rank_crashed", "rank_dead", "rank_exit",
})


def layer_rank(source: str) -> Optional[Tuple[str, int]]:
    """``("veloc", 3)`` for ``veloc.rank3``; None for other sources."""
    m = _LAYER_RANK.match(source)
    if m:
        return (m.group(1), int(m.group(2)))
    return None


class ProtocolMonitor:
    """Base class: one invariant family, one state machine."""

    def __init__(self) -> None:
        self.violations: List[InvariantViolation] = []

    def feed(self, rec: TraceRecord) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def finish(self) -> None:
        """Called once after the stream ends (end-of-run checks)."""

    def violate(self, rule: str, message: str,
                chain: Iterable[TraceRecord]) -> None:
        chain = tuple(chain)
        self.violations.append(InvariantViolation(
            monitor=type(self).__name__,
            rule=rule,
            message=message,
            time=chain[-1].time if chain else 0.0,
            chain=chain,
        ))


class MonitorSuite:
    """A set of monitors sharing one record stream.

    Attach to a live :class:`Trace` with :meth:`attach` (online checking
    while the simulation runs) or push a recorded stream through
    :meth:`replay`.  Either way, call :meth:`finish` once the stream is
    complete, then read :attr:`violations`.
    """

    def __init__(self, monitors: Optional[List[ProtocolMonitor]] = None) -> None:
        if monitors is None:
            from repro.monitor.monitors import standard_monitors
            monitors = standard_monitors()
        self.monitors = monitors
        self._trace: Optional[Trace] = None
        self._finished = False
        #: ``(count, (first, last))`` of ring-buffer evictions, recorded at
        #: finish() so reports can say what the monitors never saw
        self.dropped: int = 0
        self.dropped_window: Optional[Tuple[float, float]] = None

    # -- streaming ---------------------------------------------------------

    def feed(self, rec: TraceRecord) -> None:
        for mon in self.monitors:
            mon.feed(rec)

    def attach(self, trace: Trace) -> None:
        """Subscribe to a live trace (records already held are fed first,
        so attaching mid-run does not blind the monitors)."""
        for rec in trace:
            self.feed(rec)
        trace.subscribe(self.feed)
        self._trace = trace

    def detach(self) -> None:
        if self._trace is not None:
            self._trace.unsubscribe(self.feed)

    def replay(self, records: Iterable[TraceRecord]) -> "MonitorSuite":
        for rec in records:
            self.feed(rec)
        return self

    def finish(self) -> None:
        """End-of-stream: run final checks and capture drop accounting."""
        if self._finished:
            return
        self._finished = True
        if self._trace is not None:
            self.dropped = self._trace.dropped
            self.dropped_window = self._trace.dropped_window
            self.detach()
        for mon in self.monitors:
            mon.finish()

    # -- results ------------------------------------------------------------

    @property
    def violations(self) -> List[InvariantViolation]:
        out: List[InvariantViolation] = []
        for mon in self.monitors:
            out.extend(mon.violations)
        out.sort(key=lambda v: (v.time, v.monitor, v.rule))
        return out

    def note_dropped(self, count: int,
                     window: Optional[Tuple[float, float]]) -> None:
        """Record drop accounting for replays of truncated trace files."""
        self.dropped = count
        self.dropped_window = window

    def report(self) -> str:
        lines: List[str] = []
        if self.dropped:
            lo, hi = self.dropped_window or (float("nan"), float("nan"))
            lines.append(
                f"WARNING: trace ring buffer dropped {self.dropped} "
                f"record(s) in t=[{lo:.6f}, {hi:.6f}]; monitors did not "
                "see that window"
            )
        violations = self.violations
        if not violations:
            lines.append("no invariant violations")
        else:
            lines.append(f"{len(violations)} invariant violation(s):")
            for v in violations:
                lines.append(v.render())
        return "\n".join(lines)

    def to_dict(self) -> Any:
        return {
            "dropped": self.dropped,
            "dropped_window": list(self.dropped_window)
            if self.dropped_window else None,
            "violations": [v.to_dict() for v in self.violations],
        }
