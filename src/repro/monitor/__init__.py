"""repro.monitor: online protocol-invariant monitors and post-mortem
tooling over the trace stream.

The monitors make docs/PROTOCOLS.md executable: streaming state machines
subscribe to :class:`repro.sim.trace.Trace` and check the cross-layer
recovery protocol (ULFM ordering, Fenix role legality and repair-gate
completeness, VeloC version/flush discipline, IMR buddy consistency)
while the simulation runs.  The harness enforces them under
``strict_monitor`` (or ``REPRO_STRICT_MONITOR=1``); the CLI
(``python -m repro.monitor``) replays recorded traces, reconstructs
protocol state at a point in time, and explains one failure's recovery
path end to end.

This package intentionally imports only the trace layer at module scope
so the harness (and the CLI's offline subcommands) can use it without
pulling in applications or experiments.
"""

from repro.monitor.base import MonitorSuite, ProtocolMonitor, layer_rank
from repro.monitor.monitors import (
    BuddyMonitor,
    FlushMonitor,
    RepairGateMonitor,
    RoleTransitionMonitor,
    ULFMOrderMonitor,
    VersionMonitor,
    standard_monitors,
)
from repro.monitor.violations import InvariantViolation, InvariantViolationError

__all__ = [
    "BuddyMonitor",
    "FlushMonitor",
    "InvariantViolation",
    "InvariantViolationError",
    "MonitorSuite",
    "ProtocolMonitor",
    "RepairGateMonitor",
    "RoleTransitionMonitor",
    "ULFMOrderMonitor",
    "VersionMonitor",
    "layer_rank",
    "standard_monitors",
]
