"""Flight-recorder trace files: JSONL persistence for Trace records.

One JSON object per line.  The first line is a meta header carrying the
ring-buffer and sampling drop accounting, so a reader of a truncated
trace knows the bounds of what is missing::

    {"meta": {"version": 1, "dropped": 12, "dropped_window": [0.1, 0.4]}}
    {"seq": 13, "time": 0.41, "source": "fenix", "kind": "repair", ...}

Meta lines are accepted *anywhere* in the stream (last one wins):
:class:`JsonlTraceSink` streams records as they are emitted and only
knows the final drop counts at close, so it appends a trailing meta
line rather than seeking back to rewrite the header.

Tuples inside record fields (e.g. VeloC flush keys) become JSON lists on
the way out; monitors normalize on the way back in, so a replayed trace
checks identically to a live one.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.sim.trace import Trace, TraceRecord
from repro.util.errors import ConfigError
from repro.util.schema import stamp, warn_on_mismatch

FORMAT_VERSION = 1


def _record_to_obj(rec: TraceRecord) -> Dict[str, Any]:
    return {
        "seq": rec.seq,
        "time": rec.time,
        "source": rec.source,
        "kind": rec.kind,
        "fields": rec.fields,
    }


def _json_default(value: Any) -> Any:
    if isinstance(value, (set, frozenset, tuple)):
        return list(value)
    return repr(value)


def trace_meta(trace: Trace) -> Dict[str, Any]:
    """The meta-header payload: schema/version stamp + drop accounting
    (also the meta :mod:`repro.align` reads to excuse accounted gaps)."""
    sampled_window = getattr(trace, "sampled_window", None)
    return stamp({
        "version": FORMAT_VERSION,
        "dropped": trace.dropped,
        "dropped_window": list(trace.dropped_window)
        if trace.dropped_window else None,
        "sampled_out": getattr(trace, "sampled_out", 0),
        "sampled_window": list(sampled_window) if sampled_window else None,
    }, FORMAT_VERSION)


def write_trace(path: str, trace: Trace) -> int:
    """Write every held record (plus the drop header); returns the count."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"meta": trace_meta(trace)},
                            default=_json_default) + "\n")
        for rec in trace:
            fh.write(json.dumps(_record_to_obj(rec), default=_json_default)
                     + "\n")
            n += 1
    return n


def read_trace(path: str) -> Tuple[List[TraceRecord], Dict[str, Any]]:
    """Load a trace file; returns ``(records, meta)``.

    ``meta`` holds at least ``dropped`` (int) and ``dropped_window``
    (``[first, last]`` or None); files written by other tools without a
    header are accepted with zeroed meta.  Meta lines may appear on any
    line (streamed sinks append a trailing one); the last wins.
    """
    records: List[TraceRecord] = []
    meta: Dict[str, Any] = {"dropped": 0, "dropped_window": None,
                            "sampled_out": 0, "sampled_window": None}
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigError(
                    f"{path}:{lineno}: not valid JSON ({exc.msg})"
                ) from exc
            if "meta" in obj:
                meta.update(obj["meta"])
                continue
            try:
                records.append(TraceRecord(
                    time=float(obj["time"]),
                    source=str(obj["source"]),
                    kind=str(obj["kind"]),
                    fields=dict(obj.get("fields", {})),
                    seq=int(obj.get("seq", -1)),
                ))
            except (KeyError, TypeError, ValueError) as exc:
                raise ConfigError(
                    f"{path}:{lineno}: malformed trace record ({exc})"
                ) from exc
    warn_on_mismatch(
        f"trace {path}", FORMAT_VERSION,
        found_schema=meta.get("schema", meta.get("version")),
        found_version=meta.get("repro_version"),
    )
    return records, meta


def load_trace(path: str) -> Trace:
    """Load a file into a live :class:`Trace` (queryable, exportable)."""
    records, meta = read_trace(path)
    trace = Trace(enabled=True)
    for rec in records:
        trace.emit(rec.time, rec.source, rec.kind, **rec.fields)
    trace.dropped = int(meta.get("dropped") or 0)
    window = meta.get("dropped_window")
    if window:
        trace._dropped_first, trace._dropped_last = window[0], window[1]
    trace.sampled_out = int(meta.get("sampled_out") or 0)
    swindow = meta.get("sampled_window")
    if swindow:
        trace._sampled_first, trace._sampled_last = swindow[0], swindow[1]
    return trace


class JsonlTraceSink:
    """Streaming flight recorder: records hit disk *as they are emitted*.

    :func:`write_trace` is post-hoc -- nothing lands until the run ends,
    so a hung or killed run leaves an empty file and ``tail -f`` shows
    nothing.  This sink subscribes to the live trace and writes each
    record the moment it exists, flushing per line so external tailers
    (``repro.live tail``, CI log collectors) see the run unfold.  A meta
    header goes out at attach; a trailing meta line with the *final*
    drop accounting goes out at close (readers take the last meta seen).
    """

    def __init__(self, path: str, trace: Optional[Trace] = None) -> None:
        self.path = path
        self.records_written = 0
        self._trace: Optional[Trace] = None
        self._fh: Optional[Any] = open(path, "w", encoding="utf-8")
        self._fh.write(json.dumps(
            {"meta": stamp({"version": FORMAT_VERSION, "streaming": True},
                           FORMAT_VERSION)},
            default=_json_default) + "\n")
        self._fh.flush()
        if trace is not None:
            self.attach(trace)

    def attach(self, trace: Trace) -> "JsonlTraceSink":
        for rec in trace:  # records emitted before the sink existed
            self(rec)
        trace.subscribe(self)
        self._trace = trace
        return self

    def __call__(self, rec: TraceRecord) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(_record_to_obj(rec),
                                  default=_json_default) + "\n")
        self._fh.flush()  # the whole point: no block buffering
        self.records_written += 1

    def close(self) -> None:
        if self._fh is None:
            return
        if self._trace is not None:
            self._trace.unsubscribe(self)
            self._fh.write(json.dumps({"meta": trace_meta(self._trace)},
                                      default=_json_default) + "\n")
            self._trace = None
        self._fh.close()
        self._fh = None

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def records_from(source: "Trace | Iterable[TraceRecord]") -> List[TraceRecord]:
    return list(source)


def dropped_of(source: "Trace | Any") -> Tuple[int, Optional[Tuple[float, float]]]:
    """Drop accounting of a live Trace (duck-typed for loaded metas)."""
    dropped = getattr(source, "dropped", 0)
    window = getattr(source, "dropped_window", None)
    return dropped, window
