"""Flight-recorder CLI for the protocol monitors.

Usage (repository root, ``PYTHONPATH=src``)::

    # replay a recorded trace file through the invariant monitors
    python -m repro.monitor check run.trace.jsonl

    # run one failure-injection job live with monitors attached,
    # keeping the trace for post-mortem tooling
    python -m repro.monitor check --app heatdis --strategy fenix_veloc \
        --ranks 4 --kill-rank 1 --save-trace run.trace.jsonl

    # reconstruct every rank's protocol state at a simulated time
    python -m repro.monitor state run.trace.jsonl --at 12.5

    # walk one failure from kill to re-entry
    python -m repro.monitor explain run.trace.jsonl --rank 1

    # the CI campaign: a strategy x failure matrix under strict monitors
    python -m repro.monitor smoke --out monitor-smoke

Exit codes: 0 clean, 1 invariant violations found, 2 usage/load errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Tuple

from repro.monitor.base import MonitorSuite
from repro.monitor.explain import explain_failure
from repro.monitor.state import ProtocolStateTracker, render_state
from repro.monitor.trace_io import JsonlTraceSink, read_trace, write_trace
from repro.util.errors import ReproError

APPS = ("heatdis", "heatdis2d", "minimd")

#: the smoke campaign: every Fenix strategy family under one rank kill,
#: plus the spare-exhaustion shrink path via the elastic example scale
SMOKE_SCENARIOS: Tuple[Tuple[str, str, int], ...] = (
    ("heatdis", "fenix_veloc", 1),
    ("heatdis", "fenix_kr_veloc", 2),
    ("heatdis", "fenix_kr_imr", 1),
    ("heatdis2d", "fenix_kr_veloc", 0),
    ("minimd", "fenix_kr_imr", 1),
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.monitor",
        description="Check, reconstruct, and explain resilience-protocol "
                    "traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser(
        "check", help="replay a trace file (or a live run) through the "
                      "invariant monitors")
    check.add_argument("trace", nargs="?", default=None,
                       help="trace file (JSONL); omit to run live")
    check.add_argument("--json", action="store_true",
                       help="machine-readable report on stdout")
    _add_run_args(check)
    check.add_argument("--save-trace", default=None,
                       help="live runs: write the recorded trace here")

    state = sub.add_parser(
        "state", help="reconstruct every rank's protocol state at a time")
    state.add_argument("trace", help="trace file (JSONL)")
    state.add_argument("--at", type=float, default=None,
                       help="simulated time cutoff (default: end of trace)")

    explain = sub.add_parser(
        "explain", help="walk one failure from kill to re-entry")
    explain.add_argument("trace", help="trace file (JSONL)")
    explain.add_argument("--rank", type=int, default=None,
                         help="world rank whose death to explain "
                              "(default: first kill in the trace)")
    explain.add_argument("--occurrence", type=int, default=0,
                         help="which kill of that rank (0-based)")

    smoke = sub.add_parser(
        "smoke", help="failure-injection campaign with strict monitors "
                      "(the CI gate)")
    smoke.add_argument("--out", default="monitor-smoke",
                       help="directory for per-scenario trace files")
    smoke.add_argument("--iters", type=int, default=30)
    smoke.add_argument("--interval", type=int, default=10)
    smoke.add_argument("--ranks", type=int, default=4)
    return parser


def _add_run_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--app", choices=APPS, default="heatdis")
    sub.add_argument("--strategy", default="fenix_veloc")
    sub.add_argument("--ranks", type=int, default=4)
    sub.add_argument("--iters", type=int, default=30)
    sub.add_argument("--interval", type=int, default=10)
    sub.add_argument("--spares", type=int, default=1)
    sub.add_argument("--kill-rank", type=int, default=None)
    sub.add_argument("--kill-after-checkpoint", type=int, default=1)
    sub.add_argument("--seed", type=int, default=20220906)


def _run_live(app: str, strategy_name: str, n_ranks: int, iters: int,
              interval: int, spares: int, kill_rank: Optional[int],
              kill_after: int, seed: int,
              sink: Optional[JsonlTraceSink] = None,
              ) -> Tuple[MonitorSuite, object]:
    """One monitored job; returns (suite, runner-trace)."""
    # harness/experiments imported lazily: offline subcommands must work
    # without them (and the package import graph stays acyclic)
    from repro.experiments.common import paper_env
    from repro.harness.runner import (
        run_heatdis2d_job,
        run_heatdis_job,
        run_minimd_job,
    )
    from repro.harness.strategies import STRATEGIES
    from repro.sim.failures import IterationFailure, NoFailures

    if strategy_name not in STRATEGIES:
        raise ReproError(
            f"unknown strategy {strategy_name!r}; choose from: "
            + ", ".join(sorted(STRATEGIES))
        )
    strategy = STRATEGIES[strategy_name]
    n_spares = spares if strategy.fenix else 0
    env = paper_env(n_ranks + max(n_spares, 1), n_spares=n_spares,
                    seed=seed, pfs_servers=2)
    plan = NoFailures()
    if kill_rank is not None:
        plan = IterationFailure.between_checkpoints(
            kill_rank, interval, kill_after
        )
    suite = MonitorSuite()
    # strict_monitor=False: the CLI reports violations itself (exit code)
    # instead of letting the harness raise mid-run
    kwargs = dict(plan=plan, strict_monitor=False, monitor=suite,
                  trace_sink=sink)
    if app == "heatdis":
        from repro.apps.heatdis import HeatdisConfig
        run_heatdis_job(env, strategy_name, n_ranks,
                        HeatdisConfig(n_iters=iters), interval, **kwargs)
    elif app == "heatdis2d":
        from repro.apps.heatdis2d import Heatdis2DConfig
        run_heatdis2d_job(env, strategy_name, n_ranks,
                          Heatdis2DConfig(n_iters=iters), interval, **kwargs)
    else:
        from repro.apps.minimd import MiniMDConfig
        run_minimd_job(env, strategy_name, n_ranks,
                       MiniMDConfig(n_steps=iters), interval, **kwargs)
    suite.finish()
    return suite, suite._trace


def _check(args: argparse.Namespace) -> int:
    suite = MonitorSuite()
    trace = None
    if args.trace is not None:
        try:
            records, meta = read_trace(args.trace)
        except (OSError, ReproError) as exc:
            print(f"cannot load {args.trace}: {exc}", file=sys.stderr)
            return 2
        suite.replay(records)
        suite.finish()
        suite.note_dropped(int(meta.get("dropped") or 0),
                           tuple(meta["dropped_window"])
                           if meta.get("dropped_window") else None)
    else:
        # live runs stream the flight recorder as records are emitted,
        # so a tailer (repro.live tail) can watch the run unfold
        sink = JsonlTraceSink(args.save_trace) if args.save_trace else None
        try:
            suite, trace = _run_live(
                args.app, args.strategy, args.ranks, args.iters,
                args.interval, args.spares, args.kill_rank,
                args.kill_after_checkpoint, args.seed, sink=sink,
            )
        except ReproError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        finally:
            if sink is not None:
                sink.close()
        if sink is not None:
            print(f"streamed {sink.records_written} records to "
                  f"{args.save_trace}", file=sys.stderr)
    if args.json:
        print(json.dumps(suite.to_dict(), indent=1))
    else:
        print(suite.report())
    return 1 if suite.violations else 0


def _state(args: argparse.Namespace) -> int:
    try:
        records, _meta = read_trace(args.trace)
    except (OSError, ReproError) as exc:
        print(f"cannot load {args.trace}: {exc}", file=sys.stderr)
        return 2
    tracker = ProtocolStateTracker().replay(records, at=args.at)
    print(render_state(tracker, at=args.at))
    return 0


def _explain(args: argparse.Namespace) -> int:
    try:
        records, _meta = read_trace(args.trace)
    except (OSError, ReproError) as exc:
        print(f"cannot load {args.trace}: {exc}", file=sys.stderr)
        return 2
    print(explain_failure(records, rank=args.rank,
                          occurrence=args.occurrence))
    return 0


def _smoke(args: argparse.Namespace) -> int:
    os.makedirs(args.out, exist_ok=True)
    failures: List[str] = []
    for app, strategy, kill_rank in SMOKE_SCENARIOS:
        label = f"{app}-{strategy}-kill{kill_rank}"
        try:
            suite, trace = _run_live(
                app, strategy, args.ranks, args.iters, args.interval,
                1, kill_rank, 1, 20220906,
            )
        except ReproError as exc:
            print(f"{label}: RUN FAILED: {exc}")
            failures.append(label)
            continue
        path = os.path.join(args.out, f"{label}.trace.jsonl")
        if trace is not None:
            write_trace(path, trace)
        if suite.violations:
            print(f"{label}: {len(suite.violations)} violation(s) "
                  f"(trace: {path})")
            print(suite.report())
            failures.append(label)
        else:
            print(f"{label}: clean ({path})")
    if failures:
        print(f"{len(failures)}/{len(SMOKE_SCENARIOS)} scenarios failed: "
              + ", ".join(failures), file=sys.stderr)
        return 1
    print(f"all {len(SMOKE_SCENARIOS)} scenarios clean")
    return 0


def main(argv: Optional[list] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "check":
        return _check(args)
    if args.command == "state":
        return _state(args)
    if args.command == "explain":
        return _explain(args)
    return _smoke(args)


if __name__ == "__main__":  # pragma: no cover
    try:
        sys.exit(main())
    except BrokenPipeError:
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
