"""Structured invariant violations.

A violation is evidence, not prose: besides the human-readable message it
carries the *causal chain* -- the trace records that put the protocol
state machine into the position where the offending record became
illegal, ending with the offending record itself.  Tests and the CLI
render the chain with :meth:`TraceRecord.brief`, so a report names the
exact records (by sequence number and simulated time) that prove the
protocol was broken.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.sim.trace import TraceRecord
from repro.util.errors import ReproError


@dataclass(frozen=True)
class InvariantViolation:
    """One broken protocol invariant, with its evidence."""

    #: monitor class name that raised it (e.g. ``ULFMOrderMonitor``)
    monitor: str
    #: stable rule identifier (e.g. ``revoke-before-shrink``)
    rule: str
    #: human-readable statement of what went wrong
    message: str
    #: simulated time of the offending record
    time: float
    #: the records that establish the violation; the last entry is the
    #: offending record, earlier entries are the state it contradicts
    chain: Tuple[TraceRecord, ...] = field(default_factory=tuple)

    @property
    def offending(self) -> TraceRecord:
        return self.chain[-1]

    def render(self) -> str:
        lines = [f"[{self.monitor}] {self.rule}: {self.message}"]
        for rec in self.chain:
            lines.append(f"    {rec.brief()}")
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "monitor": self.monitor,
            "rule": self.rule,
            "message": self.message,
            "time": self.time,
            "chain": [
                {
                    "seq": r.seq,
                    "time": r.time,
                    "source": r.source,
                    "kind": r.kind,
                    "fields": dict(r.fields),
                }
                for r in self.chain
            ],
        }


class InvariantViolationError(ReproError):
    """Raised by the harness under ``strict_monitor`` when a run breaks a
    protocol invariant."""

    def __init__(self, violations: List[InvariantViolation]) -> None:
        self.violations = list(violations)
        head = self.violations[0]
        more = (
            f" (+{len(self.violations) - 1} more)"
            if len(self.violations) > 1 else ""
        )
        super().__init__(
            f"{len(self.violations)} protocol invariant violation(s); "
            f"first: {head.monitor}/{head.rule} at t={head.time:.6f}: "
            f"{head.message}{more}"
        )
