"""Optimal checkpoint-interval estimators (Young / Daly).

The checkpoint-interval ablation (``benchmarks/test_ablations.py``) sweeps
the recompute-vs-overhead trade-off empirically; these closed forms give
the classical first-order optima for comparison:

- Young's approximation:  ``sqrt(2 * C * M)``
- Daly's higher-order fit: ``sqrt(2*C*M) * [1 + sqrt(C/(2*M))/3 + C/(9*M)] - C``
  (valid for ``C < 2M``; Daly 2006, eq. 37)

where ``C`` is the time to take one checkpoint and ``M`` the system mean
time between failures.
"""

from __future__ import annotations

import math

from repro.util.errors import ConfigError


def young_interval(checkpoint_cost: float, mtbf: float) -> float:
    """Young's first-order optimal checkpoint interval."""
    _validate(checkpoint_cost, mtbf)
    return math.sqrt(2.0 * checkpoint_cost * mtbf)


def daly_interval(checkpoint_cost: float, mtbf: float) -> float:
    """Daly's refined optimal checkpoint interval (his eq. 37)."""
    _validate(checkpoint_cost, mtbf)
    c, m = checkpoint_cost, mtbf
    if c >= 2.0 * m:
        # degenerate regime: checkpointing costs more than the MTBF
        return float(m)
    base = math.sqrt(2.0 * c * m)
    return base * (1.0 + math.sqrt(c / (2.0 * m)) / 3.0 + c / (9.0 * m)) - c


def expected_runtime(
    work: float, interval: float, checkpoint_cost: float, mtbf: float,
    restart_cost: float = 0.0,
) -> float:
    """First-order expected wall time for ``work`` seconds of computation
    checkpointed every ``interval`` seconds under exponential failures
    (Daly's run-time model) -- used to sanity-check the optima."""
    _validate(checkpoint_cost, mtbf)
    if interval <= 0:
        raise ConfigError("interval must be positive")
    segment = interval + checkpoint_cost
    n_segments = work / interval
    # expected time per attempted segment under exponential failures
    per_segment = mtbf * (math.exp(segment / mtbf) - 1.0)
    return n_segments * per_segment + restart_cost


def _validate(checkpoint_cost: float, mtbf: float) -> None:
    if checkpoint_cost < 0:
        raise ConfigError("checkpoint cost must be >= 0")
    if mtbf <= 0:
        raise ConfigError("MTBF must be positive")
