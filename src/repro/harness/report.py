"""Report formatting: the paper's stacked-bar categories as text tables,
plus machine-readable JSON export for downstream plotting."""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

from repro.harness.runner import RunReport

#: display order of Figure 5's categories
HEATDIS_CATEGORIES = [
    "app_compute",
    "app_mpi",
    "resilience_init",
    "checkpoint_function",
    "data_recovery",
    "recompute",
    "other",
]

#: display order of Figure 6's categories
MINIMD_CATEGORIES = [
    "force_compute",
    "neighboring",
    "communicator",
    "checkpoint_function",
    "data_recovery",
    "other",
]

#: ledger category -> Figure-5 display category.  Detection, ULFM
#: agreement, Fenix repair and idle time are outside the application's
#: accounted buckets in the paper's methodology, so they fold to
#: ``other`` alongside the launch/teardown time the ledger never sees.
_LEDGER_TO_HEATDIS = {
    "compute": "app_compute",
    "flush_congestion": "app_compute",
    "app_mpi_wait": "app_mpi",
    "resilience_init": "resilience_init",
    "checkpoint_copy": "checkpoint_function",
    "kr_reset_restore": "data_recovery",
    "veloc_recover": "data_recovery",
    "recompute": "recompute",
    "failure_detection": "other",
    "ulfm_agreement": "other",
    "fenix_repair": "other",
    "idle": "other",
}


def summarize_categories(
    report: RunReport, categories: Optional[Sequence[str]] = None
) -> Dict[str, float]:
    """Collapse a report onto the requested display categories.

    When the run carried a profile ledger (``profile=True``), the summary
    is built from the exact per-rank attribution: every ledger category
    maps onto one display category, and time the application never saw
    (launch, teardown, repair waits) is ``wall_time - mean_makespan`` --
    so the row sums to the wall time by construction, which is asserted
    rather than assumed.

    Without a ledger, buckets not named in ``categories`` are folded into
    ``other`` so the summary still adds up to the wall time (legacy
    TimeAccount path, used by the untelemetered sweep runs).
    """
    cats = list(categories) if categories is not None else HEATDIS_CATEGORIES
    ledger = report.profile
    if (ledger is not None and "other" in cats
            and all(c in set(_LEDGER_TO_HEATDIS.values()) for c in cats)):
        mean = ledger["mean"]
        row = {c: 0.0 for c in cats}
        for lcat, seconds in mean.items():
            row[_LEDGER_TO_HEATDIS.get(lcat, "other")] += seconds
        # time outside every rank's observed makespan: launch/teardown
        row["other"] += max(0.0, report.wall_time - ledger["mean_makespan"])
        total = sum(row.values())
        assert abs(total - report.wall_time) <= 1e-6 * max(
            1.0, report.wall_time
        ), (
            f"ledger summary ({total!r}) does not conserve the wall time "
            f"({report.wall_time!r})"
        )
        return row
    row = {c: report.category(c) for c in cats if c != "other"}
    named = sum(row.values())
    row["other"] = max(0.0, report.wall_time - named)
    return row


def report_to_dict(report: RunReport) -> Dict:
    """A JSON-serializable summary of one run (results payload omitted)."""
    out = {
        "strategy": report.strategy,
        "app": report.app,
        "n_ranks": report.n_ranks,
        "wall_time": report.wall_time,
        "attempts": report.attempts,
        "failures": report.failures,
        "buckets": dict(report.buckets),
        "other": report.other,
    }
    if report.telemetry is not None:
        out["telemetry"] = report.telemetry
    if report.profile is not None:
        out["profile"] = report.profile
    return out


def reports_to_json(reports: Iterable[RunReport], indent: int = 2) -> str:
    """Serialize reports for external plotting/analysis tools."""
    return json.dumps([report_to_dict(r) for r in reports], indent=indent)


def format_report_table(
    reports: Iterable[RunReport],
    categories: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render reports as an aligned text table (one row per report)."""
    reports = list(reports)
    if not reports:
        return "(no data)"
    cats = list(categories) if categories is not None else HEATDIS_CATEGORIES
    header = ["strategy", "ranks"] + cats + ["wall"]
    rows: List[List[str]] = []
    for rep in reports:
        summary = summarize_categories(rep, cats)
        rows.append(
            [rep.strategy, str(rep.n_ranks)]
            + [f"{summary.get(c, 0.0):.3f}" for c in cats]
            + [f"{rep.wall_time:.3f}"]
        )
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(len(header))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
