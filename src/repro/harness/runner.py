"""Job runner: executes one experiment configuration to completion.

Reproduces the paper's measurement methodology (Section VI-C):

- the reported time is the ``time mpirun`` equivalent: everything from job
  launch to the last process exiting, *including* relaunches for
  fail-restart strategies;
- per-rank in-app times are accounted by category; "Other" is the
  difference between the wall clock and the mean accounted time ("data
  initialization, MPI job startup/teardown, and finalization time");
- failures kill one rank ~95% of the way between two checkpoints; for
  non-Fenix strategies the whole job is then torn down and relaunched on
  the same cluster (PFS checkpoints survive; node-local scratch does not).
"""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.apps.heatdis import HeatdisConfig, make_heatdis_main
from repro.apps.heatdis2d import Heatdis2DConfig, make_heatdis2d_main
from repro.apps.heatdis_manual import make_manual_heatdis_main
from repro.apps.minimd import MiniMDConfig, make_minimd_main
from repro.core import KRConfig, every_nth, make_context, never
from repro.fenix import FenixSystem, IMRStore
from repro.fenix.roles import Role
from repro.harness.recompute import RecomputeTracker
from repro.harness.strategies import STRATEGIES, StrategySpec
from repro.live.rules import (
    LiveSession,
    RuleSet,
    SLOViolationError,
    load_rules,
)
from repro.monitor import InvariantViolationError, MonitorSuite
from repro.mpi import World
from repro.mpi.errors import MPIError
from repro.mpi.handle import CommHandle
from repro.sim import Cluster, ClusterSpec, FailurePlan, NoFailures
from repro.sim.failures import RankKilledError
from repro.sim.trace import Trace
from repro.telemetry import Telemetry
from repro.util.errors import ConfigError, ReproError
from repro.veloc import VeloCService


def strict_monitor_default() -> bool:
    """CI hook: ``REPRO_STRICT_MONITOR=1`` turns invariant enforcement on
    for every job without plumbing a flag through each call site (the
    env var is inherited by parallel sweep workers)."""
    return os.environ.get(
        "REPRO_STRICT_MONITOR", ""
    ).strip().lower() in ("1", "true", "yes", "on")


def strict_slo_default() -> bool:
    """CI hook mirroring :func:`strict_monitor_default`:
    ``REPRO_STRICT_SLO=1`` makes any fired SLO alert fail the job."""
    return os.environ.get(
        "REPRO_STRICT_SLO", ""
    ).strip().lower() in ("1", "true", "yes", "on")


@dataclass(frozen=True)
class JobCosts:
    """Modelled fixed job costs (all land in the paper's "Other")."""

    mpirun_launch: float = 2.0
    per_node_launch: float = 0.02
    mpi_init: float = 0.3
    mpi_finalize: float = 0.1
    #: post-failure cleanup before a relaunch can begin
    teardown: float = 1.5
    #: non-communicative application init (config files, allocation, ...)
    app_noncomm_init: float = 0.2
    #: communicative application init (re-done by recovered ranks)
    app_comm_init: float = 0.3


@dataclass(frozen=True)
class ExperimentEnv:
    """Everything fixed across one experiment sweep."""

    cluster_spec: ClusterSpec
    costs: JobCosts = field(default_factory=JobCosts)
    n_spares: int = 1
    ranks_per_node: int = 1
    #: stage VeloC flushes through the burst buffer (requires a cluster
    #: spec with one)
    use_burst_buffer: bool = False
    #: copy-on-write incremental VeloC snapshots (memcpy/flush cost
    #: scales with the dirty fraction); False restores the full-copy path
    veloc_incremental: bool = True
    #: content-addressed chunk dedup on the VeloC node servers
    veloc_dedup: bool = True


@dataclass
class RunReport:
    """Outcome of one job execution."""

    strategy: str
    app: str
    n_ranks: int
    wall_time: float
    attempts: int
    failures: int
    #: mean per-rank accounted seconds by bucket
    buckets: Dict[str, float]
    #: application results of the final (successful) attempt
    results: Dict[int, Any]
    #: platform counters (messages, bytes over NICs / PFS / burst buffer)
    platform: Dict[str, float] = field(default_factory=dict)
    #: metrics summary (merged + per-rank) when the run was telemetered
    telemetry: Optional[Dict] = None
    #: protocol invariant violations found by the monitor suite (empty
    #: when the run was not monitored or came back clean)
    violations: List[Any] = field(default_factory=list)
    #: exact per-rank time ledger (repro.profile) when profiling was on
    profile: Optional[Dict] = None
    #: checkpoint data-path volume (modelled bytes summed over every
    #: VeloC client and attempt): ``checkpoint_bytes`` (logical),
    #: ``dirty_bytes`` (memcpy'd), ``novel_bytes`` (flushed after dedup),
    #: plus the derived ``dirty_fraction`` and ``dedup_ratio``
    data_path: Dict[str, float] = field(default_factory=dict)
    #: SLO alerts fired by the live rules engine (repro.live), when the
    #: run carried a rules file; empty otherwise
    alerts: List[Any] = field(default_factory=list)
    #: non-fatal observability problems surfaced to the caller (e.g. a
    #: trace listener that raised and was isolated)
    warnings: List[str] = field(default_factory=list)
    #: determinism-audit findings (repro.align divergence dicts between
    #: the run and its seeded replay); empty when the audit was off or
    #: the replay aligned record-for-record
    divergences: List[Dict] = field(default_factory=list)

    @property
    def accounted(self) -> float:
        return sum(self.buckets.values())

    @property
    def other(self) -> float:
        """Job time not visible inside the application (the paper's
        "Other": startup, teardown, finalization, repair waits)."""
        return max(0.0, self.wall_time - self.accounted)

    def category(self, name: str) -> float:
        return self.buckets.get(name, 0.0)

    def as_row(self) -> Dict[str, float]:
        row = dict(self.buckets)
        row["other"] = self.other
        row["wall_time"] = self.wall_time
        return row


def _all_settled(engine, procs) -> "Any":
    """Event that fires when every process has finished (ok or failed)."""
    ev = engine.event(name="all_settled")
    remaining = len(procs)
    if remaining == 0:
        ev.succeed(None)
        return ev

    def on_exit(_inner_ev):
        nonlocal remaining
        remaining -= 1
        if remaining == 0 and not ev.triggered:
            ev.succeed(None)

    for proc in procs:
        proc.add_callback(on_exit)
    return ev


class JobRunner:
    """Drives one job (with relaunches) on a fresh cluster."""

    def __init__(
        self,
        env: ExperimentEnv,
        strategy: StrategySpec,
        n_ranks: int,
        plan: FailurePlan,
        build_main: Callable[..., Callable],
        app_name: str,
        telemetry: Optional[Telemetry] = None,
        trace_max_records: Optional[int] = None,
        strict_monitor: Optional[bool] = None,
        monitor: Optional[MonitorSuite] = None,
        profile: bool = False,
        rules: "Optional[RuleSet | str]" = None,
        strict_slo: Optional[bool] = None,
        trace_sink: Optional[Any] = None,
        capture_trace: bool = False,
    ) -> None:
        self.env = env
        self.strategy = strategy
        self.n_ranks = n_ranks
        self.plan = plan
        self.build_main = build_main
        self.app_name = app_name
        self.n_spares = env.n_spares if strategy.fenix else 0
        n_total = n_ranks + self.n_spares
        needed_nodes = -(-n_total // env.ranks_per_node)
        if env.cluster_spec.n_nodes < needed_nodes:
            raise ConfigError(
                f"cluster has {env.cluster_spec.n_nodes} nodes; "
                f"{needed_nodes} needed"
            )
        self.n_total = n_total
        self.telemetry = telemetry
        if profile and (telemetry is None or not telemetry.enabled):
            raise ConfigError("profile=True requires enabled telemetry")
        self.profile = profile
        # a telemetered run also records the legacy event trace so the
        # exporters can interleave both record kinds on one timeline;
        # ``trace_max_records`` switches it to ring-buffer mode so long
        # campaigns cannot grow the record list without bound
        self.strict_monitor = (
            strict_monitor_default() if strict_monitor is None
            else strict_monitor
        )
        self.monitor = monitor
        if self.monitor is None and self.strict_monitor:
            self.monitor = MonitorSuite()
        self.rules = load_rules(rules) if isinstance(rules, str) else rules
        self.strict_slo = (
            strict_slo_default() if strict_slo is None else strict_slo
        )
        trace = Trace(
            enabled=True, max_records=trace_max_records,
            sampler=telemetry.sampler if telemetry is not None else None,
        ) if (
            (telemetry is not None and telemetry.enabled)
            or self.monitor is not None
            or self.rules is not None
            or capture_trace
        ) else None
        self.trace = trace
        self.cluster = Cluster(env.cluster_spec, trace=trace,
                               telemetry=telemetry)
        if trace is not None and telemetry is not None:
            telemetry.trace = trace
        if self.monitor is not None and trace is not None:
            self.monitor.attach(trace)
        # the live layer: windowed series + SLO rules evaluated in-run,
        # attached after the monitor so invariant_violations rules see
        # the suite's findings the moment they exist
        self.live: Optional[LiveSession] = None
        if trace is not None and self.rules is not None:
            self.live = LiveSession(rules=self.rules, monitor=self.monitor)
            self.live.attach(trace)
        # streaming flight recorder (e.g. monitor.trace_io.JsonlTraceSink):
        # records hit disk as they are emitted; the caller closes it
        if trace_sink is not None and trace is not None:
            trace_sink.attach(trace)
        self.service = VeloCService(
            self.cluster, use_burst_buffer=env.use_burst_buffer
        )
        self.tracker = RecomputeTracker()
        self.totals: Dict[str, float] = {}
        self.data_totals: Dict[str, float] = {}
        self.results: Dict[int, Any] = {}
        self.attempts = 0
        self.finish_time: Optional[float] = None

    # -- public ------------------------------------------------------------

    def run(self) -> RunReport:
        engine = self.cluster.engine
        engine.process(self._driver(), name="job_driver")
        engine.run()
        buckets = {k: v / self.n_ranks for k, v in self.totals.items()}
        # wall time ends when the job completes; stray daemon timers
        # (failure watchdogs armed far in the future) may drain later
        wall = self.finish_time if self.finish_time is not None else engine.now
        tel = self.telemetry
        violations = []
        if self.monitor is not None:
            self.monitor.finish()
            violations = self.monitor.violations
            if self.strict_monitor and violations:
                raise InvariantViolationError(violations)
        alerts: List[Any] = []
        if self.live is not None:
            alerts = self.live.finish(t=wall)
            if self.strict_slo and alerts:
                raise SLOViolationError(alerts)
        warnings: List[str] = []
        if self.trace is not None and self.trace.listener_errors:
            warnings.append(
                f"{self.trace.listener_errors} trace listener exception(s) "
                f"isolated (observers never alter the run); last: "
                f"{self.trace.last_listener_error}"
            )
        profile_dict = None
        if self.profile:
            # local import: repro.profile consumes telemetry, the runner
            # merely hands the stream over, so no import cycle
            from repro.profile.ledger import build_ledger

            profile_dict = build_ledger(
                tel, trace=self.trace, wall_time=wall
            ).to_dict()
        return RunReport(
            strategy=self.strategy.name,
            app=self.app_name,
            n_ranks=self.n_ranks,
            wall_time=wall,
            attempts=self.attempts,
            failures=self.plan.expected_failures(),
            buckets=buckets,
            results=dict(self.results),
            platform=self._platform_counters(),
            telemetry=(
                tel.metrics_summary() if tel is not None and tel.enabled
                else None
            ),
            violations=violations,
            profile=profile_dict,
            data_path=self._data_path_summary(),
            alerts=alerts,
            warnings=warnings,
        )

    def _platform_counters(self) -> Dict[str, float]:
        cluster = self.cluster
        counters = {
            "network_messages": float(cluster.network.messages_sent),
            "network_bytes": cluster.network.bytes_sent,
            "pfs_bytes_written": cluster.pfs.bytes_written,
            "pfs_bytes_read": cluster.pfs.bytes_read,
        }
        if cluster.burst_buffer is not None:
            counters["bb_bytes_written"] = cluster.burst_buffer.bytes_written
            counters["bb_bytes_read"] = cluster.burst_buffer.bytes_read
        return counters

    # -- internals -----------------------------------------------------------

    def _launch_cost(self) -> float:
        costs = self.env.costs
        return costs.mpirun_launch + self.cluster.n_nodes * costs.per_node_launch

    def _driver(self) -> Generator:
        engine = self.cluster.engine
        tel = engine.telemetry
        costs = self.env.costs
        with tel.span("job", "job.launch"):
            yield engine.timeout(self._launch_cost())
        while True:
            self.attempts += 1
            if tel.enabled:
                tel.instant("job", "job.attempt", attempt=self.attempts)
            world = World(
                self.cluster,
                self.n_total,
                ranks_per_node=self.env.ranks_per_node,
                name=f"{self.app_name}.attempt{self.attempts}",
            )
            imr = IMRStore(world)
            system = (
                FenixSystem(world, n_spares=self.n_spares)
                if self.strategy.fenix
                else None
            )
            main = self.build_main(
                runner=self,
                world=world,
                imr=imr,
                plan=self.plan,
                results=self.results,
                tracker=self.tracker,
            )
            procs = []
            for rank in range(self.n_total):
                procs.append(
                    world.spawn(
                        rank,
                        self._rank_wrapper(world, system, rank, main),
                        failure_plan=self.plan,
                    )
                )
            if system is None:
                self._arm_abort(world)
            yield _all_settled(engine, procs)
            self._collect_accounts(world)
            self._check_errors(world)
            if system is not None:
                # Fenix may have shrunk the job after exhausting spares;
                # success is every member of the FINAL communicator done
                success = len(self.results) >= system.resilient_comm.size
            else:
                success = len(self.results) >= self.n_ranks
            if success:
                self.finish_time = engine.now
                if tel.enabled:
                    tel.instant("job", "job.done", attempts=self.attempts)
                break
            if world.dead and system is None:
                # fail-restart: teardown, wipe node-local state, relaunch
                self.cluster.wipe_scratch()
                with tel.span("job", "job.teardown", attempt=self.attempts):
                    yield engine.timeout(costs.teardown)
                with tel.span("job", "job.relaunch", attempt=self.attempts):
                    yield engine.timeout(self._launch_cost())
                continue
            raise ReproError(
                f"job failed without recovery path: dead={sorted(world.dead)}"
            )

    def _rank_wrapper(
        self, world: World, system: Optional[FenixSystem], rank: int, main
    ) -> Generator:
        costs = self.env.costs
        ctx = world.context(rank)
        # startup: MPI_Init + non-communicative app init (uncharged -> Other)
        yield from ctx.sleep(costs.mpi_init + costs.app_noncomm_init)

        def main_with_init(role, handle):
            if role in (Role.INITIAL, Role.RECOVERED):
                yield from handle.ctx.sleep(costs.app_comm_init)
            result = yield from main(role, handle)
            return result

        if system is not None:
            yield from system.run(ctx, main_with_init)
        else:
            handle = world.comm_world_handle(rank)
            yield from main_with_init(Role.INITIAL, handle)
        yield from ctx.sleep(costs.mpi_finalize)

    def _arm_abort(self, world: World) -> None:
        """Without Fenix, mpirun kills the whole job shortly after any
        rank dies."""
        engine = self.cluster.engine

        def abort_watch():
            yield world.failure_watch()
            yield engine.timeout(0.05)
            for proc in world.procs.values():
                if proc.alive:
                    proc.kill(RankKilledError(-1, "job aborted by launcher"))

        engine.process(abort_watch(), name="mpirun_abort", daemon=True)

    def _collect_accounts(self, world: World) -> None:
        for ctx in world.contexts.values():
            for bucket, value in ctx.account.buckets.items():
                self.totals[bucket] = self.totals.get(bucket, 0.0) + value
            for client in ctx.user.get("veloc.clients", ()):
                for stat, value in client.stats.items():
                    self.data_totals[stat] = (
                        self.data_totals.get(stat, 0.0) + value
                    )

    def _data_path_summary(self) -> Dict[str, float]:
        out = dict(self.data_totals)
        total = out.get("checkpoint_bytes", 0.0)
        dirty = out.get("dirty_bytes", 0.0)
        novel = out.get("novel_bytes", 0.0)
        if total > 0:
            out["dirty_fraction"] = dirty / total
        if dirty > 0:
            out["dedup_ratio"] = 1.0 - novel / dirty
        return out

    def _check_errors(self, world: World) -> None:
        """Post-failure MPI errors are expected; anything else is a bug."""
        unexpected = [
            (rank, exc)
            for rank, exc in world.errors
            if not isinstance(exc, (MPIError, RankKilledError))
        ]
        if unexpected:
            rank, exc = unexpected[0]
            raise exc


def _run_with_replay_audit(
    make_runner: Callable[[FailurePlan, bool, bool], JobRunner],
    plan: FailurePlan,
    determinism_audit: bool,
) -> RunReport:
    """Run a job; with the audit on, replay it and align the traces.

    ``make_runner(plan, observed, capture)`` builds a fresh runner:
    ``observed`` carries the caller's telemetry/monitor/rules/sinks
    (True for the primary run only -- the replay must not double-feed
    the caller's observers), ``capture`` forces trace recording.  The
    failure plan is deep-copied *before* the primary run because live
    plans are stateful; both executions therefore see identical
    injection schedules, which is what makes zero divergences the
    correct expectation for a deterministic simulator.
    """
    if not determinism_audit:
        return make_runner(plan, True, False).run()
    replay_plan = copy.deepcopy(plan)
    primary = make_runner(plan, True, True)
    report = primary.run()
    replay = make_runner(replay_plan, False, True)
    replay.run()
    # lazy import: repro.align consumes traces, the harness only hands
    # them over, so the package import graph stays acyclic
    from repro.align.engine import audit_traces

    report.divergences = audit_traces(primary.trace, replay.trace)
    if report.divergences:
        report.warnings.append(
            f"determinism audit: {len(report.divergences)} divergence(s) "
            f"between the run and its seeded replay (first: "
            f"{report.divergences[0]['summary']}); see repro.align"
        )
    return report


# -- application-specific front doors ---------------------------------------------


def _kr_factory(strategy: StrategySpec, cluster, service, imr, ckpt_interval,
                env: Optional[ExperimentEnv] = None):
    """Build the make_kr callable for one attempt."""
    incremental = env.veloc_incremental if env is not None else True
    dedup = incremental and (env.veloc_dedup if env is not None else True)
    if strategy.checkpointing:
        config = KRConfig(
            backend=strategy.backend,
            filter=every_nth(ckpt_interval),
            recovery_scope=strategy.scope,
            veloc_incremental=incremental,
            veloc_dedup=dedup,
        )
    else:
        config = KRConfig(backend="stdfile", filter=never,
                          veloc_incremental=incremental, veloc_dedup=dedup)

    def make_kr(handle: CommHandle):
        return make_context(
            handle, config, cluster, veloc_service=service, imr_store=imr
        )

    return make_kr


def run_heatdis_job(
    env: ExperimentEnv,
    strategy_name: str,
    n_ranks: int,
    cfg: HeatdisConfig,
    ckpt_interval: int,
    plan: Optional[FailurePlan] = None,
    telemetry: Optional[Telemetry] = None,
    trace_max_records: Optional[int] = None,
    strict_monitor: Optional[bool] = None,
    monitor: Optional[MonitorSuite] = None,
    profile: bool = False,
    rules: "Optional[RuleSet | str]" = None,
    strict_slo: Optional[bool] = None,
    trace_sink: Optional[Any] = None,
    determinism_audit: bool = False,
) -> RunReport:
    """Run one Heatdis job under a strategy; returns the report.

    ``determinism_audit=True`` records the run's trace, replays the
    identical spec, aligns both traces (:mod:`repro.align`), and
    attaches the divergences to ``RunReport.divergences``.
    """
    strategy = STRATEGIES[strategy_name]
    plan = plan if plan is not None else NoFailures()

    def build_main(runner, world, imr, plan, results, tracker):
        if strategy.kr or not strategy.checkpointing:
            make_kr = _kr_factory(
                strategy, runner.cluster, runner.service, imr, ckpt_interval,
                env=runner.env,
            )
            return make_heatdis_main(
                cfg,
                make_kr,
                failure_plan=plan,
                partial_rollback=(strategy.scope == "recovered_only"),
                results=results,
                tracker=tracker,
            )
        # manual integrations (VeloC alone / Fenix+VeloC without KR)
        return make_manual_heatdis_main(
            cfg,
            runner.cluster,
            runner.service,
            ckpt_interval,
            use_fenix=strategy.fenix,
            failure_plan=plan,
            results=results,
            tracker=tracker,
            incremental=env.veloc_incremental,
            dedup=env.veloc_dedup,
        )

    def make_runner(plan_: FailurePlan, observed: bool,
                    capture: bool) -> JobRunner:
        return JobRunner(env, strategy, n_ranks, plan_, build_main,
                         "heatdis",
                         telemetry=telemetry if observed else None,
                         trace_max_records=trace_max_records,
                         strict_monitor=strict_monitor if observed else False,
                         monitor=monitor if observed else None,
                         profile=profile if observed else False,
                         rules=rules if observed else None,
                         strict_slo=strict_slo if observed else False,
                         trace_sink=trace_sink if observed else None,
                         capture_trace=capture)

    return _run_with_replay_audit(make_runner, plan, determinism_audit)


def run_heatdis2d_job(
    env: ExperimentEnv,
    strategy_name: str,
    n_ranks: int,
    cfg: Heatdis2DConfig,
    ckpt_interval: int,
    plan: Optional[FailurePlan] = None,
    telemetry: Optional[Telemetry] = None,
    trace_max_records: Optional[int] = None,
    strict_monitor: Optional[bool] = None,
    monitor: Optional[MonitorSuite] = None,
    profile: bool = False,
    rules: "Optional[RuleSet | str]" = None,
    strict_slo: Optional[bool] = None,
    trace_sink: Optional[Any] = None,
    determinism_audit: bool = False,
) -> RunReport:
    """Run one 2-D-decomposed Heatdis job under a strategy."""
    strategy = STRATEGIES[strategy_name]
    if strategy.checkpointing and not strategy.kr:
        raise ConfigError(
            "the 2-D Heatdis is only integrated through Kokkos Resilience"
        )
    plan = plan if plan is not None else NoFailures()

    def build_main(runner, world, imr, plan, results, tracker):
        make_kr = _kr_factory(
            strategy, runner.cluster, runner.service, imr, ckpt_interval,
            env=runner.env,
        )
        return make_heatdis2d_main(
            cfg, make_kr, failure_plan=plan, results=results, tracker=tracker
        )

    def make_runner(plan_: FailurePlan, observed: bool,
                    capture: bool) -> JobRunner:
        return JobRunner(env, strategy, n_ranks, plan_, build_main,
                         "heatdis2d",
                         telemetry=telemetry if observed else None,
                         trace_max_records=trace_max_records,
                         strict_monitor=strict_monitor if observed else False,
                         monitor=monitor if observed else None,
                         profile=profile if observed else False,
                         rules=rules if observed else None,
                         strict_slo=strict_slo if observed else False,
                         trace_sink=trace_sink if observed else None,
                         capture_trace=capture)

    return _run_with_replay_audit(make_runner, plan, determinism_audit)


def run_minimd_job(
    env: ExperimentEnv,
    strategy_name: str,
    n_ranks: int,
    cfg: MiniMDConfig,
    ckpt_interval: int,
    plan: Optional[FailurePlan] = None,
    telemetry: Optional[Telemetry] = None,
    trace_max_records: Optional[int] = None,
    strict_monitor: Optional[bool] = None,
    monitor: Optional[MonitorSuite] = None,
    profile: bool = False,
    rules: "Optional[RuleSet | str]" = None,
    strict_slo: Optional[bool] = None,
    trace_sink: Optional[Any] = None,
    determinism_audit: bool = False,
) -> RunReport:
    """Run one MiniMD job under a strategy; returns the report."""
    strategy = STRATEGIES[strategy_name]
    if strategy.checkpointing and not strategy.kr:
        raise ConfigError("MiniMD is only integrated through Kokkos Resilience")
    plan = plan if plan is not None else NoFailures()

    def build_main(runner, world, imr, plan, results, tracker):
        make_kr = _kr_factory(
            strategy, runner.cluster, runner.service, imr, ckpt_interval,
            env=runner.env,
        )
        return make_minimd_main(
            cfg, make_kr, failure_plan=plan, results=results, tracker=tracker
        )

    def make_runner(plan_: FailurePlan, observed: bool,
                    capture: bool) -> JobRunner:
        return JobRunner(env, strategy, n_ranks, plan_, build_main,
                         "minimd",
                         telemetry=telemetry if observed else None,
                         trace_max_records=trace_max_records,
                         strict_monitor=strict_monitor if observed else False,
                         monitor=monitor if observed else None,
                         profile=profile if observed else False,
                         rules=rules if observed else None,
                         strict_slo=strict_slo if observed else False,
                         trace_sink=trace_sink if observed else None,
                         capture_trace=capture)

    return _run_with_replay_audit(make_runner, plan, determinism_audit)
