"""Experiment harness: strategies, job runner, time accounting, reports.

This package is the measurement methodology of Section VI-C in code:

- :mod:`repro.harness.strategies` -- the resilience configurations of
  Figure 5 (VeloC alone, KR+VeloC, Fenix+KR+VeloC, Fenix-IMR,
  partial-rollback, and the manual Fenix+VeloC reference);
- :mod:`repro.harness.runner` -- runs one job to completion, including
  the relaunch loop for non-Fenix strategies (teardown + new world on the
  same cluster, PFS contents surviving) and the ``time mpirun``-equivalent
  wall-clock measurement;
- :mod:`repro.harness.recompute` -- high-watermark instrumentation that
  classifies re-executed iterations as "Recompute";
- :mod:`repro.harness.report` -- per-category aggregation with the
  paper's "Other" definition (job wall time minus in-app accounted time).
"""

from repro.harness.interval import daly_interval, expected_runtime, young_interval
from repro.harness.recompute import RecomputeTracker
from repro.harness.strategies import STRATEGIES, StrategySpec
from repro.harness.runner import (
    ExperimentEnv,
    JobCosts,
    RunReport,
    run_heatdis2d_job,
    run_heatdis_job,
    run_minimd_job,
)
from repro.harness.report import format_report_table, summarize_categories

__all__ = [
    "RecomputeTracker",
    "STRATEGIES",
    "StrategySpec",
    "ExperimentEnv",
    "JobCosts",
    "RunReport",
    "run_heatdis_job",
    "run_heatdis2d_job",
    "run_minimd_job",
    "format_report_table",
    "summarize_categories",
    "young_interval",
    "daly_interval",
    "expected_runtime",
]
