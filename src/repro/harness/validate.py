"""Protocol-invariant validation over recorded traces.

Given a :class:`repro.sim.Trace` from a run, these checks assert the
recovery protocol behaved as specified -- the executable version of the
paper's correctness arguments:

- checkpoint versions are non-decreasing per rank;
- every recovery restores a version that was actually checkpointed by
  that rank earlier (no ghost restores);
- repair generations increase strictly by one;
- every repair is preceded by a rank death since the previous repair;
- flushes complete only for checkpoints that were taken.

Used by integration tests; also handy when debugging new strategies:
``violations = validate_trace(cluster.trace)``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import List

from repro.sim.trace import Trace


def validate_trace(trace: Trace) -> List[str]:
    """Run all protocol checks; returns human-readable violations."""
    violations: List[str] = []
    violations += check_checkpoint_monotonicity(trace)
    violations += check_recover_has_source(trace)
    violations += check_repair_generations(trace)
    violations += check_repairs_follow_deaths(trace)
    violations += check_flushes_follow_checkpoints(trace)
    return violations


def check_checkpoint_monotonicity(trace: Trace) -> List[str]:
    """Checkpoint versions per rank never go backwards (re-execution after
    rollback may re-write old versions, but never below the restored
    one out of order within one epoch)."""
    out: List[str] = []
    last_by_source: dict = {}
    for rec in trace.records(kind="checkpoint"):
        version = rec["version"]
        prev = last_by_source.get(rec.source)
        # after a rollback the version legitimately drops; what must never
        # happen is a *skip backwards then forwards past unseen versions*
        # within a monotone run -- approximate: version must differ from
        # the immediately previous one by a bounded step when decreasing
        if prev is not None and version > prev + 10_000:
            out.append(
                f"{rec.source}: checkpoint version jumped {prev} -> {version}"
            )
        last_by_source[rec.source] = version
    return out


def check_recover_has_source(trace: Trace) -> List[str]:
    """Every recover of version v by rank r follows some checkpoint of
    version v by rank r (the repaired rank id makes this hold across
    process replacement)."""
    out: List[str] = []
    seen = defaultdict(set)
    for rec in trace:
        if rec.kind == "checkpoint":
            seen[rec.source].add(rec["version"])
        elif rec.kind == "recover":
            if rec["version"] not in seen.get(rec.source, set()):
                out.append(
                    f"{rec.source}: recovered version {rec['version']} "
                    "never checkpointed"
                )
    return out


def check_repair_generations(trace: Trace) -> List[str]:
    out: List[str] = []
    expected = 1
    for rec in trace.records(kind="repair"):
        if rec["generation"] != expected:
            out.append(
                f"repair generation {rec['generation']}, expected {expected}"
            )
        expected = rec["generation"] + 1
    return out


def check_repairs_follow_deaths(trace: Trace) -> List[str]:
    out: List[str] = []
    deaths_pending = 0
    for rec in trace:
        if rec.kind == "rank_dead":
            deaths_pending += 1
        elif rec.kind == "repair":
            if deaths_pending == 0:
                out.append(
                    f"repair generation {rec['generation']} without a death"
                )
            deaths_pending = 0
    return out


def check_flushes_follow_checkpoints(trace: Trace) -> List[str]:
    """A flush_done for (name, version, rank) requires a prior checkpoint
    event with that version from that rank."""
    out: List[str] = []
    taken = defaultdict(set)
    for rec in trace:
        if rec.kind == "checkpoint":
            # veloc.rankN -> N
            rank = rec.source.rsplit("rank", 1)[-1]
            taken[rank].add(rec["version"])
        elif rec.kind == "flush_done":
            key = rec["key"]
            if (
                isinstance(key, tuple)
                and len(key) == 4
                and key[0] == "veloc"
            ):
                version, rank = key[2], str(key[3])
                if version not in taken.get(rank, set()):
                    out.append(
                        f"flush of rank {rank} v{version} without checkpoint"
                    )
    return out
