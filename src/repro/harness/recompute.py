"""Recompute instrumentation.

"The bulk of the cost of recovery is in recomputing the data lost since
the last checkpoint" (Section VI-D2).  The tracker keeps, per communicator
slot, the highest iteration whose region has *ever* executed in this
experiment -- across Fenix re-entries and across whole job relaunches --
so re-executed iterations can be charged to the ``recompute`` bucket.

This is measurement instrumentation, not application state: it lives in
the harness, outside any simulated process, exactly like the paper's
external ``time`` measurements.
"""

from __future__ import annotations

from typing import Dict


class RecomputeTracker:
    """High-watermark of executed iterations per communicator slot."""

    def __init__(self) -> None:
        self._watermark: Dict[int, int] = {}

    def is_recompute(self, slot: int, iteration: int) -> bool:
        """Has this slot already executed ``iteration`` once before?"""
        return iteration <= self._watermark.get(slot, -1)

    def advance(self, slot: int, iteration: int) -> None:
        current = self._watermark.get(slot, -1)
        if iteration > current:
            self._watermark[slot] = iteration

    def watermark(self, slot: int) -> int:
        return self._watermark.get(slot, -1)

    def reset(self) -> None:
        self._watermark.clear()
