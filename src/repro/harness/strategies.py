"""The resilience configurations evaluated in the paper.

Each :class:`StrategySpec` names one stacked-bar column of Figure 5 /
Figure 6:

================  =======  ====  ==========  =====================================
name              process  c-f   data        paper label
================  =======  ====  ==========  =====================================
none              --       --    --          reference (no resilience)
veloc             relaunch man.  VeloC       "VeloC alone"
kr_veloc          relaunch KR    VeloC       "Kokkos Resilience" (without Fenix)
fenix_veloc       Fenix    man.  VeloC       "Fenix with VeloC, no Kokkos Res."
fenix_kr_veloc    Fenix    KR    VeloC       the paper's integrated system
fenix_kr_imr      Fenix    KR    Fenix IMR   "IMR" buddy checkpointing
fenix_kr_partial  Fenix    KR    VeloC       partial rollback (convergence app)
================  =======  ====  ==========  =====================================

"relaunch" means failures abort the job and the harness restarts it
(classic fail-restart); "man." means hand-written checkpoint management
(:mod:`repro.apps.heatdis_manual`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigError


@dataclass(frozen=True)
class StrategySpec:
    """One resilience configuration."""

    name: str
    #: Fenix process recovery (False -> relaunch the job on failure)
    fenix: bool
    #: Kokkos Resilience manages C/R (False -> manual integration)
    kr: bool
    #: data backend: "veloc", "fenix_imr", or "none"
    backend: str
    #: KR recovery scope ("all" or "recovered_only")
    scope: str = "all"

    def __post_init__(self) -> None:
        if self.backend not in ("veloc", "fenix_imr", "none"):
            raise ConfigError(f"unknown backend {self.backend!r}")
        if self.backend == "fenix_imr" and not self.fenix:
            raise ConfigError("IMR requires Fenix (it lives in rank memory)")
        if not self.kr and self.backend == "fenix_imr":
            raise ConfigError("manual IMR integration is not implemented")

    @property
    def checkpointing(self) -> bool:
        return self.backend != "none"

    @property
    def label(self) -> str:
        return {
            "none": "No resilience",
            "veloc": "VeloC",
            "kr_veloc": "Kokkos Resilience",
            "fenix_veloc": "Fenix + VeloC",
            "fenix_kr_veloc": "Fenix + KR + VeloC",
            "fenix_kr_imr": "Fenix IMR",
            "fenix_kr_partial": "Partial rollback",
        }.get(self.name, self.name)


STRATEGIES = {
    "none": StrategySpec("none", fenix=False, kr=False, backend="none"),
    "veloc": StrategySpec("veloc", fenix=False, kr=False, backend="veloc"),
    "kr_veloc": StrategySpec("kr_veloc", fenix=False, kr=True, backend="veloc"),
    "fenix_veloc": StrategySpec(
        "fenix_veloc", fenix=True, kr=False, backend="veloc"
    ),
    "fenix_kr_veloc": StrategySpec(
        "fenix_kr_veloc", fenix=True, kr=True, backend="veloc"
    ),
    "fenix_kr_imr": StrategySpec(
        "fenix_kr_imr", fenix=True, kr=True, backend="fenix_imr"
    ),
    "fenix_kr_partial": StrategySpec(
        "fenix_kr_partial",
        fenix=True,
        kr=True,
        backend="veloc",
        scope="recovered_only",
    ),
}
