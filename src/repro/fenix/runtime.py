"""Fenix runtime: spare management, repair protocol, the run loop.

One :class:`FenixSystem` exists per MPI world (per job).  Every world rank
executes :meth:`FenixSystem.run`, which plays the part of the
``Fenix_Init`` call in Figure 2 of the paper:

- ranks below ``world.n_ranks - n_spares`` become *active* members of the
  resilient communicator and run the application main;
- the rest are *spares* that block inside run() until a failure consumes
  them or the job completes.

On failure, survivors long-jump back into run(), spares wake on the world
failure event, and everyone rendezvouses at the **repair gate**.  The
repair builds a same-size communicator with spares substituted in-place
for the dead (keeping rank ids stable for checkpoint keys), assigns roles,
invokes registered callbacks, and re-enters the application main.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.fenix.errors import FenixLongJump, SpareExhaustionError
from repro.fenix.handle import FenixCommHandle
from repro.fenix.roles import Role
from repro.mpi.comm import Communicator
from repro.mpi.world import RankContext, World
from repro.sim.engine import Event
from repro.util.errors import ConfigError
from repro.util.timing import RESILIENCE_INIT

#: repair-gate policies when spares run out
POLICY_SHRINK = "shrink"
POLICY_ABORT = "abort"


@dataclass
class RepairResult:
    """Outcome of one repair generation, delivered to every alive rank."""

    generation: int
    comm: Optional[Communicator]
    #: world_rank -> Role for ranks active in the new communicator
    roles: Dict[int, "Any"]
    aborted: bool = False


class WorldGate:
    """Failure-aware rendezvous over a dynamic set of world ranks.

    Like :class:`repro.mpi.comm.CollectiveGate` but world-scoped: Fenix's
    repair must gather survivors *and* spares, which no single
    communicator contains.  ``expected`` returns the set of ranks whose
    arrival is required; it is re-evaluated on every arrival and on every
    rank death, so the gate cannot hang on a corpse.
    """

    def __init__(
        self,
        world: World,
        name: str,
        finalize: Callable[[Dict[int, Any]], Any],
        expected: Callable[[], "set[int]"],
    ):
        self.world = world
        self.name = name
        self._finalize = finalize
        self._expected = expected
        self._contributions: Dict[int, Any] = {}
        self._waiters: Dict[int, Event] = {}
        world.add_death_listener(lambda _rank: self.recheck())

    def arrive(self, world_rank: int, value: Any = None) -> Event:
        ev = self.world.engine.event(name=f"{self.name}:{world_rank}")
        self._contributions[world_rank] = value
        self._waiters[world_rank] = ev
        self.world.trace.emit(
            self.world.engine.now, "fenix", "gate_arrive",
            gate=self.name, rank=world_rank,
        )
        self.recheck()
        return ev

    def recheck(self) -> None:
        if not self._waiters:
            return
        expected = self._expected()
        if expected and not expected.issubset(self._contributions.keys()):
            return
        result = self._finalize(dict(self._contributions))
        waiters, self._waiters = self._waiters, {}
        self._contributions = {}
        for ev in waiters.values():
            if not ev.triggered:
                ev.succeed(result)


class FenixSystem:
    """Shared Fenix state for one world."""

    def __init__(
        self,
        world: World,
        n_spares: int,
        spare_policy: str = POLICY_SHRINK,
        init_cost: float = 1e-4,
        n_active: Optional[int] = None,
    ) -> None:
        if n_spares < 0 or n_spares >= world.n_ranks:
            raise ConfigError(
                f"n_spares={n_spares} invalid for a {world.n_ranks}-rank world"
            )
        if spare_policy not in (POLICY_SHRINK, POLICY_ABORT):
            raise ConfigError(f"unknown spare policy {spare_policy!r}")
        self.world = world
        self.n_spares = n_spares
        self.spare_policy = spare_policy
        #: modelled cost of Fenix_Init (communicator dup + handler setup)
        self.init_cost = init_cost
        if n_active is None:
            n_active = world.n_ranks - n_spares
        if n_active < 1 or n_active + n_spares > world.n_ranks:
            raise ConfigError(
                f"n_active={n_active} + n_spares={n_spares} does not fit "
                f"a {world.n_ranks}-rank world"
            )
        self.spare_pool: List[int] = list(range(n_active, n_active + n_spares))
        #: world ranks participating in the protocol.  Ranks beyond the
        #: initial active+spare set are *dynamic spares* (the future-work
        #: "growing the total number of ranks dynamically"): they join the
        #: pool when their process eventually enters run(), and repairs do
        #: not wait for them before that.
        self.registered: set = set(range(n_active + n_spares))
        self.generation = 0
        self.resilient_comm: Communicator = world.create_comm(
            list(range(n_active)), name="fenix.resilient.g0"
        )
        #: ranks that have permanently left the protocol (finalized active
        #: ranks, released spares) and must not be waited for at gates
        self.retired: set = set()
        self._repair_gate = WorldGate(
            world,
            "fenix.repair",
            self._finalize_repair,
            expected=lambda: (
                set(world.alive_ranks()) & self.registered
            ) - self.retired,
        )
        self._callbacks: List[Callable[[Any, RankContext], None]] = []
        self.detections: List[Dict[str, Any]] = []
        self._finalize_arrived: set = set()
        self._finalize_waiters: Dict[int, Event] = {}
        # a death during finalize must re-evaluate the completion set
        world.add_death_listener(lambda _rank: self._recheck_finalize())

    # -- public configuration ------------------------------------------------

    def register_callback(self, fn: Callable[[Any, RankContext], None]) -> None:
        """Register an application recovery callback, invoked on every rank
        after each repair, before the application main is re-entered
        (Fenix_Callback_register analogue)."""
        self._callbacks.append(fn)

    # -- error-handler hook ----------------------------------------------------

    def note_detection(self, ctx: RankContext, exc: BaseException) -> None:
        """Record that ``ctx`` detected a failure (diagnostics/tests)."""
        self.detections.append(
            {
                "time": self.world.engine.now,
                "rank": ctx.rank,
                "error": type(exc).__name__,
                "generation": self.generation,
            }
        )
        self.world.trace.emit(
            self.world.engine.now, "fenix", "detect", rank=ctx.rank,
            error=type(exc).__name__,
        )
        tel = self.world.engine.telemetry
        if tel.enabled:
            tel.instant(f"rank{ctx.rank}", "fenix.detect",
                        error=type(exc).__name__, generation=self.generation)
            tel.rank_metrics(ctx.rank).inc("fenix.detections")

    # -- repair ------------------------------------------------------------------

    def _finalize_repair(self, contributions: Dict[int, Any]) -> RepairResult:
        """Build the repaired communicator (runs once per generation, when
        every alive rank has reached the gate)."""
        world = self.world
        tel = world.engine.telemetry
        old = self.resilient_comm
        if not old.revoked:
            old.revoke()
        new_members: List[int] = []
        roles: Dict[int, Role] = {}
        available = [s for s in self.spare_pool if world.is_alive(s)]
        exhausted = False
        for w in old.members:
            if world.is_alive(w):
                new_members.append(w)
                roles[w] = Role.SURVIVOR
            elif available:
                replacement = available.pop(0)
                self.spare_pool.remove(replacement)
                new_members.append(replacement)
                roles[replacement] = Role.RECOVERED
                world.trace.emit(
                    world.engine.now, "fenix", "spare_activated",
                    spare=replacement, replaces=w,
                    generation=self.generation + 1,
                )
                if tel.enabled:
                    tel.instant(f"rank{replacement}", "fenix.spare_activated",
                                replaces=w, generation=self.generation + 1)
            else:
                exhausted = True  # slot dropped (shrink) or job aborts
        self.generation += 1
        dead_members = [w for w in old.members if not world.is_alive(w)]
        # the shrink step: the surviving membership is now decided
        world.trace.emit(
            world.engine.now, "fenix", "shrink",
            generation=self.generation, comm=old.name,
            survivors=list(new_members), dead=dead_members,
        )
        if tel.enabled:
            tel.instant("fenix", "fenix.shrink", generation=self.generation,
                        survivors=len(new_members),
                        dead=dead_members)
            tel.set_gauge("fenix.spare_pool_depth",
                          len([s for s in self.spare_pool if world.is_alive(s)]))
        if exhausted and self.spare_policy == POLICY_ABORT:
            world.trace.emit(world.engine.now, "fenix", "abort",
                             generation=self.generation)
            if tel.enabled:
                tel.instant("fenix", "fenix.abort", generation=self.generation)
            return RepairResult(self.generation, None, {}, aborted=True)
        comm = world.create_comm(
            new_members, name=f"fenix.resilient.g{self.generation}"
        )
        self.resilient_comm = comm
        world.trace.emit(
            world.engine.now,
            "fenix",
            "repair",
            generation=self.generation,
            size=comm.size,
            comm=comm.name,
            old_comm=old.name,
            members=list(new_members),
            contributors=sorted(contributions),
            recovered=[w for w, r in roles.items() if r is Role.RECOVERED],
        )
        # role assignment: one record per member of the new communicator
        for w in new_members:
            world.trace.emit(
                world.engine.now, "fenix", "role",
                rank=w, role=roles[w].name, generation=self.generation,
            )
        # the agreement: every alive rank observes the same repair result
        world.trace.emit(
            world.engine.now, "fenix", "agree",
            generation=self.generation, comm=comm.name, size=comm.size,
        )
        if tel.enabled:
            tel.instant("fenix", "fenix.agree", generation=self.generation,
                        size=comm.size)
            tel.inc("fenix.repairs")
        return RepairResult(self.generation, comm, roles)

    # -- the run loop (Fenix_Init + long-jump target) ------------------------------

    def run(
        self,
        ctx: RankContext,
        main: Callable[..., Generator],
    ) -> Generator[Event, Any, Any]:
        """Execute ``main(role, handle)`` under Fenix protection.

        This generator is the whole lifetime of one rank inside the Fenix
        protocol: initialization, the application main, every recovery
        re-entry, and finalization.  Returns ``main``'s return value for
        active ranks, ``None`` for spares that were never consumed.
        """
        world = self.world
        engine = world.engine
        tel = engine.telemetry
        ctx.user["fenix_system"] = self
        # Fenix_Init cost (duplicating communicators, installing handlers)
        with tel.span(f"rank{ctx.rank}", "fenix.init"):
            yield engine.timeout(self.init_cost)
        ctx.account.charge(RESILIENCE_INIT, self.init_cost)

        role: Optional[Role]
        if self.resilient_comm.comm_rank(ctx.rank) is not None:
            role = Role.INITIAL
        else:
            role = Role.SPARE
            if ctx.rank not in self.spare_pool and ctx.rank not in self.registered:
                # a dynamically added spare joins the pool on arrival
                self.spare_pool.append(ctx.rank)
        self.registered.add(ctx.rank)
        world.trace.emit(
            engine.now, "fenix", "role",
            rank=ctx.rank, role=role.name, generation=self.generation,
        )

        while True:
            if role is Role.SPARE:
                # Block in Fenix_Init until a failure consumes us or the
                # job completes (Figure 2's spare-rank behaviour).  A
                # failure may already be pending -- e.g. a rank that died
                # during job startup, before this spare began waiting --
                # in which case we go straight to the repair rendezvous.
                already_failed = any(
                    not world.is_alive(w) for w in self.resilient_comm.members
                )
                if not already_failed:
                    idx, _val = yield engine.any_of(
                        [world.failure_watch(), self.world.job_done]
                    )
                    if idx == 1:
                        self.retired.add(ctx.rank)
                        return None  # job finished; spare exits cleanly
                    if all(
                        world.is_alive(w)
                        for w in self.resilient_comm.members
                    ):
                        # the death was outside the resilient comm (e.g.
                        # a fellow spare): no repair will happen -- no
                        # survivor revokes the comm -- so going to the
                        # gate would hang forever.  Resume waiting.
                        continue
                with tel.span(f"rank{ctx.rank}", "fenix.repair",
                              generation=self.generation, via="spare"):
                    repair: RepairResult = yield self._repair_gate.arrive(ctx.rank)
                if repair.aborted:
                    raise SpareExhaustionError("job aborted: spares exhausted")
                new_role = repair.roles.get(ctx.rank)
                if new_role is None:
                    continue  # still spare; wait for the next failure
                role = new_role
                if tel.enabled:
                    tel.instant(f"rank{ctx.rank}", "fenix.role",
                                role=role.name, generation=repair.generation)
            # -- active rank: run the application main ----------------------
            handle = FenixCommHandle(self.resilient_comm, ctx)
            for cb in self._callbacks:
                cb(role, ctx)
            try:
                result = yield from main(role, handle)
            except FenixLongJump:
                with tel.span(f"rank{ctx.rank}", "fenix.repair",
                              generation=self.generation, via="longjump"):
                    repair = yield self._repair_gate.arrive(ctx.rank)
                if repair.aborted:
                    raise SpareExhaustionError("job aborted: spares exhausted")
                new_role = repair.roles.get(ctx.rank)
                if new_role is None:  # shrunk away (cannot happen to survivors)
                    return None
                role = new_role
                if tel.enabled:
                    tel.instant(f"rank{ctx.rank}", "fenix.role",
                                role=role.name, generation=repair.generation)
                continue
            # -- normal completion: Fenix_Finalize ---------------------------------
            yield from self._finalize(ctx)
            return result

    def _finalize(self, ctx: RankContext) -> Generator[Event, Any, None]:
        """Fenix_Finalize: rendezvous of the *active* members (spares are
        not participants -- they are released via the job-done signal when
        the last active rank arrives)."""
        self._finalize_arrived.add(ctx.rank)
        self.retired.add(ctx.rank)
        # retirement record: monitors must stop expecting this rank at
        # future repair-gate rendezvous
        self.world.trace.emit(
            self.world.engine.now, "fenix", "finalize_arrive", rank=ctx.rank,
        )
        if self._recheck_finalize():
            return
        ev = self.world.engine.event(name=f"fenix.finalize:{ctx.rank}")
        self._finalize_waiters[ctx.rank] = ev
        yield ev

    def _recheck_finalize(self) -> bool:
        """Complete the finalize rendezvous if every alive active member
        has arrived (re-run on rank deaths so a mid-finalize failure
        cannot hang the others)."""
        if not self._finalize_arrived:
            return False
        active_alive = {
            w for w in self.resilient_comm.members if self.world.is_alive(w)
        }
        if not active_alive.issubset(self._finalize_arrived):
            return False
        self.world.signal_job_done()
        waiters, self._finalize_waiters = self._finalize_waiters, {}
        for ev in waiters.values():
            if not ev.triggered:
                ev.succeed(None)
        return True

    def spawn_all(
        self,
        main: Callable[..., Generator],
        failure_plan: Optional[Any] = None,
    ) -> None:
        """Convenience: spawn run(main) on every world rank."""
        for r in range(self.world.n_ranks):
            ctx = self.world.context(r)
            self.world.spawn(
                r, self.run(ctx, main), failure_plan=failure_plan,
                name=f"fenix:rank{r}",
            )
