"""Fenix rank roles (the paper's Figure 2 rank states)."""

from __future__ import annotations

import enum


class Role(enum.Enum):
    """What a rank is, as reported by Fenix initialization.

    - ``INITIAL``: first entry, before any failure -- run communicative
      initialization from scratch.
    - ``SURVIVOR``: re-entered after a failure elsewhere; local data is
      intact, the communicator has been repaired.
    - ``RECOVERED``: a former spare now occupying a failed rank's slot;
      has *no* application data and must restore from a checkpoint.
    - ``SPARE``: held in reserve inside Fenix init (never seen by
      application code).
    """

    INITIAL = "initial"
    SURVIVOR = "survivor"
    RECOVERED = "recovered"
    SPARE = "spare"

    @property
    def needs_full_init(self) -> bool:
        """Only initial ranks run the communicative init path (Figure 2)."""
        return self is Role.INITIAL

    @property
    def needs_data_recovery(self) -> bool:
        """Recovered ranks must restore data from a checkpoint."""
        return self is Role.RECOVERED
