"""Fenix data groups: the Fenix_Data_* API with commit consistency.

Fenix's data interface is richer than a bare buddy store: members are
written into a *staging* snapshot (``Fenix_Data_member_store``) and become
restorable only when the group is committed (``Fenix_Data_commit``), which
promotes every staged member atomically to a new consistent version.  If
the owner dies between store and commit, the staged data -- including the
copy already sitting at the buddy -- is *not* restorable, exactly the
transactional behaviour that lets applications reason about which
iteration a restart will resume from.

:class:`DataGroup` implements this on top of
:class:`~repro.fenix.imr.IMRStore`: stores pay the local copy plus the
synchronous buddy transfer; commit is cheap (one promotion pass plus a
small marker message to the buddy).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro.fenix.errors import FenixError
from repro.fenix.imr import IMRStore, buddy_rank
from repro.kokkos.view import View
from repro.mpi.handle import CommHandle
from repro.sim.engine import Event
from repro.util.timing import CHECKPOINT_FUNCTION

#: key marker for uncommitted snapshots
_STAGED = "staged"


class DataGroup:
    """One Fenix data group bound to a communicator."""

    def __init__(
        self,
        store: IMRStore,
        comm: CommHandle,
        group_id: int,
        keep_versions: int = 2,
    ) -> None:
        self.store = store
        self.comm = comm
        self.group_id = int(group_id)
        self.keep_versions = keep_versions
        self._members: Dict[int, View] = {}
        self._next_version = 0

    # -- membership ---------------------------------------------------------

    def member_create(self, member_id: int, view: View) -> None:
        """Fenix_Data_member_create: register a member buffer."""
        if member_id in self._members and self._members[member_id] is not view:
            raise FenixError(
                f"group {self.group_id}: member {member_id} already bound"
            )
        self._members[member_id] = view

    @property
    def members(self) -> List[int]:
        return sorted(self._members)

    def _key(self, member_id: int, version: Any) -> Tuple:
        return ((self.group_id, member_id), version, self.comm.rank)

    def _buddy_world(self) -> Optional[int]:
        partner = buddy_rank(self.comm.rank, self.comm.size)
        if partner == self.comm.rank:
            return None
        return self.comm.comm.world_rank(partner)

    # -- store / commit -------------------------------------------------------

    def member_store(
        self, member_id: int, view: Optional[View] = None
    ) -> Generator[Event, Any, None]:
        """Fenix_Data_member_store: snapshot into the staging area.

        Pays the local memory copy and the synchronous buddy transfer;
        the snapshot is NOT restorable until :meth:`commit`.
        """
        if view is not None:
            self.member_create(member_id, view)
        target = self._members.get(member_id)
        if target is None:
            raise FenixError(f"group {self.group_id}: unknown member {member_id}")
        ctx = self.comm.ctx
        engine = ctx.engine
        t0 = engine.now
        data = target.copy_data()
        nbytes = target.modeled_nbytes
        key = self._key(member_id, _STAGED)
        yield engine.timeout(ctx.node.memcpy_time(nbytes))
        self.store._slot(ctx.rank)[key] = (data, nbytes)
        buddy_world = self._buddy_world()
        if buddy_world is not None:
            buddy_node = self.store.world.node_of_rank(buddy_world)
            yield from self.store.world.network.transfer(
                ctx.node, buddy_node, nbytes
            )
            import numpy as np

            self.store._slot(buddy_world)[key] = (np.copy(data), nbytes)
        ctx.account.charge(CHECKPOINT_FUNCTION, engine.now - t0)

    def commit(self) -> Generator[Event, Any, int]:
        """Fenix_Data_commit: atomically promote every staged member to a
        new consistent version; returns the version (time stamp)."""
        ctx = self.comm.ctx
        engine = ctx.engine
        t0 = engine.now
        version = self._next_version
        self._next_version += 1
        slots = [self.store._slot(ctx.rank)]
        buddy_world = self._buddy_world()
        if buddy_world is not None:
            # the commit marker is one small message to the buddy
            buddy_node = self.store.world.node_of_rank(buddy_world)
            yield from self.store.world.network.transfer(
                ctx.node, buddy_node, 64.0
            )
            slots.append(self.store._slot(buddy_world))
        committed_any = False
        for slot in slots:
            for member_id in list(self._members):
                staged_key = self._key(member_id, _STAGED)
                if staged_key in slot:
                    slot[self._key(member_id, version)] = slot.pop(staged_key)
                    committed_any = True
                else:
                    # carry the member's previous committed snapshot
                    # forward so every commit is a complete version
                    prev = self._latest_in_slot(slot, member_id, version)
                    if prev is not None:
                        slot[self._key(member_id, version)] = prev
        if not committed_any:
            raise FenixError(
                f"group {self.group_id}: commit with nothing staged"
            )
        self._gc(version)
        ctx.account.charge(CHECKPOINT_FUNCTION, engine.now - t0)
        return version

    def _latest_in_slot(
        self, slot: Dict, member_id: int, before: int
    ) -> Optional[Tuple[Any, float]]:
        best: Optional[int] = None
        for (gm, v, owner) in slot:
            if (
                isinstance(gm, tuple)
                and gm == (self.group_id, member_id)
                and owner == self.comm.rank
                and isinstance(v, int)
                and v < before
                and (best is None or v > best)
            ):
                best = v
        if best is None:
            return None
        return slot[self._key(member_id, best)]

    def _gc(self, latest: int) -> None:
        cutoff = latest - self.keep_versions + 1
        for world_rank in (self.comm.ctx.rank, self._buddy_world()):
            if world_rank is None:
                continue
            slot = self.store._slot(world_rank)
            stale = [
                k
                for k in slot
                if isinstance(k[0], tuple)
                and k[0][0] == self.group_id
                and k[2] == self.comm.rank
                and isinstance(k[1], int)
                and k[1] < cutoff
            ]
            for k in stale:
                del slot[k]

    # -- queries / restore --------------------------------------------------------

    def committed_versions(self) -> Set[int]:
        """Versions restorable by this rank: every member present, locally
        or at a live buddy, committed only.

        A freshly created group (e.g. on a recovered replacement process)
        has no member registrations yet; membership is then inferred from
        the stored keys, mirroring Fenix's recovery-side metadata."""
        ctx = self.comm.ctx
        sources = [self.store._memory.get(ctx.rank, {})]
        buddy_world = self._buddy_world()
        if buddy_world is not None and self.store.world.is_alive(buddy_world):
            sources.append(self.store._memory.get(buddy_world, {}))
        member_ids = set(self._members)
        if not member_ids:
            for mem in sources:
                for (gm, version, owner) in mem:
                    if (
                        isinstance(gm, tuple)
                        and gm[0] == self.group_id
                        and owner == self.comm.rank
                        and isinstance(version, int)
                    ):
                        member_ids.add(gm[1])
        per_member: Dict[int, Set[int]] = {m: set() for m in member_ids}
        for mem in sources:
            for (gm, version, owner) in mem:
                if not isinstance(gm, tuple) or gm[0] != self.group_id:
                    continue
                if owner != self.comm.rank or not isinstance(version, int):
                    continue
                if gm[1] in per_member:
                    per_member[gm[1]].add(version)
        if not per_member:
            return set()
        common: Optional[Set[int]] = None
        for versions in per_member.values():
            common = versions if common is None else (common & versions)
        return common or set()

    def member_restore(
        self, member_id: int, version: int, view: Optional[View] = None
    ) -> Generator[Event, Any, str]:
        """Fenix_Data_member_restore for a committed version."""
        if view is not None:
            self.member_create(member_id, view)
        target = self._members.get(member_id)
        if target is None:
            raise FenixError(f"group {self.group_id}: unknown member {member_id}")
        ctx = self.comm.ctx
        engine = ctx.engine
        key = self._key(member_id, int(version))
        own = self.store._memory.get(ctx.rank, {})
        from repro.util.timing import DATA_RECOVERY

        t0 = engine.now
        if key in own:
            data, nbytes = own[key]
            yield engine.timeout(ctx.node.memcpy_time(nbytes))
            tier = "local"
        else:
            buddy_world = self._buddy_world()
            buddy_mem = (
                self.store._memory.get(buddy_world, {})
                if buddy_world is not None
                else {}
            )
            if key not in buddy_mem:
                raise FenixError(
                    f"group {self.group_id}: member {member_id} v{version} "
                    "not restorable"
                )
            data, nbytes = buddy_mem[key]
            buddy_node = self.store.world.node_of_rank(buddy_world)
            yield from self.store.world.network.transfer(
                buddy_node, ctx.node, nbytes
            )
            import numpy as np

            self.store._slot(ctx.rank)[key] = (np.copy(data), nbytes)
            tier = "buddy"
        target.load_data(data)
        ctx.account.charge(DATA_RECOVERY, engine.now - t0)
        return tier
