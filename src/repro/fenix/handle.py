"""Fenix-managed communicator handle (the resilient communicator).

Application code using Fenix swaps ``MPI_COMM_WORLD`` for this handle
(the paper, Section VI-E: "simply swap references to MPI_COMM_WORLD to
the resilient communicator").  It behaves exactly like a normal
:class:`~repro.mpi.handle.CommHandle` until an operation reports a process
failure or a revocation; then the attached error handler:

1. revokes the resilient communicator, so every other rank's pending or
   future operation also errors (failure propagation), and
2. raises :class:`~repro.fenix.errors.FenixLongJump`, unwinding the
   application stack back to :meth:`FenixSystem.run` -- the single
   control-flow exit point for failures.
"""

from __future__ import annotations

from repro.fenix.errors import FenixLongJump
from repro.mpi.errors import MPIError, ProcFailedError, RevokedError
from repro.mpi.handle import CommHandle


class FenixCommHandle(CommHandle):
    """A CommHandle whose error handler enters Fenix recovery.

    The owning :class:`~repro.fenix.runtime.FenixSystem` is read from the
    rank context (``ctx.user['fenix_system']``), which keeps this class
    constructor-compatible with :meth:`CommHandle.rebind`.
    """

    @property
    def system(self):
        return self.ctx.user["fenix_system"]

    def _on_mpi_error(self, exc: MPIError) -> None:
        if isinstance(exc, (ProcFailedError, RevokedError)):
            system = self.system
            self.comm.revoke()
            system.note_detection(self.ctx, exc)
            raise FenixLongJump(system.generation)
        # anything else (abort, misuse) propagates as a normal error
