"""Fenix error and control-flow exception classes."""

from __future__ import annotations

from repro.util.errors import ReproError


class FenixError(ReproError):
    """Fenix-level failure (misconfiguration, unrecoverable state)."""


class SpareExhaustionError(FenixError):
    """More ranks failed than spares remain, under the ``abort`` policy."""


class FenixLongJump(BaseException):
    """The long-jump back to Fenix initialization after a failure.

    Derives from ``BaseException`` so ordinary ``except Exception`` blocks
    in application code cannot accidentally swallow the recovery jump --
    the same reason real Fenix uses ``longjmp`` rather than error codes.
    Raised by :class:`repro.fenix.handle.FenixCommHandle`'s error handler
    and caught only by :meth:`repro.fenix.runtime.FenixSystem.run`.
    """

    def __init__(self, generation: int) -> None:
        super().__init__(f"fenix long-jump (generation {generation})")
        self.generation = generation
