"""Fenix In-Memory Redundancy (IMR) data store, buddy-rank policy.

The paper (Section V-A): "ranks form pairs and store each other's
checkpointed data. Local copies of checkpoints are also kept, increasing
memory use in exchange for quick, local recovery on surviving ranks."

Cost structure -- the crux of the Figure 5 IMR-vs-VeloC comparison:

- ``store`` is *synchronous*: the caller pays a local memory copy plus a
  network transfer to its buddy inside the checkpoint function, so the
  checkpoint-function cost scales directly with the checkpoint size;
- traffic is pairwise over ordinary NICs, so aggregate bandwidth grows
  with every rank added ("each rank adds both a producer and a consumer"),
  unlike the fixed PFS servers VeloC flushes through;
- restore is a local memcpy for survivors and a single buddy fetch for a
  recovered rank.

Data lives in per-*process* memory (keyed by world rank): when a rank dies
its copies die with it, and a replacement spare starts empty -- which is
why only the buddy copy saves the day, and why losing both members of a
pair between checkpoints loses the data (single redundancy, as in Fenix).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Set, Tuple

import numpy as np

from repro.fenix.errors import FenixError
from repro.kokkos.view import View
from repro.mpi.handle import CommHandle
from repro.sim.engine import Event
from repro.util.timing import CHECKPOINT_FUNCTION, DATA_RECOVERY


def buddy_rank(rank: int, size: int) -> int:
    """The buddy-pair partner: XOR pairing, with the odd rank out (when
    ``size`` is odd) paired asymmetrically with rank 0."""
    if size <= 1:
        return rank
    partner = rank ^ 1
    if partner >= size:  # last rank of an odd-size communicator
        return 0
    return partner


class IMRStore:
    """World-level IMR memory, shared by all ranks of one Fenix system.

    Keys are communicator-local ranks (stable under Fenix's in-place
    repair), storage slots are world ranks (physical memory that dies with
    its process).
    """

    def __init__(self, world: Any, keep_versions: int = 2) -> None:
        self.world = world
        self.keep_versions = keep_versions
        #: world_rank -> {(member_id, version, owner_comm_rank): (data, nbytes)}
        self._memory: Dict[int, Dict[Tuple, Tuple[Any, float]]] = {}
        world.add_death_listener(self._on_death)

    def _on_death(self, world_rank: int) -> None:
        """Process death loses its in-memory copies."""
        self._memory.pop(world_rank, None)

    def _slot(self, world_rank: int) -> Dict[Tuple, Tuple[Any, float]]:
        return self._memory.setdefault(world_rank, {})

    # -- store ------------------------------------------------------------

    def store(
        self,
        ctx: Any,
        comm: CommHandle,
        member_id: int,
        view: View,
        version: int,
    ) -> Generator[Event, Any, None]:
        """Fenix_Data_member_store: snapshot ``view`` locally and at the
        buddy (synchronous; cost scales with the view's modelled size)."""
        engine = ctx.engine
        tel = engine.telemetry
        t0 = engine.now
        data = view.copy_data()
        nbytes = view.modeled_nbytes
        key = (member_id, int(version), comm.rank)
        with tel.span(f"imr.rank{comm.rank}", "imr.store",
                      member=member_id, version=int(version), nbytes=nbytes,
                      wrank=ctx.rank):
            # local copy (memory-copy cost)
            yield engine.timeout(ctx.node.memcpy_time(nbytes))
            self._slot(ctx.rank)[key] = (data, nbytes)
            # buddy copy (network transfer, paid synchronously by the caller)
            partner = buddy_rank(comm.rank, comm.size)
            if partner != comm.rank:
                buddy_world = comm.comm.world_rank(partner)
                buddy_node = self.world.node_of_rank(buddy_world)
                yield from self.world.network.transfer(ctx.node, buddy_node, nbytes)
                self._slot(buddy_world)[key] = (np.copy(data), nbytes)
                self._gc(buddy_world, member_id, comm.rank, version)
                self.world.trace.emit(
                    engine.now, f"imr.rank{comm.rank}", "imr_buddy_send",
                    member=member_id, version=int(version), nbytes=nbytes,
                    buddy=partner,
                )
            self._gc(ctx.rank, member_id, comm.rank, version)
        self.world.trace.emit(
            engine.now, f"imr.rank{comm.rank}", "imr_store",
            member=member_id, version=int(version), nbytes=nbytes,
        )
        dt = engine.now - t0
        ctx.account.charge(CHECKPOINT_FUNCTION, dt)
        if tel.enabled:
            rm = tel.rank_metrics(ctx.rank)
            rm.inc("imr.store.bytes", nbytes)
            rm.observe("imr.store.latency", dt)

    def _gc(self, world_rank: int, member_id: int, owner: int, latest: int) -> None:
        cutoff = int(latest) - self.keep_versions + 1
        slot = self._slot(world_rank)
        stale = [
            k for k in slot if k[0] == member_id and k[2] == owner and k[1] < cutoff
        ]
        for k in stale:
            del slot[k]

    # -- queries -------------------------------------------------------------

    def available_versions(
        self, ctx: Any, comm: CommHandle, member_id: int
    ) -> Set[int]:
        """Versions of ``member_id`` restorable by this rank (local memory
        or the buddy's, if the buddy process is alive)."""
        found: Set[int] = set()
        own = self._memory.get(ctx.rank, {})
        for (mid, version, owner) in own:
            if mid == member_id and owner == comm.rank and isinstance(version, int):
                found.add(version)
        partner = buddy_rank(comm.rank, comm.size)
        if partner != comm.rank:
            buddy_world = comm.comm.world_rank(partner)
            if self.world.is_alive(buddy_world):
                for (mid, version, owner) in self._memory.get(buddy_world, {}):
                    if (
                        mid == member_id
                        and owner == comm.rank
                        and isinstance(version, int)
                    ):
                        found.add(version)
        return found

    def rank_versions(self, ctx: Any, comm: CommHandle) -> Set[int]:
        """Versions fully restorable by this rank across *all* members it
        has ever stored (used to rebuild metadata after a repair, when the
        replacement process has no view registrations yet)."""
        per_member: Dict[int, Set[int]] = {}
        sources = [self._memory.get(ctx.rank, {})]
        partner = buddy_rank(comm.rank, comm.size)
        if partner != comm.rank:
            buddy_world = comm.comm.world_rank(partner)
            if self.world.is_alive(buddy_world):
                sources.append(self._memory.get(buddy_world, {}))
        for mem in sources:
            for (member_id, version, owner) in mem:
                if owner == comm.rank and isinstance(version, int):
                    per_member.setdefault(member_id, set()).add(version)
        if not per_member:
            return set()
        common = None
        for versions in per_member.values():
            common = versions if common is None else (common & versions)
        return common or set()

    # -- restore --------------------------------------------------------------

    def restore(
        self,
        ctx: Any,
        comm: CommHandle,
        member_id: int,
        view: View,
        version: int,
    ) -> Generator[Event, Any, str]:
        """Fenix_Data_member_restore: local memcpy if this process holds a
        copy, otherwise fetch from the buddy.  Returns the tier used."""
        engine = ctx.engine
        tel = engine.telemetry
        t0 = engine.now
        key = (member_id, int(version), comm.rank)
        with tel.span(f"imr.rank{comm.rank}", "imr.restore",
                      member=member_id, version=int(version), wrank=ctx.rank):
            own = self._memory.get(ctx.rank, {})
            if key in own:
                data, nbytes = own[key]
                yield engine.timeout(ctx.node.memcpy_time(nbytes))
                tier = "local"
            else:
                partner = buddy_rank(comm.rank, comm.size)
                buddy_world = comm.comm.world_rank(partner)
                buddy_mem = self._memory.get(buddy_world, {})
                if partner == comm.rank or key not in buddy_mem:
                    raise FenixError(
                        f"IMR: no copy of member {member_id} v{version} "
                        f"for rank {comm.rank}"
                    )
                data, nbytes = buddy_mem[key]
                buddy_node = self.world.node_of_rank(buddy_world)
                yield from self.world.network.transfer(buddy_node, ctx.node, nbytes)
                # re-establish the local copy for future failures
                self._slot(ctx.rank)[key] = (np.copy(data), nbytes)
                tier = "buddy"
                self.world.trace.emit(
                    engine.now, f"imr.rank{comm.rank}", "imr_buddy_recv",
                    member=member_id, version=int(version), nbytes=nbytes,
                    buddy=partner,
                )
            view.load_data(data)
        self.world.trace.emit(
            engine.now, f"imr.rank{comm.rank}", "imr_restore",
            member=member_id, version=int(version), tier=tier,
        )
        dt = engine.now - t0
        ctx.account.charge(DATA_RECOVERY, dt)
        if tel.enabled:
            rm = tel.rank_metrics(ctx.rank)
            rm.inc(f"imr.restore.{tier}")
            rm.observe("imr.restore.latency", dt)
        return tier
