"""Fenix analogue: process-level resilience on simulated ULFM.

Implements the protocol of the paper's Section IV and Figure 2:

- **Spare ranks**: the world's last ``n_spares`` ranks are held out of the
  *resilient communicator* and block inside Fenix initialization until a
  failure needs them.
- **Single failure exit point**: every MPI error on the resilient
  communicator triggers the Fenix error handler
  (:class:`FenixCommHandle`), which revokes the communicator (propagating
  the failure to every rank including spares) and "long-jumps" back to the
  initialization point -- realized here as the :class:`FenixLongJump`
  exception caught by :meth:`FenixSystem.run`.
- **In-place repair**: the repaired communicator has the *same size* with
  failed ranks replaced by spares in their old slots, so rank ids (and
  therefore VeloC checkpoint keys) stay stable.
- **Roles**: after (re)initialization each rank learns whether it is
  ``INITIAL``, ``SURVIVOR`` or ``RECOVERED`` and the application branches
  on that for its checkpoint/recovery decisions (Figure 2's rank states).
- **IMR**: Fenix's In-Memory-Redundancy data store with the buddy-rank
  policy (Section V-A), used both directly and as a Kokkos-Resilience
  backend.
"""

from repro.fenix.roles import Role
from repro.fenix.errors import FenixError, FenixLongJump, SpareExhaustionError
from repro.fenix.handle import FenixCommHandle
from repro.fenix.runtime import FenixSystem, RepairResult
from repro.fenix.imr import IMRStore
from repro.fenix.data import DataGroup

__all__ = [
    "DataGroup",
    "Role",
    "FenixError",
    "FenixLongJump",
    "SpareExhaustionError",
    "FenixCommHandle",
    "FenixSystem",
    "RepairResult",
    "IMRStore",
]
