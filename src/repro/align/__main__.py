"""Differential trace CLI.

Usage (repository root, ``PYTHONPATH=src``)::

    # structurally compare two flight-recorder traces
    python -m repro.align diff a.trace.jsonl b.trace.jsonl [--json]
    python -m repro.align diff a.trace.jsonl b.trace.jsonl --structural-only

    # determinism audit: run one seeded cell twice, assert zero
    # divergences between the run and its replay
    python -m repro.align check --replay --app heatdis \
        --strategy fenix_kr_veloc --ranks 4 --kill-rank 2

    # record one run's trace for a later diff (supports a seeded
    # exponential failure plan via --failure-seed/--mtbf)
    python -m repro.align record --out a.trace.jsonl --app heatdis \
        --strategy fenix_kr_veloc --ranks 4 --failure-seed 7 --mtbf 120

    # find the first trace in an ordered series whose structure changed
    python -m repro.align bisect t0.jsonl t1.jsonl t2.jsonl ...

Exit codes follow :mod:`repro.report.compare`: 0 aligned / zero
divergences, 1 divergences found, 2 usage or load errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Tuple

from repro import __version__
from repro.align import ALIGN_SCHEMA
from repro.align.engine import align, first_divergence_report
from repro.monitor.trace_io import read_trace, write_trace
from repro.report.compare import EXIT_BAD_INPUT, EXIT_OK, EXIT_REGRESSION
from repro.util.errors import ReproError

APPS = ("heatdis", "heatdis2d", "minimd")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.align",
        description="Cross-run trace alignment, first-divergence "
                    "root-causing, and determinism auditing.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    diff = sub.add_parser(
        "diff", help="structurally compare two (or more) trace files")
    diff.add_argument("traces", nargs="+",
                      help="flight-recorder trace JSONL files; the first "
                           "is the baseline every other is aligned against")
    diff.add_argument("--json", action="store_true",
                      help="machine-readable divergence report on stdout")
    diff.add_argument("--structural-only", action="store_true",
                      help="compare logical keys only (ignore value drift)")
    diff.add_argument("--out", default=None,
                      help="also write the JSON report here")

    check = sub.add_parser(
        "check", help="determinism audit: run a seeded cell twice and "
                      "assert zero divergences")
    check.add_argument("--replay", action="store_true",
                       help="required: re-run the spec and align "
                            "(reserved for future trace-vs-spec modes)")
    check.add_argument("--json", action="store_true")
    check.add_argument("--out", default=None,
                       help="also write the JSON report here")
    _add_run_args(check)

    record = sub.add_parser(
        "record", help="run one cell and persist its flight-recorder trace")
    record.add_argument("--out", required=True,
                        help="trace JSONL destination")
    _add_run_args(record)

    bis = sub.add_parser(
        "bisect", help="find the first trace of an ordered series whose "
                       "structure diverged from the first")
    bis.add_argument("traces", nargs="+",
                     help="ordered trace files; traces[0] is the baseline")
    bis.add_argument("--json", action="store_true")
    bis.add_argument("--structural-only", action="store_true")
    return parser


def _add_run_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--app", choices=APPS, default="heatdis")
    sub.add_argument("--strategy", default="fenix_kr_veloc")
    sub.add_argument("--ranks", type=int, default=4)
    sub.add_argument("--iters", type=int, default=30)
    sub.add_argument("--interval", type=int, default=10)
    sub.add_argument("--spares", type=int, default=1)
    sub.add_argument("--kill-rank", type=int, default=None)
    sub.add_argument("--kill-after-checkpoint", type=int, default=1)
    sub.add_argument("--seed", type=int, default=20220906,
                     help="cluster seed (the deterministic substrate)")
    sub.add_argument("--failure-seed", type=int, default=None,
                     help="seeded exponential failure plan instead of "
                          "--kill-rank")
    sub.add_argument("--mtbf", type=float, default=120.0,
                     help="per-rank MTBF (simulated s) for --failure-seed")
    sub.add_argument("--max-failures", type=int, default=1,
                     help="failure cap for --failure-seed")


def _run_once(args: argparse.Namespace):
    """One monitored job; returns its live Trace (deterministic per
    args, so two calls record identical streams)."""
    # harness/experiments imported lazily, like repro.monitor's CLI:
    # pure trace-file subcommands must not pull the simulator in
    from repro.experiments.common import paper_env
    from repro.harness.runner import (
        run_heatdis2d_job,
        run_heatdis_job,
        run_minimd_job,
    )
    from repro.harness.strategies import STRATEGIES
    from repro.monitor import MonitorSuite
    from repro.sim.failures import (
        ExponentialFailures,
        IterationFailure,
        NoFailures,
    )

    if args.strategy not in STRATEGIES:
        raise ReproError(
            f"unknown strategy {args.strategy!r}; choose from: "
            + ", ".join(sorted(STRATEGIES))
        )
    strategy = STRATEGIES[args.strategy]
    n_spares = args.spares if strategy.fenix else 0
    env = paper_env(args.ranks + max(n_spares, 1), n_spares=n_spares,
                    seed=args.seed, pfs_servers=2)
    if args.failure_seed is not None:
        plan = ExponentialFailures(
            args.mtbf, seed=args.failure_seed,
            max_failures=args.max_failures,
        )
    elif args.kill_rank is not None:
        plan = IterationFailure.between_checkpoints(
            args.kill_rank, args.interval, args.kill_after_checkpoint
        )
    else:
        plan = NoFailures()
    suite = MonitorSuite()
    kwargs = dict(plan=plan, strict_monitor=False, monitor=suite)
    if args.app == "heatdis":
        from repro.apps.heatdis import HeatdisConfig
        run_heatdis_job(env, args.strategy, args.ranks,
                        HeatdisConfig(n_iters=args.iters), args.interval,
                        **kwargs)
    elif args.app == "heatdis2d":
        from repro.apps.heatdis2d import Heatdis2DConfig
        run_heatdis2d_job(env, args.strategy, args.ranks,
                          Heatdis2DConfig(n_iters=args.iters),
                          args.interval, **kwargs)
    else:
        from repro.apps.minimd import MiniMDConfig
        run_minimd_job(env, args.strategy, args.ranks,
                       MiniMDConfig(n_steps=args.iters), args.interval,
                       **kwargs)
    return suite._trace


def _report_doc(report: Dict[str, Any], **extra: Any) -> Dict[str, Any]:
    doc = {"schema": ALIGN_SCHEMA, "repro_version": __version__}
    doc.update(extra)
    doc.update(report)
    return doc


def _emit(doc: Dict[str, Any], as_json: bool,
          out: Optional[str] = None) -> None:
    text = json.dumps(doc, indent=1, sort_keys=True)
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    if as_json:
        print(text)


def _render_report(label: str, doc: Dict[str, Any]) -> str:
    counts = doc["counts"]
    lines = [
        f"{label}: {doc['records_a']} vs {doc['records_b']} records -- "
        f"{counts['matched']} matched, {counts['missing']} missing, "
        f"{counts['extra']} extra, {counts['value']} value-drifted, "
        f"{counts['reorder']} reordered"
        + (f", {counts['excused']} excused" if counts["excused"] else "")
        + (f", {counts['excluded_sampleable']} sampleable excluded"
           if counts["excluded_sampleable"] else "")
    ]
    for note in doc.get("notes", []):
        lines.append(f"  note: {note}")
    first = doc.get("first")
    if first:
        lines.append(
            f"  first divergence [{first['layer']}] t={first['time']:.6f}: "
            f"{first['summary']}"
        )
        for brief in first.get("briefs", []):
            lines.append(f"    {brief}")
        if first.get("context_a"):
            lines.append("  context (run A):")
            for brief in first["context_a"]:
                lines.append(f"    {brief}")
        if first.get("context_b"):
            lines.append("  context (run B):")
            for brief in first["context_b"]:
                lines.append(f"    {brief}")
        down = doc.get("downstream", {})
        wall = down.get("wall_time", {})
        if wall:
            lines.append(
                f"  downstream: wall {wall['a']:.3f}s -> {wall['b']:.3f}s "
                f"({wall['delta']:+.3f}s)"
            )
        lat = down.get("recovery_latency", {})
        if lat and lat.get("delta") is not None:
            lines.append(
                f"  downstream: recovery latency {lat['a']:.3f}s -> "
                f"{lat['b']:.3f}s ({lat['delta']:+.3f}s)"
            )
    else:
        lines.append("  zero divergences")
    return "\n".join(lines)


def _diff(args: argparse.Namespace) -> int:
    try:
        loaded = [read_trace(path) for path in args.traces]
    except (OSError, ReproError) as exc:
        print(f"cannot diff: {exc}", file=sys.stderr)
        return EXIT_BAD_INPUT
    if len(loaded) < 2:
        print("diff needs at least two traces", file=sys.stderr)
        return EXIT_BAD_INPUT
    base_records, base_meta = loaded[0]
    pairs: List[Dict[str, Any]] = []
    divergent = False
    for path, (records, meta) in zip(args.traces[1:], loaded[1:]):
        alignment = align(
            base_records, records, meta_a=base_meta, meta_b=meta,
            structural_only=args.structural_only,
        )
        report = first_divergence_report(alignment, base_records, records)
        report["a"] = args.traces[0]
        report["b"] = path
        pairs.append(report)
        divergent = divergent or alignment.divergent
        if not args.json:
            print(_render_report(f"{args.traces[0]} vs {path}", report))
    doc = _report_doc({"pairs": pairs, "divergent": divergent},
                      mode="diff",
                      structural_only=bool(args.structural_only))
    _emit(doc, args.json, args.out)
    return EXIT_REGRESSION if divergent else EXIT_OK


def _check(args: argparse.Namespace) -> int:
    if not args.replay:
        print("check requires --replay (run the spec twice and align)",
              file=sys.stderr)
        return EXIT_BAD_INPUT
    try:
        trace_a = _run_once(args)
        trace_b = _run_once(args)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_BAD_INPUT
    from repro.monitor.trace_io import trace_meta

    records_a, records_b = list(trace_a), list(trace_b)
    alignment = align(records_a, records_b,
                      meta_a=trace_meta(trace_a), meta_b=trace_meta(trace_b))
    report = first_divergence_report(alignment, records_a, records_b)
    doc = _report_doc(report, mode="check-replay",
                      spec={"app": args.app, "strategy": args.strategy,
                            "ranks": args.ranks, "iters": args.iters,
                            "seed": args.seed,
                            "kill_rank": args.kill_rank,
                            "failure_seed": args.failure_seed})
    _emit(doc, args.json, args.out)
    if not args.json:
        label = (f"determinism audit ({args.app}/{args.strategy}/"
                 f"r{args.ranks}, seed {args.seed})")
        print(_render_report(label, report))
    return EXIT_REGRESSION if alignment.divergent else EXIT_OK


def _record(args: argparse.Namespace) -> int:
    try:
        trace = _run_once(args)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_BAD_INPUT
    n = write_trace(args.out, trace)
    print(f"recorded {n} records to {args.out}", file=sys.stderr)
    return EXIT_OK


def _bisect(args: argparse.Namespace) -> int:
    if len(args.traces) < 2:
        print("bisect needs at least two traces", file=sys.stderr)
        return EXIT_BAD_INPUT
    try:
        base_records, base_meta = read_trace(args.traces[0])
    except (OSError, ReproError) as exc:
        print(f"cannot bisect: {exc}", file=sys.stderr)
        return EXIT_BAD_INPUT
    first_bad: Optional[Tuple[int, str]] = None
    summary: Optional[Dict[str, Any]] = None
    for index, path in enumerate(args.traces[1:], start=1):
        try:
            records, meta = read_trace(path)
        except (OSError, ReproError) as exc:
            print(f"cannot bisect: {exc}", file=sys.stderr)
            return EXIT_BAD_INPUT
        alignment = align(base_records, records,
                          meta_a=base_meta, meta_b=meta,
                          structural_only=args.structural_only)
        if alignment.divergent:
            first_bad = (index, path)
            summary = first_divergence_report(
                alignment, base_records, records)
            break
    doc = _report_doc({
        "baseline": args.traces[0],
        "inspected": len(args.traces) - 1,
        "first_divergent_index": first_bad[0] if first_bad else None,
        "first_divergent_trace": first_bad[1] if first_bad else None,
        "report": summary,
    }, mode="bisect")
    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True))
    elif first_bad is None:
        print(f"all {len(args.traces) - 1} trace(s) align with "
              f"{args.traces[0]}")
    else:
        print(f"first structural change at index {first_bad[0]}: "
              f"{first_bad[1]}")
        assert summary is not None
        print(_render_report(f"{args.traces[0]} vs {first_bad[1]}", summary))
    return EXIT_REGRESSION if first_bad else EXIT_OK


def main(argv: Optional[list] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "diff":
        return _diff(args)
    if args.command == "check":
        return _check(args)
    if args.command == "record":
        return _record(args)
    return _bisect(args)


if __name__ == "__main__":  # pragma: no cover
    try:
        sys.exit(main())
    except BrokenPipeError:
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
