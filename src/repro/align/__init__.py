"""Differential trace observability: cross-run alignment and
determinism auditing (the sixth observability layer).

Every cell of this reproduction is bit-deterministic by construction:
the same (cluster seed, failure-plan seed) must replay the same recovery
protocol, record for record.  The aggregate tooling (``telemetry diff``,
``profile diff``, ``report diff``) compares *numbers* with tolerances; a
structural regression -- a gate arriving before the revoke, a checkpoint
version restored from the wrong epoch -- shows up there only as "the
totals moved".  :mod:`repro.align` compares *structure*:

- :mod:`repro.align.keying` names every protocol-relevant record by a
  canonical logical key ``(wrank, kind, epoch, occurrence)`` that is
  independent of simulated timestamps, and shares the sampleable-exempt
  contract with :mod:`repro.telemetry.sampling` (only kinds that sampler
  may drop are ever excluded from the skeleton);
- :mod:`repro.align.engine` merges two keyed streams and classifies
  every record as matched / reordered / value-drifted / missing /
  extra, excusing gaps a ring buffer or the sampler accounted for;
- the first-divergence root-causer attributes the earliest divergent
  event to a layer (process/ulfm/fenix/kr/veloc/recompute/app), renders
  its causal record briefs, and reports the downstream deltas on the
  recovery path;
- ``python -m repro.align`` exposes ``diff`` / ``check --replay`` /
  ``record`` / ``bisect``;
- the harness integrates it as ``determinism_audit=`` on the
  ``run_*_job`` entry points (run, replay, align, attach
  ``RunReport.divergences``).
"""

from repro.align.engine import (
    Alignment,
    Divergence,
    align,
    audit_traces,
    first_divergence_report,
)
from repro.align.keying import (
    ANCHOR_KINDS,
    VOLATILE_FIELDS,
    KeyedRecord,
    canonical_fields,
    key_records,
    layer_of,
    protocol_critical,
    record_epoch,
    record_wrank,
)

#: JSON schema version of ``repro.align`` divergence reports
ALIGN_SCHEMA = 1

__all__ = [
    "ALIGN_SCHEMA",
    "ANCHOR_KINDS",
    "Alignment",
    "Divergence",
    "KeyedRecord",
    "VOLATILE_FIELDS",
    "align",
    "audit_traces",
    "canonical_fields",
    "first_divergence_report",
    "key_records",
    "layer_of",
    "protocol_critical",
    "record_epoch",
    "record_wrank",
]
