"""The alignment engine: merge two keyed streams, classify, root-cause.

Given two record streams (plus their drop-accounting metas), the engine
keys both (:mod:`repro.align.keying`), then classifies every record:

- **matched** -- same key, same canonical value, same relative order
  among the protocol-critical anchors;
- **reordered** -- same key and value, but the record's position among
  the anchors inverted between runs (found via a longest-increasing-
  subsequence pass, so only genuinely displaced anchors are blamed);
- **value-drifted** -- same key, different non-volatile fields;
- **missing** / **extra** -- the key exists in only one stream;
- **excused** -- a missing/extra record that the counterpart's ring
  buffer accounted for (its time falls inside the ``dropped_window``),
  which is exactly the "say what you did not see" accounting the trace
  layer keeps.

When the two runs' *sampling* accounting differs (one was recorded
under a :class:`~repro.telemetry.sampling.SamplingPolicy`, the other
not, or the policies differ), the sampleable kinds are excluded from
the comparison entirely and counted in ``excluded_sampleable`` -- the
skeleton of protocol-critical kinds is the comparable contract.

The first-divergence root-causer (:func:`first_divergence_report`)
takes the earliest surviving divergence, attributes it to a resiliency
layer, renders the causal record briefs around it (reusing
:meth:`~repro.sim.trace.TraceRecord.brief`, the monitor's rendering),
and reports the downstream deltas: wall time, recovery latency
(kill -> first re-entry, the measurement :mod:`repro.monitor.explain`
uses), and the per-layer recovery path mirroring the profile
critical-path stages.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.align.keying import (
    ANCHOR_KINDS,
    KeyedRecord,
    key_records,
    layer_of,
    protocol_critical,
)
from repro.sim.trace import TraceRecord

#: divergence categories, in blame order (a missing anchor is reported
#: ahead of a value drift at the same simulated time)
CATEGORIES = ("missing", "extra", "value", "reorder")

#: layer precedence for same-instant divergences: a kill and its
#: downstream echoes (the victim's lost region entry, the survivors'
#: detect/gate records) all surface at the same simulated time, and the
#: root cause is the lowest layer of the stack that moved
_LAYER_ORDER = ("process", "ulfm", "fenix", "veloc", "kr", "recompute",
                "app")

_EPS = 1e-12


@dataclass
class Divergence:
    """One classified disagreement between two runs."""

    category: str
    layer: str
    key: Tuple[Optional[int], str, Optional[float], int]
    #: simulated time the divergence surfaces (min over both sides)
    time: float
    #: one-line human statement of the disagreement
    summary: str
    #: the record's own brief(s): run A first, then run B, when present
    briefs: List[str] = field(default_factory=list)
    #: which fields drifted (value category only)
    fields: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        wrank, kind, epoch, occurrence = self.key
        return {
            "category": self.category,
            "layer": self.layer,
            "key": {
                "wrank": wrank,
                "kind": kind,
                "epoch": epoch,
                "occurrence": occurrence,
            },
            "time": self.time,
            "summary": self.summary,
            "briefs": list(self.briefs),
            "fields": list(self.fields),
        }


@dataclass
class Alignment:
    """The full classification of one trace pair."""

    n_a: int
    n_b: int
    matched: int = 0
    excused: int = 0
    excluded_sampleable: int = 0
    divergences: List[Divergence] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def divergent(self) -> bool:
        return bool(self.divergences)

    @property
    def first(self) -> Optional[Divergence]:
        return self.divergences[0] if self.divergences else None

    def counts(self) -> Dict[str, int]:
        out = {c: 0 for c in CATEGORIES}
        for d in self.divergences:
            out[d.category] += 1
        out["matched"] = self.matched
        out["excused"] = self.excused
        out["excluded_sampleable"] = self.excluded_sampleable
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "records_a": self.n_a,
            "records_b": self.n_b,
            "counts": self.counts(),
            "divergent": self.divergent,
            "divergences": [d.to_dict() for d in self.divergences],
            "notes": list(self.notes),
        }


def _meta_int(meta: Optional[Dict[str, Any]], name: str) -> int:
    if not meta:
        return 0
    try:
        return int(meta.get(name) or 0)
    except (TypeError, ValueError):
        return 0


def _drop_horizon(meta: Optional[Dict[str, Any]]) -> Optional[float]:
    """Latest simulated time the counterpart's ring buffer evicted."""
    if not meta or not meta.get("dropped"):
        return None
    window = meta.get("dropped_window")
    if not window:
        return None
    return float(window[1])


def _lis_membership(positions: Sequence[int]) -> List[bool]:
    """True for elements on one longest strictly increasing subsequence
    (patience sorting with parent pointers, O(n log n)); everything off
    the subsequence is a genuinely displaced element."""
    n = len(positions)
    if n == 0:
        return []
    tails: List[int] = []          # indices into positions
    tail_values: List[int] = []
    parents = [-1] * n
    for i, value in enumerate(positions):
        j = bisect.bisect_left(tail_values, value)
        parents[i] = tails[j - 1] if j > 0 else -1
        if j == len(tails):
            tails.append(i)
            tail_values.append(value)
        else:
            tails[j] = i
            tail_values[j] = value
    member = [False] * n
    i = tails[-1]
    while i != -1:
        member[i] = True
        i = parents[i]
    return member


def align(
    records_a: Sequence[TraceRecord],
    records_b: Sequence[TraceRecord],
    meta_a: Optional[Dict[str, Any]] = None,
    meta_b: Optional[Dict[str, Any]] = None,
    structural_only: bool = False,
) -> Alignment:
    """Classify every record of two streams; see the module docstring.

    ``structural_only`` compares keys only (is the protocol *shape*
    identical?) and never reports value drift; the default also
    compares every non-volatile field.
    """
    records_a = list(records_a)
    records_b = list(records_b)
    result = Alignment(n_a=len(records_a), n_b=len(records_b))

    # differing sampling accounting => sampleable kinds are not
    # comparable between the streams; align the skeleton only
    sampled_a = _meta_int(meta_a, "sampled_out")
    sampled_b = _meta_int(meta_b, "sampled_out")
    if sampled_a != sampled_b:
        kept_a = [r for r in records_a if protocol_critical(r.kind)]
        kept_b = [r for r in records_b if protocol_critical(r.kind)]
        result.excluded_sampleable = (
            (len(records_a) - len(kept_a)) + (len(records_b) - len(kept_b))
        )
        result.notes.append(
            f"sampling accounting differs (sampled_out {sampled_a} vs "
            f"{sampled_b}); sampleable kinds excluded -- aligning the "
            f"protocol-critical skeleton only"
        )
        records_a, records_b = kept_a, kept_b

    dropped = bool(_meta_int(meta_a, "dropped")) \
        or bool(_meta_int(meta_b, "dropped"))
    keyed_a = key_records(records_a, reverse_occurrence=dropped)
    keyed_b = key_records(records_b, reverse_occurrence=dropped)
    if dropped:
        result.notes.append(
            "ring-buffer evictions present; per-key occurrence indices "
            "counted from the stream end so surviving suffixes align"
        )

    by_key_a = {kr.key: kr for kr in keyed_a}
    by_key_b = {kr.key: kr for kr in keyed_b}
    horizon_a = _drop_horizon(meta_a)
    horizon_b = _drop_horizon(meta_b)
    divergences: List[Divergence] = []

    def one_sided(kr: KeyedRecord, category: str, run: str,
                  horizon: Optional[float]) -> None:
        # a record the counterpart's ring buffer evicted is accounted
        # for, not divergent
        if horizon is not None and kr.record.time <= horizon + _EPS:
            result.excused += 1
            return
        wrank, kind, epoch, occ = kr.key
        where = f"rank {wrank}" if wrank is not None else "global"
        epoch_txt = f" epoch {epoch:g}" if epoch is not None else ""
        divergences.append(Divergence(
            category=category,
            layer=kr.layer,
            key=kr.key,
            time=kr.record.time,
            summary=(f"{kind} ({where}{epoch_txt}, occurrence {occ}) "
                     f"present only in run {run}"),
            briefs=[f"{run}: {kr.record.brief()}"],
        ))

    matched_a: List[KeyedRecord] = []
    for kr in keyed_a:
        other = by_key_b.get(kr.key)
        if other is None:
            one_sided(kr, "missing", "A", horizon_b)
            continue
        if not structural_only and kr.canonical != other.canonical:
            drifted = _drifted_fields(kr.record, other.record)
            divergences.append(Divergence(
                category="value",
                layer=kr.layer,
                key=kr.key,
                time=min(kr.record.time, other.record.time),
                summary=(f"{kr.kind} value drift on "
                         f"{', '.join(drifted) or 'fields'} "
                         f"(rank {kr.wrank}, occurrence {kr.occurrence})"),
                briefs=[f"A: {kr.record.brief()}",
                        f"B: {other.record.brief()}"],
                fields=drifted,
            ))
            continue
        matched_a.append(kr)
        result.matched += 1
    for kr in keyed_b:
        if kr.key not in by_key_a:
            one_sided(kr, "extra", "B", horizon_a)

    # order check over the matched protocol anchors: a key off the
    # longest common (increasing) order is genuinely displaced
    anchors = [kr for kr in matched_a if kr.kind in ANCHOR_KINDS]
    pos_b = {kr.key: i for i, kr in enumerate(keyed_b)}
    membership = _lis_membership([pos_b[kr.key] for kr in anchors])
    for kr, in_order in zip(anchors, membership):
        if in_order:
            continue
        result.matched -= 1
        other = by_key_b[kr.key]
        divergences.append(Divergence(
            category="reorder",
            layer=kr.layer,
            key=kr.key,
            time=min(kr.record.time, other.record.time),
            summary=(f"{kr.kind} (rank {kr.wrank}, occurrence "
                     f"{kr.occurrence}) ordered differently among the "
                     f"protocol anchors in run B"),
            briefs=[f"A: {kr.record.brief()}", f"B: {other.record.brief()}"],
        ))

    divergences.sort(key=lambda d: (
        d.time,
        _LAYER_ORDER.index(d.layer) if d.layer in _LAYER_ORDER else 99,
        CATEGORIES.index(d.category),
    ))
    result.divergences = divergences
    return result


def _drifted_fields(a: TraceRecord, b: TraceRecord) -> List[str]:
    from repro.align.keying import VOLATILE_FIELDS

    names: List[str] = []
    if a.source != b.source:
        names.append("source")
    for name in sorted(set(a.fields) | set(b.fields)):
        if name in VOLATILE_FIELDS:
            continue
        va, vb = a.fields.get(name), b.fields.get(name)
        if isinstance(va, tuple):
            va = list(va)
        if isinstance(vb, tuple):
            vb = list(vb)
        if va != vb:
            names.append(name)
    return names


# -- first-divergence root-causing ---------------------------------------


#: kinds ending a recovery, mirrored from repro.monitor.explain
_KILL_KINDS = ("rank_killed", "rank_crashed")
_REENTRY_KINDS = ("kr_region_commit", "checkpoint", "imr_store")

#: recovery-path stages in protocol order, each the trace-level
#: equivalent of a repro.profile critical-path segment
_RECOVERY_STAGES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("ulfm", ("detect", "revoke")),
    ("fenix", ("repair", "shrink", "abort", "role")),
    ("veloc", ("recover", "imr_restore")),
    ("kr", _REENTRY_KINDS),
)


def recovery_breakdown(records: Sequence[TraceRecord]) -> Dict[str, float]:
    """Per-layer recovery time after the first kill (empty = no kill).

    Walks the protocol spine kill -> detect/revoke -> repair ->
    recover -> re-entry and charges each inter-stage gap to the stage's
    layer, plus ``total`` (the recovery latency the live layer tracks).
    """
    kill = next((r for r in records if r.kind in _KILL_KINDS), None)
    if kill is None:
        return {}
    out: Dict[str, float] = {}
    cursor = kill.time
    tail = [r for r in records if r.time >= kill.time]
    for layer, kinds in _RECOVERY_STAGES:
        hit = next(
            (r for r in tail if r.kind in kinds and r.time >= cursor), None
        )
        if hit is None:
            continue
        out[layer] = out.get(layer, 0.0) + (hit.time - cursor)
        cursor = hit.time
    out["total"] = cursor - kill.time
    return out


def _context_briefs(
    records: Sequence[TraceRecord],
    at: float,
    before: int = 3,
    after: int = 2,
) -> List[str]:
    """Protocol-critical briefs around simulated time ``at``."""
    spine = [r for r in records if protocol_critical(r.kind)]
    idx = bisect.bisect_left([r.time for r in spine], at)
    lo = max(0, idx - before)
    hi = min(len(spine), idx + after + 1)
    return [r.brief() for r in spine[lo:hi]]


def first_divergence_report(
    alignment: Alignment,
    records_a: Sequence[TraceRecord],
    records_b: Sequence[TraceRecord],
) -> Dict[str, Any]:
    """JSON-ready root-cause report for the earliest divergence.

    Carries the divergence itself (layer-attributed, with its own
    briefs), the causal context briefs from both runs around the
    divergence time, and the downstream deltas: wall time, recovery
    latency, and the per-layer recovery path.
    """
    records_a = list(records_a)
    records_b = list(records_b)
    out: Dict[str, Any] = alignment.to_dict()
    wall_a = records_a[-1].time if records_a else 0.0
    wall_b = records_b[-1].time if records_b else 0.0
    path_a = recovery_breakdown(records_a)
    path_b = recovery_breakdown(records_b)
    layers = sorted(set(path_a) | set(path_b))
    out["downstream"] = {
        "wall_time": {
            "a": wall_a, "b": wall_b, "delta": wall_b - wall_a,
        },
        "recovery_latency": {
            "a": path_a.get("total"),
            "b": path_b.get("total"),
            "delta": (
                path_b["total"] - path_a["total"]
                if "total" in path_a and "total" in path_b else None
            ),
        },
        "recovery_path": {
            layer: {
                "a": path_a.get(layer),
                "b": path_b.get(layer),
                "delta": (
                    path_b[layer] - path_a[layer]
                    if layer in path_a and layer in path_b else None
                ),
            }
            for layer in layers if layer != "total"
        },
    }
    first = alignment.first
    if first is not None:
        entry = first.to_dict()
        entry["context_a"] = _context_briefs(records_a, first.time)
        entry["context_b"] = _context_briefs(records_b, first.time)
        out["first"] = entry
    else:
        out["first"] = None
    return out


def audit_traces(trace_a: Any, trace_b: Any) -> List[Dict[str, Any]]:
    """Align two live :class:`~repro.sim.trace.Trace` objects; returns
    JSON-ready divergence dicts (the ``RunReport.divergences`` payload).

    The metas are taken from the traces' own drop/sampling accounting,
    so a sampled or ring-buffered recording audits against an unsampled
    replay on the protocol-critical skeleton, never on records one side
    was configured not to keep.
    """
    from repro.monitor.trace_io import trace_meta

    alignment = align(
        list(trace_a), list(trace_b),
        meta_a=trace_meta(trace_a), meta_b=trace_meta(trace_b),
    )
    return [d.to_dict() for d in alignment.divergences]
