"""Canonical logical keys for flight-recorder records.

Two traces of the same cell cannot be compared positionally (sequence
numbers shift the moment one extra record exists) or by timestamp (a
recovery that takes 0.1 s longer moves every later time).  Instead each
record is named by a *logical key*::

    (wrank, kind, epoch, occurrence)

- ``wrank`` -- the world rank the record belongs to: an explicit
  ``rank`` field when the record carries one, else the ``rankN`` suffix
  of per-rank sources (``veloc.rank3``, ``kr.rank0``, ``imr.rank2``),
  else the ``spare``/``member`` field, else None for global records
  (communicator events, server-side flushes);
- ``epoch`` -- the protocol epoch: Fenix ``generation``, else checkpoint
  ``version``, else application ``iteration``; None when the record has
  no epoch notion;
- ``occurrence`` -- the per-(wrank, kind, epoch) sequence index in
  stream order, which is what makes repeats (a recomputed region, a
  second kill of the same rank) individually addressable.

Values are compared through :func:`canonical_fields`: the source plus
every field *except* the :data:`VOLATILE_FIELDS` -- measurements that
legitimately differ between structurally identical runs.

The sampleable-exempt contract is shared with
:mod:`repro.telemetry.sampling`: :func:`protocol_critical` is exactly
"the sampler may never drop this kind", so the skeleton
:mod:`repro.align.engine` aligns on is, by construction, the set of
records that survive any sampling policy.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sim.trace import TraceRecord
from repro.telemetry.sampling import record_sampleable

#: record fields excluded from value comparison: host-ish measurements
#: and queue depths that may differ between structurally identical runs
#: (``seconds`` is a modelled duration -- it shifts whenever an earlier
#: divergence changes contention, which the alignment reports through
#: the diverging record itself, not through every downstream timing)
VOLATILE_FIELDS = frozenset({"seconds", "backlog", "eta_s"})

#: protocol-critical kinds the alignment engine anchors on for order
#: checks: the failure/recovery protocol spine (kills, ULFM collectives,
#: Fenix repair steps, data-path restore points)
ANCHOR_KINDS = frozenset({
    "rank_killed",
    "rank_crashed",
    "rank_dead",
    "detect",
    "revoke",
    "shrink",
    "agree",
    "repair",
    "abort",
    "gate_arrive",
    "role",
    "spare_activated",
    "checkpoint",
    "recover",
    "imr_restore",
})

#: process layer: rank lifecycle (kills, crashes, exits) -- what the
#: failure plan injects and mpirun/Fenix observe
_PROCESS_KINDS = frozenset({
    "rank_exit", "rank_killed", "rank_crashed", "rank_dead",
})

#: ULFM layer: communicator-level fault-tolerance collectives (detect is
#: charged to ULFM like the profile critical path does)
_ULFM_KINDS = frozenset({"comm_create", "revoke", "agree", "shrink", "detect"})

#: Fenix layer kinds (when emitted by the "fenix" source; ``agree`` and
#: ``shrink`` exist at both the MPI-comm and Fenix levels)
_FENIX_KINDS = frozenset({
    "gate_arrive", "spare_activated", "abort", "repair", "role",
    "finalize_arrive", "agree", "shrink",
})

#: VeloC / data layer: checkpoint clients, flush servers, IMR buddies
_VELOC_KINDS = frozenset({
    "checkpoint", "recover", "flush_submit", "flush_done", "drain_done",
})

_RANK_SOURCE = re.compile(r"\.rank(\d+)$")


def layer_of(rec: TraceRecord) -> str:
    """Resiliency-layer attribution of one record.

    The vocabulary matches :mod:`repro.profile`'s critical-path edges:
    ``process`` (rank lifecycle), ``ulfm``, ``fenix``, ``kr``,
    ``veloc``, ``recompute``, ``app``.
    """
    kind = rec.kind
    if kind in _PROCESS_KINDS:
        return "process"
    if kind == "detect":
        return "ulfm"
    if rec.source == "fenix":
        return "fenix"
    if kind in _ULFM_KINDS:
        return "ulfm"
    if kind.startswith("kr_"):
        return "kr"
    if kind in _VELOC_KINDS or kind.startswith("imr_"):
        return "veloc"
    if kind == "recompute" or kind.startswith("recompute"):
        return "recompute"
    return "app"


def protocol_critical(kind: str) -> bool:
    """True for kinds the sampler may never drop -- the skeleton.

    This *is* the shared contract with :mod:`repro.telemetry.sampling`:
    default-deny means every kind is protocol-critical unless someone
    explicitly proved it sampleable, so the skeleton two traces must
    agree on is exactly the records guaranteed to exist under any
    :class:`~repro.telemetry.sampling.SamplingPolicy`.
    """
    return not record_sampleable(kind)


def record_wrank(rec: TraceRecord) -> Optional[int]:
    """World rank a record belongs to, or None for global records."""
    value = rec.fields.get("rank")
    if isinstance(value, int):
        return value
    match = _RANK_SOURCE.search(rec.source)
    if match:
        return int(match.group(1))
    for name in ("spare", "member"):
        value = rec.fields.get(name)
        if isinstance(value, int):
            return value
    return None


def record_epoch(rec: TraceRecord) -> Optional[float]:
    """Protocol epoch: generation, else version, else iteration."""
    for name in ("generation", "version", "iteration"):
        value = rec.fields.get(name)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return value
    return None


def _jsonable(value: Any) -> Any:
    if isinstance(value, (set, frozenset, tuple)):
        return list(value)
    return repr(value)


def canonical_fields(rec: TraceRecord) -> str:
    """Order-independent JSON of the record's comparable identity:
    source + every non-volatile field (tuples collapse to lists, so a
    replayed trace canonicalizes identically to a live one)."""
    payload: Dict[str, Any] = {"source": rec.source}
    for name, value in rec.fields.items():
        if name in VOLATILE_FIELDS:
            continue
        payload[name] = value
    return json.dumps(payload, sort_keys=True, default=_jsonable)


@dataclass(frozen=True)
class KeyedRecord:
    """One record plus its logical key, layer, and canonical value."""

    key: Tuple[Optional[int], str, Optional[float], int]
    record: TraceRecord
    layer: str
    canonical: str

    @property
    def wrank(self) -> Optional[int]:
        return self.key[0]

    @property
    def kind(self) -> str:
        return self.key[1]

    @property
    def epoch(self) -> Optional[float]:
        return self.key[2]

    @property
    def occurrence(self) -> int:
        return self.key[3]


def key_records(
    records: Sequence[TraceRecord],
    reverse_occurrence: bool = False,
) -> List[KeyedRecord]:
    """Assign logical keys to a record stream, in order.

    ``reverse_occurrence`` counts the per-key sequence index from the
    *end* of the stream instead of the start.  A ring buffer evicts the
    oldest records, so the surviving stream is a suffix; counting from
    the end keeps the suffixes of two traces aligned even when one lost
    a prefix (the evicted keys then surface as high-occurrence missing
    records inside the drop window, which the engine excuses).
    """
    bases = [
        (record_wrank(rec), rec.kind, record_epoch(rec)) for rec in records
    ]
    counts: Dict[Tuple, int] = {}
    if reverse_occurrence:
        for base in bases:
            counts[base] = counts.get(base, 0) + 1
    seen: Dict[Tuple, int] = {}
    out: List[KeyedRecord] = []
    for rec, base in zip(records, bases):
        index = seen.get(base, 0)
        seen[base] = index + 1
        occurrence = (counts[base] - 1 - index) if reverse_occurrence \
            else index
        out.append(KeyedRecord(
            key=(base[0], base[1], base[2], occurrence),
            record=rec,
            layer=layer_of(rec),
            canonical=canonical_fields(rec),
        ))
    return out
