"""repro: reproduction of the CLUSTER 2022 hybrid Fenix/Kokkos resilience paper.

This package implements, in pure Python on top of a deterministic
discrete-event cluster simulator, the full layered resilience system the
paper describes:

- :mod:`repro.sim` -- discrete-event engine, cluster/network/filesystem model,
  failure injection (substitute for the paper's 100-node Cray XC40).
- :mod:`repro.mpi` -- simulated MPI with the ULFM fault-tolerance extensions
  (revoke / shrink / agree / failure acknowledgement).
- :mod:`repro.fenix` -- process-resilience layer: spare ranks, in-place
  communicator repair, long-jump recovery, rank roles, IMR data store.
- :mod:`repro.kokkos` -- Kokkos analogue: labelled Views over numpy,
  parallel dispatch, global view registry with alias/duplicate tracking.
- :mod:`repro.veloc` -- VeloC analogue: node-local scratch + asynchronous
  server flush to a contended parallel filesystem, versioned restart.
- :mod:`repro.core` -- the paper's contribution: the Kokkos-Resilience-style
  control-flow layer that glues the three layers together.
- :mod:`repro.apps` -- Heatdis and MiniMD benchmark applications.
- :mod:`repro.harness` -- resilience strategies, job runner, time accounting.
- :mod:`repro.experiments` -- drivers regenerating every figure in the paper.

See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
reproductions of the paper's evaluation.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
