"""Exporters: Chrome trace-event JSON (Perfetto / chrome://tracing),
metrics JSON, and a validator for the trace-event subset we emit.

Track layout: pid 0 holds one tid per source, rank tracks first in
numeric order (``rank0``, ``rank1``, ...), then protocol tracks
(``fenix``, ``mpi``, ``engine``, ``job``), then per-node VeloC server
tracks.  Sources named ``*.rankN`` (legacy :class:`~repro.sim.trace.Trace`
records such as ``veloc.rank3``) are folded onto rank N's track so one
row tells a rank's whole story across all three resilience layers.

Times are simulated seconds; the trace-event ``ts``/``dur`` fields are
microseconds, matching what Perfetto expects.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional, Tuple

_RANK_SUFFIX = re.compile(r"^(?:[\w.]+\.)?rank(\d+)$")

#: event phases this exporter emits (the subset the validator accepts)
PHASES = {"X", "i", "M"}


def track_for_source(source: str) -> str:
    """Fold per-layer rank sources (``veloc.rank3``, ``imr.rank3``) onto
    the process-rank track (``rank3``)."""
    m = _RANK_SUFFIX.match(source)
    if m:
        return f"rank{m.group(1)}"
    return source


def _track_sort_key(track: str) -> Tuple[int, int, str]:
    m = re.match(r"^rank(\d+)$", track)
    if m:
        return (0, int(m.group(1)), track)
    order = {"fenix": 1, "mpi": 2, "engine": 3, "job": 4}
    if track in order:
        return (order[track], 0, track)
    return (5, 0, track)


def _json_safe(value: Any) -> Any:
    """Coerce span/trace fields to JSON-serializable shapes."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


def chrome_trace_events(telemetry: Any, trace: Any = None) -> List[Dict]:
    """Flatten telemetry spans/instants (plus optional legacy
    :class:`~repro.sim.trace.Trace` records) into trace-event dicts."""
    tracer = telemetry.tracer
    end_of_time = 0.0
    raw: List[Tuple[float, str, Dict]] = []  # (time, track, event)

    for rec in tracer.spans:
        end = rec.end if rec.end is not None else rec.start
        end_of_time = max(end_of_time, end)
    for rec in tracer.instants:
        end_of_time = max(end_of_time, rec.start)
    if trace is not None:
        for tr in trace:
            end_of_time = max(end_of_time, tr.time)

    for rec in tracer.spans:
        track = track_for_source(rec.source)
        end = rec.end if rec.end is not None else end_of_time
        args = dict(_json_safe(rec.fields))
        if rec.error:
            args["error"] = rec.error
        if rec.end is None:
            args["unterminated"] = True
        raw.append((
            rec.start,
            track,
            {
                "name": rec.name,
                "cat": rec.name.split(".", 1)[0],
                "ph": "X",
                "ts": rec.start * 1e6,
                "dur": max(0.0, (end - rec.start)) * 1e6,
                "args": args,
            },
        ))
    for rec in tracer.instants:
        raw.append((
            rec.start,
            track_for_source(rec.source),
            {
                "name": rec.name,
                "cat": rec.name.split(".", 1)[0],
                "ph": "i",
                "s": "t",
                "ts": rec.start * 1e6,
                "args": dict(_json_safe(rec.fields)),
            },
        ))
    if trace is not None:
        for tr in trace:
            raw.append((
                tr.time,
                track_for_source(tr.source),
                {
                    "name": tr.kind,
                    "cat": "trace",
                    "ph": "i",
                    "s": "t",
                    "ts": tr.time * 1e6,
                    "args": dict(_json_safe(tr.fields)),
                },
            ))
        dropped = getattr(trace, "dropped", 0)
        if dropped:
            # ring-buffer honesty: a truncated trace must say so in the
            # export instead of silently presenting a complete-looking view
            window = getattr(trace, "dropped_window", None) or (0.0, 0.0)
            raw.append((
                window[1],
                "trace",
                {
                    "name": "trace_dropped",
                    "cat": "trace",
                    "ph": "i",
                    "s": "g",  # global scope: the whole view is affected
                    "ts": window[1] * 1e6,
                    "args": {
                        "dropped": dropped,
                        "window": [window[0], window[1]],
                        "note": "ring buffer evicted records in this "
                                "window; earlier events are incomplete",
                    },
                },
            ))

    tracks = sorted({track for _, track, _ in raw}, key=_track_sort_key)
    tids = {track: i for i, track in enumerate(tracks)}
    events: List[Dict] = []
    for track in tracks:
        events.append({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": tids[track],
            "args": {"name": track},
        })
        events.append({
            "name": "thread_sort_index", "ph": "M", "pid": 0,
            "tid": tids[track], "args": {"sort_index": tids[track]},
        })
    for _time, track, ev in sorted(raw, key=lambda r: (r[0], r[1])):
        ev["pid"] = 0
        ev["tid"] = tids[track]
        events.append(ev)
    return events


def to_chrome_trace(telemetry: Any, trace: Any = None,
                    run_info: Optional[Dict] = None) -> Dict:
    """The full document: ``{"traceEvents": [...], ...}``."""
    doc: Dict[str, Any] = {
        "traceEvents": chrome_trace_events(telemetry, trace=trace),
        "displayTimeUnit": "ms",
    }
    if run_info:
        doc["otherData"] = _json_safe(run_info)
    return doc


def write_chrome_trace(path: str, telemetry: Any, trace: Any = None,
                       run_info: Optional[Dict] = None) -> Dict:
    doc = to_chrome_trace(telemetry, trace=trace, run_info=run_info)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
    return doc


def validate_chrome_trace(doc: Any) -> List[str]:
    """Check a document against the trace-event subset we emit.

    Returns a list of problems (empty = valid).  Intentionally a
    hand-rolled validator: the environment has no jsonschema package,
    and the checks double as documentation of the format.
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"document must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in PHASES:
            errors.append(f"{where}: bad phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            errors.append(f"{where}: missing name")
        if not isinstance(ev.get("pid"), int):
            errors.append(f"{where}: missing integer pid")
        if not isinstance(ev.get("tid"), int):
            errors.append(f"{where}: missing integer tid")
        if ph == "M":
            if not isinstance(ev.get("args"), dict):
                errors.append(f"{where}: metadata event needs args")
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: complete event needs dur >= 0")
        if ph == "i" and ev.get("s") not in ("t", "p", "g"):
            errors.append(f"{where}: instant event needs scope s")
    return errors


# -- metrics ------------------------------------------------------------


def metrics_to_dict(telemetry: Any, run_info: Optional[Dict] = None) -> Dict:
    doc = telemetry.metrics_summary()
    if run_info:
        doc["run"] = _json_safe(run_info)
    return doc


def write_metrics(path: str, telemetry: Any,
                  run_info: Optional[Dict] = None) -> Dict:
    doc = metrics_to_dict(telemetry, run_info=run_info)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
    return doc


def diff_metrics(a: Dict, b: Dict) -> List[Tuple[str, Optional[float], Optional[float]]]:
    """Compare two metrics documents' *merged* scalar values.

    Returns ``(metric, value_a, value_b)`` rows for every counter total,
    gauge high-water mark, and histogram count/total that differs
    (``None`` marks a metric absent on one side).
    """

    def scalars(doc: Dict) -> Dict[str, float]:
        merged = doc.get("merged", doc)
        out: Dict[str, float] = {}
        for name, v in merged.get("counters", {}).items():
            out[f"counter:{name}"] = v
        for name, g in merged.get("gauges", {}).items():
            out[f"gauge:{name}.high"] = g["high"]
        for name, h in merged.get("histograms", {}).items():
            out[f"histogram:{name}.count"] = h["count"]
            out[f"histogram:{name}.total"] = h["total"]
        return out

    sa, sb = scalars(a), scalars(b)
    rows = []
    for key in sorted(set(sa) | set(sb)):
        va, vb = sa.get(key), sb.get(key)
        if va != vb:
            rows.append((key, va, vb))
    return rows


def out_of_tolerance(
    rows: List[Tuple[str, Optional[float], Optional[float]]],
    tolerance: float,
) -> List[Tuple[str, Optional[float], Optional[float]]]:
    """Diff rows whose relative difference exceeds ``tolerance``.

    A metric absent on one side is always out of tolerance (structural
    difference, not noise).  ``tolerance`` is relative to the larger
    magnitude, so 0.05 means "within 5%"; 0.0 means byte-for-byte."""
    out = []
    for key, va, vb in rows:
        if va is None or vb is None:
            out.append((key, va, vb))
            continue
        scale = max(abs(va), abs(vb))
        if scale == 0.0:
            continue
        if abs(va - vb) / scale > tolerance:
            out.append((key, va, vb))
    return out
