"""Telemetry CLI: run an experiment with full instrumentation and export.

Usage (repository root, ``PYTHONPATH=src``)::

    python -m repro.telemetry run --app heatdis --strategy fenix_veloc \
        --ranks 4 --kill-rank 2 --out /tmp/run1 --timeline
    python -m repro.telemetry validate /tmp/run1/trace.json
    python -m repro.telemetry diff /tmp/run1/metrics.json /tmp/run2/metrics.json

``run`` executes one named experiment with telemetry enabled, writes
``trace.json`` (Chrome trace-event format -- load it at https://ui.perfetto.dev
or chrome://tracing) and ``metrics.json`` into ``--out``, validates the
exported trace, and prints a metrics digest (plus the failure timeline
with ``--timeline``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional

from repro.report.compare import (
    EXIT_BAD_INPUT,
    Delta,
    add_budget_flag,
    budget_verdict,
    format_deltas,
    over_budget,
)
from repro.telemetry.collector import Telemetry
from repro.telemetry.export import (
    diff_metrics,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.telemetry.timeline import failure_timeline

APPS = ("heatdis", "heatdis2d", "minimd")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Run, export, and compare instrumented experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one experiment with telemetry on")
    run.add_argument("--app", choices=APPS, default="heatdis")
    run.add_argument("--strategy", default="fenix_veloc",
                     help="a strategy name from repro.harness.strategies")
    run.add_argument("--ranks", type=int, default=4)
    run.add_argument("--iters", type=int, default=30,
                     help="iterations / MD steps")
    run.add_argument("--interval", type=int, default=10,
                     help="checkpoint interval (iterations)")
    run.add_argument("--bytes", type=float, default=16e6,
                     help="modelled checkpoint bytes per rank")
    run.add_argument("--spares", type=int, default=1)
    run.add_argument("--kill-rank", type=int, default=None,
                     help="inject one failure on this rank")
    run.add_argument("--kill-after-checkpoint", type=int, default=1,
                     help="die ~95%% of the way past this checkpoint number")
    run.add_argument("--seed", type=int, default=20220906)
    run.add_argument("--out", default="telemetry-out",
                     help="output directory for trace.json / metrics.json")
    run.add_argument("--timeline", action="store_true",
                     help="print the failure timeline")
    run.add_argument("--timeline-limit", type=int, default=120)

    val = sub.add_parser("validate",
                         help="validate an exported trace-event JSON file")
    val.add_argument("trace", help="path to trace.json")

    diff = sub.add_parser("diff", help="compare two metrics.json files")
    diff.add_argument("a")
    diff.add_argument("b")
    add_budget_flag(diff, 0.0,
                    "relative tolerance (0.05 = within 5%%); exits "
                    "non-zero when any metric differs by more "
                    "(default 0: any difference fails)")
    return parser


def _run(args: argparse.Namespace) -> int:
    # imported here so `validate`/`diff` stay importable without the
    # harness (and to keep package import acyclic)
    from repro.experiments.common import paper_env
    from repro.harness.runner import (
        run_heatdis2d_job,
        run_heatdis_job,
        run_minimd_job,
    )
    from repro.harness.strategies import STRATEGIES
    from repro.sim.failures import IterationFailure, NoFailures

    if args.strategy not in STRATEGIES:
        print(f"unknown strategy {args.strategy!r}; choose from: "
              + ", ".join(sorted(STRATEGIES)), file=sys.stderr)
        return 2
    strategy = STRATEGIES[args.strategy]
    n_spares = args.spares if strategy.fenix else 0
    n_nodes = args.ranks + max(n_spares, 1)
    env = paper_env(n_nodes, n_spares=n_spares, seed=args.seed,
                    pfs_servers=2)

    plan = NoFailures()
    if args.kill_rank is not None:
        if not 0 <= args.kill_rank < args.ranks:
            print(f"--kill-rank {args.kill_rank} out of range for "
                  f"{args.ranks} ranks", file=sys.stderr)
            return 2
        plan = IterationFailure.between_checkpoints(
            args.kill_rank, args.interval, args.kill_after_checkpoint
        )

    tel = Telemetry(enabled=True)
    if args.app == "heatdis":
        from repro.apps.heatdis import HeatdisConfig
        cfg = HeatdisConfig(n_iters=args.iters,
                            modeled_bytes_per_rank=args.bytes)
        report = run_heatdis_job(env, args.strategy, args.ranks, cfg,
                                 args.interval, plan=plan, telemetry=tel)
    elif args.app == "heatdis2d":
        from repro.apps.heatdis2d import Heatdis2DConfig
        cfg = Heatdis2DConfig(n_iters=args.iters,
                              modeled_bytes_per_rank=args.bytes)
        report = run_heatdis2d_job(env, args.strategy, args.ranks, cfg,
                                   args.interval, plan=plan, telemetry=tel)
    else:
        from repro.apps.minimd import MiniMDConfig
        cfg = MiniMDConfig(n_steps=args.iters)
        report = run_minimd_job(env, args.strategy, args.ranks, cfg,
                                args.interval, plan=plan, telemetry=tel)

    # the runner recorded a legacy Trace alongside the spans and handed
    # it back on the telemetry object
    trace = tel.trace
    run_info = {
        "app": report.app,
        "strategy": report.strategy,
        "n_ranks": report.n_ranks,
        "wall_time": report.wall_time,
        "attempts": report.attempts,
        "failures": report.failures,
    }

    os.makedirs(args.out, exist_ok=True)
    trace_path = os.path.join(args.out, "trace.json")
    metrics_path = os.path.join(args.out, "metrics.json")
    doc = write_chrome_trace(trace_path, tel, trace=trace, run_info=run_info)
    write_metrics(metrics_path, tel, run_info=run_info)

    problems = validate_chrome_trace(doc)
    if problems:
        for p in problems[:20]:
            print(f"INVALID: {p}", file=sys.stderr)
        return 1

    merged = tel.merged_metrics().snapshot()
    print(f"{report.app} / {report.strategy}: wall={report.wall_time:.3f}s "
          f"attempts={report.attempts} failures={report.failures}")
    print(f"wrote {trace_path} ({len(doc['traceEvents'])} events, valid) "
          f"and {metrics_path}")
    counters = merged["counters"]
    if counters:
        print("counters:")
        for name, value in sorted(counters.items()):
            print(f"  {name} = {value:g}")
    if args.timeline:
        print()
        print(failure_timeline(tel, trace=trace, limit=args.timeline_limit))
    return 0


def _load_json(path: str):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except OSError as exc:
        print(f"cannot read {path}: {exc.strerror}", file=sys.stderr)
    except json.JSONDecodeError as exc:
        print(f"{path} is not valid JSON: {exc}", file=sys.stderr)
    return None


def _validate(args: argparse.Namespace) -> int:
    doc = _load_json(args.trace)
    if doc is None:
        return 2
    problems = validate_chrome_trace(doc)
    if problems:
        for p in problems:
            print(f"INVALID: {p}", file=sys.stderr)
        return 1
    n = len(doc.get("traceEvents", []))
    print(f"{args.trace}: valid ({n} events)")
    return 0


def _diff(args: argparse.Namespace) -> int:
    da = _load_json(args.a)
    db = _load_json(args.b)
    if da is None or db is None:
        return EXIT_BAD_INPUT
    rows = diff_metrics(da, db)
    if not rows:
        print("metrics identical")
        return 0
    # symmetric mode: telemetry diffs care about drift in either
    # direction, unlike the profile CLI's growth-only overhead budget
    deltas = [Delta(name, va, vb) for name, va, vb in rows]
    failing = over_budget(deltas, args.budget, mode="symmetric")
    for line in format_deltas(deltas, failing, mode="symmetric"):
        print(line)
    code, verdict = budget_verdict(failing, args.budget, what="metric")
    print(verdict, file=sys.stderr if failing else sys.stdout)
    return code


def main(argv: Optional[list] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _run(args)
    if args.command == "validate":
        return _validate(args)
    return _diff(args)


if __name__ == "__main__":  # pragma: no cover
    try:
        sys.exit(main())
    except BrokenPipeError:
        # output piped into e.g. `head`; exit quietly like other CLIs
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
