"""Span-based tracing over simulated time.

A *span* is a named interval on a *source* track (``rank3``,
``veloc.server0``, ``engine``); an *instant* is a zero-duration marker.
Spans on the same source nest: the span open at entry time becomes the
parent, giving the parent/child causality the Chrome trace viewer renders
as stacked slices.  Spans opened across ``yield`` points in simulated
processes close at the simulated time the block exits -- including
unwinding through a failure (``FenixLongJump``, ``RankKilledError``),
in which case the span records the exception type as its ``error``.

The tracer reads time from a bound *clock* (any object with a ``now``
attribute -- in practice :class:`repro.sim.engine.Engine`); nothing here
imports the simulator, so the lowest layers can import this package
without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass
class SpanRecord:
    """One closed-over interval (or instant, when ``end == start``)."""

    sid: int
    source: str
    name: str
    start: float
    end: Optional[float] = None
    parent: Optional[int] = None
    fields: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    @property
    def open(self) -> bool:
        return self.end is None

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]


class _SpanHandle:
    """Context manager for one span; re-entrant use is not supported."""

    __slots__ = ("_tracer", "_source", "_name", "_fields", "record")

    def __init__(self, tracer: "Tracer", source: str, name: str,
                 fields: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._source = source
        self._name = name
        self._fields = fields
        self.record: Optional[SpanRecord] = None

    def __enter__(self) -> SpanRecord:
        self.record = self._tracer._open(self._source, self._name, self._fields)
        return self.record

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close(self.record, exc_type)
        return None  # never swallow


class _NullSpan:
    """Shared no-op context manager: the disabled-telemetry fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()


class Tracer:
    """Records spans and instants against a simulated clock."""

    def __init__(self, clock: Any = None) -> None:
        self._clock = clock
        self.spans: List[SpanRecord] = []
        self.instants: List[SpanRecord] = []
        self._stacks: Dict[str, List[SpanRecord]] = {}
        self._next_id = 0

    def bind(self, clock: Any) -> None:
        """Attach the clock (the engine); idempotent."""
        self._clock = clock

    @property
    def now(self) -> float:
        return self._clock.now if self._clock is not None else 0.0

    # -- recording ------------------------------------------------------

    def span(self, source: str, name: str, **fields: Any) -> _SpanHandle:
        """Open a span on ``source`` for the duration of a ``with`` block."""
        return _SpanHandle(self, source, name, fields)

    def instant(self, source: str, name: str, **fields: Any) -> SpanRecord:
        """Record a zero-duration marker, parented to the open span."""
        now = self.now
        rec = SpanRecord(
            sid=self._alloc_id(),
            source=source,
            name=name,
            start=now,
            end=now,
            parent=self._parent_id(source),
            fields=fields,
        )
        self.instants.append(rec)
        return rec

    def _alloc_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _parent_id(self, source: str) -> Optional[int]:
        stack = self._stacks.get(source)
        return stack[-1].sid if stack else None

    def _open(self, source: str, name: str, fields: Dict[str, Any]) -> SpanRecord:
        rec = SpanRecord(
            sid=self._alloc_id(),
            source=source,
            name=name,
            start=self.now,
            parent=self._parent_id(source),
            fields=fields,
        )
        self.spans.append(rec)
        self._stacks.setdefault(source, []).append(rec)
        return rec

    def _close(self, rec: Optional[SpanRecord], exc_type: Optional[type]) -> None:
        if rec is None:  # pragma: no cover - enter never ran
            return
        rec.end = self.now
        if exc_type is not None:
            rec.error = exc_type.__name__
        stack = self._stacks.get(rec.source)
        # A killed process may leave descendants unclosed; closing a span
        # closes everything above it on its source's stack at this time.
        if stack and rec in stack:
            while stack:
                top = stack.pop()
                if top.end is None:
                    top.end = rec.end
                    top.error = top.error or rec.error
                if top is rec:
                    break

    # -- queries --------------------------------------------------------

    def open_spans(self, source: Optional[str] = None) -> List[SpanRecord]:
        if source is not None:
            return list(self._stacks.get(source, []))
        return [s for stack in self._stacks.values() for s in stack]

    def all_records(self) -> Iterator[SpanRecord]:
        yield from self.spans
        yield from self.instants

    def find(
        self,
        name: Optional[str] = None,
        source: Optional[str] = None,
        predicate: Optional[Callable[[SpanRecord], bool]] = None,
    ) -> List[SpanRecord]:
        out = []
        for rec in self.all_records():
            if name is not None and rec.name != name:
                continue
            if source is not None and rec.source != source:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def first(self, name: str, source: Optional[str] = None) -> Optional[SpanRecord]:
        hits = self.find(name=name, source=source)
        return min(hits, key=lambda r: (r.start, r.sid)) if hits else None

    def sources(self) -> List[str]:
        return sorted({r.source for r in self.all_records()})

    def clear(self) -> None:
        self.spans.clear()
        self.instants.clear()
        self._stacks.clear()

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants)
