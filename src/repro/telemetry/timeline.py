"""Plain-text failure-timeline renderer.

Interleaves span begins/ends, instants, and legacy trace records into one
time-ordered listing -- the quickest way to answer "what happened, in
what order, on which rank" after a failure-injection run without opening
Perfetto.  ``only=`` narrows to resilience-relevant events (the default
failure view used by the CLI's ``--timeline``).
"""

from __future__ import annotations

import re
from typing import Any, List, Optional, Tuple

#: event-name pattern covering the failure/recovery protocol across layers
FAILURE_PATTERN = (
    r"kill|killed|dead|crash|detect|revoke|shrink|agree|repair|role|spare|"
    r"restart|recover|restore|recompute|abort|flush|drain|checkpoint|"
    r"region|reset|submit|dropped|gate|finalize"
)

#: row marker for annotations that must survive any event filter
#: (currently only the ring-buffer drop notice)
ANNOTATION_TAG = "!"


def _rows(telemetry: Any, trace: Any) -> List[Tuple[float, int, str, str, str]]:
    """(time, tiebreak, source, tag, text) rows, unsorted."""
    rows: List[Tuple[float, int, str, str, str]] = []
    tracer = telemetry.tracer
    for rec in tracer.spans:
        detail = _fields_text(rec.fields)
        rows.append((rec.start, rec.sid * 2, rec.source, "+", rec.name
                     + (f" {detail}" if detail else "")))
        if rec.end is not None:
            suffix = f" [{rec.end - rec.start:.6g}s]"
            if rec.error:
                suffix += f" !{rec.error}"
            rows.append((rec.end, rec.sid * 2 + 1, rec.source, "-",
                         rec.name + suffix))
    for rec in tracer.instants:
        detail = _fields_text(rec.fields)
        rows.append((rec.start, rec.sid * 2, rec.source, "*", rec.name
                     + (f" {detail}" if detail else "")))
    if trace is not None:
        for i, tr in enumerate(trace):
            detail = _fields_text(tr.fields)
            rows.append((tr.time, 10**9 + i, tr.source, ".", tr.kind
                         + (f" {detail}" if detail else "")))
        rows.extend(dropped_rows(trace))
    return rows


def dropped_rows(trace: Any) -> List[Tuple[float, int, str, str, str]]:
    """Annotation rows reporting ring-buffer evictions (empty if none).

    Placed at the end of the dropped window so the reader sees, in time
    order, exactly where the visible record stream resumes."""
    dropped = getattr(trace, "dropped", 0)
    window = getattr(trace, "dropped_window", None)
    if not dropped:
        return []
    lo, hi = window if window is not None else (float("nan"), float("nan"))
    return [(
        hi, -1, "trace", ANNOTATION_TAG,
        f"trace_dropped ({dropped} records evicted in "
        f"t=[{lo:.6f}, {hi:.6f}]; events before this point are incomplete)",
    )]


def format_rows(rows: List[Tuple[float, int, str, str, str]]) -> str:
    """Render pre-filtered ``(time, tiebreak, source, tag, text)`` rows as
    the aligned text listing (shared by the timeline and by
    ``repro.monitor``'s recovery explainer)."""
    if not rows:
        return "(no events)"
    src_width = max(len(r[2]) for r in rows)
    lines = [f"{'time(s)':>14}  {'source':<{src_width}}  event"]
    for time, _tb, source, tag, text in rows:
        lines.append(f"{time:14.6f}  {source:<{src_width}}  {tag} {text}")
    return "\n".join(lines)


def _fields_text(fields: dict) -> str:
    if not fields:
        return ""
    parts = []
    for k, v in fields.items():
        if isinstance(v, float):
            parts.append(f"{k}={v:.6g}")
        else:
            parts.append(f"{k}={v}")
    return "(" + " ".join(parts) + ")"


def render_timeline(
    telemetry: Any,
    trace: Any = None,
    only: Optional[str] = None,
    sources: Optional[List[str]] = None,
    limit: Optional[int] = None,
) -> str:
    """Render the merged event stream as aligned text.

    Args:
        only: regex over event names (``FAILURE_PATTERN`` gives the
            failure/recovery view); ``None`` keeps everything.
        sources: restrict to these sources (exact match).
        limit: keep only the first N lines after filtering.

    Markers: ``+`` span begin, ``-`` span end (with duration), ``*``
    telemetry instant, ``.`` legacy trace record.
    """
    rows = _rows(telemetry, trace)
    if only is not None:
        pat = re.compile(only)
        # annotation rows (dropped-window notices) survive every filter:
        # hiding them would misrepresent a truncated trace as complete
        rows = [r for r in rows if r[3] == ANNOTATION_TAG or pat.search(r[4])]
    if sources is not None:
        allowed = set(sources)
        rows = [r for r in rows
                if r[3] == ANNOTATION_TAG or r[2] in allowed]
    rows.sort(key=lambda r: (r[0], r[1]))
    if limit is not None:
        # the limit counts ordinary events only; annotation rows
        # (dropped-window notices) always survive, like the filters
        kept, seen = [], 0
        for r in rows:
            if r[3] == ANNOTATION_TAG:
                kept.append(r)
            elif seen < limit:
                kept.append(r)
                seen += 1
        rows = kept
    return format_rows(rows)


def failure_timeline(telemetry: Any, trace: Any = None,
                     limit: Optional[int] = None) -> str:
    """The resilience-protocol view: kills, revokes, repairs, recovery."""
    return render_timeline(telemetry, trace=trace, only=FAILURE_PATTERN,
                           limit=limit)
