"""Overhead-bounded adaptive sampling for the telemetry span path.

Telemetry must observe a run without becoming the run's cost.  The
sampler bounds record volume with *per-kind head sampling*: for each
span name (or trace-record kind) the first ``head`` occurrences are
always kept, after which one in ``stride`` survives; every time another
``budget_per_kind`` records of a kind have been kept past the head, the
stride doubles (up to ``max_stride``), so a kind that keeps firing gets
progressively cheaper -- the *adaptive* part.  Decisions are pure
functions of per-kind occurrence counts, never of wall time or
randomness, so a sampled run is bit-reproducible.

**Hard exemptions keep the analysis layers sound.**  Only names listed
in :data:`SAMPLEABLE_SPANS` / :data:`SAMPLEABLE_SPAN_PREFIXES` /
:data:`SAMPLEABLE_TRACE_KINDS` may ever be dropped; everything else --
in particular every trace kind a :mod:`repro.monitor` state machine
consumes and every failure/recovery span :mod:`repro.profile` walks --
is always kept, so monitors and the recovery critical path never see a
sampling-induced gap.  The default-deny direction matters: a span name
added tomorrow is protected until someone proves it safe to sample.

Drop accounting is exact: the sampler counts every suppressed record
per kind, and :class:`~repro.sim.trace.Trace` folds record drops into
the same ``dropped``/``dropped_window`` machinery the ring buffer uses,
so a consumer of a sampled trace can always say *what it did not see*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.util.errors import ConfigError

#: span names that may be sampled: per-iteration application/MPI work
#: whose volume dwarfs everything else and whose absence degrades only
#: optional analyses (flame graphs thin out; attribution coarsens).
#: Every failure/recovery span (fenix.*, job.*, kr.restore/latest/
#: commit, veloc.checkpoint/recover, imr.*, recompute, rank_killed,
#: ...) is protected by omission.
SAMPLEABLE_SPANS = frozenset({
    "compute",
    "sleep",
    "kr.region",
    "veloc.flush",
    "veloc.drain",
    "veloc.flush_wait",
    "veloc.submit",
})

#: sampled by prefix: the per-call MPI op spans ("mpi.send", ...)
SAMPLEABLE_SPAN_PREFIXES: Tuple[str, ...] = ("mpi.",)

#: trace-record kinds that may be sampled.  The monitor suite consumes
#: comm_create, lifecycle kinds, revoke/agree/shrink/repair/abort, role,
#: gate_arrive, finalize_arrive, spare_activated, checkpoint, recover,
#: flush_submit/flush_done, imr_*, detect and kr_region_commit -- all of
#: which are protected by omission from this set.
SAMPLEABLE_TRACE_KINDS = frozenset({
    "kr_region_begin",
})


def span_sampleable(name: str) -> bool:
    """True when the sampler is *allowed* to drop spans of this name."""
    return name in SAMPLEABLE_SPANS or name.startswith(SAMPLEABLE_SPAN_PREFIXES)


def record_sampleable(kind: str) -> bool:
    """True when the sampler is *allowed* to drop records of this kind."""
    return kind in SAMPLEABLE_TRACE_KINDS


@dataclass(frozen=True)
class SamplingPolicy:
    """Knobs of the adaptive head sampler (frozen: cache-hashable,
    picklable, safe to embed in a :class:`~repro.parallel.CellSpec`)."""

    #: occurrences of each kind always kept before sampling starts
    head: int = 64
    #: initial keep-1-in-N stride past the head
    stride: int = 10
    #: kept records (past the head) per stride doubling
    budget_per_kind: int = 512
    #: escalation ceiling
    max_stride: int = 4096

    def __post_init__(self) -> None:
        if self.head < 0:
            raise ConfigError(f"sampling head must be >= 0, got {self.head}")
        if self.stride < 1:
            raise ConfigError(f"sampling stride must be >= 1, got {self.stride}")
        if self.budget_per_kind < 1:
            raise ConfigError(
                f"budget_per_kind must be >= 1, got {self.budget_per_kind}")
        if self.max_stride < self.stride:
            raise ConfigError(
                f"max_stride ({self.max_stride}) must be >= stride "
                f"({self.stride})")

    @classmethod
    def tightest(cls) -> "SamplingPolicy":
        """The most aggressive supported setting (CI's stress point)."""
        return cls(head=8, stride=16, budget_per_kind=64, max_stride=8192)

    def to_dict(self) -> Dict[str, int]:
        return {
            "head": self.head,
            "stride": self.stride,
            "budget_per_kind": self.budget_per_kind,
            "max_stride": self.max_stride,
        }


class SpanSampler:
    """Stateful per-run sampler shared by the tracer and the trace.

    One instance serves one job: :class:`~repro.telemetry.collector
    .Telemetry` consults :meth:`keep_span` before opening a span or
    recording an instant, and :class:`~repro.sim.trace.Trace` consults
    :meth:`keep_record` before materializing a record.  Not
    thread-safe; the simulator is single-threaded by construction.
    """

    def __init__(self, policy: Optional[SamplingPolicy] = None) -> None:
        self.policy = policy if policy is not None else SamplingPolicy()
        self._seen: Dict[str, int] = {}
        self._kept_past_head: Dict[str, int] = {}
        self._stride: Dict[str, int] = {}
        #: exact per-name drop counts (the accounting the summary reports)
        self.dropped_spans: Dict[str, int] = {}
        self.dropped_records: Dict[str, int] = {}

    # -- decisions --------------------------------------------------------

    def keep_span(self, name: str) -> bool:
        if not span_sampleable(name):
            return True
        if self._decide("span:" + name):
            return True
        self.dropped_spans[name] = self.dropped_spans.get(name, 0) + 1
        return False

    def keep_record(self, kind: str) -> bool:
        if not record_sampleable(kind):
            return True
        if self._decide("rec:" + kind):
            return True
        self.dropped_records[kind] = self.dropped_records.get(kind, 0) + 1
        return False

    def _decide(self, key: str) -> bool:
        p = self.policy
        seen = self._seen.get(key, 0) + 1
        self._seen[key] = seen
        if seen <= p.head:
            return True
        stride = self._stride.get(key, p.stride)
        if (seen - p.head - 1) % stride != 0:
            return False
        kept = self._kept_past_head.get(key, 0) + 1
        self._kept_past_head[key] = kept
        if kept % p.budget_per_kind == 0 and stride < p.max_stride:
            self._stride[key] = min(p.max_stride, stride * 2)
        return True

    # -- accounting -------------------------------------------------------

    @property
    def dropped_span_total(self) -> int:
        return sum(self.dropped_spans.values())

    @property
    def dropped_record_total(self) -> int:
        return sum(self.dropped_records.values())

    @property
    def dropped_total(self) -> int:
        return self.dropped_span_total + self.dropped_record_total

    def summary(self) -> Dict:
        """JSON-ready drop accounting (lands in ``RunReport.telemetry``)."""
        return {
            "policy": self.policy.to_dict(),
            "dropped_spans": dict(sorted(self.dropped_spans.items())),
            "dropped_records": dict(sorted(self.dropped_records.items())),
            "dropped_span_total": self.dropped_span_total,
            "dropped_record_total": self.dropped_record_total,
            "dropped_total": self.dropped_total,
        }
