"""Metric primitives: counters, gauges, log-bucketed histograms.

A :class:`MetricsRegistry` owns named metrics for one scope (the job, or
one simulated rank).  Registries are mergeable -- the harness keeps one
registry per rank and folds them into a job-level view at the end of a
run -- and resettable without invalidating handles components already
hold (the restart case: a relaunched job starts its counters over, but
live :class:`Counter` objects keep working).

Everything here is plain arithmetic on plain objects: no clock, no
simulator imports, so the package can be loaded by the lowest layers
without cycles.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, Optional, Tuple

from repro.util.errors import ConfigError


class Counter:
    """Monotonically increasing total (bytes checkpointed, revokes, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0


class Gauge:
    """Last-written level plus its high-water mark (backlog, pool depth)."""

    __slots__ = ("name", "value", "high")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.high = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)
        if self.value > self.high:
            self.high = self.value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)

    def reset(self) -> None:
        self.value = 0.0
        self.high = 0.0


class Histogram:
    """Log-bucketed distribution (latencies, sizes, fan-outs).

    Bucket ``i`` holds observations in ``(base**(i-1), base**i]``; values
    at or below zero land in a dedicated underflow bucket (key ``None``).
    Log bucketing keeps the footprint tiny for values spanning many
    orders of magnitude (microsecond latencies to multi-second flushes).
    """

    __slots__ = ("name", "base", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str, base: float = 2.0) -> None:
        if base <= 1.0:
            raise ConfigError(f"histogram {name}: base must exceed 1, got {base}")
        self.name = name
        self.base = float(base)
        #: exponent -> count; key None is the <=0 underflow bucket
        self.buckets: Dict[Optional[int], int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def bucket_index(self, value: float) -> Optional[int]:
        if value <= 0.0:
            return None
        return math.ceil(math.log(value, self.base) - 1e-12)

    def bucket_bounds(self, index: Optional[int]) -> Tuple[float, float]:
        """The ``(lo, hi]`` range of one bucket (underflow: ``(-inf, 0]``)."""
        if index is None:
            return (-math.inf, 0.0)
        return (self.base ** (index - 1), self.base ** index)

    def observe(self, value: float) -> None:
        idx = self.bucket_index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        if other.base != self.base:
            raise ConfigError(
                f"histogram {self.name}: cannot merge base {other.base} "
                f"into base {self.base}"
            )
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def reset(self) -> None:
        self.buckets.clear()
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def to_dict(self) -> Dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "base": self.base,
            # JSON keys must be strings; None -> "underflow"
            "buckets": {
                ("underflow" if k is None else str(k)): v
                for k, v in sorted(
                    self.buckets.items(), key=lambda kv: (kv[0] is None, kv[0] or 0)
                )
            },
        }


class MetricsRegistry:
    """Named metrics for one scope; get-or-create accessors.

    Merge semantics (cross-rank aggregation): counters add, gauges keep
    the maximum level/high-water mark, histograms add bucket-wise.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- accessors ------------------------------------------------------

    def counter(self, name: str) -> Counter:
        self._check_free(name, self._counters)
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        self._check_free(name, self._gauges)
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str, base: float = 2.0) -> Histogram:
        self._check_free(name, self._histograms)
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, base=base)
        return metric

    def _check_free(self, name: str, own: Dict) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not own and name in family:
                raise ConfigError(f"metric {name!r} already registered "
                                  "with a different type")

    # -- convenience ----------------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- aggregation ----------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (cross-rank aggregation)."""
        for name, c in other._counters.items():
            self.counter(name).value += c.value
        for name, g in other._gauges.items():
            mine = self.gauge(name)
            mine.value = max(mine.value, g.value)
            mine.high = max(mine.high, g.high)
        for name, h in other._histograms.items():
            self.histogram(name, base=h.base).merge(h)

    def reset(self) -> None:
        """Zero every metric, keeping the objects live (restart semantics:
        components that cached a Counter keep charging the same one)."""
        for family in (self._counters, self._gauges, self._histograms):
            for metric in family.values():
                metric.reset()

    # -- export ---------------------------------------------------------

    def snapshot(self) -> Dict:
        """A JSON-serializable copy of every metric's current state."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {
                n: {"value": g.value, "high": g.high}
                for n, g in sorted(self._gauges.items())
            },
            "histograms": {
                n: h.to_dict() for n, h in sorted(self._histograms.items())
            },
        }

    def names(self) -> Iterator[str]:
        yield from self._counters
        yield from self._gauges
        yield from self._histograms

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<MetricsRegistry counters={len(self._counters)} "
                f"gauges={len(self._gauges)} histograms={len(self._histograms)}>")
