"""Observability across all three resilience layers.

The paper argues its layered-recovery claim from time breakdowns; this
package makes the reproduction's runs inspectable the same way:

- :mod:`repro.telemetry.metrics` -- counters, gauges, log-bucketed
  histograms; per-rank registries mergeable into a job view.
- :mod:`repro.telemetry.spans` -- span/instant tracing on simulated time
  with per-source parent/child nesting.
- :mod:`repro.telemetry.collector` -- the :class:`Telemetry` facade the
  layers instrument against; :data:`NULL_TELEMETRY` is the zero-cost
  disabled default every cluster starts with.
- :mod:`repro.telemetry.sampling` -- overhead-bounded adaptive head
  sampling for the span path, with hard exemptions for every
  protocol-critical kind (monitors and the profile critical path never
  see sampling gaps).
- :mod:`repro.telemetry.export` -- Chrome trace-event JSON (open in
  Perfetto or chrome://tracing), metrics JSON, schema validation, diffs.
- :mod:`repro.telemetry.timeline` -- plain-text failure timelines.
- ``python -m repro.telemetry`` -- run an experiment with telemetry on,
  export/validate traces, diff metrics between runs.

See docs/OBSERVABILITY.md for the hook points in each layer.
"""

from repro.telemetry.collector import NULL_TELEMETRY, Telemetry
from repro.telemetry.export import (
    chrome_trace_events,
    diff_metrics,
    metrics_to_dict,
    to_chrome_trace,
    track_for_source,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.sampling import SamplingPolicy, SpanSampler
from repro.telemetry.spans import SpanRecord, Tracer
from repro.telemetry.timeline import failure_timeline, render_timeline

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SamplingPolicy",
    "SpanRecord",
    "SpanSampler",
    "Tracer",
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "metrics_to_dict",
    "write_metrics",
    "diff_metrics",
    "track_for_source",
    "render_timeline",
    "failure_timeline",
]
