"""The telemetry facade every layer talks to.

One :class:`Telemetry` object serves a whole cluster/job.  It bundles a
:class:`~repro.telemetry.spans.Tracer` (span/instant recording on
simulated time), a job-level :class:`~repro.telemetry.metrics.MetricsRegistry`,
and one registry per simulated rank (merged on demand).

**Zero-cost when disabled** is a hard requirement: the simulator's hot
paths run with :data:`NULL_TELEMETRY`, whose ``enabled`` flag is False.
Instrumentation sites follow one of two patterns::

    with tel.span(f"rank{r}", "veloc.checkpoint", version=v):   # returns a
        ...                                    # shared no-op CM if disabled

    if tel.enabled:                            # guard everything heavier
        tel.rank_metrics(r).inc("veloc.checkpoint.bytes", nbytes)

Disabled calls never allocate (``span`` hands back the module-level
:data:`~repro.telemetry.spans.NULL_SPAN`), never touch the clock, and
never grow any list, so ``benchmarks/test_simulator_performance.py``
stays flat.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.sampling import SpanSampler
from repro.telemetry.spans import NULL_SPAN, SpanRecord, Tracer, _NullSpan, _SpanHandle


class Telemetry:
    """Metrics + spans for one job; disabled instances are no-ops."""

    def __init__(self, enabled: bool = True,
                 sampler: Optional[SpanSampler] = None) -> None:
        self.enabled = enabled
        self.tracer = Tracer()
        #: job-level metrics (server backlogs, spare-pool depth, revokes)
        self.metrics = MetricsRegistry()
        self._rank_metrics: Dict[int, MetricsRegistry] = {}
        #: the legacy event trace of the instrumented run, when the
        #: harness recorded one (exporters interleave it with spans)
        self.trace: Optional[Any] = None
        #: overhead-bounded adaptive sampler; None records everything.
        #: Shared with the run's Trace so drop accounting is one ledger.
        self.sampler = sampler

    # -- wiring ---------------------------------------------------------

    def bind(self, clock: Any) -> None:
        """Attach the simulated clock (called by the cluster)."""
        if self.enabled:
            self.tracer.bind(clock)

    # -- spans ----------------------------------------------------------

    def span(self, source: str, name: str,
             **fields: Any) -> Union[_SpanHandle, _NullSpan]:
        if not self.enabled:
            return NULL_SPAN
        # sampled-out spans take the disabled fast path: call sites
        # already guard field writes with ``if sp is not None``
        if self.sampler is not None and not self.sampler.keep_span(name):
            return NULL_SPAN
        return self.tracer.span(source, name, **fields)

    def instant(self, source: str, name: str,
                **fields: Any) -> Optional[SpanRecord]:
        if not self.enabled:
            return None
        if self.sampler is not None and not self.sampler.keep_span(name):
            return None
        return self.tracer.instant(source, name, **fields)

    # -- metrics --------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        if self.enabled:
            self.metrics.inc(name, amount)

    def set_gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.set_gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.observe(name, value)

    def rank_metrics(self, rank: int) -> MetricsRegistry:
        """The per-rank registry (created on first use).

        Callers on performance-relevant paths must guard with
        ``tel.enabled`` -- this accessor allocates.
        """
        reg = self._rank_metrics.get(rank)
        if reg is None:
            reg = self._rank_metrics[rank] = MetricsRegistry()
        return reg

    def reset_rank(self, rank: int) -> None:
        """Restart semantics: zero one rank's metrics, keeping handles live."""
        reg = self._rank_metrics.get(rank)
        if reg is not None:
            reg.reset()

    @property
    def ranks(self) -> Dict[int, MetricsRegistry]:
        return dict(self._rank_metrics)

    def merged_metrics(self) -> MetricsRegistry:
        """Job-level registry folded with every rank registry (counters
        sum, gauges keep maxima, histograms merge bucket-wise)."""
        merged = MetricsRegistry()
        merged.merge(self.metrics)
        for reg in self._rank_metrics.values():
            merged.merge(reg)
        return merged

    def metrics_summary(self) -> Dict:
        """JSON-ready snapshot: merged view plus the per-rank breakdown."""
        out = {
            "merged": self.merged_metrics().snapshot(),
            "job": self.metrics.snapshot(),
            "ranks": {
                str(r): reg.snapshot()
                for r, reg in sorted(self._rank_metrics.items())
            },
        }
        if self.sampler is not None:
            out["sampling"] = self.sampler.summary()
        return out

    def clear(self) -> None:
        self.tracer.clear()
        self.metrics.reset()
        self._rank_metrics.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return f"<Telemetry {state} spans={len(self.tracer)}>"


#: the shared disabled instance components default to
NULL_TELEMETRY = Telemetry(enabled=False)
