"""Reduction operators for the simulated collectives.

Operators work element-wise on numpy arrays and directly on Python
scalars, matching mpi4py's behaviour for the types our applications use.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np


class ReduceOp:
    """A named, associative binary reduction."""

    def __init__(self, name: str, fn: Callable[[Any, Any], Any]) -> None:
        self.name = name
        self._fn = fn

    def __call__(self, a: Any, b: Any) -> Any:
        return self._fn(a, b)

    def reduce(self, values: "list[Any]") -> Any:
        """Fold an ordered list of contributions."""
        if not values:
            raise ValueError(f"{self.name}: nothing to reduce")
        acc = values[0]
        for v in values[1:]:
            acc = self._fn(acc, v)
        return acc

    def __repr__(self) -> str:
        return f"ReduceOp({self.name})"


def _sum(a, b):
    return np.add(a, b)


def _prod(a, b):
    return np.multiply(a, b)


def _min(a, b):
    return np.minimum(a, b)


def _max(a, b):
    return np.maximum(a, b)


def _land(a, b):
    return np.logical_and(a, b)


def _lor(a, b):
    return np.logical_or(a, b)


SUM = ReduceOp("SUM", _sum)
PROD = ReduceOp("PROD", _prod)
MIN = ReduceOp("MIN", _min)
MAX = ReduceOp("MAX", _max)
LAND = ReduceOp("LAND", _land)
LOR = ReduceOp("LOR", _lor)
