"""The MPI world: a job of N rank processes on a cluster.

The :class:`World` owns rank-to-node placement, rank lifecycle (alive /
dead / finished), the failure-notification fan-out to communicators and
watchers (Fenix spares block on :meth:`failure_watch`), and
``MPI_COMM_WORLD``.

A world corresponds to one ``mpirun`` invocation.  Relaunch-based
resilience strategies create a *new* world on the same cluster for every
restart; Fenix-based strategies keep one world alive across failures.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, Generator, Iterator, List, Optional, Set

import numpy as np

from repro.mpi.comm import Communicator
from repro.mpi.handle import CommHandle
from repro.sim.cluster import Cluster
from repro.sim.engine import Event, Process
from repro.sim.failures import FailurePlan, NoFailures, RankKilledError
from repro.sim.node import Node
from repro.util.errors import ConfigError
from repro.util.timing import TimeAccount


class RankContext:
    """Everything private to one rank: placement, clock accounting, RNG."""

    def __init__(self, world: "World", rank: int, node: Node, rng: np.random.Generator):
        self.world = world
        self.rank = rank
        self.node = node
        self.rng = rng
        self.account = TimeAccount()
        self.alive = True
        #: scratch space for upper layers (Fenix role, KR context, ...)
        self.user: Dict[str, Any] = {}

    @property
    def engine(self):
        return self.world.engine

    def compute(
        self,
        work: Optional[float] = None,
        seconds: Optional[float] = None,
        jitter: float = 0.0,
        kind: str = "compute",
    ) -> Generator[Event, Any, float]:
        """Charge a block of local computation.

        ``work`` is divided by the node's throughput; ``seconds`` charges a
        fixed duration.  ``jitter`` applies multiplicative lognormal noise
        with unit mean (the paper's "performance variability ... a type of
        system noise"), drawn from this rank's private stream.
        Returns the charged duration.
        """
        if (work is None) == (seconds is None):
            raise ConfigError("compute() needs exactly one of work= or seconds=")
        dt = self.node.compute_time(work) if work is not None else float(seconds)
        if jitter > 0.0:
            # lognormal with E[factor]=1: exp(N(-s^2/2, s^2))
            dt *= float(np.exp(self.rng.normal(-0.5 * jitter**2, jitter)))
        congested = 0.0
        if self.node.active_flushes > 0:
            # the co-located checkpoint server steals memory bandwidth
            congested = dt * self.node.spec.flush_compute_steal
            dt += congested
        tel = self.engine.telemetry
        if tel.enabled:
            with tel.span(f"rank{self.rank}", "compute",
                          kind=kind, congestion=congested):
                yield self.engine.timeout(dt)
        else:
            yield self.engine.timeout(dt)
        self.account.charge(kind, dt)
        return dt

    def sleep(self, seconds: float, kind: Optional[str] = None):
        """Idle for ``seconds``; optionally charge it to a bucket."""
        tel = self.engine.telemetry
        if tel.enabled:
            with tel.span(f"rank{self.rank}", "sleep", kind=kind):
                yield self.engine.timeout(seconds)
        else:
            yield self.engine.timeout(seconds)
        if kind is not None:
            self.account.charge(kind, seconds)

    @contextmanager
    def recompute(self, iteration: int) -> Iterator[None]:
        """One re-executed iteration: charge the ``recompute`` bucket and
        record a span + counter so failure timelines show the recompute
        window the paper identifies as the bulk of recovery cost."""
        tel = self.engine.telemetry
        if tel.enabled:
            tel.rank_metrics(self.rank).inc("recompute.iterations")
        with tel.span(f"rank{self.rank}", "recompute", iteration=iteration):
            with self.account.label("recompute"):
                yield

    def __repr__(self) -> str:  # pragma: no cover
        state = "alive" if self.alive else "dead"
        return f"<RankContext rank={self.rank} on {self.node.name} {state}>"


class World:
    """One MPI job: rank processes, placement, failure tracking."""

    def __init__(
        self,
        cluster: Cluster,
        n_ranks: int,
        ranks_per_node: int = 1,
        name: str = "world",
    ) -> None:
        if n_ranks < 1:
            raise ConfigError("world needs at least one rank")
        if ranks_per_node < 1:
            raise ConfigError("ranks_per_node must be >= 1")
        if n_ranks > cluster.n_nodes * ranks_per_node:
            raise ConfigError(
                f"{n_ranks} ranks do not fit on {cluster.n_nodes} nodes "
                f"at {ranks_per_node} ranks/node"
            )
        self.cluster = cluster
        self.engine = cluster.engine
        self.network = cluster.network
        self.trace = cluster.trace
        self.name = name
        self.n_ranks = n_ranks
        self.ranks_per_node = ranks_per_node
        self._node_of: List[Node] = [
            cluster.node(r // ranks_per_node) for r in range(n_ranks)
        ]
        self.dead: Set[int] = set()
        self.errors: List[tuple] = []  # (rank, exception) for non-kill crashes
        self._comms: List[Communicator] = []
        self._death_listeners: List[Callable[[int], None]] = []
        self.contexts: Dict[int, RankContext] = {}
        self.procs: Dict[int, Process] = {}
        self._failure_event: Event = self.engine.event(name=f"{name}:failure")
        self.job_done: Event = self.engine.event(name=f"{name}:job_done")
        rng_factory = cluster.rng_factory.child(name)
        for r in range(n_ranks):
            self.contexts[r] = RankContext(
                self, r, self._node_of[r], rng_factory.stream(f"rank{r}")
            )
        self.comm_world = Communicator(self, list(range(n_ranks)), f"{name}.comm")

    # -- registration / lookups -----------------------------------------------

    def register_comm(self, comm: Communicator) -> None:
        self._comms.append(comm)

    def node_of_rank(self, world_rank: int) -> Node:
        return self._node_of[world_rank]

    def context(self, world_rank: int) -> RankContext:
        return self.contexts[world_rank]

    def comm_world_handle(self, world_rank: int) -> CommHandle:
        return CommHandle(self.comm_world, self.contexts[world_rank])

    def is_alive(self, world_rank: int) -> bool:
        return world_rank not in self.dead

    def alive_ranks(self) -> List[int]:
        return [r for r in range(self.n_ranks) if r not in self.dead]

    # -- lifecycle ---------------------------------------------------------------

    def spawn(
        self,
        rank: int,
        gen: Generator,
        failure_plan: Optional[FailurePlan] = None,
        name: str = "",
    ) -> Process:
        """Launch rank ``rank``'s main as a process and watch its exit."""
        if rank in self.procs:
            raise ConfigError(f"rank {rank} already spawned")
        proc = self.engine.process(gen, name=name or f"{self.name}:rank{rank}")
        self.procs[rank] = proc
        proc.add_callback(lambda ev, r=rank: self._on_rank_exit(r, ev))
        plan = failure_plan or NoFailures()
        plan.arm(self.engine, rank, proc)
        tel = self.engine.telemetry
        if tel.enabled:
            tel.instant("engine", "rank_spawn", rank=rank, world=self.name)
        return proc

    def _on_rank_exit(self, rank: int, ev: Event) -> None:
        if ev.ok:
            self.trace.emit(self.engine.now, self.name, "rank_exit", rank=rank)
            return
        exc = ev.exception
        if isinstance(exc, RankKilledError):
            self.trace.emit(self.engine.now, self.name, "rank_killed", rank=rank)
            tel = self.engine.telemetry
            if tel.enabled:
                tel.instant(f"rank{rank}", "rank_killed", world=self.name)
            self.mark_dead(rank)
            return
        # A genuine crash (bug or unrecovered MPI error): remember it so the
        # harness can surface it; also treat the rank as dead so peers
        # unblock rather than deadlock.
        self.errors.append((rank, exc))
        self.trace.emit(
            self.engine.now,
            self.name,
            "rank_crashed",
            rank=rank,
            error=repr(exc),
        )
        self.mark_dead(rank)

    def mark_dead(self, world_rank: int) -> None:
        """Record a rank death and notify every interested party."""
        if world_rank in self.dead:
            return
        self.dead.add(world_rank)
        ctx = self.contexts.get(world_rank)
        if ctx is not None:
            ctx.alive = False
        for comm in self._comms:
            comm.on_rank_death(world_rank)
        for listener in list(self._death_listeners):
            listener(world_rank)
        ev, self._failure_event = self._failure_event, self.engine.event(
            name=f"{self.name}:failure"
        )
        ev.succeed(world_rank)
        self.trace.emit(self.engine.now, self.name, "rank_dead", rank=world_rank)
        tel = self.engine.telemetry
        if tel.enabled:
            tel.instant(f"rank{world_rank}", "rank_dead", world=self.name)
            tel.inc("mpi.ranks_died")

    def add_death_listener(self, listener: Callable[[int], None]) -> None:
        """Register a callback invoked (synchronously) at each rank death.

        Fenix uses this to re-check its repair rendezvous when a member
        dies while others are already waiting."""
        self._death_listeners.append(listener)

    def failure_watch(self) -> Event:
        """The event that fires (with the dead world rank) at the *next*
        failure.  Grab a fresh one after each firing."""
        return self._failure_event

    def signal_job_done(self) -> None:
        """Mark the job complete (releases spares blocked pre-main)."""
        if not self.job_done.triggered:
            self.job_done.succeed(None)

    def create_comm(self, members: List[int], name: str = "") -> Communicator:
        """Build a communicator over the given world ranks (Fenix uses this
        for the resilient communicator and its repairs)."""
        return Communicator(self, members, name=name)

    def raise_job_errors(self) -> None:
        """Re-raise the first non-kill rank crash, if any (harness hook)."""
        if self.errors:
            rank, exc = self.errors[0]
            raise exc
