"""Per-rank communicator facade (the object application code talks to).

A :class:`CommHandle` binds a shared :class:`~repro.mpi.comm.Communicator`
to one rank's :class:`~repro.mpi.world.RankContext`.  Its API mirrors
mpi4py's lowercase object interface (``send``/``recv``/``bcast``/
``allreduce``/...), every blocking call is a generator to be driven with
``yield from``, and every call charges its wall time to the rank's
:class:`~repro.util.timing.TimeAccount` under kind ``"mpi"`` -- which is
exactly the paper's "App MPI" measurement.

Collectives are implemented *on top of the point-to-point layer* with
binomial trees (bcast/reduce) and dissemination (barrier), so their cost
scales as ``O(log P)`` network hops and they contend for NICs like any
other traffic -- both properties the paper's scaling discussion relies on.

Subclasses may override :meth:`_on_mpi_error` to implement an MPI error
handler; :class:`repro.fenix.FenixCommHandle` uses this hook to revoke the
communicator and long-jump into recovery.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.mpi.comm import Communicator
from repro.mpi.errors import MPIError
from repro.mpi.ops import ReduceOp, SUM
from repro.mpi.status import ANY_SOURCE, ANY_TAG, Request, Status
from repro.sim.engine import Event
from repro.util.errors import SimulationError

# collective op ids folded into reserved tags
_OP_BCAST = 1
_OP_REDUCE = 2
_OP_GATHER = 3
_OP_SCATTER = 4
_OP_ALLTOALL = 5
_OP_BARRIER = 6
_OP_SCAN = 7
_OP_SPLIT = 8


class CommHandle:
    """One rank's view of a communicator."""

    def __init__(self, comm: Communicator, ctx: "Any") -> None:
        self.comm = comm
        self.ctx = ctx
        rank = comm.comm_rank(ctx.rank)
        if rank is None:
            raise SimulationError(
                f"world rank {ctx.rank} is not a member of {comm.name}"
            )
        self._rank = rank

    # -- identity ----------------------------------------------------------

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def engine(self):
        return self.comm.world.engine

    def rebind(self, comm: Communicator) -> "CommHandle":
        """A handle of the same class/context on another communicator
        (used after shrink/repair)."""
        return type(self)(comm, self.ctx)

    # -- error-handler hook ---------------------------------------------------

    def _on_mpi_error(self, exc: MPIError) -> None:
        """Called when an operation fails with an MPI error, before the
        error propagates.  The default (MPI_ERRORS_ARE_FATAL flavour) lets
        the exception raise; Fenix overrides this to enter recovery."""

    def _timed(self, gen: Generator) -> Generator[Event, Any, Any]:
        engine = self.engine
        t0 = engine.now
        tel = engine.telemetry
        if tel.enabled:
            # span name mirrors the public op ("mpi.send", "mpi.agree", ...)
            # so the profiler can tell App-MPI waits from ULFM agreement
            op = getattr(gen, "__name__", "op").lstrip("_")
            with tel.span(f"rank{self.ctx.rank}", f"mpi.{op}"):
                try:
                    result = yield from gen
                    return result
                except MPIError as exc:
                    self._on_mpi_error(exc)
                    raise
                finally:
                    self.ctx.account.charge("mpi", engine.now - t0)
        else:
            try:
                result = yield from gen
                return result
            except MPIError as exc:
                self._on_mpi_error(exc)
                raise
            finally:
                self.ctx.account.charge("mpi", engine.now - t0)

    # -- point-to-point ---------------------------------------------------------

    def send(
        self, payload: Any, dest: int, tag: int = 0, nbytes: Optional[float] = None
    ) -> Generator[Event, Any, None]:
        """Blocking send: completes when the message is delivered."""
        return self._timed(self._send(payload, dest, tag, nbytes))

    def _send(self, payload, dest, tag, nbytes):
        yield self.comm.send_op(self._rank, dest, tag, payload, nbytes)

    def recv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Generator[Event, Any, Any]:
        """Blocking receive: returns the payload."""
        return self._timed(self._recv(source, tag))

    def _recv(self, source, tag):
        payload, _status = yield self.comm.recv_op(self._rank, source, tag)
        return payload

    def recv_status(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Generator[Event, Any, Any]:
        """Blocking receive returning ``(payload, Status)``."""
        return self._timed(self._recv_status(source, tag))

    def _recv_status(self, source, tag):
        result = yield self.comm.recv_op(self._rank, source, tag)
        return result

    def isend(
        self, payload: Any, dest: int, tag: int = 0, nbytes: Optional[float] = None
    ) -> Request:
        """Nonblocking send (completes on delivery)."""
        return Request(self.comm.send_op(self._rank, dest, tag, payload, nbytes), "isend")

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive; wait() returns ``(payload, Status)``."""
        return Request(self.comm.recv_op(self._rank, source, tag), "irecv")

    def waitall(self, requests: List[Request]) -> Generator[Event, Any, list]:
        """Timed MPI_Waitall."""
        return self._timed(Request.waitall(requests))

    def sendrecv(
        self,
        payload: Any,
        dest: int,
        source: int,
        sendtag: int = 0,
        recvtag: Optional[int] = None,
        nbytes: Optional[float] = None,
    ) -> Generator[Event, Any, Any]:
        """Combined send+receive (deadlock-free halo exchange primitive)."""
        return self._timed(
            self._sendrecv(payload, dest, source, sendtag, recvtag, nbytes)
        )

    def _sendrecv(self, payload, dest, source, sendtag, recvtag, nbytes):
        rtag = recvtag if recvtag is not None else sendtag
        recv_ev = self.comm.recv_op(self._rank, source, rtag)
        send_ev = self.comm.send_op(self._rank, dest, sendtag, payload, nbytes)
        values = yield self.engine.all_of([recv_ev, send_ev])
        recv_payload, _status = values[0]
        return recv_payload

    # -- collectives -------------------------------------------------------------

    def bcast(
        self,
        value: Any = None,
        root: int = 0,
        nbytes: Optional[float] = None,
        algorithm: str = "binomial",
    ) -> Generator[Event, Any, Any]:
        """Broadcast; every rank returns the root's value.

        ``algorithm`` selects ``"binomial"`` (default, O(log P) rounds) or
        ``"flat"`` (root sends to every rank directly, O(P) on the root's
        NIC) -- kept for the collectives ablation study.
        """
        if algorithm == "flat":
            return self._timed(self._bcast_flat(value, root, nbytes))
        return self._timed(self._bcast(value, root, nbytes))

    def _bcast_flat(self, value, root, nbytes):
        comm = self.comm
        comm.check_collective()
        tag = comm.next_collective_tag(self._rank, _OP_BCAST)
        if self._rank == root:
            sends = [
                comm.send_op(self._rank, dst, tag, value, nbytes)
                for dst in range(comm.size)
                if dst != root
            ]
            if sends:
                yield self.engine.all_of(sends)
            return value
        value, _ = yield comm.recv_op(self._rank, root, tag)
        return value

    def _bcast(self, value, root, nbytes):
        comm = self.comm
        comm.check_collective()
        tag = comm.next_collective_tag(self._rank, _OP_BCAST)
        size = comm.size
        rel = (self._rank - root) % size
        mask = 1
        if rel != 0:
            while mask < size:
                if rel & mask:
                    src = (rel - mask + root) % size
                    value, _ = yield comm.recv_op(self._rank, src, tag)
                    break
                mask <<= 1
        else:
            while mask < size:
                mask <<= 1
        mask >>= 1
        sends = []
        while mask > 0:
            if rel + mask < size:
                dst = (rel + mask + root) % size
                sends.append(comm.send_op(self._rank, dst, tag, value, nbytes))
            mask >>= 1
        if sends:
            yield self.engine.all_of(sends)
        return value

    def reduce(
        self,
        value: Any,
        op: ReduceOp = SUM,
        root: int = 0,
        nbytes: Optional[float] = None,
    ) -> Generator[Event, Any, Any]:
        """Binomial-tree reduction; returns the result at root, None elsewhere."""
        return self._timed(self._reduce(value, op, root, nbytes))

    def _reduce(self, value, op, root, nbytes):
        comm = self.comm
        comm.check_collective()
        tag = comm.next_collective_tag(self._rank, _OP_REDUCE)
        size = comm.size
        rel = (self._rank - root) % size
        acc = value
        mask = 1
        while mask < size:
            if rel & mask:
                parent = (rel - mask + root) % size
                yield comm.send_op(self._rank, parent, tag, acc, nbytes)
                return None
            child_rel = rel | mask
            if child_rel < size:
                src = (child_rel + root) % size
                child_val, _ = yield comm.recv_op(self._rank, src, tag)
                acc = op(acc, child_val)
            mask <<= 1
        return acc

    def allreduce(
        self, value: Any, op: ReduceOp = SUM, nbytes: Optional[float] = None
    ) -> Generator[Event, Any, Any]:
        """Reduce-to-0 + broadcast; every rank returns the reduced value."""
        return self._timed(self._allreduce(value, op, nbytes))

    def _allreduce(self, value, op, nbytes):
        reduced = yield from self._reduce(value, op, 0, nbytes)
        result = yield from self._bcast(reduced, 0, nbytes)
        return result

    def barrier(self) -> Generator[Event, Any, None]:
        """Dissemination barrier: ceil(log2 P) rounds of empty exchanges."""
        return self._timed(self._barrier())

    def _barrier(self):
        comm = self.comm
        comm.check_collective()
        tag = comm.next_collective_tag(self._rank, _OP_BARRIER)
        size = comm.size
        dist = 1
        while dist < size:
            dst = (self._rank + dist) % size
            src = (self._rank - dist) % size
            recv_ev = comm.recv_op(self._rank, src, tag)
            send_ev = comm.send_op(self._rank, dst, tag, None, 0.0)
            yield self.engine.all_of([recv_ev, send_ev])
            dist <<= 1

    def gather(
        self, value: Any, root: int = 0, nbytes: Optional[float] = None
    ) -> Generator[Event, Any, Any]:
        """Gather to root; root returns the list indexed by rank."""
        return self._timed(self._gather(value, root, nbytes))

    def _gather(self, value, root, nbytes):
        comm = self.comm
        comm.check_collective()
        tag = comm.next_collective_tag(self._rank, _OP_GATHER)
        size = comm.size
        if self._rank == root:
            sources = [src for src in range(size) if src != root]
            events = [comm.recv_op(self._rank, src, tag) for src in sources]
            values = yield self.engine.all_of(events)
            result: List[Any] = [None] * size
            result[root] = value
            for src, (payload, _status) in zip(sources, values):
                result[src] = payload
            return result
        yield comm.send_op(self._rank, root, tag, value, nbytes)
        return None

    def allgather(
        self, value: Any, nbytes: Optional[float] = None
    ) -> Generator[Event, Any, Any]:
        """Gather to 0 + broadcast; every rank returns the full list."""
        return self._timed(self._allgather(value, nbytes))

    def _allgather(self, value, nbytes):
        gathered = yield from self._gather(value, 0, nbytes)
        total = None if nbytes is None else nbytes * self.comm.size
        result = yield from self._bcast(gathered, 0, total)
        return result

    def scatter(
        self, values: Optional[List[Any]] = None, root: int = 0,
        nbytes: Optional[float] = None,
    ) -> Generator[Event, Any, Any]:
        """Scatter from root; each rank returns its element."""
        return self._timed(self._scatter(values, root, nbytes))

    def _scatter(self, values, root, nbytes):
        comm = self.comm
        comm.check_collective()
        tag = comm.next_collective_tag(self._rank, _OP_SCATTER)
        size = comm.size
        if self._rank == root:
            if values is None or len(values) != size:
                raise SimulationError(
                    f"scatter root needs {size} values, got "
                    f"{None if values is None else len(values)}"
                )
            sends = [
                comm.send_op(self._rank, dst, tag, values[dst], nbytes)
                for dst in range(size)
                if dst != root
            ]
            if sends:
                yield self.engine.all_of(sends)
            return values[root]
        payload, _status = yield comm.recv_op(self._rank, root, tag)
        return payload

    def alltoall(
        self, values: List[Any], nbytes: Optional[float] = None
    ) -> Generator[Event, Any, Any]:
        """Personalized all-to-all exchange."""
        return self._timed(self._alltoall(values, nbytes))

    def _alltoall(self, values, nbytes):
        comm = self.comm
        comm.check_collective()
        size = comm.size
        if len(values) != size:
            raise SimulationError(f"alltoall needs {size} values, got {len(values)}")
        tag = comm.next_collective_tag(self._rank, _OP_ALLTOALL)
        sources = [src for src in range(size) if src != self._rank]
        recv_events = [comm.recv_op(self._rank, src, tag) for src in sources]
        send_events = [
            comm.send_op(self._rank, dst, tag, values[dst], nbytes)
            for dst in range(size)
            if dst != self._rank
        ]
        received = yield self.engine.all_of(recv_events)
        if send_events:
            yield self.engine.all_of(send_events)
        result: List[Any] = [None] * size
        result[self._rank] = values[self._rank]
        for src, (payload, _status) in zip(sources, received):
            result[src] = payload
        return result

    def scan(
        self, value: Any, op: ReduceOp = SUM, nbytes: Optional[float] = None
    ) -> Generator[Event, Any, Any]:
        """Inclusive prefix reduction: rank r returns op over ranks 0..r.

        Linear-chain algorithm (each rank receives its predecessor's
        prefix, folds, forwards) -- O(P) latency like small-message MPI
        implementations.
        """
        return self._timed(self._scan(value, op, nbytes, exclusive=False))

    def exscan(
        self, value: Any, op: ReduceOp = SUM, nbytes: Optional[float] = None
    ) -> Generator[Event, Any, Any]:
        """Exclusive prefix reduction: rank r returns op over ranks 0..r-1
        (None at rank 0, like MPI_Exscan's undefined result)."""
        return self._timed(self._scan(value, op, nbytes, exclusive=True))

    def _scan(self, value, op, nbytes, exclusive):
        comm = self.comm
        comm.check_collective()
        tag = comm.next_collective_tag(self._rank, _OP_SCAN)
        size = comm.size
        prefix = None
        if self._rank > 0:
            prefix, _ = yield comm.recv_op(self._rank, self._rank - 1, tag)
        inclusive = value if prefix is None else op(prefix, value)
        if self._rank + 1 < size:
            yield comm.send_op(self._rank, self._rank + 1, tag, inclusive, nbytes)
        return prefix if exclusive else inclusive

    # -- communicator management ------------------------------------------------------

    def dup(self) -> Generator[Event, Any, "CommHandle"]:
        """MPI_Comm_dup: a new communicator with the same group but a
        private matching context (collective)."""
        return self._timed(self._dup())

    def _dup(self):
        comm = self.comm
        comm.check_collective()
        # agree on the duplicate via a zero-byte barrier, then rank 0's
        # deterministic construction is shared state
        yield from self._barrier()
        key = ("dup", comm.next_collective_tag(self._rank, _OP_SPLIT))
        store = getattr(comm, "_dup_cache", None)
        if store is None:
            store = {}
            comm._dup_cache = store
        new_comm = store.get(key)
        if new_comm is None:
            new_comm = comm.world.create_comm(
                comm.members, name=f"{comm.name}.dup"
            )
            store[key] = new_comm
        return self.rebind(new_comm)

    def split(
        self, color: int, key: int = 0
    ) -> Generator[Event, Any, "Optional[CommHandle]"]:
        """MPI_Comm_split: partition members by ``color`` (ordered by
        ``key`` then old rank).  ``color < 0`` (undefined) returns None."""
        return self._timed(self._split(color, key))

    def _split(self, color, key):
        comm = self.comm
        comm.check_collective()
        contributions = yield from self._allgather((color, key, self._rank), None)
        store = getattr(comm, "_split_cache", None)
        if store is None:
            store = {}
            comm._split_cache = store
        signature = tuple(contributions)
        groups = store.get(signature)
        if groups is None:
            by_color = {}
            for c, k, r in contributions:
                if c is None or (isinstance(c, int) and c < 0):
                    continue
                by_color.setdefault(c, []).append((k, r))
            groups = {}
            for c, members in sorted(by_color.items()):
                ordered = [r for _k, r in sorted(members)]
                groups[c] = comm.world.create_comm(
                    [comm.world_rank(r) for r in ordered],
                    name=f"{comm.name}.split{c}",
                )
            store[signature] = groups
        if color is None or (isinstance(color, int) and color < 0):
            return None
        return self.rebind(groups[color])

    # -- probing ------------------------------------------------------------------------

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Nonblocking probe: Status of a matching pending message, else
        None.  (Only observes messages already buffered, like MPI_Iprobe.)
        """
        entry = self.comm.probe_op(self._rank, source, tag)
        if entry is None:
            return None
        return Status(source=entry.src, tag=entry.tag, nbytes=entry.nbytes)

    # -- ULFM extension ------------------------------------------------------------

    def revoke(self) -> None:
        """MPI_Comm_revoke (local call, global effect)."""
        self.comm.revoke()

    def agree(self, flag: bool = True) -> Generator[Event, Any, Any]:
        """MPI_Comm_agree over survivors; returns (and_flag, failed_set)."""
        return self._timed(self._agree(flag))

    def _agree(self, flag):
        result = yield self.comm.agree_gate(self._rank, flag)
        return result

    def shrink(self) -> Generator[Event, Any, "CommHandle"]:
        """MPI_Comm_shrink: returns a handle on the survivor communicator."""
        return self._timed(self._shrink())

    def _shrink(self):
        new_comm = yield self.comm.shrink_gate(self._rank)
        return self.rebind(new_comm)

    def get_failed(self) -> List[int]:
        """Comm-local ranks known dead."""
        return self.comm.get_failed()

    def ack_failed(self):
        """MPI_Comm_failure_ack."""
        return self.comm.ack_failed()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CommHandle rank={self._rank}/{self.size} on {self.comm.name}>"
