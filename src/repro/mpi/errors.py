"""MPI / ULFM error classes.

ULFM reports process failure through error codes at MPI call sites
(``MPI_ERR_PROC_FAILED``, ``MPI_ERR_REVOKED``); here they are exceptions,
which is also how the paper's Fenix layer consumes them (its error handler
long-jumps out of the failing call).
"""

from __future__ import annotations

from typing import FrozenSet

from repro.util.errors import ReproError


class MPIError(ReproError):
    """Base class for simulated-MPI failures."""


class ProcFailedError(MPIError):
    """MPI_ERR_PROC_FAILED: a peer involved in this operation is dead.

    Attributes:
        ranks: the communicator-local ranks known dead at raise time.
    """

    def __init__(self, ranks: "FrozenSet[int] | set[int]", detail: str = "") -> None:
        self.ranks = frozenset(ranks)
        which = ",".join(str(r) for r in sorted(self.ranks))
        super().__init__(
            f"process failure involving rank(s) {{{which}}}"
            + (f": {detail}" if detail else "")
        )


class RevokedError(MPIError):
    """MPI_ERR_REVOKED: the communicator was revoked (ULFM MPI_Comm_revoke)."""

    def __init__(self, comm_name: str = "") -> None:
        super().__init__(f"communicator {comm_name or '?'} has been revoked")


class AbortError(MPIError):
    """MPI_Abort: the job is being torn down."""

    def __init__(self, code: int = 1, detail: str = "") -> None:
        self.code = code
        super().__init__(f"MPI_Abort(code={code})" + (f": {detail}" if detail else ""))
