"""Communicator: point-to-point matching, ULFM state, collective gates.

A :class:`Communicator` is a *shared* object describing a group of world
ranks; per-rank operations are invoked through :class:`repro.mpi.handle.CommHandle`
facades.  Addressing here is always in communicator-local ranks.

ULFM semantics implemented (the subset the paper's Fenix layer relies on):

- operations that involve a failed process raise :class:`ProcFailedError`
  at the call site; operations already pending when the failure occurs are
  interrupted with the same error;
- :meth:`revoke` poisons the communicator for everyone: pending and future
  operations raise :class:`RevokedError` -- this is how Fenix turns a
  locally detected failure into a global, single-exit-point event;
- :meth:`agree_gate` and :meth:`shrink_gate` implement MPI_Comm_agree and
  MPI_Comm_shrink as fault-tolerant collectives over the *surviving*
  members: they complete even while the communicator is revoked and
  re-evaluate their completion condition whenever another member dies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, TYPE_CHECKING

from repro.mpi.errors import ProcFailedError, RevokedError
from repro.mpi.status import ANY_SOURCE, ANY_TAG, Status, freeze_payload, payload_nbytes
from repro.sim.engine import Event
from repro.util.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.world import World


def try_succeed(event: Event, value: Any = None) -> None:
    """Trigger ``event`` successfully unless it already triggered."""
    if not event.triggered:
        event.succeed(value)


def try_fail(event: Event, exc: BaseException) -> None:
    """Trigger ``event`` with ``exc`` unless it already triggered."""
    if not event.triggered:
        event.fail(exc)


@dataclass
class PendingSend:
    """A sent message not yet matched by a receive (the unexpected queue)."""

    src: int
    dst: int
    tag: int
    payload: Any
    nbytes: float
    done: Event


@dataclass
class PostedRecv:
    """A receive posted before its matching send arrived."""

    src: int  # may be ANY_SOURCE
    dst: int
    tag: int  # may be ANY_TAG
    event: Event  # succeeds with (payload, Status)


class CollectiveGate:
    """Fault-tolerant rendezvous over a communicator's surviving members.

    Each generation completes when every currently-alive member has
    arrived; the ``finalize`` callback turns the contribution map into the
    shared result delivered to all arrivals.  Deaths during the wait
    re-trigger the completion check, so the gate cannot hang on a corpse --
    the property MPI_Comm_agree is specified to have.
    """

    def __init__(
        self,
        comm: "Communicator",
        name: str,
        finalize: Callable[[Dict[int, Any]], Any],
    ) -> None:
        self._comm = comm
        self._name = name
        self._finalize = finalize
        self._generation = 0
        self._contributions: Dict[int, Any] = {}
        self._waiters: Dict[int, Event] = {}

    def arrive(self, rank: int, value: Any = None) -> Event:
        """Contribute ``value`` as comm-rank ``rank``; returns the completion
        event (succeeds with the finalized result)."""
        if rank in self._contributions:
            raise SimulationError(
                f"gate {self._name}: rank {rank} arrived twice in one generation"
            )
        ev = self._comm.world.engine.event(name=f"gate:{self._name}:{rank}")
        self._contributions[rank] = value
        self._waiters[rank] = ev
        self.recheck()
        return ev

    def recheck(self) -> None:
        """Re-evaluate completion (called on arrival and on member death)."""
        if not self._waiters:
            return
        alive = set(self._comm.alive_members())
        if alive and not alive.issubset(self._contributions.keys()):
            return
        result = self._finalize(dict(self._contributions))
        waiters, self._waiters = self._waiters, {}
        self._contributions = {}
        self._generation += 1
        # Charge a modest log-depth latency for the agreement round.
        delay = self._comm.agreement_latency()
        for ev in waiters.values():
            if not ev.triggered:
                ev.succeed(result, delay=delay)


class Communicator:
    """A group of world ranks with its own matching context.

    Sends at or below :attr:`eager_limit` bytes follow the *eager*
    protocol: the send completes after the sender-side injection cost even
    if no receive is posted yet (the payload is buffered in the matching
    queue), mirroring real MPI behaviour and avoiding false deadlocks in
    send-before-recv exchange patterns.  Larger sends rendezvous: they
    complete only at delivery.
    """

    _ids = 0

    #: eager-protocol threshold, bytes (typical MPI default magnitude)
    eager_limit: float = 64.0 * 1024.0

    def __init__(self, world: "World", members: List[int], name: str = "") -> None:
        seen: Set[int] = set()
        for w in members:
            if w in seen:
                raise SimulationError(f"duplicate world rank {w} in communicator")
            seen.add(w)
        Communicator._ids += 1
        self.world = world
        self.name = name or f"comm{Communicator._ids}"
        self._world_of: List[int] = list(members)
        self._rank_of: Dict[int, int] = {w: i for i, w in enumerate(members)}
        self.revoked = False
        self._posted: List[PostedRecv] = []
        self._unexpected: List[PendingSend] = []
        self._coll_seq: Dict[int, int] = {}
        self._acked: Set[int] = set()
        self._agree_gate = CollectiveGate(self, f"{self.name}.agree", self._finalize_agree)
        self._shrink_gate = CollectiveGate(
            self, f"{self.name}.shrink", self._finalize_shrink
        )
        world.register_comm(self)
        # membership record: protocol monitors resolve comm-local ranks
        # (checkpoint keys, IMR slots) back to world ranks through this
        world.trace.emit(
            world.engine.now, self.name, "comm_create",
            members=list(members),
        )

    # -- group queries ---------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._world_of)

    def world_rank(self, comm_rank: int) -> int:
        return self._world_of[comm_rank]

    def comm_rank(self, world_rank: int) -> Optional[int]:
        return self._rank_of.get(world_rank)

    @property
    def members(self) -> List[int]:
        """World ranks, indexed by communicator rank."""
        return list(self._world_of)

    def is_alive(self, comm_rank: int) -> bool:
        return self.world.is_alive(self._world_of[comm_rank])

    def alive_members(self) -> List[int]:
        return [i for i in range(self.size) if self.is_alive(i)]

    def failed_members(self) -> List[int]:
        return [i for i in range(self.size) if not self.is_alive(i)]

    def agreement_latency(self) -> float:
        """Modelled latency of one agreement round: 2 * ceil(log2 P) hops."""
        hops = max(1, (self.size - 1).bit_length())
        lat = self.world.cluster.spec.node.nic_latency
        return 2.0 * hops * lat

    # -- collective sequencing -------------------------------------------

    def next_collective_tag(self, comm_rank: int, op_id: int) -> int:
        """Per-rank collective sequence number folded into a reserved
        negative tag.  MPI requires identical collective call order on all
        ranks, so matching ranks compute matching tags."""
        seq = self._coll_seq.get(comm_rank, 0)
        self._coll_seq[comm_rank] = seq + 1
        return -(1000 + seq * 32 + op_id)

    # -- usability checks --------------------------------------------------

    def check_usable(self, peer: Optional[int] = None) -> None:
        """Raise if the communicator is revoked or ``peer`` is dead."""
        if self.revoked:
            raise RevokedError(self.name)
        if peer is not None and peer not in (ANY_SOURCE,):
            if not (0 <= peer < self.size):
                raise SimulationError(
                    f"{self.name}: rank {peer} out of range [0,{self.size})"
                )
            if not self.is_alive(peer):
                raise ProcFailedError({peer})

    def check_collective(self) -> None:
        """Raise if any member is dead (ULFM collectives error on failure)."""
        if self.revoked:
            raise RevokedError(self.name)
        failed = self.failed_members()
        if failed:
            raise ProcFailedError(set(failed))

    # -- point-to-point -----------------------------------------------------

    def send_op(
        self,
        src: int,
        dst: int,
        tag: int,
        payload: Any,
        nbytes: Optional[float] = None,
    ) -> Event:
        """Post a send; returns the completion event (succeeds at delivery)."""
        self.check_usable(peer=dst)
        size = float(nbytes) if nbytes is not None else payload_nbytes(payload)
        entry = PendingSend(
            src=src,
            dst=dst,
            tag=tag,
            payload=freeze_payload(payload),
            nbytes=size,
            done=self.world.engine.event(name=f"{self.name}:send:{src}->{dst}"),
        )
        match = self._find_posted(entry)
        if match is not None:
            self._posted.remove(match)
            self._deliver(entry, match)
        else:
            self._unexpected.append(entry)
            if size <= self.eager_limit:
                # Eager: sender completes after local injection; delivery
                # happens when the receive is eventually posted.
                src_node = self.world.node_of_rank(self._world_of[src])
                entry.done.succeed(None, delay=src_node.tx.transfer_time(size))
        return entry.done

    def recv_op(self, dst: int, src: int, tag: int) -> Event:
        """Post a receive; event succeeds with ``(payload, Status)``."""
        # Check the unexpected queue first: a message sent before its
        # sender died is still deliverable (the data already left).
        posted = PostedRecv(
            src=src,
            dst=dst,
            tag=tag,
            event=self.world.engine.event(name=f"{self.name}:recv:{dst}<-{src}"),
        )
        pending = self._find_unexpected(posted)
        if pending is not None:
            self._unexpected.remove(pending)
            self._deliver(pending, posted)
            return posted.event
        if self.revoked:
            raise RevokedError(self.name)
        if src != ANY_SOURCE:
            self.check_usable(peer=src)
        self._posted.append(posted)
        return posted.event

    def _find_posted(self, send: PendingSend) -> Optional[PostedRecv]:
        for recv in self._posted:
            if recv.dst != send.dst:
                continue
            if recv.src not in (ANY_SOURCE, send.src):
                continue
            if recv.tag not in (ANY_TAG, send.tag):
                continue
            return recv
        return None

    def probe_op(
        self, dst: int, src: int, tag: int
    ) -> Optional[PendingSend]:
        """Nonblocking probe: the first buffered message matching
        (src, tag) addressed to ``dst``, without removing it.

        Wildcard-tag probes skip reserved (negative) tags, so in-flight
        collective traffic stays invisible -- real MPI separates these by
        communicator context id.
        """
        if self.revoked:
            raise RevokedError(self.name)
        for send in self._unexpected:
            if send.dst != dst:
                continue
            if src not in (ANY_SOURCE, send.src):
                continue
            if tag == ANY_TAG:
                if send.tag < 0:
                    continue  # reserved collective tag
            elif tag != send.tag:
                continue
            return send
        return None

    def _find_unexpected(self, recv: PostedRecv) -> Optional[PendingSend]:
        for send in self._unexpected:
            if send.dst != recv.dst:
                continue
            if recv.src not in (ANY_SOURCE, send.src):
                continue
            if recv.tag not in (ANY_TAG, send.tag):
                continue
            return send
        return None

    def _deliver(self, send: PendingSend, recv: PostedRecv) -> None:
        """Spawn the transfer process completing both sides."""
        world = self.world

        def delivery():
            src_node = world.node_of_rank(self._world_of[send.src])
            dst_node = world.node_of_rank(self._world_of[send.dst])
            yield from world.network.transfer(src_node, dst_node, send.nbytes)
            status = Status(source=send.src, tag=send.tag, nbytes=send.nbytes)
            try_succeed(recv.event, (send.payload, status))
            try_succeed(send.done, None)

        world.engine.process(
            delivery(),
            name=f"{self.name}:xfer:{send.src}->{send.dst}",
            daemon=True,
        )

    # -- ULFM surface --------------------------------------------------------

    def revoke(self) -> None:
        """MPI_Comm_revoke: poison the communicator for all members.

        Pending point-to-point operations fail with :class:`RevokedError`;
        future operations raise immediately.  Idempotent.  (Propagation is
        modelled as immediate; the real ULFM revoke is asynchronous but
        reliably delivered, which is indistinguishable at our granularity.)
        """
        if self.revoked:
            return
        self.revoked = True
        exc_name = self.name
        #: fan-out = operations poisoned by this revoke (the cost of
        #: turning one local detection into a global failure event)
        fanout = len(self._posted) + len(self._unexpected)
        for recv in self._posted:
            try_fail(recv.event, RevokedError(exc_name))
        self._posted.clear()
        for send in self._unexpected:
            try_fail(send.done, RevokedError(exc_name))
        self._unexpected.clear()
        self.world.trace.emit(
            self.world.engine.now, self.name, "revoke", size=self.size
        )
        tel = self.world.engine.telemetry
        if tel.enabled:
            tel.instant("mpi", "revoke", comm=self.name, size=self.size,
                        fanout=fanout)
            tel.inc("mpi.revokes")
            tel.observe("mpi.revoke.fanout", fanout)

    def ack_failed(self) -> Set[int]:
        """MPI_Comm_failure_ack analogue: acknowledge current failures,
        returning the set of comm-local failed ranks acknowledged so far."""
        self._acked.update(self.failed_members())
        return set(self._acked)

    def get_failed(self) -> List[int]:
        """Comm-local ranks currently known to have failed."""
        return self.failed_members()

    def agree_gate(self, comm_rank: int, flag: bool) -> Event:
        """MPI_Comm_agree: logical AND over surviving members' flags.

        Returns an event succeeding with ``(and_of_flags, failed_set)``.
        Works on a revoked communicator (that is its raison d'etre).
        """
        return self._agree_gate.arrive(comm_rank, bool(flag))

    def _finalize_agree(self, contributions: Dict[int, Any]) -> Any:
        flag = all(bool(v) for v in contributions.values())
        failed = self.failed_members()
        self.world.trace.emit(
            self.world.engine.now, self.name, "agree",
            flag=flag, revoked=self.revoked, failed=sorted(failed),
            contributors=sorted(contributions),
        )
        return (flag, frozenset(failed))

    def shrink_gate(self, comm_rank: int) -> Event:
        """MPI_Comm_shrink: collective over survivors; event succeeds with a
        *new* communicator containing only the surviving members, in their
        original relative order."""
        return self._shrink_gate.arrive(comm_rank, None)

    def _finalize_shrink(self, contributions: Dict[int, Any]) -> "Communicator":
        survivors = [self._world_of[i] for i in sorted(contributions.keys())
                     if self.is_alive(i)]
        self.world.trace.emit(
            self.world.engine.now, self.name, "shrink",
            revoked=self.revoked, survivors=list(survivors),
            failed=sorted(self.failed_members()),
        )
        return Communicator(
            self.world, survivors, name=f"{self.name}.shrunk"
        )

    # -- failure notification ------------------------------------------------

    def on_rank_death(self, world_rank: int) -> None:
        """World callback: fail pending ops involving the dead rank and
        re-check any gates waiting on it."""
        comm_rank = self._rank_of.get(world_rank)
        if comm_rank is None:
            return
        exc_ranks = {comm_rank}
        for recv in list(self._posted):
            if recv.src == comm_rank:
                self._posted.remove(recv)
                try_fail(recv.event, ProcFailedError(exc_ranks, "sender died"))
        for send in list(self._unexpected):
            if send.dst == comm_rank:
                self._unexpected.remove(send)
                try_fail(send.done, ProcFailedError(exc_ranks, "receiver died"))
        self._agree_gate.recheck()
        self._shrink_gate.recheck()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "revoked" if self.revoked else "ok"
        return f"<Communicator {self.name} size={self.size} {state}>"
