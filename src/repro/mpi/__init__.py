"""Simulated MPI with ULFM fault-tolerance extensions.

This package is the Python stand-in for MPI + User Level Fault Mitigation
(the paper's process-recovery substrate, Section III).  It provides:

- :class:`World` -- a job of N ranks mapped onto cluster nodes, with rank
  lifecycle tracking and failure notification;
- :class:`Communicator` -- tagged point-to-point matching plus
  binomial-tree collectives, built entirely on the simulated network;
- :class:`CommHandle` -- the per-rank facade application code calls
  (mpi4py-flavoured API: ``send``/``recv``/``allreduce``/...);
- the ULFM extension surface: :meth:`Communicator.revoke`,
  :meth:`CommHandle.shrink`, :meth:`CommHandle.agree`, failure
  acknowledgement, and the :class:`ProcFailedError`/:class:`RevokedError`
  error classes that Fenix's recovery is driven by.

Semantics follow the ULFM specification where it matters to the paper:
failures are reported at MPI call sites as exceptions; ``revoke`` is an
asynchronous, communicator-wide poison that interrupts pending and future
operations; ``shrink`` and ``agree`` are collectives over the surviving
members and remain usable on a revoked communicator.
"""

from repro.mpi.errors import (
    AbortError,
    MPIError,
    ProcFailedError,
    RevokedError,
)
from repro.mpi.ops import MAX, MIN, PROD, SUM, LAND, LOR, ReduceOp
from repro.mpi.status import ANY_SOURCE, ANY_TAG, Request, Status
from repro.mpi.comm import Communicator
from repro.mpi.handle import CommHandle
from repro.mpi.world import RankContext, World

__all__ = [
    "AbortError",
    "MPIError",
    "ProcFailedError",
    "RevokedError",
    "ReduceOp",
    "SUM",
    "MIN",
    "MAX",
    "PROD",
    "LAND",
    "LOR",
    "ANY_SOURCE",
    "ANY_TAG",
    "Request",
    "Status",
    "Communicator",
    "CommHandle",
    "RankContext",
    "World",
]
