"""Message status, request objects, and payload size estimation."""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Generator, List

import numpy as np

from repro.sim.engine import Event

#: wildcard source/tag (mirror MPI_ANY_SOURCE / MPI_ANY_TAG)
ANY_SOURCE: int = -1
ANY_TAG: int = -1


@dataclass(frozen=True)
class Status:
    """Delivery metadata attached to every received message."""

    source: int
    tag: int
    nbytes: float


class Request:
    """Nonblocking-operation handle (isend/irecv).

    ``yield from req.wait()`` blocks the calling process until completion
    and returns the operation's value (``None`` for sends, the payload for
    receives).  ``req.test()`` is a non-blocking completion probe.
    """

    def __init__(self, event: Event, kind: str = "op") -> None:
        self._event = event
        self.kind = kind

    @property
    def event(self) -> Event:
        return self._event

    def test(self) -> bool:
        return self._event.processed

    def wait(self) -> Generator[Event, Any, Any]:
        value = yield self._event
        return value

    @staticmethod
    def waitall(requests: "List[Request]") -> Generator[Event, Any, list]:
        """Wait for every request; returns their values in order.

        Fails with the first request failure (like MPI_Waitall reporting
        an error class)."""
        if not requests:
            return []
        engine = requests[0]._event.engine
        values = yield engine.all_of([r._event for r in requests])
        return values


def payload_nbytes(payload: Any) -> float:
    """Estimate the wire size of a payload.

    numpy arrays report exactly; common containers recurse; everything else
    gets a small flat estimate.  Applications that model larger-than-actual
    problem sizes pass explicit ``modeled_nbytes`` instead.
    """
    if payload is None:
        return 0.0
    if isinstance(payload, np.ndarray):
        return float(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return float(len(payload))
    if isinstance(payload, (bool, int, float, complex, np.generic)):
        return 8.0
    if isinstance(payload, str):
        return float(len(payload.encode("utf-8")))
    if isinstance(payload, (list, tuple, set, frozenset)):
        return 16.0 + sum(payload_nbytes(item) for item in payload)
    if isinstance(payload, dict):
        return 16.0 + sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in payload.items()
        )
    return 64.0


def freeze_payload(payload: Any) -> Any:
    """Snapshot a payload at send time (MPI value semantics).

    numpy arrays are copied; containers are deep-copied; immutable scalars
    pass through.
    """
    if payload is None or isinstance(payload, (bool, int, float, complex, str, bytes)):
        return payload
    if isinstance(payload, np.ndarray):
        return payload.copy()
    return copy.deepcopy(payload)
