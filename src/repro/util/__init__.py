"""Shared utilities: error hierarchy, unit parsing, deterministic RNG."""

from repro.util.errors import (
    ReproError,
    ConfigError,
    SimulationError,
    DeadlockError,
)
from repro.util.units import (
    KiB,
    MiB,
    GiB,
    parse_size,
    format_size,
    format_time,
)
from repro.util.rng import SeedSequenceFactory

__all__ = [
    "ReproError",
    "ConfigError",
    "SimulationError",
    "DeadlockError",
    "KiB",
    "MiB",
    "GiB",
    "parse_size",
    "format_size",
    "format_time",
    "SeedSequenceFactory",
]
