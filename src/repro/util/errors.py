"""Error hierarchy shared across the repro packages.

Every package defines its own domain errors (e.g. :class:`repro.mpi.ProcFailedError`)
but all of them derive from :class:`ReproError` so callers can catch the
library's failures without swallowing genuine Python bugs.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid internal state."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still blocked.

    Raised by :meth:`repro.sim.Engine.run` when live processes remain but no
    event can ever wake them -- the simulation equivalent of an MPI deadlock.
    The message lists the blocked processes to aid debugging; the listing
    is assembled lazily (only when the exception is actually rendered), so
    callers that catch and discard the error pay nothing for formatting.
    """

    def __init__(
        self,
        message: str = "",
        blocked: Optional[Sequence[Tuple[str, str]]] = None,
    ) -> None:
        super().__init__(message)
        #: ``(process name, awaited event name)`` pairs, when the engine
        #: supplied structured detail instead of a pre-built message
        self.blocked = list(blocked) if blocked is not None else []

    def __str__(self) -> str:
        base = super().__str__()
        if not self.blocked:
            return base
        details = ", ".join(
            sorted(f"{name} (waiting on {target})"
                   for name, target in self.blocked)
        )
        return f"simulation deadlock: processes still blocked: {details}"
