"""Error hierarchy shared across the repro packages.

Every package defines its own domain errors (e.g. :class:`repro.mpi.ProcFailedError`)
but all of them derive from :class:`ReproError` so callers can catch the
library's failures without swallowing genuine Python bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid internal state."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still blocked.

    Raised by :meth:`repro.sim.Engine.run` when live processes remain but no
    event can ever wake them -- the simulation equivalent of an MPI deadlock.
    The message lists the blocked processes to aid debugging.
    """
