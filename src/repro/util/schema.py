"""Artifact schema stamping and version-mismatch warnings.

Every JSONL/JSON artifact the package writes (flight-recorder traces,
campaign progress streams, campaign ledgers, divergence reports)
carries a ``schema`` integer and the ``repro_version`` that wrote it.
Readers call :func:`warn_on_mismatch`: a *schema* mismatch means the
layout changed (readers that cannot degrade raise instead), while a
*version* mismatch merely flags that the artifact came from a different
build -- crucial for :mod:`repro.align`, where diffing a stale trace
against a current one silently produces structural noise that looks
like a regression.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Optional

from repro import __version__


class ArtifactVersionWarning(UserWarning):
    """An artifact was written by a different schema or repro build."""


def stamp(payload: Dict[str, Any], schema: int) -> Dict[str, Any]:
    """Return ``payload`` with ``schema`` and ``repro_version`` set."""
    payload = dict(payload)
    payload["schema"] = int(schema)
    payload["repro_version"] = __version__
    return payload


def warn_on_mismatch(
    origin: str,
    expected_schema: int,
    found_schema: Optional[Any] = None,
    found_version: Optional[Any] = None,
) -> None:
    """Warn (never raise) when an artifact's stamp disagrees with this
    build.  ``None`` values -- artifacts written before stamping existed,
    or by foreign tools -- pass silently: absence is not a mismatch."""
    if found_schema is not None:
        try:
            found = int(found_schema)
        except (TypeError, ValueError):
            found = None
        if found != int(expected_schema):
            warnings.warn(
                f"{origin}: schema {found_schema!r} differs from this "
                f"build's {expected_schema}; fields may be missing or "
                f"renamed",
                ArtifactVersionWarning,
                stacklevel=3,
            )
    if found_version is not None and str(found_version) != __version__:
        warnings.warn(
            f"{origin}: written by repro {found_version}, this build is "
            f"{__version__}; cross-version comparisons may report "
            f"structural noise",
            ArtifactVersionWarning,
            stacklevel=3,
        )
