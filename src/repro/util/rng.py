"""Deterministic random-number stream management.

Simulation determinism requires that every stochastic component (per-rank
compute jitter, network noise, failure timing) draw from its *own* stream so
that adding a consumer never perturbs the draws seen by another.  The
factory hands out independent :class:`numpy.random.Generator` streams keyed
by a stable label, all derived from one root seed.
"""

from __future__ import annotations

import zlib

import numpy as np


class SeedSequenceFactory:
    """Derives independent, label-keyed RNG streams from one root seed.

    The same ``(root_seed, label)`` pair always yields an identical stream,
    regardless of creation order, which keeps experiments reproducible even
    as components are added or reordered.
    """

    def __init__(self, root_seed: int) -> None:
        self._root_seed = int(root_seed)

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def stream(self, label: str) -> np.random.Generator:
        """Return a fresh Generator for ``label`` (stable across calls)."""
        digest = zlib.crc32(label.encode("utf-8"))
        seq = np.random.SeedSequence(entropy=self._root_seed, spawn_key=(digest,))
        return np.random.Generator(np.random.PCG64(seq))

    def child(self, label: str) -> "SeedSequenceFactory":
        """Derive a sub-factory whose streams are independent of the parent's."""
        digest = zlib.crc32(label.encode("utf-8"))
        return SeedSequenceFactory(self._root_seed * 1_000_003 + digest)
