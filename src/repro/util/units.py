"""Byte-size and time formatting helpers.

Experiment configs express per-node data sizes the way the paper does
("16 MB" .. "1 GB"); these helpers convert between human strings and the
float byte counts used throughout the simulator.
"""

from __future__ import annotations

from repro.util.errors import ConfigError

KiB: float = 1024.0
MiB: float = 1024.0**2
GiB: float = 1024.0**3

_SUFFIXES = {
    "b": 1.0,
    "kb": 1000.0,
    "kib": KiB,
    "mb": 1000.0**2,
    "mib": MiB,
    "gb": 1000.0**3,
    "gib": GiB,
    "tb": 1000.0**4,
    "tib": 1024.0**4,
}


def parse_size(value: "str | int | float") -> float:
    """Parse a human byte size (``"256MB"``, ``"1 GiB"``, ``4096``) to bytes.

    Numeric inputs are returned unchanged (as float).  String inputs accept
    an optional decimal value followed by an optional SI or IEC suffix,
    case-insensitively, with optional whitespace in between.

    Raises:
        ConfigError: if the string cannot be parsed or the size is negative.
    """
    if isinstance(value, (int, float)):
        if value < 0:
            raise ConfigError(f"negative size: {value!r}")
        return float(value)
    text = value.strip().lower()
    if not text:
        raise ConfigError("empty size string")
    idx = len(text)
    while idx > 0 and (text[idx - 1].isalpha()):
        idx -= 1
    number, suffix = text[:idx].strip(), text[idx:].strip()
    if not number:
        raise ConfigError(f"size string has no numeric part: {value!r}")
    try:
        magnitude = float(number)
    except ValueError as exc:
        raise ConfigError(f"bad size string: {value!r}") from exc
    if magnitude < 0:
        raise ConfigError(f"negative size: {value!r}")
    if not suffix:
        return magnitude
    try:
        scale = _SUFFIXES[suffix]
    except KeyError as exc:
        raise ConfigError(f"unknown size suffix {suffix!r} in {value!r}") from exc
    return magnitude * scale


def format_size(nbytes: float) -> str:
    """Render a byte count with a binary suffix, e.g. ``format_size(2*MiB)
    == "2.0MiB"``."""
    nbytes = float(nbytes)
    for suffix, scale in (("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if abs(nbytes) >= scale:
            return f"{nbytes / scale:.1f}{suffix}"
    return f"{nbytes:.0f}B"


def format_time(seconds: float) -> str:
    """Render a duration in the most readable unit (us/ms/s)."""
    if seconds == 0:
        return "0s"
    if abs(seconds) < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if abs(seconds) < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"
