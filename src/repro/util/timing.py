"""Per-rank time accounting.

The paper splits measured time into categories: "App compute", "App MPI",
"Resilience Initialization", "Checkpoint Function", "Data Recovery",
"Recompute" and "Other" (Figure 5), and MiniMD's phase categories "Force
Compute" / "Neighboring" / "Communicator" (Figure 6).

:class:`TimeAccount` implements the same scheme: low-level components
charge a *kind* (``compute`` or ``mpi``), and whatever label is on top of
the account's label stack decides the bucket.  With an empty stack the
default mapping applies (compute -> ``app_compute``, mpi -> ``app_mpi``);
resilience layers push labels like ``checkpoint_function`` around their
work, and applications push phase labels like ``force_compute``.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

#: bucket names used across the harness (mirrors the paper's legends)
APP_COMPUTE = "app_compute"
APP_MPI = "app_mpi"
RESILIENCE_INIT = "resilience_init"
CHECKPOINT_FUNCTION = "checkpoint_function"
DATA_RECOVERY = "data_recovery"
RECOMPUTE = "recompute"
OTHER = "other"

_DEFAULT_BUCKET = {
    "compute": APP_COMPUTE,
    "mpi": APP_MPI,
}


class TimeAccount:
    """Accumulates simulated seconds into named buckets for one rank."""

    def __init__(self) -> None:
        self.buckets: Dict[str, float] = defaultdict(float)
        self._labels: List[str] = []

    def charge(self, kind: str, dt: float) -> None:
        """Attribute ``dt`` seconds of ``kind`` work to the active bucket."""
        if dt < 0:
            raise ValueError(f"negative charge: {dt}")
        bucket = self._labels[-1] if self._labels else _DEFAULT_BUCKET.get(kind, kind)
        self.buckets[bucket] += dt

    @contextmanager
    def label(self, name: str) -> Iterator[None]:
        """Redirect all charges inside the block to bucket ``name``.

        Nested labels override outer ones (e.g. MiniMD pushes
        ``force_compute`` inside a ``recompute`` window -- the paper likewise
        reports recompute as extra time inside the compute phases)."""
        self._labels.append(name)
        try:
            yield
        finally:
            self._labels.pop()

    @property
    def active_label(self) -> Optional[str]:
        return self._labels[-1] if self._labels else None

    def total(self) -> float:
        return sum(self.buckets.values())

    def get(self, bucket: str) -> float:
        return self.buckets.get(bucket, 0.0)

    def snapshot(self) -> Dict[str, float]:
        return dict(self.buckets)

    def merge_max(self, other: "TimeAccount") -> None:
        """Keep the per-bucket maximum (critical-path style aggregation)."""
        for bucket, value in other.buckets.items():
            self.buckets[bucket] = max(self.buckets[bucket], value)

    def merge_sum(self, other: "TimeAccount") -> None:
        for bucket, value in other.buckets.items():
            self.buckets[bucket] += value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v:.3g}" for k, v in sorted(self.buckets.items()))
        return f"<TimeAccount {parts}>"
