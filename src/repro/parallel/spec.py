"""Pickle-safe job specifications for the parallel campaign executor.

A sweep cell is described *declaratively*: a :class:`CellSpec` names the
application, strategy, rank count, configuration, environment and a
:class:`PlanSpec` (a failure-plan *description*, not a live plan).  The
worker -- possibly in another process -- materializes the live objects
(``FailurePlan``, ``Telemetry``) from the spec, runs the simulation, and
returns a :class:`CellResult`.

Determinism: every source of randomness in a cell flows from values
carried by the spec (the cluster seed inside ``ExperimentEnv``, the
failure-plan seed inside ``PlanSpec``), so executing a spec in a worker
process is bit-identical to executing it inline.  That is also what
makes cells content-addressable (see :mod:`repro.parallel.cache`).
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.harness import ExperimentEnv, RunReport
from repro.harness.runner import (
    run_heatdis2d_job,
    run_heatdis_job,
    run_minimd_job,
)
from repro.sim import (
    ExponentialFailures,
    FailurePlan,
    IterationFailure,
    NoFailures,
    TimedFailure,
)
from repro.telemetry.sampling import SamplingPolicy
from repro.util.errors import ConfigError

#: default ring-buffer size for telemetered sweep runs: long campaigns
#: must not grow trace-record lists without bound (PR 2's ``max_records``)
DEFAULT_TRACE_MAX_RECORDS = 100_000

#: simulations actually executed in this process (cache hits do not
#: count; tests assert on this to prove a hit skipped the simulator)
RUNS_EXECUTED = 0


@dataclass(frozen=True)
class PlanSpec:
    """Declarative failure plan: picklable, hashable, buildable anywhere.

    ``kind`` selects the concrete :class:`~repro.sim.FailurePlan`:

    - ``"none"``: the failure-free control;
    - ``"iteration"``: kill ``kills`` = ((rank, iteration), ...);
    - ``"timed"``: kill ``kills`` = ((rank, sim_time), ...);
    - ``"exponential"``: memoryless per-rank failures from
      (``mtbf_per_rank``, ``seed``, ``max_failures``, ``victims``).
    """

    kind: str = "none"
    kills: Tuple[Tuple[int, float], ...] = ()
    mtbf_per_rank: float = 0.0
    seed: int = 0
    max_failures: Optional[int] = None
    victims: Optional[Tuple[int, ...]] = None

    # -- constructors ---------------------------------------------------

    @classmethod
    def none(cls) -> "PlanSpec":
        return cls()

    @classmethod
    def iteration(cls, kills: Iterable[Tuple[int, int]]) -> "PlanSpec":
        return cls(kind="iteration",
                   kills=tuple(sorted((int(r), int(i)) for r, i in kills)))

    @classmethod
    def between_checkpoints(
        cls,
        rank: int,
        checkpoint_interval: int,
        after_checkpoint: int,
        fraction: float = 0.95,
    ) -> "PlanSpec":
        """The paper's rule, mirrored from IterationFailure."""
        offset = min(
            checkpoint_interval - 1, int(fraction * checkpoint_interval)
        )
        iteration = int(checkpoint_interval * after_checkpoint + offset)
        return cls.iteration([(rank, iteration)])

    @classmethod
    def exponential(
        cls,
        mtbf_per_rank: float,
        seed: int = 0,
        max_failures: Optional[int] = None,
        victims: Optional[Iterable[int]] = None,
    ) -> "PlanSpec":
        return cls(
            kind="exponential",
            mtbf_per_rank=float(mtbf_per_rank),
            seed=int(seed),
            max_failures=max_failures,
            victims=tuple(sorted(victims)) if victims is not None else None,
        )

    @classmethod
    def timed(cls, kills: Iterable[Tuple[int, float]]) -> "PlanSpec":
        return cls(kind="timed",
                   kills=tuple(sorted((int(r), float(t)) for r, t in kills)))

    # -- materialization ------------------------------------------------

    def build(self) -> FailurePlan:
        """A fresh live plan; stateful, so build one per execution."""
        if self.kind == "none":
            return NoFailures()
        if self.kind == "iteration":
            return IterationFailure([(r, int(i)) for r, i in self.kills])
        if self.kind == "timed":
            return TimedFailure(self.kills)
        if self.kind == "exponential":
            return ExponentialFailures(
                self.mtbf_per_rank,
                seed=self.seed,
                max_failures=self.max_failures,
                victims=self.victims,
            )
        raise ConfigError(f"unknown failure-plan kind {self.kind!r}")


#: job-runner entry point per application name
_APP_RUNNERS = {
    "heatdis": run_heatdis_job,
    "heatdis2d": run_heatdis2d_job,
    "minimd": run_minimd_job,
}


@dataclass(frozen=True)
class CellSpec:
    """One independent sweep cell: everything a worker needs, by value."""

    app: str
    strategy: str
    n_ranks: int
    config: Any
    ckpt_interval: int
    env: ExperimentEnv
    plan: PlanSpec = field(default_factory=PlanSpec)
    #: record metrics/spans during the run (fresh Telemetry per worker)
    telemetry: bool = False
    #: Trace ring-buffer size for telemetered runs (None = unbounded)
    trace_max_records: Optional[int] = DEFAULT_TRACE_MAX_RECORDS
    #: overhead-bounding head-sampling policy for telemetered runs
    #: (None = keep everything); deterministic, so cells stay
    #: content-addressable
    sampling: Optional["SamplingPolicy"] = None
    #: path to an SLO rules file evaluated live during the run; fired
    #: alerts land in ``RunReport.alerts``
    rules: Optional[str] = None
    #: run the cell twice from identical seeds and align the traces;
    #: divergences land in ``RunReport.divergences`` (see repro.align)
    determinism_audit: bool = False
    #: free-form tag for reassembling sweep results; not part of the
    #: cache identity
    label: str = ""

    def __post_init__(self) -> None:
        if self.app not in _APP_RUNNERS:
            raise ConfigError(
                f"unknown app {self.app!r}; known: {sorted(_APP_RUNNERS)}"
            )


@dataclass
class CellResult:
    """What comes back from a worker: the (sanitized) report plus the
    failure count the live plan actually injected."""

    spec: CellSpec
    report: RunReport
    failures: int
    #: provenance: True when served from the run cache (no simulation)
    cached: bool = False
    #: host wall seconds the simulation took (0.0 for cache hits);
    #: observability only -- never an input to anything simulated
    host_seconds: float = 0.0

    @property
    def label(self) -> str:
        return self.spec.label


def sanitize_report(report: RunReport) -> RunReport:
    """Strip per-rank application payloads from a report.

    ``RunReport.results`` can hold live simulation objects (views, KR
    contexts) that are neither picklable nor JSON-serializable, so a
    report is stripped whenever it crosses a process boundary or enters
    the run cache.  The serialized report form
    (:func:`repro.harness.report.reports_to_json`) omits ``results``
    entirely, which is why sequential, pooled, and cached outputs stay
    byte-identical where it is asserted.
    """
    return dataclasses.replace(report, results={})


def execute_cell(spec: CellSpec) -> CellResult:
    """Run one cell to completion in this process."""
    global RUNS_EXECUTED
    telemetry = None
    if spec.telemetry:
        from repro.telemetry import SpanSampler, Telemetry

        sampler = (SpanSampler(spec.sampling)
                   if spec.sampling is not None else None)
        telemetry = Telemetry(sampler=sampler)
    plan = spec.plan.build()
    runner = _APP_RUNNERS[spec.app]
    t0 = time.perf_counter()
    report = runner(
        spec.env,
        spec.strategy,
        spec.n_ranks,
        spec.config,
        spec.ckpt_interval,
        plan=plan,
        telemetry=telemetry,
        trace_max_records=spec.trace_max_records,
        rules=spec.rules,
        determinism_audit=spec.determinism_audit,
    )
    host_seconds = time.perf_counter() - t0
    RUNS_EXECUTED += 1
    fired = getattr(plan, "fired", None)
    failures = fired if fired is not None else plan.expected_failures()
    return CellResult(spec=spec, report=report, failures=failures,
                      host_seconds=host_seconds)


def execute_cell_stripped(spec: CellSpec) -> CellResult:
    """Worker entry point: like :func:`execute_cell` but with the
    report sanitized for the trip back through pickle."""
    result = execute_cell(spec)
    result.report = sanitize_report(result.report)
    return result


def spec_to_dict(obj: Any) -> Any:
    """Recursively canonicalize a spec for hashing / JSON.

    Dataclasses become ``{"__type__": name, fields...}``; tuples become
    lists; only JSON-compatible leaves may remain.  ``label`` is
    dropped from :class:`CellSpec` so cosmetic tags don't split the
    cache.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out: Dict[str, Any] = {"__type__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            if isinstance(obj, CellSpec) and f.name == "label":
                continue
            out[f.name] = spec_to_dict(getattr(obj, f.name))
        return out
    if isinstance(obj, (list, tuple)):
        return [spec_to_dict(x) for x in obj]
    if isinstance(obj, dict):
        return {str(k): spec_to_dict(v) for k, v in sorted(obj.items())}
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise ConfigError(
        f"cell specs must be built from dataclasses and plain values; "
        f"got {type(obj).__name__}"
    )
