"""Live campaign progress: per-cell state, ETA, cache and worker stats.

Long sweeps used to run silently: with ``--jobs 8`` the first output
arrived minutes in, and nothing distinguished a cached cell from a
simulated one.  :class:`CampaignProgress` is the executor-side tracker;
it receives one event per cell (submitted / finished, with provenance)
and fans a small dict-shaped event stream out to *sinks*:

- :class:`TTYProgress` -- a single overwritten status line for humans
  (``\\r``-style, stderr), showing completed/total, cache hits, worker
  utilization and the ETA extrapolated from completed-cell durations;
- :class:`JsonlProgress` -- one JSON object per line for headless runs
  (CI tails the file; tests reconcile its cell count with the ledger).

Events are host-time observations (``time.perf_counter`` durations), so
they are *observability of the run itself*, never inputs to the
simulation -- determinism of the results is untouched.

Event vocabulary (the JSONL contract, ``schema`` 1)::

    {"event": "campaign_start", "total": N, "jobs": J}
    {"event": "cell_done", "index": i, "label": ..., "state":
        "cached"|"fresh"|"failed", "host_seconds": s, "alerts": a,
        "completed": c, "total": N, "cache_hits": h, "cache_misses": m,
        "eta_s": e, "utilization": u}
    {"event": "campaign_end", "total": N, "cached": h, "fresh": f,
        "failed": x, "host_seconds": s}

``eta_s`` is ``remaining * mean(fresh host_seconds) / jobs`` -- the
simplest estimator that is exact for uniform cells -- and ``None`` until
one fresh cell has finished.  ``utilization`` is in-flight cells over
worker slots, clamped to [0, 1].
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Dict, IO, List, Optional

from repro.util.schema import stamp

#: JSONL event-stream schema version
PROGRESS_SCHEMA = 1

#: cell terminal states
CELL_STATES = ("cached", "fresh", "failed")


class ProgressSink:
    """Receives progress events as plain dicts; subclass per transport."""

    def emit(self, event: Dict[str, Any]) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Flush/terminate the stream (campaign end)."""


class JsonlProgress(ProgressSink):
    """Append one JSON object per event to a file (headless runs)."""

    def __init__(self, path: str):
        self.path = path
        self._fh: Optional[IO[str]] = open(path, "w", encoding="utf-8")

    def emit(self, event: Dict[str, Any]) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self._fh.flush()  # tail -f must see cells as they land

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class TTYProgress(ProgressSink):
    """Single-line live status for interactive terminals.

    Rewrites one stderr line per event; prints a final newline-terminated
    summary on close so the last state survives in scrollback.
    """

    def __init__(self, stream: Optional[IO[str]] = None):
        self.stream = stream if stream is not None else sys.stderr
        self._dirty = False
        self._last = ""

    def emit(self, event: Dict[str, Any]) -> None:
        if event.get("event") == "campaign_end":
            self._render_end(event)
            return
        if event.get("event") != "cell_done":
            return
        eta = event.get("eta_s")
        eta_text = f"eta {eta:.0f}s" if eta is not None else "eta --"
        util = event.get("utilization")
        util_text = f" busy {util:.0%}" if util is not None else ""
        line = (
            f"[{event['completed']}/{event['total']}] "
            f"{event.get('label') or 'cell'}: {event['state']}  "
            f"(cache {event['cache_hits']} hit"
            f"/{event['cache_misses']} miss, {eta_text}{util_text})"
        )
        self._write(line)

    def _render_end(self, event: Dict[str, Any]) -> None:
        self._write(
            f"campaign done: {event['total']} cells "
            f"({event['cached']} cached, {event['fresh']} simulated"
            + (f", {event['failed']} failed" if event.get("failed") else "")
            + f") in {event['host_seconds']:.1f}s"
        )
        self.close()

    def _write(self, line: str) -> None:
        pad = max(0, len(self._last) - len(line))
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()
        self._last = line
        self._dirty = True

    def close(self) -> None:
        if self._dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._dirty = False


class CampaignProgress:
    """Executor-side bookkeeping shared by every sink.

    One instance may span several :func:`~repro.parallel.run_cells`
    calls (a campaign is many sweeps); ``start`` is emitted lazily on
    the first batch and totals accumulate until :meth:`finish`.
    """

    def __init__(self, sinks: Optional[List[ProgressSink]] = None,
                 jobs: int = 1):
        self.sinks = list(sinks or [])
        self.jobs = max(1, jobs)
        self.total = 0
        self.completed = 0
        self.cached = 0
        self.fresh = 0
        self.failed = 0
        self.in_flight = 0
        self._fresh_seconds: List[float] = []
        self._t0: Optional[float] = None
        self._started = False

    # -- executor hooks -------------------------------------------------

    def add_cells(self, n: int) -> None:
        """Announce ``n`` more cells (called per run_cells batch)."""
        if self._t0 is None:
            self._t0 = time.perf_counter()
        self.total += n
        if not self._started:
            self._started = True
            self._emit(stamp({
                "event": "campaign_start",
                "total": self.total,
                "jobs": self.jobs,
            }, PROGRESS_SCHEMA))

    def cell_submitted(self) -> None:
        self.in_flight += 1

    def cell_done(self, index: int, label: str, state: str,
                  host_seconds: float = 0.0, alerts: int = 0) -> None:
        if state not in CELL_STATES:
            raise ValueError(f"unknown cell state {state!r}")
        self.in_flight = max(0, self.in_flight - 1)
        self.completed += 1
        if state == "cached":
            self.cached += 1
        elif state == "fresh":
            self.fresh += 1
            self._fresh_seconds.append(host_seconds)
        else:
            self.failed += 1
        self._emit({
            "event": "cell_done",
            "index": index,
            "label": label,
            "state": state,
            "host_seconds": round(host_seconds, 6),
            "alerts": int(alerts),
            "completed": self.completed,
            "total": self.total,
            "cache_hits": self.cached,
            "cache_misses": self.fresh + self.failed,
            "eta_s": self.eta_s(),
            "utilization": self.utilization(),
        })

    def finish(self) -> None:
        """Emit the terminal summary and close every sink."""
        elapsed = (time.perf_counter() - self._t0) if self._t0 else 0.0
        self._emit({
            "event": "campaign_end",
            "total": self.total,
            "cached": self.cached,
            "fresh": self.fresh,
            "failed": self.failed,
            "host_seconds": round(elapsed, 6),
        })
        for sink in self.sinks:
            sink.close()

    # -- derived stats --------------------------------------------------

    def eta_s(self) -> Optional[float]:
        """Remaining host seconds, from completed fresh-cell durations."""
        if not self._fresh_seconds:
            return None
        remaining = max(0, self.total - self.completed)
        mean = sum(self._fresh_seconds) / len(self._fresh_seconds)
        return round(remaining * mean / self.jobs, 6)

    def utilization(self) -> float:
        """Busy worker slots as a fraction of ``jobs``."""
        return min(1.0, self.in_flight / self.jobs)

    # -- internals ------------------------------------------------------

    def _emit(self, event: Dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.emit(event)


def default_progress(
    jobs: int,
    jsonl_path: Optional[str] = None,
    tty: Optional[bool] = None,
    stream: Optional[IO[str]] = None,
) -> Optional[CampaignProgress]:
    """The CLI wiring: JSONL sink when a path is given, TTY sink when
    stderr is a terminal (or ``tty`` forces it); None when neither."""
    sinks: List[ProgressSink] = []
    if jsonl_path:
        sinks.append(JsonlProgress(jsonl_path))
    out = stream if stream is not None else sys.stderr
    if tty is None:
        tty = hasattr(out, "isatty") and out.isatty()
    if tty:
        sinks.append(TTYProgress(out))
    if not sinks:
        return None
    return CampaignProgress(sinks, jobs=jobs)
