"""Content-addressed run cache: (config + seed + code version) -> report.

Cache key
---------

A cell's identity is the SHA-256 of:

- the canonical JSON form of its :class:`~repro.parallel.spec.CellSpec`
  (every field that affects the simulation, including all seeds; the
  cosmetic ``label`` is excluded), and
- the *code fingerprint*: a digest over the source bytes of every module
  in the ``repro`` package, so any code change -- an engine fix, a cost
  model tweak -- invalidates the whole cache automatically, and
- a schema version constant, bumped when the stored JSON layout changes.

Entries live as ``results/cache/<key>.json`` by default.  Invalidation
is therefore: touch any ``repro`` source file, pass ``--no-cache``, or
simply delete the directory -- entries are self-contained files.

Only the aggregate :class:`~repro.harness.RunReport` fields are stored
(per-rank application payloads are stripped by the executor); floats
round-trip exactly through JSON (``repr``-based), which is what makes a
cache hit byte-identical to the simulation it replaced.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Optional

from repro.harness.runner import RunReport
from repro.parallel.spec import CellResult, CellSpec, spec_to_dict

#: bump when the on-disk entry layout changes
CACHE_SCHEMA = 1

DEFAULT_CACHE_DIR = pathlib.Path("results") / "cache"

_code_fingerprint: Optional[str] = None


def code_fingerprint() -> str:
    """Digest of the ``repro`` package sources (computed once per process)."""
    global _code_fingerprint
    if _code_fingerprint is None:
        import repro

        pkg_root = pathlib.Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(pkg_root.rglob("*.py")):
            digest.update(str(path.relative_to(pkg_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _code_fingerprint = digest.hexdigest()
    return _code_fingerprint


def cache_key(spec: CellSpec) -> str:
    """The content address of one cell."""
    payload = json.dumps(
        {
            "schema": CACHE_SCHEMA,
            "code": code_fingerprint(),
            "spec": spec_to_dict(spec),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _report_to_entry(report: RunReport) -> dict:
    return {
        "strategy": report.strategy,
        "app": report.app,
        "n_ranks": report.n_ranks,
        "wall_time": report.wall_time,
        "attempts": report.attempts,
        "failures": report.failures,
        "buckets": dict(report.buckets),
        "platform": dict(report.platform),
        "telemetry": report.telemetry,
        "divergences": list(report.divergences),
    }


def _report_from_entry(entry: dict) -> RunReport:
    return RunReport(
        strategy=entry["strategy"],
        app=entry["app"],
        n_ranks=entry["n_ranks"],
        wall_time=entry["wall_time"],
        attempts=entry["attempts"],
        failures=entry["failures"],
        buckets=dict(entry["buckets"]),
        results={},
        platform=dict(entry["platform"]),
        telemetry=entry["telemetry"],
        divergences=list(entry.get("divergences", [])),
    )


class RunCache:
    """Directory of completed cell results, keyed by content address."""

    def __init__(self, directory: "pathlib.Path | str" = DEFAULT_CACHE_DIR):
        self.directory = pathlib.Path(directory)
        self.hits = 0
        self.misses = 0
        #: entries that existed but were unreadable/corrupt and were
        #: skipped (the cell re-simulates; the entry is overwritten)
        self.skipped = 0
        #: fresh results persisted by this process
        self.stores = 0

    def _path(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.json"

    def get(self, spec: CellSpec) -> Optional[CellResult]:
        """The stored result for ``spec``, or None (a miss)."""
        path = self._path(cache_key(spec))
        if not path.exists():
            self.misses += 1
            return None
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            self.skipped += 1
            return None
        self.hits += 1
        return CellResult(
            spec=spec,
            report=_report_from_entry(entry["report"]),
            failures=entry["failures"],
            cached=True,
        )

    def put(self, spec: CellSpec, result: CellResult) -> None:
        """Persist one completed cell (atomic rename, so a crashed run
        never leaves a truncated entry behind)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        key = cache_key(spec)
        # no sort_keys: dict order (buckets, telemetry) must survive the
        # round trip so a hit re-serializes byte-identically to the run
        payload = json.dumps(
            {
                "schema": CACHE_SCHEMA,
                "report": _report_to_entry(result.report),
                "failures": result.failures,
            }
        )
        tmp = self._path(key).with_suffix(".tmp")
        tmp.write_text(payload)
        tmp.replace(self._path(key))
        self.stores += 1

    def summary(self) -> str:
        """One-line provenance summary for CLI epilogues."""
        line = (f"run cache: {self.hits} hit{'s' if self.hits != 1 else ''}, "
                f"{self.misses} miss{'es' if self.misses != 1 else ''} "
                f"({self.stores} stored) under {self.directory}")
        if self.skipped:
            line += f"; {self.skipped} corrupt entr" + (
                "y" if self.skipped == 1 else "ies") + " skipped"
        return line

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.directory.exists():
            for path in self.directory.glob("*.json"):
                path.unlink()
                removed += 1
        return removed
