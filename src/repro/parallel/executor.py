"""Process-pool campaign executor.

Sweeps are embarrassingly parallel: every (strategy, rank-count, seed)
cell is an independent, deterministic simulation.  :func:`run_cells`
fans the cells of one sweep out over a ``ProcessPoolExecutor``, with the
content-addressed cache consulted first so a re-run only executes
changed cells.  Results come back in input order regardless of worker
scheduling, and each worker builds its own live objects from the
pickle-safe spec -- no shared mutable state -- so parallel output is
bit-identical to a sequential run.

``jobs`` semantics (shared by every experiment entry point):

- ``1`` (default): run inline in this process;
- ``N > 1``: up to N worker processes;
- ``0`` or ``None``: one worker per available CPU.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.parallel.cache import RunCache
from repro.parallel.progress import CampaignProgress
from repro.parallel.spec import (
    CellResult,
    CellSpec,
    execute_cell,
    execute_cell_stripped,
)

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value to a concrete worker count."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _alerts_of(result: Optional[CellResult]) -> int:
    """SLO alerts the cell's run fired (0 when the run carried no rules)."""
    if result is None:
        return 0
    return len(getattr(result.report, "alerts", []) or [])


def run_cells(
    specs: Sequence[CellSpec],
    jobs: Optional[int] = 1,
    cache: Optional[RunCache] = None,
    progress: Optional[CampaignProgress] = None,
) -> List[CellResult]:
    """Execute every cell, in input order, cache-first then pool.

    Cache hits never reach a worker; only misses are simulated.  With
    ``jobs`` <= 1 (or a single miss) everything runs inline, which is
    also the degenerate case the determinism tests compare against.

    ``progress`` receives one ``cell_done`` event per cell -- cached
    cells immediately, simulated cells as each finishes (completion
    order under a pool), so a sink shows live state without perturbing
    the input-order result list.
    """
    specs = list(specs)
    results: List[Optional[CellResult]] = [None] * len(specs)
    if progress is not None:
        progress.add_cells(len(specs))
    misses: List[int] = []
    for i, spec in enumerate(specs):
        if cache is not None:
            hit = cache.get(spec)
            if hit is not None:
                results[i] = hit
                if progress is not None:
                    progress.cell_done(i, spec.label, "cached",
                                       alerts=_alerts_of(hit))
                continue
        misses.append(i)

    n_workers = min(resolve_jobs(jobs), len(misses)) if misses else 0
    if n_workers > 1:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = {}
            for i in misses:
                futures[pool.submit(execute_cell_stripped, specs[i])] = i
                if progress is not None:
                    progress.cell_submitted()
            for fut in as_completed(futures):
                i = futures[fut]
                try:
                    results[i] = fut.result()
                except BaseException:
                    if progress is not None:
                        progress.cell_done(i, specs[i].label, "failed")
                    raise
                if progress is not None:
                    progress.cell_done(
                        i, specs[i].label, "fresh",
                        host_seconds=results[i].host_seconds,
                        alerts=_alerts_of(results[i]),
                    )
    else:
        for i in misses:
            if progress is not None:
                progress.cell_submitted()
            try:
                results[i] = execute_cell(specs[i])
            except BaseException:
                if progress is not None:
                    progress.cell_done(i, specs[i].label, "failed")
                raise
            if progress is not None:
                progress.cell_done(i, specs[i].label, "fresh",
                                   host_seconds=results[i].host_seconds,
                                   alerts=_alerts_of(results[i]))

    if cache is not None:
        for i in misses:
            cache.put(specs[i], results[i])
    return results  # type: ignore[return-value]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: Optional[int] = 1,
    progress: Optional[CampaignProgress] = None,
) -> List[R]:
    """Order-preserving map for picklable, side-effect-free work.

    Used by drivers whose units are not simulation cells (e.g. the
    Figure 7 view census).  ``fn`` must be a module-level callable.
    Like :func:`run_cells`, an optional ``progress`` tracker gets one
    ``cell_done`` event per item (labelled by repr).
    """
    items = list(items)
    if progress is not None:
        progress.add_cells(len(items))
    results: List[Optional[R]] = [None] * len(items)
    n_workers = min(resolve_jobs(jobs), len(items)) if items else 0
    if n_workers > 1:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = {}
            for i, item in enumerate(items):
                futures[pool.submit(fn, item)] = i
                if progress is not None:
                    progress.cell_submitted()
            for fut in as_completed(futures):
                i = futures[fut]
                try:
                    results[i] = fut.result()
                except BaseException:
                    if progress is not None:
                        progress.cell_done(i, repr(items[i]), "failed")
                    raise
                if progress is not None:
                    # plain-function items carry no duration of their
                    # own; ETA falls back to other fresh cells
                    progress.cell_done(i, repr(items[i]), "fresh")
        return results  # type: ignore[return-value]
    out: List[R] = []
    for i, item in enumerate(items):
        if progress is not None:
            progress.cell_submitted()
        t0 = time.perf_counter()
        try:
            out.append(fn(item))
        except BaseException:
            if progress is not None:
                progress.cell_done(i, repr(item), "failed")
            raise
        if progress is not None:
            progress.cell_done(i, repr(item), "fresh",
                               host_seconds=time.perf_counter() - t0)
    return out
