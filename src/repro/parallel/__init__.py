"""Parallel experiment execution: process-pool executor + run cache.

Every figure in the paper is a sweep over independent, deterministic
simulations; this package makes those sweeps cheap:

- :mod:`repro.parallel.spec` -- pickle-safe cell descriptions
  (:class:`CellSpec`, :class:`PlanSpec`) and the worker entry point;
- :mod:`repro.parallel.executor` -- :func:`run_cells` fans cells out
  over a ``ProcessPoolExecutor`` with bit-identical-to-sequential
  results, :func:`parallel_map` for non-simulation work;
- :mod:`repro.parallel.cache` -- :class:`RunCache`, a content-addressed
  (config + seed + code fingerprint) store of finished reports under
  ``results/cache/``, so re-running a campaign only executes changed
  cells.
"""

from repro.parallel.cache import RunCache, cache_key, code_fingerprint
from repro.parallel.executor import parallel_map, resolve_jobs, run_cells
from repro.parallel.progress import (
    CampaignProgress,
    JsonlProgress,
    ProgressSink,
    TTYProgress,
    default_progress,
)
from repro.parallel.spec import (
    DEFAULT_TRACE_MAX_RECORDS,
    CellResult,
    CellSpec,
    PlanSpec,
    execute_cell,
    sanitize_report,
)

__all__ = [
    "RunCache",
    "cache_key",
    "code_fingerprint",
    "parallel_map",
    "resolve_jobs",
    "run_cells",
    "CampaignProgress",
    "JsonlProgress",
    "ProgressSink",
    "TTYProgress",
    "default_progress",
    "CellResult",
    "CellSpec",
    "PlanSpec",
    "execute_cell",
    "sanitize_report",
    "DEFAULT_TRACE_MAX_RECORDS",
]
