"""Fenix data-group (Fenix_Data_*) commit-consistency tests."""

import numpy as np
import pytest

from repro.fenix import DataGroup, FenixSystem, IMRStore, Role
from repro.fenix.errors import FenixError
from repro.mpi import SUM, World
from repro.sim import IterationFailure
from tests.fenix.conftest import fenix_cluster


def run_group_app(n_ranks, main, n_spares=0, plan=None):
    cluster = fenix_cluster(n_ranks)
    world = World(cluster, n_ranks)
    system = FenixSystem(world, n_spares=n_spares)
    imr = IMRStore(world)
    results = {}

    def wrapped(rank):
        ctx = world.context(rank)
        res = yield from system.run(
            ctx, lambda role, h: main(role, h, imr)
        )
        results[rank] = res

    for r in range(n_ranks):
        world.spawn(r, wrapped(r), failure_plan=plan)
    cluster.engine.run()
    world.raise_job_errors()
    return results, world


class TestCommitSemantics:
    def test_staged_not_restorable_before_commit(self):
        def main(role, h, imr):
            from repro.kokkos import KokkosRuntime

            rt = KokkosRuntime()
            v = rt.view("x", data=np.ones(4))
            group = DataGroup(imr, h, group_id=1)
            yield from group.member_store(0, v)
            return sorted(group.committed_versions())

        results, _ = run_group_app(2, main)
        assert results[0] == []

    def test_commit_makes_version_restorable(self):
        def main(role, h, imr):
            from repro.kokkos import KokkosRuntime

            rt = KokkosRuntime()
            v = rt.view("x", data=np.arange(4.0))
            group = DataGroup(imr, h, group_id=1)
            yield from group.member_store(0, v)
            ts = yield from group.commit()
            v.fill(0.0)
            tier = yield from group.member_restore(0, ts)
            return (ts, tier, v.data.copy())

        results, _ = run_group_app(2, main)
        ts, tier, data = results[0]
        assert ts == 0
        assert tier == "local"
        assert np.array_equal(data, np.arange(4.0))

    def test_commit_is_atomic_over_members(self):
        def main(role, h, imr):
            from repro.kokkos import KokkosRuntime

            rt = KokkosRuntime()
            a = rt.view("a", data=np.ones(2))
            b = rt.view("b", data=np.full(2, 2.0))
            group = DataGroup(imr, h, group_id=1)
            yield from group.member_store(0, a)
            # only member 0 staged; committed version lacks member 1 ->
            # committed_versions (intersection over members) stays empty
            group.member_create(1, b)
            ts = yield from group.commit()
            partial = sorted(group.committed_versions())
            yield from group.member_store(1, b)
            ts2 = yield from group.commit()
            full = sorted(group.committed_versions())
            return (ts, partial, ts2, full)

        results, _ = run_group_app(2, main)
        ts, partial, ts2, full = results[0]
        assert partial == []  # member 1 missing from version 0
        assert ts2 == 1
        assert 1 in full

    def test_commit_without_store_rejected(self):
        def main(role, h, imr):
            from repro.kokkos import KokkosRuntime

            rt = KokkosRuntime()
            group = DataGroup(imr, h, group_id=1)
            group.member_create(0, rt.view("x", shape=(2,)))
            with pytest.raises(FenixError):
                yield from group.commit()
            return "ok"

        results, _ = run_group_app(2, main)
        assert results[0] == "ok"

    def test_gc_keeps_recent_versions(self):
        def main(role, h, imr):
            from repro.kokkos import KokkosRuntime

            rt = KokkosRuntime()
            v = rt.view("x", shape=(2,))
            group = DataGroup(imr, h, group_id=1, keep_versions=2)
            for i in range(4):
                v.fill(float(i))
                yield from group.member_store(0, v)
                yield from group.commit()
            return sorted(group.committed_versions())

        results, _ = run_group_app(2, main)
        assert results[0] == [2, 3]


class TestFailureSemantics:
    def test_uncommitted_data_lost_with_owner(self):
        """Staged-but-uncommitted data must not be restorable by the
        replacement, even though the buddy physically holds a copy."""
        plan = IterationFailure([(1, 1)])
        log = {}

        def main(role, h, imr):
            from repro.kokkos import KokkosRuntime

            rt = KokkosRuntime()
            v = rt.view("x", data=np.full(2, float(h.rank)))
            group = DataGroup(imr, h, group_id=1)
            if role is not Role.INITIAL:
                if role is Role.RECOVERED:
                    log["recovered_versions"] = sorted(
                        group.committed_versions()
                    )
                return role.value  # post-failure path is collective-free
            # iteration 0: store + commit; iteration 1: store only
            yield from group.member_store(0, v)
            yield from group.commit()
            yield from h.allreduce(1, op=SUM)
            plan.check(h.ctx.rank, 1)
            yield from group.member_store(0, v)
            # victim dies before commit; survivors proceed
            yield from h.allreduce(1, op=SUM)
            return "done"

        results, world = run_group_app(4, main, n_spares=1, plan=plan)
        # the replacement only sees the COMMITTED version 0
        assert log["recovered_versions"] == [0]

    def test_buddy_restore_after_owner_death(self):
        plan = IterationFailure([(1, 1)])
        log = {}

        def main(role, h, imr):
            from repro.kokkos import KokkosRuntime

            rt = KokkosRuntime()
            v = rt.view("x", data=np.full(2, 10.0 + h.rank))
            group = DataGroup(imr, h, group_id=1)
            if role is not Role.INITIAL:
                if role is Role.RECOVERED:
                    versions = group.committed_versions()
                    tier = yield from group.member_restore(0, max(versions), v)
                    log["restore"] = (tier, float(v.data[0]))
                return role.value
            yield from group.member_store(0, v)
            yield from group.commit()
            yield from h.allreduce(1, op=SUM)
            plan.check(h.ctx.rank, 1)
            yield from h.allreduce(1, op=SUM)
            return "done"

        run_group_app(4, main, n_spares=1, plan=plan)
        tier, value = log["restore"]
        assert tier == "buddy"
        assert value == 11.0  # rank 1's committed data
