"""Figure-2 walkthrough: the paper's three control-flow columns, verified.

Figure 2 shows (left to right): the reference implementation, a
Fenix-enabled run without failures, and a Fenix run with a rank-two
failure.  These tests execute all three and assert the diagram's
distinctive properties: where communicative initialization runs, who
long-jumps, which rank states appear, and the ordering
detect -> repair -> re-entry.
"""

import pytest

from repro.fenix import FenixSystem, Role
from repro.mpi import ProcFailedError, SUM, World
from repro.sim import IterationFailure
from tests.fenix.conftest import fenix_cluster

N_ITERS = 6


def figure2_app(journal, plan=None):
    """The paper's skeleton: communicative init for initial ranks, data
    recovery for others, the work loop with periodic checkpoints."""

    def main(role, h):
        t = h.engine.now
        journal.append((t, "enter", h.ctx.rank, role.value))
        if role is Role.INITIAL:
            journal.append((t, "communicative_init", h.ctx.rank))
            start = 0
        elif role is Role.RECOVERED:
            journal.append((t, "recover_data", h.ctx.rank))
            start = 0  # latest+1 in the full apps; immaterial here
        else:  # SURVIVOR: data intact, no init, no recovery
            start = 0
        for i in range(start, N_ITERS):
            if plan is not None:
                plan.check(h.ctx.rank, i)
            yield from h.allreduce(1, op=SUM)
            journal.append((h.engine.now, "iter", h.ctx.rank, i))
        return "finalized"

    return main


def run_column(n_ranks, n_spares, plan=None):
    cluster = fenix_cluster(n_ranks)
    world = World(cluster, n_ranks)
    system = FenixSystem(world, n_spares=n_spares)
    journal = []
    results = {}
    main = figure2_app(journal, plan)

    def wrapped(rank):
        res = yield from system.run(world.context(rank), main)
        results[rank] = res

    for r in range(n_ranks):
        world.spawn(r, wrapped(r), failure_plan=plan)
    cluster.engine.run()
    world.raise_job_errors()
    return journal, results, world, system


class TestColumnTwo_FenixNoFailures:
    def test_single_init_single_pass(self):
        journal, results, world, system = run_column(4, n_spares=1)
        inits = [e for e in journal if e[1] == "communicative_init"]
        assert len(inits) == 3  # once per active rank, never repeated
        assert all(results[r] == "finalized" for r in range(3))
        assert results[3] is None  # the spare passed through Fenix only
        assert system.generation == 0

    def test_spare_never_enters_main(self):
        journal, _, _, _ = run_column(4, n_spares=1)
        entered = {e[2] for e in journal if e[1] == "enter"}
        assert 3 not in entered


class TestColumnThree_RankTwoFailure:
    @pytest.fixture(scope="class")
    def run(self):
        plan = IterationFailure([(2, 3)])
        return run_column(5, n_spares=1, plan=plan)

    def test_rank_states_match_figure(self, run):
        journal, results, world, system = run
        roles_seen = {}
        for e in journal:
            if e[1] == "enter":
                roles_seen.setdefault(e[2], []).append(e[3])
        # initial pass on ranks 0..3; after the failure: 0,1,3 survivors,
        # world rank 4 (the spare) recovered in slot 2
        assert roles_seen[0] == ["initial", "survivor"]
        assert roles_seen[1] == ["initial", "survivor"]
        assert roles_seen[3] == ["initial", "survivor"]
        assert roles_seen[4] == ["recovered"]
        assert roles_seen[2] == ["initial"]  # died mid-run, no re-entry

    def test_survivors_skip_communicative_init(self, run):
        journal, _, _, _ = run
        # communicative init ran exactly once per initial rank; the
        # recovered rank took the recover_data path instead (Figure 2's
        # else-branch)
        init_ranks = [e[2] for e in journal if e[1] == "communicative_init"]
        assert sorted(init_ranks) == [0, 1, 2, 3]
        recover_ranks = [e[2] for e in journal if e[1] == "recover_data"]
        assert recover_ranks == [4]

    def test_detect_repair_reenter_ordering(self, run):
        journal, _, world, system = run
        t_detect = min(d["time"] for d in system.detections)
        reentries = [e[0] for e in journal if e[1] == "enter"
                     and e[3] in ("survivor", "recovered")]
        assert all(t >= t_detect for t in reentries)
        assert system.generation == 1

    def test_all_slots_finish(self, run):
        _, results, world, _ = run
        finished = [r for r, v in results.items() if v == "finalized"]
        assert sorted(finished) == [0, 1, 3, 4]


class TestColumnOne_ReferenceImplementation:
    def test_without_fenix_failure_is_fatal(self):
        """The reference column: an unhandled process failure kills the
        job (errors propagate; no recovery path exists)."""
        cluster = fenix_cluster(3)
        world = World(cluster, 3)
        plan = IterationFailure([(1, 2)])
        outcomes = {}

        def main(rank):
            h = world.comm_world_handle(rank)  # plain handle, no handler
            try:
                for i in range(N_ITERS):
                    plan.check(rank, i)
                    yield from h.allreduce(1, op=SUM)
                outcomes[rank] = "finished"
            except ProcFailedError:
                outcomes[rank] = "fatal"
                raise

        for r in range(3):
            world.spawn(r, main(r), failure_plan=plan)
        cluster.engine.run()
        assert outcomes[0] == "fatal"
        assert outcomes[2] == "fatal"
        assert world.errors  # crashes recorded; a real job would abort
