"""Dynamic spare growth: ranks joining the pool mid-run (future work)."""

import pytest

from repro.fenix import FenixSystem, Role
from repro.mpi import SUM, World
from repro.sim import IterationFailure
from repro.util.errors import ConfigError
from tests.fenix.conftest import fenix_cluster


def run_dynamic(n_world, n_active, n_spares, late, plan, n_iters=8,
                iter_time=0.5):
    """`late` maps world_rank -> spawn time for dynamic spares."""
    cluster = fenix_cluster(n_world)
    world = World(cluster, n_world)
    system = FenixSystem(world, n_spares=n_spares, n_active=n_active)
    results = {}
    entries = []

    def main(role, h):
        entries.append((h.ctx.rank, role.value))
        for i in range(n_iters):
            plan.check(h.ctx.rank, i)
            yield from h.ctx.sleep(iter_time)
            yield from h.allreduce(1, op=SUM)
        return ("finished", h.rank)

    def wrapped(rank, delay):
        ctx = world.context(rank)
        if delay:
            yield from ctx.sleep(delay)
        res = yield from system.run(ctx, main)
        results[rank] = res

    for r in range(n_world):
        world.spawn(r, wrapped(r, late.get(r, 0.0)), failure_plan=plan)
    cluster.engine.run()
    world.raise_job_errors()
    return results, world, system, entries


class TestDynamicSpares:
    def test_validation(self):
        cluster = fenix_cluster(4)
        world = World(cluster, 4)
        with pytest.raises(ConfigError):
            FenixSystem(world, n_spares=2, n_active=3)  # 5 > 4 ranks

    def test_late_spare_consumed_by_second_failure(self):
        # 6 world ranks: 4 active, 1 configured spare (rank 4), and a
        # dynamic spare (rank 5) that only starts at t=1.2.  Failures at
        # iterations 1 (t~0.5) and 4 (t~2+) consume both.
        plan = IterationFailure([(0, 1), (1, 4)])
        results, world, system, entries = run_dynamic(
            6, n_active=4, n_spares=1, late={5: 1.2}, plan=plan,
        )
        assert world.dead == {0, 1}
        assert system.generation == 2
        assert system.spare_pool == []
        finished = sorted(v for v in results.values() if isinstance(v, tuple))
        assert finished == [
            ("finished", 0), ("finished", 1), ("finished", 2), ("finished", 3),
        ]
        # the dynamic rank really entered as RECOVERED
        assert (5, "recovered") in entries

    def test_repair_does_not_wait_for_unarrived_dynamic_spare(self):
        # dynamic spare arrives at t=100 (long after everything); the
        # first failure must be repaired by the configured spare without
        # waiting for it.
        plan = IterationFailure([(0, 1)])
        results, world, system, entries = run_dynamic(
            6, n_active=4, n_spares=1, late={5: 100.0}, plan=plan,
        )
        assert system.generation == 1
        finished = [v for v in results.values() if isinstance(v, tuple)]
        assert len(finished) == 4
        # job finished long before the dynamic spare's arrival would matter
        assert world.dead == {0}

    def test_dynamic_spare_idle_if_no_failure(self):
        plan = IterationFailure([])
        results, world, system, entries = run_dynamic(
            5, n_active=3, n_spares=1, late={4: 0.2}, plan=plan,
        )
        assert results[4] is None  # released at job end like any spare
        assert 4 in system.spare_pool
