"""Fenix edge cases: spare death, failure timing, role predicates."""

import pytest

from repro.fenix import FenixSystem, Role
from repro.mpi import SUM, World
from repro.sim import IterationFailure, TimedFailure
from tests.fenix.conftest import fenix_cluster, run_fenix


class TestRolePredicates:
    def test_needs_full_init(self):
        assert Role.INITIAL.needs_full_init
        assert not Role.SURVIVOR.needs_full_init
        assert not Role.RECOVERED.needs_full_init

    def test_needs_data_recovery(self):
        assert Role.RECOVERED.needs_data_recovery
        assert not Role.SURVIVOR.needs_data_recovery


class TestSpareDeath:
    def test_dead_spare_does_not_block_repair(self):
        """A spare that dies while idle must not hang the repair gate."""
        cluster = fenix_cluster(5)
        world = World(cluster, 5)
        system = FenixSystem(world, n_spares=2)  # spares: ranks 3, 4
        # each iteration lasts 0.5 s; rank 3 (the first spare) dies at
        # t=0.7 (during iteration 1), then rank 1 dies at iteration 2
        plan = IterationFailure([(1, 2)])
        spare_killer = TimedFailure([(3, 0.7)])
        results = {}

        def main(role, h):
            for i in range(5):
                plan.check(h.ctx.rank, i)
                yield from h.ctx.sleep(0.5)
                yield from h.allreduce(1, op=SUM)
            return ("finished", h.rank)

        def wrapped(rank):
            ctx = world.context(rank)
            res = yield from system.run(ctx, main)
            results[rank] = res

        for r in range(5):
            proc = world.spawn(r, wrapped(r), failure_plan=plan)
            spare_killer.arm(cluster.engine, r, proc)
        cluster.engine.run()
        world.raise_job_errors()
        # the surviving spare (rank 4) replaced rank 1
        finished = sorted(v for v in results.values() if isinstance(v, tuple))
        assert finished == [("finished", 0), ("finished", 1), ("finished", 2)]
        assert world.dead == {1, 3}

    def test_spare_only_death_does_not_strand_other_spares(self):
        """A failure that kills only an idle spare must not send the
        remaining spares to a repair gate: no resilient-comm member
        died, so no survivor will ever rendezvous there -- they must
        resume waiting and exit cleanly at job end."""
        cluster = fenix_cluster(6)
        world = World(cluster, 6)
        system = FenixSystem(world, n_spares=3)  # spares: ranks 3, 4, 5
        spare_killer = TimedFailure([(4, 0.7)])
        results = {}

        def main(role, h):
            for _ in range(4):
                yield from h.ctx.sleep(0.5)
                yield from h.allreduce(1, op=SUM)
            return ("finished", h.rank)

        def wrapped(rank):
            ctx = world.context(rank)
            res = yield from system.run(ctx, main)
            results[rank] = res

        for r in range(6):
            proc = world.spawn(r, wrapped(r))
            spare_killer.arm(cluster.engine, r, proc)
        cluster.engine.run()  # deadlocks here if spares hit the gate
        world.raise_job_errors()
        finished = sorted(v for v in results.values()
                          if isinstance(v, tuple))
        assert finished == [("finished", 0), ("finished", 1),
                            ("finished", 2)]
        assert world.dead == {4}
        # the untouched spares were released, not stranded
        assert results[3] is None and results[5] is None

    def test_dead_spare_not_selected_as_replacement(self):
        cluster = fenix_cluster(4)
        world = World(cluster, 4)
        system = FenixSystem(world, n_spares=1)
        world.mark_dead(3)  # the only spare dies before anything happens
        world.mark_dead(1)  # an active rank dies
        result = system._finalize_repair({0: None, 2: None})
        # shrink policy: slot dropped, comm has 2 members
        assert result.comm.size == 2
        assert result.roles == {
            0: Role.SURVIVOR,
            2: Role.SURVIVOR,
        }


class TestFailureBeforeAnyCommunication:
    def test_rank_dies_at_iteration_zero(self):
        plan = IterationFailure([(2, 0)])

        def main(role, h):
            for i in range(3):
                plan.check(h.ctx.rank, i)
                yield from h.allreduce(1, op=SUM)
            return ("finished", h.rank)

        results, system, world = run_fenix(4, n_spares=1, main=main, plan=plan)
        finished = sorted(v for v in results.values() if isinstance(v, tuple))
        assert finished == [("finished", 0), ("finished", 1), ("finished", 2)]


class TestPreInitFailure:
    def test_rank_dead_before_spare_starts_waiting(self):
        """A rank that dies before the spares reach their wait (e.g.
        during job startup) must still be repaired: the spare checks for
        pending failures before blocking on the failure event."""
        cluster = fenix_cluster(4)
        world = World(cluster, 4)
        system = FenixSystem(world, n_spares=1)
        results = {}

        def main(role, h):
            for i in range(3):
                yield from h.ctx.sleep(0.1)
                yield from h.allreduce(1, op=SUM)
            return ("finished", h.rank, role.value)

        def wrapped(rank, start_delay):
            ctx = world.context(rank)
            yield from ctx.sleep(start_delay)
            res = yield from system.run(ctx, main)
            results[rank] = res

        killer = TimedFailure([(1, 0.5)])
        for r in range(4):
            # everyone (including the spare) starts at t=1.0; rank 1 is
            # killed at t=0.5, before Fenix init
            proc = world.spawn(r, wrapped(r, 1.0))
            killer.arm(cluster.engine, r, proc)
        cluster.engine.run()
        world.raise_job_errors()
        finished = sorted(v for v in results.values() if isinstance(v, tuple))
        assert [f[:2] for f in finished] == [
            ("finished", 0), ("finished", 1), ("finished", 2),
        ]
        # the replacement for slot 1 is the spare, role RECOVERED
        roles = {f[1]: f[2] for f in finished}
        assert roles[1] == "recovered"


class TestBackToBackFailures:
    def test_failures_in_consecutive_iterations(self):
        plan = IterationFailure([(0, 2), (1, 3)])

        def main(role, h):
            for i in range(5):
                plan.check(h.ctx.rank, i)
                yield from h.allreduce(1, op=SUM)
            return ("finished", h.rank)

        results, system, world = run_fenix(5, n_spares=2, main=main, plan=plan)
        assert system.generation == 2
        finished = sorted(v for v in results.values() if isinstance(v, tuple))
        assert finished == [
            ("finished", 0), ("finished", 1), ("finished", 2),
        ]
