"""Shared helpers for Fenix tests."""

from repro.fenix import FenixSystem
from repro.mpi import World
from repro.sim import Cluster, ClusterSpec, NetworkSpec, NodeSpec


def fenix_cluster(n_nodes):
    return Cluster(
        ClusterSpec(
            n_nodes=n_nodes,
            node=NodeSpec(nic_bandwidth=1e9, nic_latency=1e-6, memory_bandwidth=1e10),
            network=NetworkSpec(fabric_latency=0.0),
        )
    )


def run_fenix(n_ranks, n_spares, main, plan=None, spare_policy="shrink"):
    """Run ``main(role, handle)`` under Fenix on every rank.

    Returns (results_by_world_rank, system, world): results hold each rank
    process's return value.
    """
    cluster = fenix_cluster(n_ranks)
    world = World(cluster, n_ranks)
    system = FenixSystem(world, n_spares=n_spares, spare_policy=spare_policy)
    results = {}

    def wrapped(rank):
        ctx = world.context(rank)
        res = yield from system.run(ctx, main)
        results[rank] = res

    for r in range(n_ranks):
        world.spawn(r, wrapped(r), failure_plan=plan, name=f"fenix:rank{r}")
    cluster.engine.run()
    world.raise_job_errors()
    return results, system, world
