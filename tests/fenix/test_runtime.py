"""Fenix runtime: roles, spare consumption, repair, long-jump recovery."""

import pytest

from repro.fenix import FenixSystem, Role, SpareExhaustionError
from repro.mpi import SUM, World
from repro.sim import IterationFailure
from repro.util.errors import ConfigError
from tests.fenix.conftest import fenix_cluster, run_fenix


class TestNoFailureRuns:
    def test_active_ranks_run_main_once(self):
        entries = []

        def main(role, h):
            entries.append((h.ctx.rank, role))
            total = yield from h.allreduce(1, op=SUM)
            return int(total)

        results, system, world = run_fenix(4, n_spares=1, main=main)
        # 3 active ranks ran main; the spare returned None
        assert sorted(r for r, _ in entries) == [0, 1, 2]
        assert all(role is Role.INITIAL for _, role in entries)
        assert results[0] == results[1] == results[2] == 3
        assert results[3] is None

    def test_resilient_comm_excludes_spares(self):
        sizes = []

        def main(role, h):
            sizes.append((h.rank, h.size))
            yield from h.barrier()
            return "ok"

        run_fenix(5, n_spares=2, main=main)
        assert sorted(sizes) == [(0, 3), (1, 3), (2, 3)]

    def test_spares_released_at_job_end(self):
        # If spares were not released, engine.run() would deadlock.
        def main(role, h):
            yield from h.barrier()
            return "done"

        results, _, world = run_fenix(3, n_spares=2, main=main)
        assert results[0] == "done"
        assert results[1] is None and results[2] is None

    def test_zero_spares_allowed(self):
        def main(role, h):
            total = yield from h.allreduce(1, op=SUM)
            return int(total)

        results, _, _ = run_fenix(2, n_spares=0, main=main)
        assert results == {0: 2, 1: 2}

    def test_invalid_spare_count_rejected(self):
        cluster = fenix_cluster(2)
        world = World(cluster, 2)
        with pytest.raises(ConfigError):
            FenixSystem(world, n_spares=2)
        with pytest.raises(ConfigError):
            FenixSystem(world, n_spares=-1)


class TestSingleFailureRecovery:
    def _run_with_failure(self, n_ranks=4, n_spares=1, victim=1, fail_iter=3):
        plan = IterationFailure([(victim, fail_iter)])
        journal = []

        def main(role, h):
            journal.append(("enter", h.ctx.rank, role, h.rank))
            for i in range(6):
                h.ctx.world  # no-op
                plan.check(h.ctx.rank, i)
                yield from h.allreduce(1, op=SUM)
            return ("finished", h.rank)

        results, system, world = run_fenix(
            n_ranks, n_spares=n_spares, main=main, plan=plan
        )
        return results, system, world, journal

    def test_all_ranks_finish_after_recovery(self):
        results, system, world, journal = self._run_with_failure()
        # active slots are comm ranks 0..2; all must report finished
        finished = [v for v in results.values() if v is not None]
        assert sorted(finished) == [("finished", 0), ("finished", 1), ("finished", 2)]

    def test_victim_is_dead_and_spare_consumed(self):
        results, system, world, journal = self._run_with_failure()
        assert world.dead == {1}
        assert system.spare_pool == []  # the one spare was consumed
        assert 1 not in results  # the killed process never returned

    def test_roles_after_recovery(self):
        results, system, world, journal = self._run_with_failure()
        reentries = [(r, role) for kind, r, role, _ in journal if kind == "enter"]
        # initial entries for 0,1,2; after failure: survivors 0,2 re-enter
        # as SURVIVOR and world rank 3 (the spare) enters as RECOVERED
        roles_by_rank = {}
        for r, role in reentries:
            roles_by_rank.setdefault(r, []).append(role)
        assert roles_by_rank[0] == [Role.INITIAL, Role.SURVIVOR]
        assert roles_by_rank[2] == [Role.INITIAL, Role.SURVIVOR]
        assert roles_by_rank[3] == [Role.RECOVERED]

    def test_replacement_adopts_failed_comm_rank(self):
        results, system, world, journal = self._run_with_failure(victim=1)
        recovered_entries = [
            (r, comm_rank)
            for kind, r, role, comm_rank in journal
            if kind == "enter" and role is Role.RECOVERED
        ]
        assert recovered_entries == [(3, 1)]  # world rank 3 sits in slot 1

    def test_comm_size_preserved(self):
        results, system, world, _ = self._run_with_failure()
        assert system.resilient_comm.size == 3
        assert system.generation == 1

    def test_detection_recorded(self):
        _, system, _, _ = self._run_with_failure()
        assert len(system.detections) >= 1
        assert all(d["error"] in ("ProcFailedError", "RevokedError")
                   for d in system.detections)


class TestMultipleFailures:
    def test_two_sequential_failures_consume_two_spares(self):
        plan = IterationFailure([(0, 2), (1, 4)])

        def main(role, h):
            for i in range(6):
                plan.check(h.ctx.rank, i)
                yield from h.allreduce(1, op=SUM)
            return ("finished", h.rank)

        results, system, world = run_fenix(5, n_spares=2, main=main, plan=plan)
        assert world.dead == {0, 1}
        assert system.generation == 2
        assert system.spare_pool == []
        finished = sorted(v for v in results.values() if isinstance(v, tuple))
        assert finished == [("finished", 0), ("finished", 1), ("finished", 2)]

    def test_shrink_policy_when_spares_exhausted(self):
        plan = IterationFailure([(0, 2)])

        def main(role, h):
            for i in range(5):
                plan.check(h.ctx.rank, i)
                yield from h.allreduce(1, op=SUM)
            return ("finished", h.rank, h.size)

        results, system, world = run_fenix(
            3, n_spares=0, main=main, plan=plan, spare_policy="shrink"
        )
        # comm shrank from 3 to 2 survivors
        finished = sorted(v for v in results.values() if isinstance(v, tuple))
        assert finished == [("finished", 0, 2), ("finished", 1, 2)]
        assert system.resilient_comm.size == 2

    def test_abort_policy_when_spares_exhausted(self):
        plan = IterationFailure([(0, 2)])

        def main(role, h):
            for i in range(5):
                plan.check(h.ctx.rank, i)
                yield from h.allreduce(1, op=SUM)
            return "finished"

        with pytest.raises(SpareExhaustionError):
            run_fenix(3, n_spares=0, main=main, plan=plan, spare_policy="abort")


class TestCallbacks:
    def test_callbacks_run_on_every_entry(self):
        calls = []
        plan = IterationFailure([(1, 2)])

        def main(role, h):
            for i in range(4):
                plan.check(h.ctx.rank, i)
                yield from h.allreduce(1, op=SUM)
            return "done"

        cluster = fenix_cluster(4)
        from repro.mpi import World

        world = World(cluster, 4)
        system = FenixSystem(world, n_spares=1)
        system.register_callback(lambda role, ctx: calls.append((ctx.rank, role)))
        system.spawn_all(main, failure_plan=plan)
        cluster.engine.run()
        world.raise_job_errors()
        initial = [c for c in calls if c[1] is Role.INITIAL]
        survivors = [c for c in calls if c[1] is Role.SURVIVOR]
        recovered = [c for c in calls if c[1] is Role.RECOVERED]
        assert len(initial) == 3
        assert len(survivors) == 2
        assert recovered == [(3, Role.RECOVERED)]


class TestAccounting:
    def test_init_cost_charged(self):
        def main(role, h):
            yield from h.barrier()
            return h.ctx.account.get("resilience_init")

        results, _, _ = run_fenix(2, n_spares=0, main=main)
        assert all(v > 0 for v in results.values())
