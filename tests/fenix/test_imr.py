"""Fenix IMR (buddy checkpointing) tests."""

import numpy as np
import pytest

from repro.fenix import FenixSystem, IMRStore, Role
from repro.fenix.errors import FenixError
from repro.fenix.imr import buddy_rank
from repro.kokkos import KokkosRuntime
from repro.mpi import MIN, SUM, World
from repro.sim import IterationFailure
from tests.fenix.conftest import fenix_cluster


class TestBuddyMapping:
    def test_xor_pairs(self):
        assert buddy_rank(0, 4) == 1
        assert buddy_rank(1, 4) == 0
        assert buddy_rank(2, 4) == 3
        assert buddy_rank(3, 4) == 2

    def test_odd_size_last_pairs_with_zero(self):
        assert buddy_rank(4, 5) == 0
        assert buddy_rank(0, 5) == 1  # 0's symmetric partner stays 1

    def test_single_rank_self(self):
        assert buddy_rank(0, 1) == 0


def run_imr(n_ranks, n_spares, main, plan=None):
    cluster = fenix_cluster(n_ranks)
    world = World(cluster, n_ranks)
    system = FenixSystem(world, n_spares=n_spares)
    imr = IMRStore(world)
    results = {}

    def wrapped(rank):
        ctx = world.context(rank)
        res = yield from system.run(ctx, main)
        results[rank] = res

    for r in range(n_ranks):
        world.spawn(r, wrapped(r), failure_plan=plan, name=f"imr:rank{r}")
    cluster.engine.run()
    world.raise_job_errors()
    return results, imr, world, system


class TestStoreRestore:
    def test_local_roundtrip(self):
        imr_holder = {}

        def main(role, h):
            imr = imr_holder.setdefault(
                "store", IMRStore(h.ctx.world)
            )
            rt = KokkosRuntime()
            v = rt.view("x", data=np.arange(4.0) + h.rank)
            yield from imr.store(h.ctx, h, member_id=0, view=v, version=0)
            v.fill(-1.0)
            tier = yield from imr.restore(h.ctx, h, member_id=0, view=v, version=0)
            return (tier, v.data.copy())

        # NOTE: each rank builds its own IMRStore here only because this
        # test runs without failures; integration tests share one.
        cluster = fenix_cluster(2)
        world = World(cluster, 2)
        system = FenixSystem(world, n_spares=0)
        imr = IMRStore(world)
        results = {}

        def wrapped(rank):
            ctx = world.context(rank)

            def m(role, h):
                rt = KokkosRuntime()
                v = rt.view("x", data=np.arange(4.0) + h.rank)
                yield from imr.store(h.ctx, h, 0, v, 0)
                v.fill(-1.0)
                tier = yield from imr.restore(h.ctx, h, 0, v, 0)
                return (tier, v.data.copy())

            res = yield from system.run(ctx, m)
            results[rank] = res

        for r in range(2):
            world.spawn(r, wrapped(r))
        cluster.engine.run()
        for r in range(2):
            tier, data = results[r]
            assert tier == "local"
            assert np.array_equal(data, np.arange(4.0) + r)

    def test_available_versions_and_gc(self):
        cluster = fenix_cluster(2)
        world = World(cluster, 2)
        system = FenixSystem(world, n_spares=0)
        imr = IMRStore(world, keep_versions=2)
        out = {}

        def main(role, h):
            rt = KokkosRuntime()
            v = rt.view("x", shape=(4,))
            for version in range(4):
                v.fill(float(version))
                yield from imr.store(h.ctx, h, 0, v, version)
            out[h.rank] = sorted(imr.available_versions(h.ctx, h, 0))
            return "ok"

        def wrapped(rank):
            yield from system.run(world.context(rank), main)

        for r in range(2):
            world.spawn(r, wrapped(r))
        cluster.engine.run()
        assert out[0] == [2, 3]
        assert out[1] == [2, 3]


class TestFailureScenarios:
    def _failure_run(self, n_ranks=4, n_spares=1, victim=1, fail_iter=2):
        """Ranks store every iteration; victim dies; recovered restores."""
        plan = IterationFailure([(victim, fail_iter)])
        cluster = fenix_cluster(n_ranks)
        world = World(cluster, n_ranks)
        system = FenixSystem(world, n_spares=n_spares)
        imr = IMRStore(world)
        results = {}
        restores = []

        def main(role, h):
            rt = KokkosRuntime()
            v = rt.view("state", shape=(4,))
            if role is not Role.INITIAL:
                # Full rollback.  A checkpoint finished locally may not
                # have finished globally (the paper's metadata-refresh
                # issue): agree on the newest version EVERY rank holds.
                versions = imr.available_versions(h.ctx, h, member_id=0)
                assert versions, "no IMR copies available after failure"
                local_latest = max(versions)
                latest = int((yield from h.allreduce(local_latest, op=MIN)))
                tier = yield from imr.restore(h.ctx, h, 0, v, latest)
                restores.append((h.rank, role, tier, latest, float(v.data[0])))
                start = latest + 1
            else:
                start = 0
            for i in range(start, 4):
                plan.check(h.ctx.rank, i)
                v.fill(float(i))
                yield from imr.store(h.ctx, h, 0, v, version=i)
                yield from h.allreduce(1, op=SUM)
            return ("finished", h.rank)

        def wrapped(rank):
            ctx = world.context(rank)
            res = yield from system.run(ctx, main)
            results[rank] = res

        for r in range(n_ranks):
            world.spawn(r, wrapped(r), failure_plan=plan)
        cluster.engine.run()
        world.raise_job_errors()
        return results, restores, world

    def test_recovered_rank_restores_from_buddy(self):
        results, restores, world = self._failure_run(victim=1, fail_iter=2)
        by_role = {}
        for rank, role, tier, version, value in restores:
            by_role.setdefault(role, []).append((rank, tier, version, value))
        # the replacement (slot 1) pulled from its buddy; survivors local
        assert by_role[Role.RECOVERED] == [(1, "buddy", 1, 1.0)]
        assert all(t == "local" for _r, t, _v, _x in by_role[Role.SURVIVOR])
        assert all(v == 1 for _r, _t, v, _x in by_role[Role.SURVIVOR])  # agreed min
        finished = sorted(v for v in results.values() if isinstance(v, tuple))
        assert finished == [("finished", 0), ("finished", 1), ("finished", 2)]

    def test_dead_process_memory_is_gone(self):
        cluster = fenix_cluster(2)
        world = World(cluster, 2)
        imr = IMRStore(world)
        imr._slot(1)[("m", 0, 1)] = (np.zeros(2), 16.0)
        world.mark_dead(1)
        assert 1 not in imr._memory

    def test_restore_fails_when_both_copies_lost(self):
        cluster = fenix_cluster(2)
        world = World(cluster, 2)
        system = FenixSystem(world, n_spares=0)
        imr = IMRStore(world)
        caught = []

        def main(role, h):
            rt = KokkosRuntime()
            v = rt.view("x", shape=(2,))
            try:
                yield from imr.restore(h.ctx, h, 0, v, 0)
            except FenixError:
                caught.append(h.rank)
            return "ok"

        def wrapped(rank):
            yield from system.run(world.context(rank), main)

        for r in range(2):
            world.spawn(r, wrapped(r))
        cluster.engine.run()
        assert caught == [0, 1]

    def test_store_cost_scales_with_size(self):
        # IMR checkpoint-function cost must scale with checkpoint size
        # (Figure 5 discussion).
        def run_size(modeled):
            cluster = fenix_cluster(2)
            world = World(cluster, 2)
            system = FenixSystem(world, n_spares=0)
            imr = IMRStore(world)
            out = {}

            def main(role, h):
                rt = KokkosRuntime()
                v = rt.view("x", shape=(2,), modeled_nbytes=modeled)
                yield from imr.store(h.ctx, h, 0, v, 0)
                out[h.rank] = h.ctx.account.get("checkpoint_function")
                return "ok"

            def wrapped(rank):
                yield from system.run(world.context(rank), main)

            for r in range(2):
                world.spawn(r, wrapped(r))
            cluster.engine.run()
            return out[0]

        small = run_size(1e6)
        large = run_size(1e8)
        assert large > small * 20
