"""Shared experiment environment for harness tests (small & fast)."""

import pytest

from repro.apps import HeatdisConfig, MiniMDConfig
from repro.harness import ExperimentEnv, JobCosts
from repro.sim import ClusterSpec, NetworkSpec, NodeSpec, PFSSpec
from repro.util.units import GiB, MiB


def small_env(n_nodes=6, **cost_kw):
    spec = ClusterSpec(
        n_nodes=n_nodes,
        node=NodeSpec(
            flops=100e9,
            nic_bandwidth=2 * GiB,
            nic_latency=2e-6,
            memory_bandwidth=20 * GiB,
        ),
        network=NetworkSpec(fabric_latency=1e-6, chunk_bytes=4 * MiB),
        pfs=PFSSpec(
            n_servers=2, server_bandwidth=0.5 * GiB, server_latency=5e-5,
            chunk_bytes=8 * MiB,
        ),
    )
    return ExperimentEnv(cluster_spec=spec, costs=JobCosts(**cost_kw), n_spares=1)


@pytest.fixture
def heat_cfg():
    # 6 checkpoints over 60 iterations at interval 10
    return HeatdisConfig(
        local_rows=8, cols=16, modeled_bytes_per_rank=64e6, n_iters=60
    )


@pytest.fixture
def md_cfg():
    return MiniMDConfig(real_atoms_per_rank=24, n_steps=24, problem_size=100,
                        dt=0.003, neigh_every=6)
