"""Runner extras: platform counters, label binding, mid-checkpoint kills,
CLI smoke."""

import numpy as np
import pytest

from repro.apps import HeatdisConfig
from repro.harness import run_heatdis_job
from repro.harness.report import report_to_dict, reports_to_json
from repro.sim import TimedFailure
from repro.util.errors import ConfigError
from tests.harness.conftest import small_env


CFG = HeatdisConfig(local_rows=8, cols=16, modeled_bytes_per_rank=64e6,
                    n_iters=30)


class TestPlatformCounters:
    def test_counters_present(self):
        rep = run_heatdis_job(small_env(), "fenix_kr_veloc", 4, CFG, 6)
        assert rep.platform["network_messages"] > 0
        assert rep.platform["network_bytes"] > 0
        assert rep.platform["pfs_bytes_written"] > 0

    def test_no_resilience_writes_nothing(self):
        rep = run_heatdis_job(small_env(), "none", 4, CFG, 6)
        assert rep.platform["pfs_bytes_written"] == 0.0

    def test_imr_avoids_pfs(self):
        rep = run_heatdis_job(small_env(), "fenix_kr_imr", 4, CFG, 6)
        assert rep.platform["pfs_bytes_written"] == 0.0
        # but buddy traffic flows over the network
        base = run_heatdis_job(small_env(), "none", 4, CFG, 6)
        assert rep.platform["network_bytes"] > base.platform["network_bytes"]


class TestJsonExport:
    def test_report_to_dict_roundtrip(self):
        rep = run_heatdis_job(small_env(), "veloc", 2, CFG, 6)
        d = report_to_dict(rep)
        assert d["strategy"] == "veloc"
        assert d["wall_time"] == rep.wall_time
        assert "results" not in d  # payload omitted

    def test_json_serializes(self):
        import json

        rep = run_heatdis_job(small_env(), "veloc", 2, CFG, 6)
        parsed = json.loads(reports_to_json([rep]))
        assert parsed[0]["n_ranks"] == 2


class TestLabelBinding:
    def test_second_region_label_rejected(self):
        from repro.core import KRConfig, always, make_context
        from repro.kokkos import KokkosRuntime
        from repro.mpi import World
        from repro.sim import Cluster, ClusterSpec
        from repro.veloc import VeloCService

        cluster = Cluster(ClusterSpec(n_nodes=1))
        world = World(cluster, 1)
        service = VeloCService(cluster)
        caught = []

        def main(rank):
            h = world.comm_world_handle(rank)
            kr = make_context(h, KRConfig(filter=always), cluster,
                              veloc_service=service)
            rt = KokkosRuntime()
            v = rt.view("x", shape=(2,))
            yield from kr.checkpoint("loopA", 0, lambda: v.fill(1.0))
            try:
                yield from kr.checkpoint("loopB", 1, lambda: v.fill(2.0))
            except ConfigError:
                caught.append(True)

        world.spawn(0, main(0))
        cluster.engine.run()
        assert caught == [True]


class TestMidCheckpointKill:
    def test_kill_during_checkpoint_recovers(self):
        """A rank killed *inside* the checkpoint function (not at an
        iteration boundary) must still be recovered cleanly."""
        clean = run_heatdis_job(small_env(), "fenix_kr_veloc", 4, CFG, 6)
        # find a time mid-run; the kill lands wherever rank 2 happens to be
        mid = clean.wall_time * 0.6
        plan = TimedFailure([(2, mid)])
        failed = run_heatdis_job(
            small_env(), "fenix_kr_veloc", 4, CFG, 6, plan=plan
        )
        assert failed.attempts == 1
        for r in range(4):
            np.testing.assert_array_equal(
                clean.results[r]["grid"], failed.results[r]["grid"]
            )


class TestHeatdis2DJobs:
    def test_2d_runs_under_full_stack(self):
        from repro.apps import Heatdis2DConfig
        from repro.harness import run_heatdis2d_job

        cfg = Heatdis2DConfig(local_rows=6, local_cols=6, n_iters=18)
        rep = run_heatdis2d_job(small_env(), "fenix_kr_veloc", 4, cfg, 5)
        assert rep.attempts == 1
        assert len(rep.results) == 4

    def test_2d_failure_recovery_through_harness(self):
        from repro.apps import Heatdis2DConfig
        from repro.apps.heatdis2d import gather_blocks
        from repro.harness import run_heatdis2d_job
        from repro.sim import IterationFailure

        cfg = Heatdis2DConfig(local_rows=6, local_cols=6, n_iters=18)
        clean = run_heatdis2d_job(small_env(), "fenix_kr_veloc", 4, cfg, 5)
        failed = run_heatdis2d_job(
            small_env(), "fenix_kr_veloc", 4, cfg, 5,
            plan=IterationFailure([(3, 13)]),
        )
        np.testing.assert_array_equal(
            gather_blocks(clean.results, 4), gather_blocks(failed.results, 4)
        )

    def test_manual_strategy_rejected_for_2d(self):
        from repro.apps import Heatdis2DConfig
        from repro.harness import run_heatdis2d_job

        with pytest.raises(ConfigError):
            run_heatdis2d_job(
                small_env(), "veloc", 4,
                Heatdis2DConfig(local_rows=6, local_cols=6, n_iters=6), 3,
            )


class TestCLI:
    def test_cli_fig7(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "checkpointed" in out

    def test_cli_complexity(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["complexity"]) == 0
        assert "MPI call sites" in capsys.readouterr().out
