"""Unit tests for harness components: strategies, recompute tracker, report."""

import pytest

from repro.harness import STRATEGIES, RecomputeTracker, StrategySpec
from repro.harness.runner import RunReport
from repro.util.errors import ConfigError


class TestStrategies:
    def test_all_expected_strategies_exist(self):
        assert set(STRATEGIES) == {
            "none", "veloc", "kr_veloc", "fenix_veloc", "fenix_kr_veloc",
            "fenix_kr_imr", "fenix_kr_partial",
        }

    def test_labels(self):
        assert STRATEGIES["fenix_kr_veloc"].label == "Fenix + KR + VeloC"
        assert STRATEGIES["none"].label == "No resilience"

    def test_checkpointing_property(self):
        assert not STRATEGIES["none"].checkpointing
        assert STRATEGIES["veloc"].checkpointing

    def test_imr_requires_fenix(self):
        with pytest.raises(ConfigError):
            StrategySpec("bad", fenix=False, kr=True, backend="fenix_imr")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            StrategySpec("bad", fenix=False, kr=False, backend="tape")

    def test_partial_scope(self):
        assert STRATEGIES["fenix_kr_partial"].scope == "recovered_only"


class TestRecomputeTracker:
    def test_fresh_iteration_not_recompute(self):
        tr = RecomputeTracker()
        assert not tr.is_recompute(0, 0)

    def test_advance_then_recompute(self):
        tr = RecomputeTracker()
        tr.advance(0, 5)
        assert tr.is_recompute(0, 3)
        assert tr.is_recompute(0, 5)
        assert not tr.is_recompute(0, 6)

    def test_slots_independent(self):
        tr = RecomputeTracker()
        tr.advance(0, 10)
        assert not tr.is_recompute(1, 5)

    def test_watermark_monotonic(self):
        tr = RecomputeTracker()
        tr.advance(0, 10)
        tr.advance(0, 3)  # going back must not lower the watermark
        assert tr.watermark(0) == 10

    def test_reset(self):
        tr = RecomputeTracker()
        tr.advance(0, 10)
        tr.reset()
        assert tr.watermark(0) == -1


class TestRunReport:
    def make_report(self, wall=10.0, buckets=None):
        return RunReport(
            strategy="x", app="heatdis", n_ranks=4, wall_time=wall,
            attempts=1, failures=0,
            buckets=buckets or {"app_compute": 6.0, "app_mpi": 1.0},
            results={},
        )

    def test_other_is_remainder(self):
        rep = self.make_report()
        assert rep.accounted == 7.0
        assert rep.other == 3.0

    def test_other_clamped_at_zero(self):
        rep = self.make_report(wall=5.0)
        assert rep.other == 0.0

    def test_category_missing_is_zero(self):
        assert self.make_report().category("recompute") == 0.0

    def test_as_row(self):
        row = self.make_report().as_row()
        assert row["wall_time"] == 10.0
        assert row["other"] == 3.0
