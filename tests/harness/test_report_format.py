"""Report formatting edge cases."""

import pytest

from repro.harness.report import (
    HEATDIS_CATEGORIES,
    MINIMD_CATEGORIES,
    format_report_table,
    summarize_categories,
)
from repro.harness.runner import RunReport


def report(buckets, wall=10.0, strategy="s"):
    return RunReport(
        strategy=strategy, app="x", n_ranks=2, wall_time=wall, attempts=1,
        failures=0, buckets=buckets, results={},
    )


class TestSummarize:
    def test_unknown_buckets_fold_into_other(self):
        rep = report({"app_compute": 4.0, "exotic_bucket": 2.0}, wall=10.0)
        summary = summarize_categories(rep, HEATDIS_CATEGORIES)
        assert summary["app_compute"] == 4.0
        # exotic bucket is not shown by name but its time is in the wall,
        # so "other" absorbs it: 10 - 4 = 6
        assert summary["other"] == 6.0
        assert sum(summary.values()) == pytest.approx(10.0)

    def test_minimd_categories(self):
        rep = report({"force_compute": 5.0, "communicator": 1.0}, wall=8.0)
        summary = summarize_categories(rep, MINIMD_CATEGORIES)
        assert summary["force_compute"] == 5.0
        assert summary["other"] == 2.0

    def test_other_never_negative(self):
        rep = report({"app_compute": 50.0}, wall=10.0)
        summary = summarize_categories(rep, HEATDIS_CATEGORIES)
        assert summary["other"] == 0.0


class TestTable:
    def test_multiple_rows_aligned(self):
        reps = [
            report({"app_compute": 1.0}, strategy="short"),
            report({"app_compute": 2.0}, strategy="a_much_longer_name"),
        ]
        table = format_report_table(reps, HEATDIS_CATEGORIES)
        lines = table.splitlines()
        assert len({len(l) for l in lines[:1] + lines[2:]}) == 1  # aligned

    def test_title_included(self):
        table = format_report_table([report({})], title="My Title")
        assert table.startswith("My Title")
