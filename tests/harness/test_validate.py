"""Trace-validation utilities: clean traces pass, corrupted ones fail."""

import numpy as np
import pytest

from repro.core import KRConfig, every_nth, make_context
from repro.fenix import FenixSystem, Role
from repro.harness.validate import (
    check_recover_has_source,
    check_repair_generations,
    check_repairs_follow_deaths,
    validate_trace,
)
from repro.kokkos import KokkosRuntime
from repro.mpi import SUM, World
from repro.sim import (
    Cluster,
    ClusterSpec,
    IterationFailure,
    NetworkSpec,
    NodeSpec,
    Trace,
)
from repro.veloc import VeloCService


def traced_failure_run():
    """A full-stack failing run with tracing enabled."""
    cluster = Cluster(
        ClusterSpec(
            n_nodes=4,
            node=NodeSpec(nic_bandwidth=1e9, nic_latency=1e-6,
                          memory_bandwidth=1e10),
            network=NetworkSpec(fabric_latency=0.0),
        ),
        trace=Trace(enabled=True),
    )
    world = World(cluster, 4)
    system = FenixSystem(world, n_spares=1)
    service = VeloCService(cluster)
    plan = IterationFailure([(1, 7)])
    config = KRConfig(backend="veloc", filter=every_nth(3))

    def main(role, h):
        ctx = h.ctx
        state = ctx.user.setdefault("s", {})
        if "view" not in state or role is Role.RECOVERED:
            rt = KokkosRuntime()
            state["view"] = rt.view("x", shape=(4,))
            state["kr"] = None
        v = state["view"]
        if state["kr"] is None:
            kr = make_context(h, config, cluster, veloc_service=service)
            state["kr"] = kr
            kr.set_role(role)
        else:
            kr = state["kr"]
            kr.reset(h, role)
        latest = yield from kr.latest_version()
        if latest < 0 and role is not Role.INITIAL:
            v.fill(0.0)
        for i in range(max(0, latest), 10):
            plan.check(ctx.rank, i)

            def region(i=i):
                total = yield from h.allreduce(1, op=SUM)
                v.fill(float(i) + total)

            yield from kr.checkpoint("x", i, region)
        return "done"

    def wrapped(rank):
        yield from system.run(world.context(rank), main)

    for r in range(4):
        world.spawn(r, wrapped(r), failure_plan=plan)
    cluster.engine.run()
    world.raise_job_errors()
    return cluster.trace


class TestCleanTraceValidates:
    def test_failure_run_trace_has_no_violations(self):
        trace = traced_failure_run()
        assert trace.count("rank_dead") == 1
        assert trace.count("repair") == 1
        assert trace.count("checkpoint") > 0
        assert trace.count("recover") > 0
        assert validate_trace(trace) == []


class TestCorruptedTracesFlagged:
    def test_ghost_recover_detected(self):
        tr = Trace()
        tr.emit(0.0, "veloc.rank0", "checkpoint", version=0, nbytes=1.0)
        tr.emit(1.0, "veloc.rank0", "recover", version=5, tier="scratch")
        violations = check_recover_has_source(tr)
        assert any("never checkpointed" in v for v in violations)

    def test_generation_skip_detected(self):
        tr = Trace()
        tr.emit(0.0, "world", "rank_dead", rank=1)
        tr.emit(0.1, "fenix", "repair", generation=2, size=3, recovered=[])
        violations = check_repair_generations(tr)
        assert violations

    def test_repair_without_death_detected(self):
        tr = Trace()
        tr.emit(0.1, "fenix", "repair", generation=1, size=3, recovered=[])
        violations = check_repairs_follow_deaths(tr)
        assert violations

    def test_valid_sequence_passes(self):
        tr = Trace()
        tr.emit(0.0, "veloc.rank0", "checkpoint", version=0, nbytes=1.0)
        tr.emit(0.5, "world", "rank_dead", rank=1)
        tr.emit(0.6, "fenix", "repair", generation=1, size=3, recovered=[3])
        tr.emit(0.7, "veloc.rank0", "recover", version=0, tier="scratch")
        assert validate_trace(tr) == []
