"""Young/Daly checkpoint-interval estimator tests."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.harness.interval import daly_interval, expected_runtime, young_interval
from repro.util.errors import ConfigError


class TestFormulas:
    def test_young_formula(self):
        assert young_interval(10.0, 2000.0) == pytest.approx(
            math.sqrt(2 * 10 * 2000)
        )

    def test_daly_close_to_young_for_small_cost(self):
        y = young_interval(1.0, 1e5)
        d = daly_interval(1.0, 1e5)
        assert d == pytest.approx(y, rel=0.02)

    def test_daly_below_young_for_larger_cost(self):
        # the -C term dominates the correction
        assert daly_interval(50.0, 500.0) < young_interval(50.0, 500.0)

    def test_degenerate_regime(self):
        assert daly_interval(100.0, 10.0) == 10.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            young_interval(-1.0, 10.0)
        with pytest.raises(ConfigError):
            daly_interval(1.0, 0.0)
        with pytest.raises(ConfigError):
            expected_runtime(10.0, 0.0, 1.0, 10.0)


class TestOptimality:
    @settings(max_examples=20, deadline=None)
    @given(
        cost=st.floats(min_value=0.1, max_value=20.0),
        mtbf=st.floats(min_value=500.0, max_value=1e5),
    )
    def test_young_interval_near_model_minimum(self, cost, mtbf):
        """The closed form should beat nearby intervals in the runtime
        model it is derived from."""
        opt = young_interval(cost, mtbf)
        t_opt = expected_runtime(1e4, opt, cost, mtbf)
        for factor in (0.25, 4.0):
            assert t_opt <= expected_runtime(1e4, opt * factor, cost, mtbf)

    def test_runtime_increases_with_failure_rate(self):
        fast_fail = expected_runtime(1e4, 100.0, 5.0, 1e3)
        slow_fail = expected_runtime(1e4, 100.0, 5.0, 1e5)
        assert fast_fail > slow_fail
