"""Job-runner behaviour across strategies, with and without failures."""

import numpy as np
import pytest

from repro.harness import STRATEGIES, run_heatdis_job, run_minimd_job
from repro.harness.report import (
    HEATDIS_CATEGORIES,
    MINIMD_CATEGORIES,
    format_report_table,
    summarize_categories,
)
from repro.sim import IterationFailure
from repro.util.errors import ConfigError
from tests.harness.conftest import small_env

CKPT = 10
FAIL_ITER = 3 * CKPT + 9  # ~95% between checkpoints 3 and 4


def fail_plan(rank=1):
    return IterationFailure([(rank, FAIL_ITER)])


class TestCleanRuns:
    @pytest.mark.parametrize(
        "strategy", ["none", "veloc", "kr_veloc", "fenix_veloc", "fenix_kr_veloc",
                     "fenix_kr_imr"]
    )
    def test_completes_and_accounts(self, strategy, heat_cfg):
        rep = run_heatdis_job(small_env(), strategy, 4, heat_cfg, CKPT)
        assert rep.attempts == 1
        assert rep.wall_time > 0
        assert rep.category("app_compute") > 0
        assert rep.category("app_mpi") > 0
        assert len(rep.results) == 4
        if STRATEGIES[strategy].checkpointing:
            assert rep.category("checkpoint_function") > 0
        else:
            assert rep.category("checkpoint_function") == 0.0

    def test_results_identical_across_strategies(self, heat_cfg):
        grids = {}
        for strategy in ["none", "veloc", "kr_veloc", "fenix_kr_veloc"]:
            rep = run_heatdis_job(small_env(), strategy, 4, heat_cfg, CKPT)
            grids[strategy] = np.concatenate(
                [rep.results[r]["grid"] for r in range(4)]
            )
        base = grids.pop("none")
        for strategy, grid in grids.items():
            np.testing.assert_array_equal(base, grid, err_msg=strategy)

    def test_wall_time_exceeds_accounted(self, heat_cfg):
        rep = run_heatdis_job(small_env(), "fenix_kr_veloc", 4, heat_cfg, CKPT)
        assert rep.wall_time >= rep.accounted
        assert rep.other > 0  # launch + init + finalize exist


class TestFailureRuns:
    def test_fenix_recovers_in_one_attempt(self, heat_cfg):
        rep = run_heatdis_job(
            small_env(), "fenix_kr_veloc", 4, heat_cfg, CKPT, plan=fail_plan()
        )
        assert rep.attempts == 1
        assert rep.category("data_recovery") > 0
        assert rep.category("recompute") > 0
        assert len(rep.results) == 4

    def test_relaunch_strategy_takes_two_attempts(self, heat_cfg):
        rep = run_heatdis_job(
            small_env(), "kr_veloc", 4, heat_cfg, CKPT, plan=fail_plan()
        )
        assert rep.attempts == 2
        assert rep.category("data_recovery") > 0
        assert len(rep.results) == 4

    def test_veloc_alone_relaunch(self, heat_cfg):
        rep = run_heatdis_job(
            small_env(), "veloc", 4, heat_cfg, CKPT, plan=fail_plan()
        )
        assert rep.attempts == 2
        assert len(rep.results) == 4

    def test_failure_results_match_clean(self, heat_cfg):
        clean = run_heatdis_job(small_env(), "fenix_kr_veloc", 4, heat_cfg, CKPT)
        failed = run_heatdis_job(
            small_env(), "fenix_kr_veloc", 4, heat_cfg, CKPT, plan=fail_plan()
        )
        for r in range(4):
            np.testing.assert_array_equal(
                clean.results[r]["grid"], failed.results[r]["grid"]
            )

    def test_relaunch_failure_results_match_clean(self, heat_cfg):
        clean = run_heatdis_job(small_env(), "kr_veloc", 4, heat_cfg, CKPT)
        failed = run_heatdis_job(
            small_env(), "kr_veloc", 4, heat_cfg, CKPT, plan=fail_plan()
        )
        for r in range(4):
            np.testing.assert_array_equal(
                clean.results[r]["grid"], failed.results[r]["grid"]
            )

    def test_fenix_cheaper_recovery_than_relaunch(self, heat_cfg):
        """The paper's headline: Fenix saves teardown/restart ("Other")."""
        fenix = run_heatdis_job(
            small_env(), "fenix_kr_veloc", 4, heat_cfg, CKPT, plan=fail_plan()
        )
        relaunch = run_heatdis_job(
            small_env(), "kr_veloc", 4, heat_cfg, CKPT, plan=fail_plan()
        )
        assert fenix.wall_time < relaunch.wall_time
        assert fenix.other < relaunch.other

    def test_imr_failure_recovery(self, heat_cfg):
        clean = run_heatdis_job(small_env(), "fenix_kr_imr", 4, heat_cfg, CKPT)
        failed = run_heatdis_job(
            small_env(), "fenix_kr_imr", 4, heat_cfg, CKPT, plan=fail_plan()
        )
        for r in range(4):
            np.testing.assert_array_equal(
                clean.results[r]["grid"], failed.results[r]["grid"]
            )


class TestMiniMDJobs:
    def test_clean_run_phases(self, md_cfg):
        rep = run_minimd_job(small_env(), "fenix_kr_veloc", 4, md_cfg, 6)
        for cat in ("force_compute", "neighboring", "communicator",
                    "checkpoint_function"):
            assert rep.category(cat) > 0, cat

    def test_failure_recovery_exact(self, md_cfg):
        clean = run_minimd_job(small_env(), "fenix_kr_veloc", 4, md_cfg, 6)
        plan = IterationFailure([(2, 17)])
        failed = run_minimd_job(
            small_env(), "fenix_kr_veloc", 4, md_cfg, 6, plan=plan
        )
        for r in range(4):
            np.testing.assert_array_equal(
                clean.results[r]["x"], failed.results[r]["x"]
            )

    def test_manual_strategy_rejected(self, md_cfg):
        with pytest.raises(ConfigError):
            run_minimd_job(small_env(), "veloc", 4, md_cfg, 6)


class TestReporting:
    def test_summary_adds_to_wall(self, heat_cfg):
        rep = run_heatdis_job(small_env(), "fenix_kr_veloc", 4, heat_cfg, CKPT)
        summary = summarize_categories(rep, HEATDIS_CATEGORIES)
        assert sum(summary.values()) == pytest.approx(rep.wall_time)

    def test_table_renders(self, heat_cfg):
        reps = [
            run_heatdis_job(small_env(), s, 2, heat_cfg, CKPT)
            for s in ("none", "fenix_kr_veloc")
        ]
        table = format_report_table(reps, HEATDIS_CATEGORIES, title="demo")
        assert "fenix_kr_veloc" in table
        assert "app_compute" in table

    def test_empty_table(self):
        assert format_report_table([]) == "(no data)"
