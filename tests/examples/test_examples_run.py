"""Smoke tests: every example script runs to completion.

Each example is executed in-process (imported as a module and its
``main()`` called) so failures surface as ordinary test errors with
tracebacks, and the suite guarantees the documented entry points stay
working.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def load_example(name):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "custom_app.py",
        "minimd_resilient.py",
        "heatdis_partial_rollback.py",
        "elastic_shrink.py",
    ],
)
def test_example_runs(script, capsys):
    module = load_example(script)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_strategy_comparison_with_args(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["strategy_comparison.py", "64MB", "4"])
    module = load_example("strategy_comparison.py")
    module.main()
    out = capsys.readouterr().out
    assert "fenix_kr_veloc" in out
