"""The alignment engine on real traces and constructed corner cases."""

import copy

from repro.align.engine import (
    align,
    audit_traces,
    first_divergence_report,
    recovery_breakdown,
)
from repro.sim.trace import TraceRecord


def rec(time=0.0, source="veloc.rank0", kind="checkpoint", **fields):
    return TraceRecord(time=time, source=source, kind=kind, fields=fields)


# -- identical runs ------------------------------------------------------


def test_identical_runs_align_cleanly(base_records, replay_records):
    alignment = align(base_records, replay_records)
    assert not alignment.divergent
    assert alignment.matched == len(base_records) == len(replay_records)
    assert alignment.counts()["missing"] == 0
    assert alignment.counts()["extra"] == 0


def test_audit_traces_identical(base_trace, replay_trace):
    assert audit_traces(base_trace, replay_trace) == []


# -- a perturbed victim rank ---------------------------------------------


def test_perturbed_kill_rank_first_divergence_is_process_layer(
        base_records, perturbed_records):
    alignment = align(base_records, perturbed_records)
    assert alignment.divergent
    first = alignment.first
    assert first.layer == "process"
    assert first.key[1] in ("rank_killed", "rank_crashed")
    assert first.category in ("missing", "extra")
    assert first.briefs  # the diverging record renders its own brief


def test_first_divergence_report_carries_context_and_downstream(
        base_records, perturbed_records):
    alignment = align(base_records, perturbed_records)
    report = first_divergence_report(
        alignment, base_records, perturbed_records)
    first = report["first"]
    assert first["layer"] == "process"
    assert first["context_a"] and first["context_b"]
    down = report["downstream"]
    assert {"a", "b", "delta"} <= set(down["wall_time"])
    assert down["recovery_latency"]["a"] is not None
    # both runs recover, so the per-layer path has both sides
    assert down["recovery_path"]
    for stage in down["recovery_path"].values():
        assert {"a", "b", "delta"} <= set(stage)


# -- value drift ---------------------------------------------------------


def test_value_drift_names_the_field(base_records, replay_records):
    mutated = [copy.deepcopy(r) for r in replay_records]
    victim = next(r for r in mutated if r.kind == "checkpoint")
    victim.fields["nbytes"] = -1
    alignment = align(base_records, mutated)
    assert [d.category for d in alignment.divergences] == ["value"]
    assert alignment.divergences[0].fields == ["nbytes"]
    assert alignment.divergences[0].layer == "veloc"


def test_volatile_field_drift_is_not_a_divergence(
        base_records, replay_records):
    mutated = [copy.deepcopy(r) for r in replay_records]
    changed = 0
    for r in mutated:
        if "seconds" in r.fields:
            r.fields["seconds"] += 1.0
            changed += 1
    assert changed > 0
    assert not align(base_records, mutated).divergent


def test_structural_only_ignores_value_drift(base_records, replay_records):
    mutated = [copy.deepcopy(r) for r in replay_records]
    next(r for r in mutated
         if r.kind == "checkpoint").fields["nbytes"] = -1
    assert not align(base_records, mutated, structural_only=True).divergent


# -- reorder (LIS over the protocol anchors) -----------------------------


def test_swapped_anchors_report_a_single_reorder():
    a = [rec(time=0.0, source="fenix", kind="role", rank=0),
         rec(time=0.0, source="fenix", kind="role", rank=1),
         rec(time=1.0, source="veloc.rank0", kind="checkpoint", version=1)]
    b = [a[1], a[0], a[2]]
    alignment = align(a, b)
    assert [d.category for d in alignment.divergences] == ["reorder"]
    # LIS blames the genuinely displaced anchor, not both
    assert alignment.matched == len(a) - 1


# -- ring-buffer excusal -------------------------------------------------


def test_evicted_prefix_is_excused_not_divergent(base_records):
    k = 40
    suffix = base_records[k:]
    meta_b = {
        "dropped": k,
        "dropped_window": [base_records[0].time, base_records[k - 1].time],
    }
    alignment = align(base_records, suffix, meta_b=meta_b)
    assert not alignment.divergent
    assert alignment.excused > 0
    assert any("ring-buffer" in note for note in alignment.notes)


# -- differing sampling accounting ---------------------------------------


def test_sampling_mismatch_excludes_sampleable_kinds(base_records):
    sampled = [r for r in base_records if r.kind != "kr_region_begin"]
    n_removed = len(base_records) - len(sampled)
    assert n_removed > 0
    meta_b = {"sampled_out": n_removed}
    alignment = align(base_records, sampled, meta_b=meta_b)
    assert not alignment.divergent
    assert alignment.excluded_sampleable >= n_removed
    assert any("sampling accounting differs" in n for n in alignment.notes)


# -- recovery breakdown --------------------------------------------------


def test_recovery_breakdown_walks_the_protocol_spine(base_records):
    path = recovery_breakdown(base_records)
    assert path["total"] >= 0.0
    assert set(path) <= {"ulfm", "fenix", "veloc", "kr", "total"}
    charged = sum(v for k, v in path.items() if k != "total")
    assert abs(charged - path["total"]) < 1e-9


def test_recovery_breakdown_empty_without_a_kill():
    records = [rec(time=float(i), version=i) for i in range(5)]
    assert recovery_breakdown(records) == {}
