"""python -m repro.align: exit codes, JSON shapes, rendering."""

import json

import pytest

from repro.align import ALIGN_SCHEMA
from repro.align.__main__ import main
from repro.monitor.trace_io import write_trace
from repro.report.compare import EXIT_BAD_INPUT, EXIT_OK, EXIT_REGRESSION


@pytest.fixture(scope="module")
def trace_files(tmp_path_factory, base_trace, replay_trace,
                perturbed_trace):
    """The session traces persisted as CLI inputs."""
    root = tmp_path_factory.mktemp("align-cli")
    paths = {}
    for name, trace in [("base", base_trace), ("replay", replay_trace),
                        ("perturbed", perturbed_trace)]:
        path = root / f"{name}.trace.jsonl"
        write_trace(str(path), trace)
        paths[name] = str(path)
    return paths


# -- diff ----------------------------------------------------------------


def test_diff_identical_exits_clean(trace_files, capsys):
    rc = main(["diff", trace_files["base"], trace_files["replay"]])
    assert rc == EXIT_OK
    out = capsys.readouterr().out
    assert "zero divergences" in out


def test_diff_perturbed_roots_cause_to_process_layer(trace_files, capsys):
    rc = main(["diff", trace_files["base"], trace_files["perturbed"],
               "--json"])
    assert rc == EXIT_REGRESSION
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == ALIGN_SCHEMA
    assert doc["divergent"] is True
    (pair,) = doc["pairs"]
    assert pair["a"] == trace_files["base"]
    assert pair["b"] == trace_files["perturbed"]
    first = pair["first"]
    assert first["layer"] == "process"
    assert first["key"]["kind"] in ("rank_killed", "rank_crashed")
    assert first["context_a"] and first["context_b"]
    assert "wall_time" in pair["downstream"]


def test_diff_text_report_names_the_layer(trace_files, capsys):
    rc = main(["diff", trace_files["base"], trace_files["perturbed"]])
    assert rc == EXIT_REGRESSION
    out = capsys.readouterr().out
    assert "first divergence [process]" in out
    assert "context (run A):" in out


def test_diff_writes_report_file(trace_files, tmp_path, capsys):
    out_path = tmp_path / "report.json"
    rc = main(["diff", trace_files["base"], trace_files["perturbed"],
               "--out", str(out_path)])
    assert rc == EXIT_REGRESSION
    doc = json.loads(out_path.read_text())
    assert doc["mode"] == "diff"
    assert doc["pairs"][0]["first"]["layer"] == "process"


def test_diff_structural_only_flag_round_trips(trace_files, capsys):
    rc = main(["diff", trace_files["base"], trace_files["replay"],
               "--structural-only", "--json"])
    assert rc == EXIT_OK
    doc = json.loads(capsys.readouterr().out)
    assert doc["structural_only"] is True


def test_diff_missing_file_is_bad_input(trace_files, capsys):
    rc = main(["diff", trace_files["base"], "/nonexistent.jsonl"])
    assert rc == EXIT_BAD_INPUT
    assert "cannot diff" in capsys.readouterr().err


# -- check --replay ------------------------------------------------------


def test_check_replay_seeded_kill_cell_is_deterministic(capsys):
    rc = main(["check", "--replay", "--kill-rank", "2", "--json"])
    assert rc == EXIT_OK
    doc = json.loads(capsys.readouterr().out)
    assert doc["mode"] == "check-replay"
    assert doc["divergent"] is False
    assert doc["counts"]["missing"] == 0
    assert doc["records_a"] == doc["records_b"] > 0


def test_check_without_replay_is_usage_error(capsys):
    rc = main(["check"])
    assert rc == EXIT_BAD_INPUT
    assert "--replay" in capsys.readouterr().err


def test_check_unknown_strategy_is_bad_input(capsys):
    rc = main(["check", "--replay", "--strategy", "nope"])
    assert rc == EXIT_BAD_INPUT
    assert "unknown strategy" in capsys.readouterr().err


# -- bisect --------------------------------------------------------------


def test_bisect_finds_first_divergent_trace(trace_files, capsys):
    rc = main(["bisect", trace_files["base"], trace_files["replay"],
               trace_files["perturbed"], "--json"])
    assert rc == EXIT_REGRESSION
    doc = json.loads(capsys.readouterr().out)
    assert doc["first_divergent_index"] == 2
    assert doc["first_divergent_trace"] == trace_files["perturbed"]
    assert doc["report"]["first"]["layer"] == "process"


def test_bisect_all_aligned_exits_clean(trace_files, capsys):
    rc = main(["bisect", trace_files["base"], trace_files["replay"]])
    assert rc == EXIT_OK
    assert "align with" in capsys.readouterr().out
