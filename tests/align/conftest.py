"""Shared recorded runs for the repro.align tests.

The fixtures run the same seeded fig5-shaped kill cell several ways --
baseline, identical replay, perturbed victim -- so the keying, engine,
and CLI tests all operate on real protocol streams instead of synthetic
ones.  Everything is session-scoped: the runs are deterministic, so one
recording serves every test.
"""

import pytest

from repro.apps.heatdis import HeatdisConfig
from repro.experiments.common import paper_env
from repro.harness.runner import run_heatdis_job
from repro.monitor import MonitorSuite
from repro.sim.failures import IterationFailure

RANKS = 4
INTERVAL = 10
N_ITERS = 30


def run_kill_cell(kill_rank=2, telemetry=None, trace_max_records=None):
    """One monitored seeded kill job; returns its live Trace."""
    env = paper_env(RANKS + 1, n_spares=1, pfs_servers=2)
    plan = IterationFailure.between_checkpoints(kill_rank, INTERVAL, 1)
    suite = MonitorSuite()
    run_heatdis_job(
        env, "fenix_kr_veloc", RANKS,
        HeatdisConfig(n_iters=N_ITERS, modeled_bytes_per_rank=16e6),
        INTERVAL, plan=plan, monitor=suite, strict_monitor=True,
        telemetry=telemetry, trace_max_records=trace_max_records,
    )
    return suite._trace


@pytest.fixture(scope="session")
def base_trace():
    return run_kill_cell()


@pytest.fixture(scope="session")
def replay_trace():
    """Second run of the exact same cell: must be bit-identical."""
    return run_kill_cell()


@pytest.fixture(scope="session")
def perturbed_trace():
    """Same cell with a different victim rank: structurally divergent."""
    return run_kill_cell(kill_rank=1)


@pytest.fixture(scope="session")
def base_records(base_trace):
    return list(base_trace)


@pytest.fixture(scope="session")
def replay_records(replay_trace):
    return list(replay_trace)


@pytest.fixture(scope="session")
def perturbed_records(perturbed_trace):
    return list(perturbed_trace)
