"""Determinism-audit wiring through the harness, executor, cache,
ledger, scorecard, and HTML report."""

import dataclasses
import json

import pytest

from repro.apps.heatdis import HeatdisConfig
from repro.experiments.common import paper_env
from repro.harness.runner import run_heatdis_job
from repro.parallel.cache import RunCache, cache_key
from repro.parallel.spec import CellSpec, PlanSpec, execute_cell
from repro.report.html import render_html
from repro.report.ledger import (
    CampaignLedger,
    RunRecord,
    build_scorecard,
    flag_anomalies,
    format_scorecard,
)
from repro.sim.failures import IterationFailure

from tests.align.conftest import INTERVAL, N_ITERS, RANKS


def make_spec(**overrides):
    kwargs = dict(
        app="heatdis",
        strategy="fenix_kr_veloc",
        n_ranks=RANKS,
        config=HeatdisConfig(n_iters=N_ITERS,
                             modeled_bytes_per_rank=16e6),
        ckpt_interval=INTERVAL,
        env=paper_env(RANKS + 1, n_spares=1, pfs_servers=2),
        plan=PlanSpec.between_checkpoints(2, INTERVAL, 1),
        label="audited",
    )
    kwargs.update(overrides)
    return CellSpec(**kwargs)


# -- harness -------------------------------------------------------------


def test_harness_audit_replays_the_seeded_cell():
    env = paper_env(RANKS + 1, n_spares=1, pfs_servers=2)
    report = run_heatdis_job(
        env, "fenix_kr_veloc", RANKS,
        HeatdisConfig(n_iters=N_ITERS, modeled_bytes_per_rank=16e6),
        INTERVAL, plan=IterationFailure.between_checkpoints(2, INTERVAL, 1),
        determinism_audit=True,
    )
    assert report.divergences == []
    assert not any("diverged" in w for w in report.warnings)


def test_audit_off_leaves_report_empty():
    env = paper_env(RANKS + 1, n_spares=1, pfs_servers=2)
    report = run_heatdis_job(
        env, "fenix_kr_veloc", RANKS,
        HeatdisConfig(n_iters=N_ITERS, modeled_bytes_per_rank=16e6),
        INTERVAL,
    )
    assert report.divergences == []


# -- executor + cache ----------------------------------------------------


@pytest.fixture(scope="module")
def audited_result():
    return execute_cell(make_spec(determinism_audit=True))


def test_execute_cell_runs_the_audit(audited_result):
    assert audited_result.report.divergences == []


def test_audit_flag_is_part_of_the_cache_identity():
    assert cache_key(make_spec(determinism_audit=True)) \
        != cache_key(make_spec(determinism_audit=False))
    # while the cosmetic label is not
    assert cache_key(make_spec(label="a")) == cache_key(make_spec(label="b"))


def test_cache_round_trips_divergences(tmp_path, audited_result):
    spec = make_spec(determinism_audit=True)
    fake = [{"category": "missing", "layer": "process",
             "key": {"wrank": 2, "kind": "rank_killed",
                     "epoch": None, "occurrence": 0},
             "time": 1.5, "summary": "synthetic", "briefs": [],
             "fields": []}]
    result = dataclasses.replace(
        audited_result,
        report=dataclasses.replace(audited_result.report,
                                   results={}, divergences=fake),
    )
    cache = RunCache(tmp_path)
    cache.put(spec, result)
    hit = cache.get(spec)
    assert hit is not None and hit.cached
    assert hit.report.divergences == fake


# -- ledger / scorecard / HTML -------------------------------------------


def run_record(divergences, seed=7):
    return RunRecord(
        label=f"cell-s{seed}", strategy="fenix_kr_veloc", app="heatdis",
        n_ranks=8, seed=seed, wall_time=12.0, attempts=2, failures=1,
        buckets={"compute": 10.0}, divergences=divergences,
    )


@pytest.fixture()
def audited_ledger():
    ledger = CampaignLedger(meta={"title": "audit"})
    ledger.add_ideal(8, 10.0)
    ledger.add_run(run_record(0, seed=7))
    ledger.add_run(run_record(3, seed=11))
    return ledger


def test_record_from_cell_result_counts_divergences(audited_result):
    fake = dataclasses.replace(
        audited_result,
        report=dataclasses.replace(
            audited_result.report, results={},
            divergences=[{"category": "missing"}, {"category": "extra"}]),
    )
    record = RunRecord.from_cell_result(fake, seed=7)
    assert record.divergences == 2


def test_ledger_round_trips_divergences(tmp_path, audited_ledger):
    path = tmp_path / "campaign.json"
    audited_ledger.save(path)
    doc = json.loads(path.read_text())
    assert "repro_version" in doc  # every artifact is stamped
    loaded = CampaignLedger.load(path)
    assert [r.divergences for r in loaded.runs] == [0, 3]


def test_scorecard_counts_divergent_cells(audited_ledger):
    scorecard = build_scorecard(audited_ledger)
    entry = scorecard["strategies"]["fenix_kr_veloc"]
    assert entry["divergent_cells"] == 1
    text = format_scorecard(scorecard)
    assert "divrg" in text


def test_flag_anomalies_names_the_divergent_cell(audited_ledger):
    flags = flag_anomalies(audited_ledger)
    assert any("determinism" in f and "cell-s11" in f for f in flags)


def test_html_report_badges_divergent_cells(audited_ledger):
    html = render_html(audited_ledger, build_scorecard(audited_ledger))
    assert "badge-diverged" in html
    assert "divergent cells" in html
