"""Canonical logical keys: wrank/epoch extraction, volatility, the
sampling contract, layer attribution, and occurrence indexing."""

from repro.align.keying import (
    ANCHOR_KINDS,
    canonical_fields,
    key_records,
    layer_of,
    protocol_critical,
    record_epoch,
    record_wrank,
)
from repro.sim.trace import TraceRecord
from repro.telemetry.sampling import record_sampleable


def rec(time=0.0, source="veloc.rank3", kind="checkpoint", **fields):
    return TraceRecord(time=time, source=source, kind=kind, fields=fields)


# -- wrank ---------------------------------------------------------------


def test_wrank_prefers_explicit_rank_field():
    assert record_wrank(rec(source="veloc.rank3", rank=7)) == 7


def test_wrank_from_per_rank_source_suffix():
    assert record_wrank(rec(source="kr.rank0")) == 0
    assert record_wrank(rec(source="imr.rank12")) == 12


def test_wrank_from_spare_and_member_fields():
    assert record_wrank(rec(source="fenix", spare=4)) == 4
    assert record_wrank(rec(source="fenix", member=2)) == 2


def test_wrank_none_for_global_records():
    assert record_wrank(rec(source="mpi", kind="revoke")) is None


# -- epoch ---------------------------------------------------------------


def test_epoch_precedence_generation_version_iteration():
    assert record_epoch(rec(generation=2, version=9, iteration=1)) == 2
    assert record_epoch(rec(version=9, iteration=1)) == 9
    assert record_epoch(rec(iteration=1)) == 1
    assert record_epoch(rec()) is None


def test_epoch_ignores_booleans():
    assert record_epoch(rec(generation=True, version=3)) == 3


# -- canonical value -----------------------------------------------------


def test_canonical_excludes_volatile_fields():
    a = canonical_fields(rec(nbytes=100, seconds=0.5, backlog=3))
    b = canonical_fields(rec(nbytes=100, seconds=0.9, backlog=7))
    assert a == b
    c = canonical_fields(rec(nbytes=200, seconds=0.5))
    assert a != c


def test_canonical_collapses_tuples_to_lists():
    a = canonical_fields(rec(survivors=(0, 1, 2)))
    b = canonical_fields(rec(survivors=[0, 1, 2]))
    assert a == b


# -- the shared sampling contract ----------------------------------------


def test_protocol_critical_is_the_sampling_complement():
    for kind in ["rank_killed", "checkpoint", "recover", "repair",
                 "kr_region_begin", "compute", "detect"]:
        assert protocol_critical(kind) == (not record_sampleable(kind))


def test_anchor_kinds_are_all_protocol_critical():
    assert all(protocol_critical(kind) for kind in ANCHOR_KINDS)


# -- layer attribution ---------------------------------------------------


def test_layer_of_vocabulary():
    assert layer_of(rec(kind="rank_killed", source="plan")) == "process"
    assert layer_of(rec(kind="detect", source="mpi")) == "ulfm"
    assert layer_of(rec(kind="revoke", source="mpi")) == "ulfm"
    assert layer_of(rec(kind="repair", source="fenix")) == "fenix"
    # agree exists at both levels: source decides
    assert layer_of(rec(kind="agree", source="fenix")) == "fenix"
    assert layer_of(rec(kind="agree", source="mpi")) == "ulfm"
    assert layer_of(rec(kind="kr_region_commit", source="kr.rank0")) == "kr"
    assert layer_of(rec(kind="checkpoint", source="veloc.rank1")) == "veloc"
    assert layer_of(rec(kind="imr_store", source="imr.rank1")) == "veloc"
    assert layer_of(rec(kind="recompute", source="kr.rank0")) == "recompute"
    assert layer_of(rec(kind="compute", source="app.rank0")) == "app"


# -- occurrence indexing -------------------------------------------------


def test_occurrence_counts_repeats_in_stream_order():
    records = [rec(time=float(i), version=1) for i in range(3)]
    keyed = key_records(records)
    assert [kr.occurrence for kr in keyed] == [0, 1, 2]
    assert len({kr.key for kr in keyed}) == 3


def test_reverse_occurrence_counts_from_stream_end():
    records = [rec(time=float(i), version=1) for i in range(3)]
    keyed = key_records(records, reverse_occurrence=True)
    assert [kr.occurrence for kr in keyed] == [2, 1, 0]


def test_reverse_occurrence_aligns_ring_suffixes():
    """A ring buffer keeps a suffix; reverse indexing keeps the
    surviving records' keys identical to the full stream's tail."""
    records = [rec(time=float(i), version=1) for i in range(5)]
    full = key_records(records, reverse_occurrence=True)
    suffix = key_records(records[2:], reverse_occurrence=True)
    assert [kr.key for kr in suffix] == [kr.key for kr in full[2:]]


def test_keys_unique_on_a_real_trace(base_records):
    keyed = key_records(base_records)
    keys = [kr.key for kr in keyed]
    assert len(set(keys)) == len(keys)
    # the kill cell exercises the resiliency layers of the vocabulary
    layers = {kr.layer for kr in keyed}
    assert {"process", "ulfm", "fenix", "kr", "veloc"} <= layers
