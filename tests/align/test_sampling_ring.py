"""The sampleable-exempt contract, end to end (satellite: a sampled,
ring-bounded recording still aligns byte-identically with an unsampled
run on the protocol-critical skeleton).

The tightest sampling policy plus a small ring buffer is the harshest
recording configuration the telemetry layer offers; because the sampler
may never drop protocol-critical kinds and the engine excuses what the
ring accounted for, the alignment must still come back clean.
"""

import pytest

from repro.align.engine import align
from repro.align.keying import protocol_critical
from repro.monitor.trace_io import trace_meta
from repro.telemetry import Telemetry
from repro.telemetry.sampling import SamplingPolicy, SpanSampler

from tests.align.conftest import run_kill_cell


@pytest.fixture(scope="module")
def tight_trace():
    return run_kill_cell(
        telemetry=Telemetry(
            sampler=SpanSampler(SamplingPolicy.tightest())),
        trace_max_records=48,
    )


def test_the_scenario_actually_samples_and_evicts(tight_trace):
    assert tight_trace.sampled_out > 0
    assert tight_trace.dropped > 0


def test_tightest_sampling_and_ring_still_align(base_trace, tight_trace):
    records_a, records_b = list(base_trace), list(tight_trace)
    alignment = align(
        records_a, records_b,
        meta_a=trace_meta(base_trace), meta_b=trace_meta(tight_trace),
    )
    assert not alignment.divergent, [
        d.summary for d in alignment.divergences]
    # sampleable kinds were excluded, the evicted prefix excused
    assert alignment.excluded_sampleable > 0
    assert alignment.excused > 0
    # every surviving protocol-critical record of the harsh recording
    # matched one of the full recording byte-for-byte
    skeleton_b = [r for r in records_b if protocol_critical(r.kind)]
    assert alignment.matched == len(skeleton_b)


def test_recovery_spine_survives_inside_the_ring_window(tight_trace):
    """Sampling may thin the bulk kinds and the ring may evict the
    oldest records (the kill itself can fall out -- the engine excuses
    that via the drop window), but the late recovery spine the run ends
    on is protocol-critical and recent, so it always survives."""
    kinds = {r.kind for r in tight_trace}
    assert "recover" in kinds
    assert "repair" in kinds
