"""2-D Heatdis correctness: decomposition equivalence and resilience."""

import numpy as np
import pytest

from repro.apps.heatdis2d import (
    Heatdis2DConfig,
    gather_blocks,
    heatdis2d_reference,
    make_heatdis2d_main,
    process_grid,
)
from repro.sim import IterationFailure
from repro.util.errors import ConfigError
from tests.apps.conftest import run_app


class TestProcessGrid:
    @pytest.mark.parametrize("size,expected", [
        (1, (1, 1)), (2, (1, 2)), (4, (2, 2)), (6, (2, 3)),
        (8, (2, 4)), (9, (3, 3)), (12, (3, 4)),
    ])
    def test_near_square_factorization(self, size, expected):
        assert process_grid(size) == expected

    def test_prime_degenerates_to_column(self):
        assert process_grid(7) == (1, 7)


class TestDecomposedCorrectness:
    @pytest.mark.parametrize("n_ranks", [1, 2, 4, 6])
    def test_matches_single_domain_reference(self, n_ranks):
        cfg = Heatdis2DConfig(local_rows=6, local_cols=6, n_iters=20)
        px, py = process_grid(n_ranks)

        def factory(make_kr, results, plan):
            return make_heatdis2d_main(cfg, make_kr, results=results)

        results, _ = run_app(factory, n_ranks, ckpt_interval=7)
        computed = gather_blocks(results, n_ranks)
        expected = heatdis2d_reference(cfg, px, py, cfg.n_iters)
        np.testing.assert_allclose(computed, expected, rtol=1e-12, atol=1e-13)

    def test_2d_equals_differently_shaped_decomposition(self):
        # same global grid cut 1x4 vs 2x2 must agree bitwise
        cfg_a = Heatdis2DConfig(local_rows=4, local_cols=12, n_iters=15)
        cfg_b = Heatdis2DConfig(local_rows=8, local_cols=6, n_iters=15)

        def run(cfg, n_ranks):
            def factory(make_kr, results, plan):
                return make_heatdis2d_main(cfg, make_kr, results=results)

            results, _ = run_app(factory, n_ranks, ckpt_interval=7)
            return gather_blocks(results, n_ranks)

        # 4 ranks: cfg_a gives (2,2) of 4x12 -> 8x24; cfg_b (2,2) of 8x6 -> 16x12
        # instead compare both against their own reference (bitwise)
        a = run(cfg_a, 4)
        pa = process_grid(4)
        np.testing.assert_array_equal(
            a, heatdis2d_reference(cfg_a, *pa, 15)
        )
        b = run(cfg_b, 4)
        np.testing.assert_array_equal(
            b, heatdis2d_reference(cfg_b, *pa, 15)
        )

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            Heatdis2DConfig(local_cols=1)
        with pytest.raises(ConfigError):
            Heatdis2DConfig(modeled_bytes_per_rank=-1)


class TestResilient2D:
    def test_failure_recovery_bitwise_exact(self):
        cfg = Heatdis2DConfig(local_rows=6, local_cols=6, n_iters=24)

        def factory_with(plan):
            def factory(make_kr, results, _plan):
                return make_heatdis2d_main(cfg, make_kr, failure_plan=plan,
                                           results=results)
            return factory

        clean, _ = run_app(factory_with(None), 4, n_spares=1, ckpt_interval=6)
        plan = IterationFailure([(2, 17)])
        failed, world = run_app(
            factory_with(plan), 4, n_spares=1, plan=plan, ckpt_interval=6
        )
        assert world.dead == {2}
        np.testing.assert_array_equal(
            gather_blocks(clean, 4), gather_blocks(failed, 4)
        )

    def test_corner_rank_failure(self):
        # rank 0 is a corner of the process grid (two global edges)
        cfg = Heatdis2DConfig(local_rows=6, local_cols=6, n_iters=24)

        def factory_with(plan):
            def factory(make_kr, results, _plan):
                return make_heatdis2d_main(cfg, make_kr, failure_plan=plan,
                                           results=results)
            return factory

        clean, _ = run_app(factory_with(None), 4, n_spares=1, ckpt_interval=6)
        plan = IterationFailure([(0, 17)])
        failed, _ = run_app(
            factory_with(plan), 4, n_spares=1, plan=plan, ckpt_interval=6
        )
        np.testing.assert_array_equal(
            gather_blocks(clean, 4), gather_blocks(failed, 4)
        )
