"""Heatdis correctness: decomposition, resilience, convergence."""

import numpy as np
import pytest

from repro.apps import HeatdisConfig, heatdis_reference, make_heatdis_main
from repro.apps.heatdis import HOT_EDGE, stencil_sweep
from repro.sim import IterationFailure
from repro.util.errors import ConfigError
from tests.apps.conftest import run_app


def gather_grid(results, n_ranks):
    return np.concatenate([results[r]["grid"] for r in range(n_ranks)], axis=0)


class TestStencilKernel:
    def test_heat_flows_down(self):
        grid = np.zeros((6, 8))
        nxt = np.zeros_like(grid)
        grid[0, :] = HOT_EDGE
        nxt[0, :] = HOT_EDGE
        for _ in range(10):
            stencil_sweep(grid, nxt)
            grid, nxt = nxt, grid
        assert grid[1, 4] > grid[4, 4] > 0.0

    def test_delta_decreases(self):
        grid = np.zeros((8, 8))
        nxt = np.zeros_like(grid)
        grid[0, :] = HOT_EDGE
        nxt[0, :] = HOT_EDGE
        deltas = []
        for _ in range(30):
            deltas.append(stencil_sweep(grid, nxt))
            grid, nxt = nxt, grid
        assert deltas[-1] < deltas[0]

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            HeatdisConfig(local_rows=0)
        with pytest.raises(ConfigError):
            HeatdisConfig(modeled_bytes_per_rank=0)

    def test_modeled_sizes(self):
        cfg = HeatdisConfig(modeled_bytes_per_rank=64e6)
        assert cfg.checkpoint_bytes == 32e6  # half the app data (paper)
        assert cfg.modeled_cells == 64e6 / 16
        assert cfg.modeled_halo_bytes == pytest.approx(
            np.sqrt(64e6 / 16) * 8.0
        )


class TestDecomposedCorrectness:
    @pytest.mark.parametrize("n_ranks", [1, 2, 4])
    def test_matches_single_domain_reference(self, n_ranks):
        cfg = HeatdisConfig(local_rows=8, cols=16, n_iters=25)

        def factory(make_kr, results, plan):
            return make_heatdis_main(cfg, make_kr, failure_plan=plan,
                                     results=results)

        results, _ = run_app(factory, n_ranks, ckpt_interval=10)
        computed = gather_grid(results, n_ranks)
        expected = heatdis_reference(cfg, n_ranks, cfg.n_iters)
        np.testing.assert_allclose(computed, expected, rtol=1e-12, atol=1e-12)

    def test_deterministic_across_runs(self):
        cfg = HeatdisConfig(local_rows=6, cols=12, n_iters=15)

        def factory(make_kr, results, plan):
            return make_heatdis_main(cfg, make_kr, results=results)

        a, _ = run_app(factory, 2)
        b, _ = run_app(factory, 2)
        np.testing.assert_array_equal(gather_grid(a, 2), gather_grid(b, 2))


class TestResilientHeatdis:
    def test_failure_recovery_bitwise_exact(self):
        cfg = HeatdisConfig(local_rows=8, cols=16, n_iters=30)

        def factory_with(plan):
            def factory(make_kr, results, _plan):
                return make_heatdis_main(cfg, make_kr, failure_plan=plan,
                                         results=results)
            return factory

        clean, _ = run_app(factory_with(None), 3, n_spares=1, ckpt_interval=5)
        # failure ~95% between checkpoints 3 and 4 (iters 15 -> 20)
        plan = IterationFailure([(1, 19)])
        failed, world = run_app(
            factory_with(plan), 3, n_spares=1, plan=plan, ckpt_interval=5
        )
        assert world.dead == {1}
        np.testing.assert_array_equal(
            gather_grid(clean, 3), gather_grid(failed, 3)
        )

    def test_failure_recovery_with_imr_backend(self):
        cfg = HeatdisConfig(local_rows=8, cols=16, n_iters=30)

        def factory_with(plan):
            def factory(make_kr, results, _plan):
                return make_heatdis_main(cfg, make_kr, failure_plan=plan,
                                         results=results)
            return factory

        clean, _ = run_app(
            factory_with(None), 4, n_spares=1, backend="fenix_imr",
            ckpt_interval=5,
        )
        plan = IterationFailure([(2, 19)])
        failed, _ = run_app(
            factory_with(plan), 4, n_spares=1, plan=plan,
            backend="fenix_imr", ckpt_interval=5,
        )
        np.testing.assert_array_equal(
            gather_grid(clean, 4), gather_grid(failed, 4)
        )

    def test_census_reports_alias(self):
        cfg = HeatdisConfig(local_rows=6, cols=12, n_iters=12)

        def factory(make_kr, results, plan):
            return make_heatdis_main(cfg, make_kr, results=results)

        results, _ = run_app(factory, 2, ckpt_interval=5)
        census = results[0]["kr"].last_census
        labels_alias = [v.label for v in census.aliases]
        # exactly one of grid/grid_next is the declared alias
        assert labels_alias == ["heatdis.grid_next"]


class TestConvergenceVariant:
    def test_converges_and_stops(self):
        cfg = HeatdisConfig(
            local_rows=6, cols=12, n_iters=500, convergence_threshold=0.5
        )

        def factory(make_kr, results, plan):
            return make_heatdis_main(cfg, make_kr, results=results)

        results, _ = run_app(factory, 2, ckpt_interval=50)
        iters = {r: results[r]["iterations"] for r in results}
        assert len(set(iters.values())) == 1  # all stopped together
        assert 0 < iters[0] < 500
        assert results[0]["delta"] <= 0.5

    def test_partial_rollback_recovers_and_converges(self):
        cfg = HeatdisConfig(
            local_rows=6, cols=12, n_iters=600, convergence_threshold=0.5
        )

        def clean_factory(make_kr, results, plan):
            return make_heatdis_main(cfg, make_kr, results=results)

        clean, _ = run_app(clean_factory, 2, n_spares=1, ckpt_interval=40)
        clean_iters = clean[0]["iterations"]
        plan = IterationFailure([(0, 78)])

        def fail_factory(make_kr, results, _plan):
            return make_heatdis_main(
                cfg, make_kr, failure_plan=plan, partial_rollback=True,
                results=results,
            )

        failed, world = run_app(
            fail_factory, 2, n_spares=1, plan=plan, ckpt_interval=40,
            scope="recovered_only",
        )
        assert world.dead == {0}
        # converged to the same threshold despite the inconsistent restart
        assert failed[0]["delta"] <= 0.5
        assert failed[1]["delta"] <= 0.5
        # final answers agree with the clean run within the tolerance the
        # partial-consistency strategy promises (not bitwise!)
        clean_grid = gather_grid(clean, 2)
        failed_grid = gather_grid(failed, 2)
        assert np.abs(clean_grid - failed_grid).max() < 1.0
