"""Shared driver for application tests: full resilient stack runner."""

from typing import Optional

from repro.core import KRConfig, every_nth, make_context
from repro.fenix import FenixSystem, IMRStore
from repro.mpi import World
from repro.sim import Cluster, ClusterSpec, NetworkSpec, NodeSpec, PFSSpec
from repro.veloc import VeloCService


def app_cluster(n_nodes):
    return Cluster(
        ClusterSpec(
            n_nodes=n_nodes,
            node=NodeSpec(nic_bandwidth=1e9, nic_latency=1e-6, memory_bandwidth=1e10),
            network=NetworkSpec(fabric_latency=0.0),
            pfs=PFSSpec(n_servers=2, server_bandwidth=5e8, server_latency=1e-5),
        )
    )


def run_app(
    main_factory,
    n_ranks,
    n_spares=0,
    plan=None,
    backend="veloc",
    ckpt_interval=10,
    scope="all",
):
    """Run a resilient app main on the full stack; returns (results, world).

    ``main_factory(make_kr, results, plan)`` builds the per-rank main.
    """
    n_total = n_ranks + n_spares
    cluster = app_cluster(n_total)
    world = World(cluster, n_total)
    system = FenixSystem(world, n_spares=n_spares)
    service = VeloCService(cluster)
    imr = IMRStore(world)
    config = KRConfig(
        backend=backend, filter=every_nth(ckpt_interval), recovery_scope=scope
    )

    def make_kr(h):
        return make_context(
            h, config, cluster, veloc_service=service, imr_store=imr
        )

    results = {}
    main = main_factory(make_kr, results, plan)

    def wrapped(rank):
        yield from system.run(world.context(rank), main)

    for r in range(n_total):
        world.spawn(r, wrapped(r), failure_plan=plan)
    cluster.engine.run()
    world.raise_job_errors()
    return results, world
