"""MiniMD correctness: physics sanity, census structure, resilience."""

import numpy as np
import pytest

from repro.apps import MiniMDConfig, make_minimd_main
from repro.apps.minimd import MiniMDState
from repro.kokkos import KokkosRuntime
from repro.sim import IterationFailure
from repro.util.errors import ConfigError
from tests.apps.conftest import run_app


def small_cfg(**kw):
    defaults = dict(real_atoms_per_rank=24, n_steps=20, problem_size=100,
                    dt=0.003, neigh_every=5)
    defaults.update(kw)
    return MiniMDConfig(**defaults)


class TestConfig:
    def test_modeled_scaling(self):
        cfg = MiniMDConfig(problem_size=200, n_ranks_for_model=8)
        assert cfg.modeled_atoms_per_rank == 4 * 200**3 / 8
        assert cfg.checkpoint_bytes == 2 * cfg.modeled_position_bytes

    def test_validation(self):
        with pytest.raises(ConfigError):
            MiniMDConfig(real_atoms_per_rank=4)
        with pytest.raises(ConfigError):
            MiniMDConfig(n_steps=0)


class TestViewCensus:
    def test_inventory_matches_paper_counts(self):
        """61 view objects: 39 checkpointed, 3 aliases, 19 skipped."""
        rt = KokkosRuntime()
        state = MiniMDState(rt, small_cfg(), comm_rank=0, comm_size=2)
        views = state.all_views()
        assert len(views) == 61
        census = rt.registry.census(views)
        assert len(census.checkpointed) == 39
        assert len(census.aliases) == 3
        assert len(census.skipped) == 19

    def test_positions_dominate_checkpointed_bytes(self):
        """One view holds the majority of the checkpointed data."""
        rt = KokkosRuntime()
        state = MiniMDState(rt, small_cfg(), comm_rank=0, comm_size=2)
        census = rt.registry.census(state.all_views())
        sizes = sorted((v.modeled_nbytes for v in census.checkpointed),
                       reverse=True)
        assert sizes[0] >= 0.5 * sum(sizes)

    def test_checkpoint_set_is_39_views(self):
        rt = KokkosRuntime()
        state = MiniMDState(rt, small_cfg(), comm_rank=0, comm_size=1)
        assert len(state.checkpoint_views) == 39


class TestPhysics:
    def run_clean(self, n_ranks=2, **cfg_kw):
        cfg = small_cfg(**cfg_kw)

        def factory(make_kr, results, plan):
            return make_minimd_main(cfg, make_kr, failure_plan=plan,
                                    results=results)

        results, _ = run_app(factory, n_ranks, ckpt_interval=8)
        return results, cfg

    def test_runs_and_stays_finite(self):
        results, _ = self.run_clean()
        for r, out in results.items():
            assert np.all(np.isfinite(out["x"]))
            assert np.all(np.isfinite(out["v"]))

    def test_deterministic(self):
        a, _ = self.run_clean()
        b, _ = self.run_clean()
        for r in a:
            np.testing.assert_array_equal(a[r]["x"], b[r]["x"])
            np.testing.assert_array_equal(a[r]["v"], b[r]["v"])

    def test_momentum_approximately_conserved(self):
        results, _ = self.run_clean()
        total_p = sum(out["v"].sum(axis=0) for out in results.values())
        # initial net momentum is zero per rank; pairwise forces cancel
        assert np.abs(total_p).max() < 1e-6

    def test_atoms_stay_in_box(self):
        results, cfg = self.run_clean()
        rt = KokkosRuntime()
        probe = MiniMDState(rt, cfg, comm_rank=0, comm_size=2)
        for out in results.values():
            assert np.all(out["x"] >= -1e-9)
            assert np.all(out["x"][:, 0] <= probe.box_xy + 1e-9)
            assert np.all(out["x"][:, 2] <= probe.box_z + 1e-9)

    def test_energy_reasonably_stable(self):
        # NVE velocity Verlet: total energy should not blow up
        results, _ = self.run_clean(dt=0.001, n_steps=30)
        total_e = sum(out["pe"] + out["ke"] for out in results.values())
        assert np.isfinite(total_e)

    def test_thermo_observables(self):
        results, cfg = self.run_clean()
        for out in results.values():
            obs = out["state"].thermo(out["pe"])
            assert obs["temperature"] > 0
            assert np.isfinite(obs["pressure"])
            assert obs["etot"] == pytest.approx(obs["pe"] + obs["ke"])
            # observables land in the checkpointed stat views
            assert out["state"].views["thermo_temp"].data.flat[0] == (
                pytest.approx(obs["temperature"])
            )


class TestResilientMiniMD:
    def test_failure_recovery_bitwise_exact(self):
        cfg = small_cfg(n_steps=24)

        def factory_with(plan):
            def factory(make_kr, results, _plan):
                return make_minimd_main(cfg, make_kr, failure_plan=plan,
                                        results=results)
            return factory

        clean, _ = run_app(factory_with(None), 3, n_spares=1, ckpt_interval=6)
        plan = IterationFailure([(1, 17)])  # ~95% between ckpts 12 and 18
        failed, world = run_app(
            factory_with(plan), 3, n_spares=1, plan=plan, ckpt_interval=6
        )
        assert world.dead == {1}
        for r in range(3):
            np.testing.assert_array_equal(clean[r]["x"], failed[r]["x"])
            np.testing.assert_array_equal(clean[r]["v"], failed[r]["v"])

    def test_kr_census_during_run_matches_paper(self):
        cfg = small_cfg(n_steps=6)

        def factory(make_kr, results, plan):
            return make_minimd_main(cfg, make_kr, results=results)

        results, _ = run_app(factory, 2, ckpt_interval=3)
        census = results[0]["kr"].last_census
        assert len(census.checkpointed) == 39
        assert len(census.aliases) == 3
        assert len(census.skipped) == 19

    def test_phase_time_accounting(self):
        cfg = small_cfg(n_steps=10)
        accounts = {}

        def factory(make_kr, results, plan):
            inner = make_minimd_main(cfg, make_kr, results=results)

            def main(role, h):
                res = yield from inner(role, h)
                accounts[h.rank] = h.ctx.account.snapshot()
                return res

            return main

        run_app(factory, 2, ckpt_interval=5)
        for snap in accounts.values():
            assert snap.get("force_compute", 0) > 0
            assert snap.get("neighboring", 0) > 0
            assert snap.get("communicator", 0) > 0
            assert snap.get("checkpoint_function", 0) > 0
