"""Manual (hand-integrated) Heatdis variants vs the KR-managed one."""

import numpy as np
import pytest

from repro.apps import HeatdisConfig
from repro.harness import run_heatdis_job
from repro.sim import IterationFailure
from tests.harness.conftest import small_env


CFG = HeatdisConfig(local_rows=8, cols=16, modeled_bytes_per_rank=32e6,
                    n_iters=40)
CKPT = 8


def run(strategy, plan=None):
    return run_heatdis_job(small_env(), strategy, 4, CFG, CKPT, plan=plan)


class TestEquivalence:
    def test_manual_veloc_matches_kr_results(self):
        manual = run("veloc")
        managed = run("kr_veloc")
        for r in range(4):
            np.testing.assert_array_equal(
                manual.results[r]["grid"], managed.results[r]["grid"]
            )

    def test_manual_fenix_matches_full_stack_results(self):
        manual = run("fenix_veloc")
        managed = run("fenix_kr_veloc")
        for r in range(4):
            np.testing.assert_array_equal(
                manual.results[r]["grid"], managed.results[r]["grid"]
            )

    def test_kr_overhead_negligible_vs_manual(self):
        """The paper's headline Section VI-D claim, at the job level."""
        manual = run("veloc")
        managed = run("kr_veloc")
        assert managed.wall_time == pytest.approx(manual.wall_time, rel=0.02)


class TestManualFailurePaths:
    def test_manual_veloc_relaunch_recovers(self):
        plan = IterationFailure([(2, 30)])
        clean = run("veloc")
        failed = run("veloc", plan=plan)
        assert failed.attempts == 2
        for r in range(4):
            np.testing.assert_array_equal(
                clean.results[r]["grid"], failed.results[r]["grid"]
            )

    def test_manual_fenix_online_recovery(self):
        plan = IterationFailure([(2, 30)])
        clean = run("fenix_veloc")
        failed = run("fenix_veloc", plan=plan)
        assert failed.attempts == 1  # no relaunch
        for r in range(4):
            np.testing.assert_array_equal(
                clean.results[r]["grid"], failed.results[r]["grid"]
            )

    def test_manual_fenix_beats_manual_relaunch(self):
        plan = IterationFailure([(2, 30)])
        relaunch = run("veloc", plan=IterationFailure([(2, 30)]))
        online = run("fenix_veloc", plan=plan)
        assert online.wall_time < relaunch.wall_time
