"""Elastic Heatdis: shrink-and-rebalance continuation (future work, built)."""

import numpy as np
import pytest

from repro.apps import HeatdisConfig
from repro.apps.heatdis import heatdis_reference
from repro.apps.heatdis_elastic import (
    gather_elastic,
    make_elastic_heatdis_main,
    partition_rows,
)
from repro.fenix import FenixSystem
from repro.mpi import World
from repro.sim import IterationFailure
from repro.veloc import VeloCService
from tests.apps.conftest import app_cluster

TOTAL_ROWS = 12
COLS = 16
N_ITERS = 30
CKPT = 6


class TestPartition:
    def test_even_split(self):
        assert partition_rows(12, 3, 0) == (0, 4)
        assert partition_rows(12, 3, 2) == (8, 12)

    def test_remainder_spread(self):
        # 13 rows over 3 ranks: 5, 4, 4
        assert partition_rows(13, 3, 0) == (0, 5)
        assert partition_rows(13, 3, 1) == (5, 9)
        assert partition_rows(13, 3, 2) == (9, 13)

    def test_covers_exactly(self):
        for total in (7, 12, 31):
            for size in (1, 2, 3, 5):
                spans = [partition_rows(total, size, r) for r in range(size)]
                assert spans[0][0] == 0
                assert spans[-1][1] == total
                for a, b in zip(spans, spans[1:]):
                    assert a[1] == b[0]


def run_elastic(n_ranks, plan=None):
    cluster = app_cluster(n_ranks)
    world = World(cluster, n_ranks)
    system = FenixSystem(world, n_spares=0, spare_policy="shrink")
    cfg = HeatdisConfig(local_rows=TOTAL_ROWS // n_ranks, cols=COLS,
                        modeled_bytes_per_rank=16e6, n_iters=N_ITERS)
    results = {}
    main = make_elastic_heatdis_main(
        cfg, cluster, TOTAL_ROWS, n_ranks, CKPT,
        failure_plan=plan, results=results,
    )

    def wrapped(rank):
        yield from system.run(world.context(rank), main)

    for r in range(n_ranks):
        world.spawn(r, wrapped(r), failure_plan=plan)
    cluster.engine.run()
    world.raise_job_errors()
    return results, world, system


def reference_grid():
    cfg = HeatdisConfig(local_rows=TOTAL_ROWS, cols=COLS, n_iters=N_ITERS)
    return heatdis_reference(cfg, 1, N_ITERS)


class TestElasticRuns:
    def test_failure_free_matches_reference(self):
        results, _, _ = run_elastic(3)
        grid = gather_elastic(results, TOTAL_ROWS, COLS)
        np.testing.assert_allclose(grid, reference_grid(), rtol=1e-12,
                                   atol=1e-13)

    def test_shrink_continues_and_is_exact(self):
        """Kill one of three ranks with no spares: the job shrinks to two
        ranks, rebalances the rows, redistributes the checkpoint, and
        still produces the bit-exact answer."""
        plan = IterationFailure([(1, 17)])  # ~95% between ckpts 12 and 18
        results, world, system = run_elastic(3, plan=plan)
        assert world.dead == {1}
        assert system.resilient_comm.size == 2
        # survivors now own 6 rows each (was 4): the load rebalance
        sizes = sorted(out["range"][1] - out["range"][0]
                       for out in results.values())
        assert sizes == [6, 6]
        grid = gather_elastic(results, TOTAL_ROWS, COLS)
        np.testing.assert_array_equal(grid, reference_grid())

    def test_two_sequential_shrinks(self):
        plan = IterationFailure([(1, 8), (2, 20)])
        results, world, system = run_elastic(4, plan=plan)
        assert world.dead == {1, 2}
        assert system.resilient_comm.size == 2
        grid = gather_elastic(results, TOTAL_ROWS, COLS)
        np.testing.assert_array_equal(grid, reference_grid())

    def test_failure_before_any_checkpoint(self):
        plan = IterationFailure([(0, 3)])  # before the first checkpoint
        results, world, _ = run_elastic(3, plan=plan)
        grid = gather_elastic(results, TOTAL_ROWS, COLS)
        np.testing.assert_array_equal(grid, reference_grid())
