"""Windowed series + the standard aggregator derivations."""

import math

import pytest

from repro.live.series import (
    STANDARD_SERIES,
    TimeSeriesAggregator,
    WindowedSeries,
)
from repro.sim.trace import Trace
from repro.util.errors import ConfigError


def records(*emits):
    """Materialize (t, source, kind, fields) tuples as TraceRecords."""
    tr = Trace(enabled=True)
    for t, source, kind, fields in emits:
        tr.emit(t, source, kind, **fields)
    return list(tr)


class TestWindowedSeries:
    def test_tumbling_windows_fold_observations(self):
        s = WindowedSeries("x", window_s=1.0)
        for t, v in [(0.1, 1.0), (0.9, 3.0), (1.5, 5.0), (2.2, 2.0)]:
            s.observe(t, v)
        assert len(s.windows) == 3
        w0 = s.windows[0]
        assert (w0.count, w0.total, w0.vmin, w0.vmax) == (2, 4.0, 1.0, 3.0)
        assert (w0.first, w0.last) == (1.0, 3.0)
        assert s.latest() == 2.0

    def test_aggregations(self):
        s = WindowedSeries("x", window_s=1.0)
        for i in range(10):
            s.observe(float(i), float(i + 1))  # 1..10, one per window
        t = 9.0
        assert s.aggregate("last", t, 100.0) == 10.0
        assert s.aggregate("min", t, 100.0) == 1.0
        assert s.aggregate("max", t, 100.0) == 10.0
        assert s.aggregate("sum", t, 100.0) == 55.0
        assert s.aggregate("mean", t, 100.0) == 5.5
        assert s.aggregate("count", t, 100.0) == 10.0
        # growth = newest minus oldest inside the lookback
        assert s.aggregate("growth", t, 100.0) == 9.0
        # lookback clips: only the windows ending after t - 2.5 = 6.5,
        # i.e. [6,7) onward, whose oldest sample is 7.0
        assert s.aggregate("min", t, 2.5) == 7.0

    def test_percentiles_nearest_rank(self):
        s = WindowedSeries("x", window_s=1.0)
        for i in range(100):
            s.observe(0.5, float(i + 1))
        assert s.aggregate("p50", 1.0, 10.0) == 50.0
        assert s.aggregate("p95", 1.0, 10.0) == 95.0
        assert s.aggregate("p99", 1.0, 10.0) == 99.0

    def test_empty_lookback_is_none(self):
        s = WindowedSeries("x", window_s=1.0)
        assert s.latest() is None
        assert s.aggregate("last", 10.0, 5.0) is None
        assert s.aggregate("p99", 10.0, 5.0) is None
        assert s.aggregate("count", 10.0, 5.0) == 0.0
        s.observe(0.0, 1.0)
        # observation is outside the [8, 10] lookback
        assert s.aggregate("max", 10.0, 2.0) is None

    def test_memory_is_bounded(self):
        s = WindowedSeries("x", window_s=1.0, max_windows=8, max_samples=16)
        for i in range(1000):
            s.observe(float(i), float(i))
        assert len(s.windows) == 8
        assert len(s.samples) == 16
        assert s.total_count == 1000

    def test_unknown_aggregation_rejected(self):
        s = WindowedSeries("x")
        with pytest.raises(ConfigError):
            s.aggregate("p42", 0.0, 1.0)
        with pytest.raises(ConfigError):
            WindowedSeries("x", window_s=0.0)


class TestAggregator:
    def test_standard_series_exist(self):
        agg = TimeSeriesAggregator()
        assert tuple(agg.series) == STANDARD_SERIES

    def test_flush_backlog_tracks_submit_and_done(self):
        agg = TimeSeriesAggregator()
        agg.replay(records(
            (1.0, "veloc.server0", "flush_submit", {"nbytes": 100.0}),
            (1.1, "veloc.server0", "flush_submit", {"nbytes": 50.0}),
            (1.5, "veloc.server0", "flush_done", {"nbytes": 100.0}),
        ))
        assert agg.series["flush_backlog_bytes"].latest() == 50.0

    def test_checkpoint_overhead_percent(self):
        agg = TimeSeriesAggregator()
        agg.replay(records(
            (1.0, "veloc.rank0", "checkpoint", {"seconds": 0.05}),
            (2.0, "veloc.rank0", "checkpoint", {"seconds": 0.1}),
        ))
        # 0.1 s of checkpoint over a 1.0 s interval = 10%
        assert agg.series["checkpoint_overhead_pct"].latest() == \
            pytest.approx(10.0)
        # the first checkpoint has no predecessor: one observation only
        assert agg.series["checkpoint_overhead_pct"].total_count == 1

    def test_recovery_episode_kill_to_recover(self):
        agg = TimeSeriesAggregator()
        kill = records((4.0, "app.attempt1", "rank_killed", {"rank": 2}))
        agg.replay(kill)
        assert agg.open_recoveries == 1
        agg.replay(records(
            (4.5, "veloc.rank2", "recover", {"version": 10})))
        assert agg.open_recoveries == 0
        assert agg.series["recovery_latency_s"].latest() == \
            pytest.approx(0.5)

    def test_alive_and_spare_population(self):
        agg = TimeSeriesAggregator()
        agg.replay(records(
            (0.0, "app.attempt1", "comm_create",
             {"members": [0, 1, 2, 3]}),
            (0.1, "fenix", "role", {"rank": 3, "role": "SPARE"}),
            (1.0, "app.attempt1", "rank_killed", {"rank": 1}),
            (1.2, "fenix", "spare_activated",
             {"spare": 3, "replaces": 1}),
        ))
        assert agg.series["alive_ranks"].latest() == 3.0
        assert agg.series["spare_ranks"].latest() == 0.0
        assert agg.lanes[3].state == "recovered"
        assert agg.lanes[1].state == "dead"

    def test_dropped_records_series_follows_the_trace(self):
        tr = Trace(enabled=True, max_records=4)
        agg = TimeSeriesAggregator(trace=tr)
        tr.subscribe(agg.feed)
        for i in range(10):
            tr.emit(float(i), "engine", "tick", n=i)
        assert tr.dropped == 6
        assert agg.series["dropped_records"].latest() == 6.0

    def test_snapshot_is_json_shaped(self):
        agg = TimeSeriesAggregator()
        agg.replay(records(
            (1.0, "veloc.server0", "flush_submit", {"nbytes": 10.0})))
        snap = agg.snapshot()
        assert snap["records_seen"] == 1
        assert snap["series"]["flush_backlog_bytes"]["latest"] == 10.0
        assert snap["series"]["recovery_latency_s"]["latest"] is None
        assert math.isfinite(snap["now"])

    def test_attach_replays_held_records_then_subscribes(self):
        tr = Trace(enabled=True)
        tr.emit(1.0, "veloc.server0", "flush_submit", nbytes=5.0)
        agg = TimeSeriesAggregator()
        agg.attach(tr)
        assert agg.records_seen == 1
        tr.emit(2.0, "veloc.server0", "flush_submit", nbytes=5.0)
        assert agg.records_seen == 2
        agg.detach()
        tr.emit(3.0, "veloc.server0", "flush_submit", nbytes=5.0)
        assert agg.records_seen == 2
