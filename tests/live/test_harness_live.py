"""Live SLO rules wired through the harness, executor, and reports."""

import pytest

from repro.apps.heatdis import HeatdisConfig
from repro.experiments.common import paper_env
from repro.harness.runner import run_heatdis_job
from repro.live.rules import AlertRule, RuleSet, SLOViolationError
from repro.sim.failures import IterationFailure, NoFailures
from repro.sim.trace import Trace

RANKS = 4
INTERVAL = 10
CFG = HeatdisConfig(n_iters=30, modeled_bytes_per_rank=16e6)


def tight_rules():
    return RuleSet([AlertRule(
        name="recovery-latency-tight", metric="recovery_latency_s",
        op="<=", threshold=0.001, agg="p99", window_s=1e6,
        severity="critical")])


def run(rules=None, strict_slo=None, plan=None, trace_sink=None):
    env = paper_env(RANKS + 1, n_spares=1, pfs_servers=2)
    if plan is None:
        plan = IterationFailure.between_checkpoints(1, INTERVAL, 1)
    return run_heatdis_job(env, "fenix_kr_veloc", RANKS, CFG, INTERVAL,
                           plan=plan, rules=rules, strict_slo=strict_slo,
                           trace_sink=trace_sink)


class TestRulesOnTheReport:
    def test_tight_recovery_slo_fires_exactly_one_alert(self):
        report = run(rules=tight_rules())
        assert len(report.alerts) == 1
        alert = report.alerts[0]
        assert alert.rule == "recovery-latency-tight"
        assert alert.severity == "critical"
        assert alert.value > 0.001
        assert alert.records, "alert lost its causal record window"

    def test_rules_accepted_as_a_file_path(self):
        report = run(rules="examples/slo_rules.json")
        # a healthy single-kill recovery meets the shipped SLOs
        assert report.alerts == []

    def test_failure_free_run_fires_nothing(self):
        report = run(rules=tight_rules(), plan=NoFailures())
        assert report.alerts == []

    def test_strict_slo_raises(self):
        with pytest.raises(SLOViolationError) as exc:
            run(rules=tight_rules(), strict_slo=True)
        assert len(exc.value.alerts) == 1

    def test_no_rules_means_no_alerts_attribute_surprises(self):
        report = run()
        assert report.alerts == []
        assert report.warnings == []


class TestListenerIsolation:
    """A broken observer must never alter the run it observes."""

    def test_trace_isolates_and_counts_listener_exceptions(self):
        tr = Trace(enabled=True)
        seen = []
        tr.subscribe(lambda rec: 1 / 0)
        tr.subscribe(seen.append)
        rec = tr.emit(1.0, "engine", "tick")
        assert rec is not None  # emit survived the bad listener
        assert seen == [rec]    # later listeners still ran
        assert tr.listener_errors == 1
        assert "ZeroDivisionError" in tr.last_listener_error
        tr.clear()
        assert tr.listener_errors == 0

    def test_raising_listener_surfaces_as_report_warning(self):
        class BadSink:
            def attach(self, trace):
                trace.subscribe(self._boom)

            @staticmethod
            def _boom(rec):
                raise RuntimeError("observer bug")

        report = run(rules=tight_rules(), trace_sink=BadSink())
        # the run completed and the alert still fired ...
        assert report.wall_time > 0
        assert len(report.alerts) == 1
        # ... and the observer failure is surfaced, not swallowed silently
        assert len(report.warnings) == 1
        assert "listener exception(s) isolated" in report.warnings[0]
        assert "RuntimeError" in report.warnings[0]


class TestReportPropagation:
    def test_ledger_scorecard_and_flags_count_alerts(self):
        from repro.parallel.spec import CellResult, CellSpec, PlanSpec
        from repro.report.ledger import (
            CampaignLedger,
            RunRecord,
            build_scorecard,
            flag_anomalies,
        )

        env = paper_env(RANKS + 1, n_spares=1, pfs_servers=2)
        report = run(rules=tight_rules())
        spec = CellSpec(app="heatdis", strategy="fenix_kr_veloc",
                        n_ranks=RANKS, config=CFG, ckpt_interval=INTERVAL,
                        env=env, plan=PlanSpec.none(), label="cell")
        record = RunRecord.from_cell_result(
            CellResult(spec=spec, report=report, failures=1), seed=2)
        assert record.alerts == 1
        assert RunRecord.from_dict(record.to_dict()).alerts == 1

        ledger = CampaignLedger()
        ledger.add_run(record)
        ledger.add_ideal(RANKS, report.wall_time / 2)
        card = build_scorecard(ledger)
        assert card["strategies"]["fenix_kr_veloc"]["total_alerts"] == 1
        flags = flag_anomalies(ledger)
        assert any("slo alerts" in f for f in flags)

    def test_progress_events_carry_the_alert_count(self):
        from repro.parallel.progress import CampaignProgress, ProgressSink

        class Capture(ProgressSink):
            def __init__(self):
                self.events = []

            def emit(self, event):
                self.events.append(event)

        sink = Capture()
        progress = CampaignProgress([sink], jobs=1)
        progress.add_cells(1)
        progress.cell_submitted()
        progress.cell_done(0, "cell", "fresh", host_seconds=0.1, alerts=3)
        (done,) = [e for e in sink.events if e["event"] == "cell_done"]
        assert done["alerts"] == 3
