"""python -m repro.live: tail, check, export (exit codes + artifacts)."""

import json

from repro.live.__main__ import main
from repro.live.openmetrics import parse_openmetrics

EXIT_OK, EXIT_REGRESSION, EXIT_BAD_INPUT = 0, 1, 2


class TestCheck:
    def test_healthy_run_meets_the_example_rules(self, kill_trace_file,
                                                 capsys):
        rc = main(["check", kill_trace_file,
                   "--rules", "examples/slo_rules.json"])
        assert rc == EXIT_OK
        assert "0 alert(s)" in capsys.readouterr().out

    def test_tight_slo_fires_exactly_one_alert(self, kill_trace_file,
                                               tight_rules_file, capsys):
        rc = main(["check", kill_trace_file, "--rules", tight_rules_file,
                   "--json"])
        assert rc == EXIT_REGRESSION
        doc = json.loads(capsys.readouterr().out)
        assert len(doc["alerts"]) == 1
        (alert,) = doc["alerts"]
        assert alert["rule"] == "recovery-latency-tight"
        assert alert["value"] > alert["threshold"]
        assert alert["records"], "alert lost its causal record window"
        assert doc["snapshot"]["records_seen"] == doc["records"]

    def test_bad_inputs_exit_2(self, kill_trace_file, tight_rules_file,
                               tmp_path, capsys):
        assert main(["check", str(tmp_path / "absent.jsonl"),
                     "--rules", tight_rules_file]) == EXIT_BAD_INPUT
        assert main(["check", kill_trace_file,
                     "--rules", str(tmp_path / "absent.json")]) \
            == EXIT_BAD_INPUT
        bad = tmp_path / "bad_rules.json"
        bad.write_text('{"rules": [{"name": "x"}]}')
        assert main(["check", kill_trace_file, "--rules", str(bad)]) \
            == EXIT_BAD_INPUT
        capsys.readouterr()


class TestExport:
    def test_trace_export_parses(self, kill_trace_file, tmp_path, capsys):
        out = tmp_path / "metrics.om"
        assert main(["export", kill_trace_file, "--out", str(out)]) \
            == EXIT_OK
        samples = parse_openmetrics(out.read_text())
        assert "repro_live_records_seen_total" in samples
        assert "repro_live_recovery_latency_s" in samples
        capsys.readouterr()

    def test_metrics_snapshot_export(self, tmp_path, capsys):
        snapshot = {"counters": {"mpi.ranks_died": 1},
                    "gauges": {}, "histograms": {}}
        src = tmp_path / "metrics.json"
        src.write_text(json.dumps(snapshot))
        out = tmp_path / "metrics.om"
        assert main(["export", str(src), "--out", str(out)]) == EXIT_OK
        samples = parse_openmetrics(out.read_text())
        assert samples["repro_mpi_ranks_died_total"] == [({}, 1.0)]
        capsys.readouterr()

    def test_export_to_stdout_and_bad_input(self, kill_trace_file,
                                            tmp_path, capsys):
        assert main(["export", kill_trace_file]) == EXIT_OK
        text = capsys.readouterr().out
        parse_openmetrics(text)
        assert main(["export", str(tmp_path / "absent")]) == EXIT_BAD_INPUT
        capsys.readouterr()


class TestTail:
    def test_trace_mode_final_frame(self, kill_trace_file, tight_rules_file,
                                    tmp_path, capsys):
        out = tmp_path / "dashboard.txt"
        rc = main(["tail", kill_trace_file, "--once",
                   "--rules", tight_rules_file, "--out", str(out)])
        assert rc == EXIT_OK
        frame = out.read_text()
        assert "recovery_latency_s" in frame
        assert "recovery-latency-tight" in frame
        capsys.readouterr()

    def test_progress_mode_auto_detected(self, tmp_path, capsys):
        events = [
            {"event": "campaign_start", "total": 2, "jobs": 1, "schema": 1},
            {"event": "cell_done", "index": 0, "label": "a", "state":
             "fresh", "host_seconds": 0.1, "alerts": 1, "completed": 1,
             "total": 2, "cache_hits": 0, "cache_misses": 1,
             "eta_s": 0.1, "utilization": 1.0},
            {"event": "campaign_end", "total": 2, "cached": 0, "fresh": 2,
             "failed": 0, "host_seconds": 0.2},
        ]
        path = tmp_path / "progress.jsonl"
        path.write_text("".join(json.dumps(e) + "\n" for e in events))
        out = tmp_path / "frame.txt"
        assert main(["tail", str(path), "--once", "--out", str(out)]) \
            == EXIT_OK
        frame = out.read_text()
        assert "campaign done" in frame
        assert "alerts 1" in frame
        capsys.readouterr()

    def test_tail_tolerates_torn_lines(self, kill_trace_file, tmp_path,
                                       capsys):
        # truncate the recording mid-line, as a tailer of a live file
        # would see it
        lines = open(kill_trace_file).readlines()
        torn = tmp_path / "torn.jsonl"
        with open(torn, "w") as fh:
            fh.writelines(lines[:-1])
            fh.write(lines[-1][: len(lines[-1]) // 2])
        assert main(["tail", str(torn), "--once"]) == EXIT_OK
        assert main(["tail", str(tmp_path / "absent"), "--once"]) \
            == EXIT_BAD_INPUT
        capsys.readouterr()
