"""OpenMetrics rendering round-trips through the strict parser."""

import pytest

from repro.live.openmetrics import (
    Family,
    from_aggregator,
    from_metrics_snapshot,
    parse_openmetrics,
    render_openmetrics,
    sanitize_name,
)
from repro.live.series import TimeSeriesAggregator
from repro.sim.trace import Trace
from repro.util.errors import ConfigError

SNAPSHOT = {
    "counters": {"veloc.checkpoint.count": 6, "mpi.revokes": 1},
    "gauges": {"fenix.spare_pool_depth": {"value": 1.0, "high": 2.0}},
    "histograms": {
        "veloc.checkpoint.latency": {
            "base": 2.0,
            "buckets": {"underflow": 1, "-3": 2, "-1": 3},
            "count": 6,
            "total": 0.9,
        },
    },
}


def test_sanitize_name():
    assert sanitize_name("veloc.checkpoint.count") == "veloc_checkpoint_count"
    assert sanitize_name("9lives") == "_9lives"
    assert sanitize_name("ok_name:x") == "ok_name:x"


def test_snapshot_round_trip():
    text = render_openmetrics(from_metrics_snapshot(SNAPSHOT))
    assert text.endswith("# EOF\n")
    samples = parse_openmetrics(text)
    assert samples["repro_veloc_checkpoint_count_total"] == [({}, 6.0)]
    assert samples["repro_fenix_spare_pool_depth"] == [({}, 1.0)]
    assert samples["repro_fenix_spare_pool_depth_high"] == [({}, 2.0)]
    # histogram: cumulative le-buckets, monotone, +Inf equals count
    buckets = samples["repro_veloc_checkpoint_latency_bucket"]
    values = [v for (_, v) in buckets]
    assert values == sorted(values)
    les = [lb["le"] for (lb, _) in buckets]
    assert les[-1] == "+Inf"
    assert buckets[-1][1] == 6.0
    assert samples["repro_veloc_checkpoint_latency_count"] == [({}, 6.0)]
    assert samples["repro_veloc_checkpoint_latency_sum"] == [({}, 0.9)]


def test_aggregator_families_round_trip():
    tr = Trace(enabled=True)
    agg = TimeSeriesAggregator()
    agg.attach(tr)
    tr.emit(0.0, "app.attempt1", "comm_create", members=[0, 1, 2])
    tr.emit(1.0, "veloc.server0", "flush_submit", nbytes=64.0)
    tr.emit(2.0, "app.attempt1", "rank_killed", rank=2)
    text = render_openmetrics(from_aggregator(agg))
    samples = parse_openmetrics(text)
    assert samples["repro_live_records_seen_total"] == [({}, 3.0)]
    assert samples["repro_live_flush_backlog_bytes"] == [({}, 64.0)]
    assert samples["repro_live_open_recoveries"] == [({}, 1.0)]
    by_state = dict(
        (labels["state"], v) for labels, v in samples["repro_live_ranks"])
    assert by_state == {"alive": 2.0, "dead": 1.0}
    # empty series export as NaN gauges, still parseable
    (labels, value), = samples["repro_live_recovery_latency_s"]
    assert value != value


def test_label_escaping_survives():
    fam = Family("x", "gauge")
    fam.add(1.0, labels={"path": 'a"b\\c\nd'})
    samples = parse_openmetrics(render_openmetrics([fam]))
    (labels, _), = samples["x"]
    assert labels["path"] == 'a\\"b\\\\c\\nd'


@pytest.mark.parametrize("text, fragment", [
    ("# TYPE x gauge\nx 1\n", "does not end with # EOF"),
    ("# TYPE x gauge\nx 1\n# EOF\nleft-over\n", "after # EOF"),
    ("# TYPE x gauge\n\nx 1\n# EOF\n", "blank line"),
    ("x 1\n# EOF\n", "precedes its # TYPE"),
    ("# TYPE x counter\nx 1\n# EOF\n", "must end in _total"),
    ("# TYPE x gauge\nx{9bad=\"v\"} 1\n# EOF\n", "malformed"),
    ("# TYPE x gauge\nx nope\n# EOF\n", "bad sample value"),
    ("# TYPE x wat\nx 1\n# EOF\n", "unknown type"),
    ("# TYPE x gauge\n# TYPE x gauge\n# EOF\n", "duplicate TYPE"),
])
def test_parser_rejects_malformed_expositions(text, fragment):
    with pytest.raises(ConfigError, match=fragment):
        parse_openmetrics(text)


def test_family_rejects_unknown_type():
    with pytest.raises(ConfigError):
        Family("x", "summary")
