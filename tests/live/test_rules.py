"""SLO rule parsing, the alert engine, and the live session."""

import pytest

from repro.live.rules import (
    Alert,
    AlertEngine,
    AlertRule,
    LiveSession,
    RuleSet,
    SLOViolationError,
    load_rules,
    parse_rules,
)
from repro.live.series import TimeSeriesAggregator
from repro.sim.trace import Trace
from repro.util.errors import ConfigError


def ruleset(**overrides):
    kw = dict(name="r", metric="flush_backlog_bytes", op="<=",
              threshold=10.0, agg="last", window_s=100.0)
    kw.update(overrides)
    return RuleSet([AlertRule(**kw)])


class TestParsing:
    def test_example_rules_file_loads(self):
        rules = load_rules("examples/slo_rules.json")
        assert len(rules) == 4
        names = {r.name for r in rules}
        assert "recovery-latency-budget" in names

    def test_bare_list_accepted(self):
        rules = parse_rules([{"name": "a", "metric": "alive_ranks",
                              "op": ">=", "threshold": 1}])
        assert len(rules) == 1

    @pytest.mark.parametrize("doc, fragment", [
        ({"no_rules": []}, "no 'rules' key"),
        ("nope", "expected an object or list"),
        ({"rules": ["x"]}, "not an object"),
        ({"rules": [{"name": "a", "metric": "m", "op": "<=",
                     "threshold": 1, "wat": 2}]}, "unknown key"),
        ({"rules": [{"name": "a", "op": "<="}]}, "missing key"),
    ])
    def test_malformed_documents_rejected(self, doc, fragment):
        with pytest.raises(ConfigError, match=fragment):
            parse_rules(doc)

    def test_duplicate_names_rejected(self):
        rule = {"name": "a", "metric": "m", "op": "<=", "threshold": 1}
        with pytest.raises(ConfigError, match="duplicate"):
            parse_rules({"rules": [rule, dict(rule)]})

    @pytest.mark.parametrize("field, value", [
        ("op", "~="), ("agg", "p42"), ("severity", "fatal"),
        ("window_s", 0.0), ("for_s", -1.0), ("name", ""),
    ])
    def test_rule_validation(self, field, value):
        kw = dict(name="a", metric="m", op="<=", threshold=1.0)
        kw[field] = value
        with pytest.raises(ConfigError):
            AlertRule(**kw)

    def test_missing_file_and_bad_json(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            load_rules(str(tmp_path / "absent.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_rules(str(bad))

    def test_no_data_holds_vacuously(self):
        rule = AlertRule(name="a", metric="m", op="<=", threshold=1.0)
        assert rule.holds(None)
        assert rule.holds(1.0)
        assert not rule.holds(2.0)


class TestAlertEngine:
    def test_unknown_metric_rejected_at_construction(self):
        agg = TimeSeriesAggregator()
        with pytest.raises(ConfigError, match="unknown metric"):
            AlertEngine(ruleset(metric="not_a_series"), agg)

    def test_fires_once_then_rearms_when_slo_holds_again(self):
        agg = TimeSeriesAggregator()
        engine = AlertEngine(ruleset(), agg)
        series = agg.series["flush_backlog_bytes"]
        series.observe(1.0, 100.0)
        assert len(engine.evaluate(1.0)) == 1
        # still violating: no second alert for the same episode
        assert engine.evaluate(2.0) == []
        # the SLO holds again: the rule re-arms...
        series.observe(3.0, 0.0)
        assert engine.evaluate(3.0) == []
        # ...and a fresh violation fires a fresh alert
        series.observe(4.0, 100.0)
        assert len(engine.evaluate(4.0)) == 1
        assert len(engine.alerts) == 2

    def test_for_s_persistence_on_simulated_time(self):
        agg = TimeSeriesAggregator()
        engine = AlertEngine(ruleset(for_s=5.0), agg)
        series = agg.series["flush_backlog_bytes"]
        series.observe(0.0, 100.0)
        assert engine.evaluate(0.0) == []   # violating since t=0
        assert engine.evaluate(4.0) == []   # not yet 5 s
        fired = engine.evaluate(5.0)
        assert len(fired) == 1
        assert fired[0].since == 0.0
        # a transient that clears before for_s never fires
        series.observe(6.0, 0.0)
        engine.evaluate(6.0)
        series.observe(7.0, 100.0)
        assert engine.evaluate(7.0) == []
        series.observe(8.0, 0.0)
        assert engine.evaluate(8.0) == []
        assert len(engine.alerts) == 1

    def test_alert_carries_causal_records_and_roundtrips(self):
        tr = Trace(enabled=True)
        agg = TimeSeriesAggregator()
        agg.attach(tr)
        engine = AlertEngine(ruleset(), agg)
        tr.emit(1.0, "veloc.server0", "flush_submit", nbytes=100.0)
        (alert,) = engine.evaluate(1.0)
        assert alert.records and "flush_submit" in alert.records[-1]
        assert "flush_backlog_bytes" in alert.render()
        assert Alert.from_dict(alert.to_dict()) == alert

    def test_provider_metric_served_from_monitor(self):
        agg = TimeSeriesAggregator()
        rules = RuleSet([AlertRule(name="clean",
                                   metric="invariant_violations",
                                   op="==", threshold=0.0)])
        # declared but unwired: no data, holds vacuously
        engine = AlertEngine(rules, agg)
        assert engine.evaluate(1.0) == []
        violations = []
        engine = AlertEngine(rules, agg,
                             providers={"invariant_violations":
                                        lambda: float(len(violations))})
        assert engine.evaluate(1.0) == []
        violations.append("boom")
        assert len(engine.evaluate(2.0)) == 1


class TestLiveSession:
    def kill_trace(self):
        tr = Trace(enabled=True)
        tr.emit(0.5, "app.attempt1", "comm_create", members=[0, 1])
        tr.emit(4.0, "app.attempt1", "rank_killed", rank=1)
        tr.emit(4.6, "veloc.rank1", "recover", version=10)
        tr.emit(9.0, "veloc.rank0", "checkpoint", seconds=0.1)
        return tr

    def tight_rules(self):
        return RuleSet([AlertRule(
            name="recovery-tight", metric="recovery_latency_s",
            op="<=", threshold=0.001, agg="p99", window_s=1e6,
            severity="critical")])

    def test_attached_session_fires_on_window_boundaries(self):
        tr = self.kill_trace()
        session = LiveSession(rules=self.tight_rules())
        session.attach(tr)
        tr.emit(12.0, "veloc.rank0", "checkpoint", seconds=0.1)
        alerts = session.finish()
        assert [a.rule for a in alerts] == ["recovery-tight"]
        # fired at the first window boundary after the recovery, not
        # only at finish()
        assert alerts[0].time < 12.0

    def test_replay_matches_attach(self):
        tr = self.kill_trace()
        live = LiveSession(rules=self.tight_rules())
        live.attach(tr)
        replayed = LiveSession(rules=self.tight_rules()).replay(list(tr))
        assert [a.to_dict() for a in live.finish()] == \
            [a.to_dict() for a in replayed.finish()]

    def test_strict_session_raises(self):
        session = LiveSession(rules=self.tight_rules(), strict=True)
        session.replay(list(self.kill_trace()))
        with pytest.raises(SLOViolationError) as exc:
            session.finish()
        assert exc.value.alerts

    def test_finish_is_idempotent_and_rules_optional(self):
        session = LiveSession()
        session.replay(list(self.kill_trace()))
        assert session.finish() == []
        assert session.finish() == []
        assert session.aggregator.records_seen == 4
