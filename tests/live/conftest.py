"""Shared recorded failure run for the repro.live tests.

One small Fenix+VeloC job with a single injected kill, persisted as a
flight-recorder file; the CLI, rules, and dashboard tests all replay
the same stream.
"""

import pytest

from repro.apps.heatdis import HeatdisConfig
from repro.experiments.common import paper_env
from repro.harness.runner import run_heatdis_job
from repro.monitor import MonitorSuite
from repro.monitor.trace_io import write_trace
from repro.sim.failures import IterationFailure

RANKS = 4
INTERVAL = 10
N_ITERS = 30


@pytest.fixture(scope="session")
def kill_run():
    """One monitored kill-and-recover job; returns (report, suite)."""
    env = paper_env(RANKS + 1, n_spares=1, pfs_servers=2)
    plan = IterationFailure.between_checkpoints(1, INTERVAL, 1)
    suite = MonitorSuite()
    report = run_heatdis_job(
        env, "fenix_kr_veloc", RANKS,
        HeatdisConfig(n_iters=N_ITERS, modeled_bytes_per_rank=16e6),
        INTERVAL, plan=plan, strict_monitor=True, monitor=suite,
    )
    return report, suite


@pytest.fixture(scope="session")
def kill_records(kill_run):
    _, suite = kill_run
    return list(suite._trace)


@pytest.fixture(scope="session")
def kill_trace_file(kill_run, tmp_path_factory):
    """The run's stream persisted as a flight-recorder file."""
    _, suite = kill_run
    path = tmp_path_factory.mktemp("live") / "kill.trace.jsonl"
    write_trace(str(path), suite._trace)
    return str(path)


@pytest.fixture()
def tight_rules_file(tmp_path):
    """A recovery-latency SLO no kill-and-recover run can meet."""
    path = tmp_path / "tight.json"
    path.write_text(
        '{"rules": [{"name": "recovery-latency-tight",'
        ' "metric": "recovery_latency_s", "agg": "p99",'
        ' "op": "<=", "threshold": 0.001, "window_s": 1e6,'
        ' "severity": "critical"}]}'
    )
    return str(path)
