"""`repro.live check` window accounting: an empty trace or one shorter
than every rule window is reported as "no complete windows", never as a
spurious pass/fail."""

import json

import pytest

from repro.live.__main__ import main
from repro.monitor.trace_io import write_trace
from repro.report.compare import EXIT_OK, EXIT_REGRESSION
from repro.sim.trace import Trace

RULES = "examples/slo_rules.json"


@pytest.fixture()
def empty_trace_file(tmp_path):
    path = tmp_path / "empty.trace.jsonl"
    write_trace(str(path), Trace())
    return str(path)


@pytest.fixture()
def short_trace_file(tmp_path):
    """A healthy sliver of a trace: far shorter than the smallest
    shipped rule window (60 s), with nothing alert-worthy in it."""
    trace = Trace()
    for i in range(5):
        trace.emit(0.1 * i, "veloc.rank0", "checkpoint", version=i)
    path = tmp_path / "short.trace.jsonl"
    write_trace(str(path), trace)
    return str(path)


def test_empty_trace_reports_no_complete_windows(empty_trace_file, capsys):
    rc = main(["check", empty_trace_file, "--rules", RULES])
    assert rc == EXIT_OK
    out = capsys.readouterr().out
    assert "0 records" in out
    assert "no complete windows" in out
    assert "the trace is empty" in out


def test_empty_trace_json_shape(empty_trace_file, capsys):
    rc = main(["check", empty_trace_file, "--rules", RULES, "--json"])
    assert rc == EXIT_OK
    doc = json.loads(capsys.readouterr().out)
    assert doc["records"] == 0
    assert doc["complete_windows"] is False
    assert doc["alerts"] == []


def test_short_clean_trace_is_labelled_partial(short_trace_file, capsys):
    rc = main(["check", short_trace_file, "--rules", RULES])
    assert rc == EXIT_OK
    out = capsys.readouterr().out
    assert "no complete windows" in out
    assert "shorter than the smallest rule window" in out


def test_short_trace_json_flags_incomplete_windows(
        short_trace_file, capsys):
    rc = main(["check", short_trace_file, "--rules", RULES, "--json"])
    assert rc == EXIT_OK
    doc = json.loads(capsys.readouterr().out)
    assert doc["complete_windows"] is False


def test_short_trace_alerts_still_fire(kill_trace_file, tight_rules_file,
                                       capsys):
    """Partial evidence still convicts: a fired alert on a trace
    shorter than its rule's window keeps the failing exit code."""
    rc = main(["check", kill_trace_file, "--rules", tight_rules_file])
    assert rc == EXIT_REGRESSION
    assert "recovery-latency-tight" in capsys.readouterr().out


def test_spanning_trace_reports_complete_windows(tmp_path, capsys):
    """A clean trace longer than every rule window carries no partial-
    evidence caveat."""
    trace = Trace()
    for i in range(70):
        trace.emit(float(i), "veloc.rank0", "checkpoint", version=i)
    path = tmp_path / "long.trace.jsonl"
    write_trace(str(path), trace)
    rc = main(["check", str(path), "--rules", RULES, "--json"])
    assert rc == EXIT_OK
    doc = json.loads(capsys.readouterr().out)
    assert doc["complete_windows"] is True
    capsys.readouterr()
    rc = main(["check", str(path), "--rules", RULES])
    assert rc == EXIT_OK
    assert "no complete windows" not in capsys.readouterr().out
