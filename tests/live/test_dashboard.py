"""Dashboard frame renderers (pure text, no terminal control)."""

from repro.live.dashboard import (
    CampaignView,
    progress_bar,
    render_campaign_frame,
    render_trace_frame,
    sparkline,
)
from repro.live.rules import Alert
from repro.live.series import TimeSeriesAggregator
from repro.sim.trace import Trace


def test_sparkline_scales_min_max():
    line = sparkline([0.0, 1.0, 2.0, 3.0])
    assert len(line) == 4
    assert line[0] == "▁" and line[-1] == "█"
    assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"
    assert sparkline([]) == ""
    assert len(sparkline(list(range(100)), width=16)) == 16


def test_progress_bar_clamps():
    assert progress_bar(0.5, width=4) == "[##--]"
    assert progress_bar(-1.0, width=4) == "[----]"
    assert progress_bar(2.0, width=4) == "[####]"


PROGRESS_EVENTS = [
    {"event": "campaign_start", "total": 3, "jobs": 2, "schema": 1},
    {"event": "cell_done", "index": 0, "label": "kr_veloc/r4/s2",
     "state": "fresh", "host_seconds": 0.5, "alerts": 0, "completed": 1,
     "total": 3, "cache_hits": 0, "cache_misses": 1, "eta_s": 1.0,
     "utilization": 1.0},
    {"event": "cell_done", "index": 1, "label": "fenix/r4/s2",
     "state": "cached", "host_seconds": 0.0, "alerts": 2, "completed": 2,
     "total": 3, "cache_hits": 1, "cache_misses": 1, "eta_s": 0.5,
     "utilization": 0.5},
    {"event": "cell_done", "index": 2, "label": "fenix/r4/s3",
     "state": "failed", "host_seconds": 0.1, "alerts": 0, "completed": 3,
     "total": 3, "cache_hits": 1, "cache_misses": 2, "eta_s": 0.0,
     "utilization": 0.5},
    {"event": "campaign_end", "total": 3, "cached": 1, "fresh": 1,
     "failed": 1, "host_seconds": 0.7},
]


def test_campaign_view_folds_the_event_stream():
    view = CampaignView().replay(PROGRESS_EVENTS)
    assert (view.total, view.completed, view.done) == (3, 3, True)
    assert view.alerts_total == 2
    assert view.failed == 1
    assert len(view.recent) == 3


def test_campaign_frame_renders():
    view = CampaignView().replay(PROGRESS_EVENTS)
    frame = render_campaign_frame(view)
    assert "campaign done" in frame
    assert "3/3" in frame
    assert "alerts 2" in frame
    assert "kr_veloc/r4/s2" in frame
    assert "!2 alert(s)" in frame
    # frames respect the width budget
    assert all(len(line) <= 78 for line in frame.splitlines())
    empty = render_campaign_frame(CampaignView())
    assert "waiting for progress events" in empty


def test_trace_frame_renders_lanes_series_and_alerts():
    tr = Trace(enabled=True)
    agg = TimeSeriesAggregator()
    agg.attach(tr)
    tr.emit(0.0, "app.attempt1", "comm_create", members=[0, 1, 2])
    tr.emit(1.0, "veloc.rank0", "checkpoint", seconds=0.1)
    tr.emit(2.0, "veloc.rank0", "checkpoint", seconds=0.1)
    tr.emit(4.0, "app.attempt1", "rank_killed", rank=1)
    alert = Alert(rule="tight", metric="recovery_latency_s",
                  severity="critical", time=4.5, value=0.5,
                  threshold=0.001, op="<=", agg="p99")
    frame = render_trace_frame(agg, alerts=[alert],
                               meta={"dropped": 3, "sampled_out": 7})
    assert "records=4" in frame
    assert "open recoveries=1" in frame
    assert "ring=3 sampled=7" in frame
    assert "●" in frame and "✕" in frame
    assert "checkpoint_overhead_pct" in frame
    assert "alerts (1):" in frame and "tight" in frame
    assert all(len(line) <= 78 for line in frame.splitlines())
    # alert-free frames say so explicitly
    assert "alerts: none" in render_trace_frame(agg)
