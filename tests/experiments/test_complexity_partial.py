"""Complexity (Section VI-E) and partial-rollback (VI-D2) driver tests."""

import pytest

from repro.experiments import analyze_complexity, run_partial_rollback_comparison
from repro.experiments.complexity import format_complexity, integration_line_counts


class TestComplexity:
    def test_mpi_call_sites_counted(self):
        report = analyze_complexity()
        assert report.total_mpi_call_sites > 0
        heatdis = report.module("heatdis")
        assert heatdis.mpi_call_sites >= 5  # halo sends/recvs + reductions

    def test_every_app_module_analyzed(self):
        report = analyze_complexity()
        assert {m.module for m in report.modules} == {
            "heatdis", "heatdis_manual", "minimd",
        }

    def test_manual_integration_needs_more_resilience_lines(self):
        """The KR-managed main concentrates resilience code; the manual
        variant spreads VeloC bookkeeping through the app."""
        counts = integration_line_counts()
        assert counts["heatdis_manual"] > 0
        assert counts["heatdis_kr"] > 0

    def test_format(self):
        text = format_complexity(analyze_complexity())
        assert "MPI call sites" in text


class TestPartialRollback:
    @pytest.fixture(scope="class")
    def result(self):
        return run_partial_rollback_comparison(n_ranks=4)

    def test_both_recover_and_converge(self, result):
        assert result.clean_iterations > 0
        assert result.full_iterations >= result.clean_iterations
        # partial rollback may converge in FEWER counted iterations: the
        # survivors' kept data is ahead of the rolled-back counter
        assert result.partial_iterations <= result.full_iterations
        assert result.partial_iterations > result.clean_iterations // 2

    def test_partial_rollback_speedup(self, result):
        """Claim 8: 'a nearly 2x speedup of recovery from just keeping
        the in-progress data on surviving ranks'."""
        assert result.partial_recovery_cost < result.full_recovery_cost
        assert result.speedup > 1.4
